"""End-to-end integration tests: the full pipeline on small problems.

These tests exercise the whole chain — generator → ordering → symbolic
analysis → splitting → mapping → simulation → comparison — the way the
benchmark harness uses it, and assert the qualitative properties the paper's
evaluation relies on.
"""

import numpy as np
import pytest

from repro import quick_compare, simulate
from repro.experiments import ExperimentRunner
from repro.ordering import compute_ordering
from repro.sparse import grid_3d
from repro.symbolic import build_assembly_tree, split_large_masters


class TestPublicEntryPoints:
    def test_simulate_wrapper(self):
        pattern = grid_3d(7, 7, 7)
        result = simulate(pattern, ordering="metis", strategy="memory-full", nprocs=4)
        tree = build_assembly_tree(pattern, compute_ordering(pattern, "metis"))
        assert result.total_factor_entries == pytest.approx(tree.total_factor_entries())

    def test_simulate_with_split(self):
        pattern = grid_3d(7, 7, 7)
        result = simulate(pattern, ordering="amd", strategy="memory-full", nprocs=4, split_threshold=2000)
        assert result.max_peak_stack > 0

    def test_quick_compare(self):
        out = quick_compare("XENON2", "metis", nprocs=4, scale=0.25)
        assert out["baseline_peak"] > 0
        assert out["candidate_peak"] > 0

    def test_version_and_exports(self):
        import repro

        assert repro.__version__
        for name in repro.__all__:
            assert hasattr(repro, name)


class TestQualitativeShapes:
    """The qualitative findings of the paper that the simulation must reproduce."""

    @pytest.fixture(scope="class")
    def runner(self):
        return ExperimentRunner(nprocs=8, scale=0.35)

    def test_memory_strategy_helps_or_is_neutral_on_average(self, runner):
        """Table 2's shape: averaged over cases, the memory strategy does not lose."""
        gains = []
        for problem, ordering in [("XENON2", "metis"), ("XENON2", "amd"), ("MSDOOR", "metis")]:
            cmp = runner.compare(problem, ordering)
            gains.append(cmp["gain_percent"])
        assert np.mean(gains) > -5.0

    def test_splitting_reduces_peak_when_masters_dominate(self, runner):
        """Table 4's shape: static splitting reduces the absolute peak for the
        unsymmetric problems whose peak is a huge type-2 master."""
        plain = runner.run_case("TWOTONE", "amd", "mumps-workload", split=False)
        split = runner.run_case("TWOTONE", "amd", "mumps-workload", split=True)
        assert split.max_peak_stack <= plain.max_peak_stack * 1.05

    def test_combined_static_dynamic_best_on_unsym(self, runner):
        """Table 5's shape: memory strategy + splitting vs original MUMPS."""
        base = runner.run_case("TWOTONE", "amd", "mumps-workload", split=False)
        combined = runner.run_case("TWOTONE", "amd", "memory-full", split=True)
        assert combined.max_peak_stack <= base.max_peak_stack * 1.1

    def test_time_loss_bounded(self, runner):
        """Table 6's shape: the memory strategy does not slow the factorization
        down by an unreasonable factor."""
        base = runner.run_case("XENON2", "metis", "mumps-workload", split=False)
        mem = runner.run_case("XENON2", "metis", "memory-full", split=True)
        assert mem.total_time <= 2.0 * base.total_time

    def test_ordering_changes_tree_and_memory(self, runner):
        """The premise of the evaluation: different orderings give different
        trees and different memory behaviour."""
        peaks = {}
        for ordering in ("metis", "amd"):
            case = runner.run_case("XENON2", ordering, "mumps-workload")
            peaks[ordering] = case.max_peak_stack
        assert peaks["metis"] != peaks["amd"]

    def test_subtree_dominated_symmetric_case_gains_nothing(self, runner):
        """The paper's explanation for the zeros of Table 2: when the peak is
        inside a leaf subtree, the dynamic strategy cannot change it much."""
        base = runner.run_case("SHIP_003", "pord", "mumps-workload")
        mem = runner.run_case("SHIP_003", "pord", "memory-full")
        # gains, if any, stay modest in this regime — and never a blow-up
        assert mem.max_peak_stack <= 1.25 * base.max_peak_stack
