"""Tests for the fill-reducing orderings."""

import numpy as np
import pytest

from repro.ordering import (
    ORDERINGS,
    amd_ordering,
    amf_ordering,
    compute_ordering,
    is_permutation,
    nested_dissection_ordering,
    pord_ordering,
    rcm_ordering,
)
from repro.ordering.nested_dissection import extract_hubs, find_separator
from repro.sparse import arrow_pattern, circuit_pattern, grid_2d, grid_3d, random_pattern
from repro.symbolic.colcounts import symbolic_fill


ALL_METHODS = ["metis", "pord", "amd", "amf", "rcm", "natural"]


class TestRegistry:
    def test_registry_contents(self):
        for name in ("metis", "pord", "amd", "amf", "rcm", "natural"):
            assert name in ORDERINGS

    def test_unknown_method(self, small_grid):
        with pytest.raises(ValueError):
            compute_ordering(small_grid, "scotch")

    def test_case_insensitive(self, small_grid):
        a = compute_ordering(small_grid, "AMD")
        b = compute_ordering(small_grid, "amd")
        assert np.array_equal(a, b)

    def test_is_permutation_helper(self):
        assert is_permutation(np.array([2, 0, 1]), 3)
        assert not is_permutation(np.array([0, 0, 1]), 3)
        assert not is_permutation(np.array([0, 1]), 3)


class TestValidity:
    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_returns_permutation_grid(self, method, small_grid):
        perm = compute_ordering(small_grid, method)
        assert is_permutation(perm, small_grid.n)

    @pytest.mark.parametrize("method", ALL_METHODS)
    def test_returns_permutation_unsym(self, method, unsym_pattern):
        perm = compute_ordering(unsym_pattern, method)
        assert is_permutation(perm, unsym_pattern.n)

    @pytest.mark.parametrize("method", ["metis", "pord", "amd", "amf"])
    def test_deterministic(self, method, small_grid):
        a = compute_ordering(small_grid, method)
        b = compute_ordering(small_grid, method)
        assert np.array_equal(a, b)

    @pytest.mark.parametrize("method", ["metis", "amd", "amf", "pord", "rcm"])
    def test_disconnected_graph(self, method):
        # two disjoint grids
        from repro.sparse import SparsePattern

        g = grid_2d(4, 4)
        rows = np.repeat(np.arange(g.n), np.diff(g.indptr))
        cols = g.indices
        p = SparsePattern.from_coo(
            2 * g.n,
            np.concatenate([rows, rows + g.n]),
            np.concatenate([cols, cols + g.n]),
            symmetric=True,
        )
        perm = compute_ordering(p, method)
        assert is_permutation(perm, p.n)

    @pytest.mark.parametrize("method", ["amd", "amf", "metis"])
    def test_tiny_matrices(self, method):
        for n in (1, 2, 3):
            p = random_pattern(n, density=0.8, symmetric=True, seed=0)
            assert is_permutation(compute_ordering(p, method), n)


class TestQuality:
    @pytest.mark.parametrize("method", ["metis", "pord", "amd", "amf"])
    def test_beats_natural_on_3d_grid(self, method):
        g = grid_3d(7, 7, 7)
        natural = symbolic_fill(g)["nnz_L"]
        ordered = symbolic_fill(g.permuted(compute_ordering(g, method)))["nnz_L"]
        assert ordered < natural

    def test_amd_handles_arrow_matrix(self):
        # an arrowhead whose dense row comes FIRST fills completely under the
        # natural ordering; minimum degree pushes it back and keeps L sparse
        p = arrow_pattern(60, bandwidth=1, arrow_width=1).permuted(np.arange(60)[::-1])
        natural = symbolic_fill(p)["nnz_L"]
        amd = symbolic_fill(p.permuted(amd_ordering(p)))["nnz_L"]
        assert amd < 0.3 * natural

    def test_amf_close_to_amd_on_grid(self):
        g = grid_2d(12, 12)
        amd = symbolic_fill(g.permuted(amd_ordering(g)))["nnz_L"]
        amf = symbolic_fill(g.permuted(amf_ordering(g)))["nnz_L"]
        assert amf < 1.5 * amd

    def test_orderings_give_different_tree_shapes(self, medium_grid):
        """The paper's premise: the ordering drives the tree topology."""
        from repro.symbolic import build_assembly_tree

        depths = {}
        for method in ("metis", "amd", "rcm"):
            tree = build_assembly_tree(medium_grid, compute_ordering(medium_grid, method))
            depths[method] = tree.depth()
        assert depths["rcm"] > depths["metis"]  # RCM gives path-like trees


class TestNestedDissectionInternals:
    def test_separator_separates(self, small_grid):
        indptr, indices = small_grid.adjacency()
        vertices = np.arange(small_grid.n, dtype=np.int64)
        part_a, part_b, sep = find_separator(indptr, indices, vertices)
        assert part_a.size + part_b.size + sep.size == small_grid.n
        in_a = np.zeros(small_grid.n, dtype=bool)
        in_a[part_a] = True
        in_b = np.zeros(small_grid.n, dtype=bool)
        in_b[part_b] = True
        # no edge directly connects A and B
        for v in part_a:
            for u in small_grid.row(int(v)):
                assert not in_b[u]

    def test_hub_extraction_on_arrow(self):
        p = arrow_pattern(100, bandwidth=1, arrow_width=2)
        indptr, indices = p.adjacency()
        hubs = extract_hubs(indptr, indices)
        assert 98 in hubs or 99 in hubs

    def test_hub_extraction_none_on_grid(self, small_grid):
        indptr, indices = small_grid.adjacency()
        assert extract_hubs(indptr, indices).size == 0

    def test_leaf_size_controls_recursion(self, small_grid):
        fine = nested_dissection_ordering(small_grid, leaf_size=8)
        coarse = nested_dissection_ordering(small_grid, leaf_size=64)
        assert is_permutation(fine, small_grid.n)
        assert is_permutation(coarse, small_grid.n)

    def test_pord_levels(self, small_grid):
        shallow = pord_ordering(small_grid, nd_levels=1)
        deep = pord_ordering(small_grid, nd_levels=5)
        assert is_permutation(shallow, small_grid.n)
        assert is_permutation(deep, small_grid.n)


class TestRcm:
    def test_rcm_reduces_bandwidth(self):
        rng = np.random.default_rng(0)
        g = grid_2d(8, 8)
        scrambled = g.permuted(rng.permutation(g.n))
        perm = rcm_ordering(scrambled)
        reordered = scrambled.permuted(perm)

        def bandwidth(p):
            rows = np.repeat(np.arange(p.n), np.diff(p.indptr))
            return int(np.abs(rows - p.indices).max())

        assert bandwidth(reordered) < bandwidth(scrambled)

    def test_rcm_on_circuit(self):
        c = circuit_pattern(150, seed=1)
        assert is_permutation(rcm_ordering(c), c.n)
