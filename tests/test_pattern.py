"""Unit tests for the SparsePattern container."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import SparsePattern, banded_pattern, grid_2d


class TestConstruction:
    def test_from_coo_basic(self):
        p = SparsePattern.from_coo(3, [0, 1, 2, 0], [0, 1, 2, 2])
        assert p.n == 3
        assert p.nnz == 4
        assert list(p.row(0)) == [0, 2]

    def test_from_coo_merges_duplicates(self):
        p = SparsePattern.from_coo(2, [0, 0, 0], [1, 1, 1])
        assert p.nnz == 1

    def test_from_coo_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            SparsePattern.from_coo(2, [0], [5])
        with pytest.raises(ValueError):
            SparsePattern.from_coo(2, [-1], [0])

    def test_from_coo_rejects_mismatched_lengths(self):
        with pytest.raises(ValueError):
            SparsePattern.from_coo(3, [0, 1], [0])

    def test_from_coo_symmetrise(self):
        p = SparsePattern.from_coo(3, [0], [2], symmetrize_pattern=True)
        assert (0 in p.row(2)) and (2 in p.row(0))

    def test_from_dense(self):
        dense = np.array([[1, 0], [1, 1]])
        p = SparsePattern.from_dense(dense)
        assert p.nnz == 3
        with pytest.raises(ValueError):
            SparsePattern.from_dense(np.ones((2, 3)))

    def test_from_rows(self):
        p = SparsePattern.from_rows([[0, 1], [1], [2, 0]])
        assert p.n == 3
        assert p.nnz == 5

    def test_from_scipy_roundtrip(self):
        g = grid_2d(5, 5)
        sp = g.to_scipy()
        back = SparsePattern.from_scipy(sp, symmetric=True)
        assert back == SparsePattern(g.n, g.indptr, g.indices, symmetric=True, name=back.name)

    def test_rows_are_sorted_and_unique(self):
        p = SparsePattern.from_coo(4, [1, 1, 1, 1], [3, 0, 2, 0])
        row = p.row(1)
        assert list(row) == sorted(set(row.tolist()))


class TestQueries:
    def test_nnz_and_repr(self):
        p = banded_pattern(10, bandwidth=1)
        assert p.nnz == 10 + 2 * 9
        assert "SparsePattern" in repr(p)

    def test_has_diagonal(self):
        assert banded_pattern(6).has_diagonal()
        off = SparsePattern.from_coo(3, [0, 1], [1, 2])
        assert not off.has_diagonal()

    def test_structural_symmetry_full(self):
        assert grid_2d(4, 4).structural_symmetry() == pytest.approx(1.0)
        assert grid_2d(4, 4).is_structurally_symmetric()

    def test_structural_symmetry_partial(self):
        p = SparsePattern.from_coo(4, [0, 1, 2], [1, 0, 3])
        # (0,1)/(1,0) are mutual, (2,3) is not
        assert 0.0 < p.structural_symmetry() < 1.0
        assert not p.is_structurally_symmetric()

    def test_degrees_grid_interior(self):
        g = grid_2d(5, 5)
        deg = g.degrees()
        # interior points of a 5-point stencil have 4 neighbours
        assert deg.max() == 4
        assert deg.min() == 2  # corners

    def test_empty_row(self):
        p = SparsePattern.from_coo(3, [0], [0])
        assert p.row(2).size == 0


class TestTransforms:
    def test_transpose_involution(self):
        p = SparsePattern.from_coo(5, [0, 1, 4], [2, 3, 0])
        assert p.transpose().transpose() == p

    def test_symmetrized_contains_both(self):
        p = SparsePattern.from_coo(4, [0], [3])
        s = p.symmetrized()
        assert 3 in s.row(0) and 0 in s.row(3)

    def test_symmetrized_idempotent_on_symmetric(self):
        g = grid_2d(4, 4)
        assert g.symmetrized() is g

    def test_with_diagonal(self):
        p = SparsePattern.from_coo(3, [0], [1])
        d = p.with_diagonal()
        assert d.has_diagonal()
        assert d.nnz == 4

    def test_permuted_identity(self):
        g = grid_2d(4, 4)
        assert g.permuted(np.arange(g.n)) == g

    def test_permuted_preserves_nnz_and_degrees(self):
        g = grid_2d(5, 4)
        rng = np.random.default_rng(0)
        perm = rng.permutation(g.n)
        q = g.permuted(perm)
        assert q.nnz == g.nnz
        assert sorted(q.degrees().tolist()) == sorted(g.degrees().tolist())

    def test_permuted_rejects_bad_perm(self):
        g = grid_2d(3, 3)
        with pytest.raises(ValueError):
            g.permuted(np.zeros(g.n, dtype=int))
        with pytest.raises(ValueError):
            g.permuted(np.arange(g.n - 1))

    def test_submatrix(self):
        g = grid_2d(4, 4)
        keep = np.array([0, 1, 4, 5])
        sub = g.submatrix(keep)
        assert sub.n == 4
        # 0-1 adjacent, 0-4 adjacent in the grid
        assert 1 in sub.row(0)
        assert 2 in sub.row(0)

    def test_adjacency_no_diagonal(self):
        g = grid_2d(4, 4)
        indptr, indices = g.adjacency()
        rows = np.repeat(np.arange(g.n), np.diff(indptr))
        assert not np.any(rows == indices)

    def test_to_networkx(self):
        g = grid_2d(3, 3)
        nxg = g.to_networkx()
        assert nxg.number_of_nodes() == 9
        assert nxg.number_of_edges() == 12  # 2 * 3 * 2 grid edges

    def test_equality_and_hash(self):
        a = grid_2d(3, 3)
        b = grid_2d(3, 3)
        assert a == b
        assert hash(a) == hash(b)
        assert a != banded_pattern(9)
        assert a.__eq__(42) is NotImplemented

    def test_hash_ignores_name(self):
        """Regression: __eq__ ignores the name, so __hash__ must too.

        Structurally equal patterns with different names used to land in
        different hash buckets, breaking the hash/eq contract (equal objects
        must have equal hashes) and therefore set/dict membership.
        """
        a = SparsePattern.from_coo(3, [0, 1, 2], [0, 1, 2], name="one")
        b = SparsePattern.from_coo(3, [0, 1, 2], [0, 1, 2], name="two")
        assert a == b
        assert hash(a) == hash(b)
        assert len({a, b}) == 1
        assert b in {a: "x"}

    def test_has_diagonal(self):
        assert SparsePattern.from_coo(3, [0, 1, 2], [0, 1, 2]).has_diagonal()
        assert not SparsePattern.from_coo(3, [0, 1], [0, 1]).has_diagonal()
        # off-diagonal entries alongside a full diagonal
        assert SparsePattern.from_coo(2, [0, 0, 1, 1], [0, 1, 0, 1]).has_diagonal()
        # a strictly off-diagonal entry does not compensate a missing pivot
        assert not SparsePattern.from_coo(2, [0, 1, 1], [0, 0, 0]).has_diagonal()
        assert grid_2d(4, 4).has_diagonal()
        assert SparsePattern.from_coo(0, [], []).has_diagonal()


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=1, max_value=12),
    data=st.data(),
)
def test_property_symmetrized_is_symmetric(n, data):
    """A symmetrized pattern always equals its transpose."""
    nnz = data.draw(st.integers(min_value=0, max_value=3 * n))
    rows = data.draw(st.lists(st.integers(0, n - 1), min_size=nnz, max_size=nnz))
    cols = data.draw(st.lists(st.integers(0, n - 1), min_size=nnz, max_size=nnz))
    p = SparsePattern.from_coo(n, rows, cols)
    assert p.symmetrized().is_structurally_symmetric()


@settings(max_examples=25, deadline=None)
@given(
    n=st.integers(min_value=2, max_value=10),
    seed=st.integers(min_value=0, max_value=1000),
)
def test_property_permutation_roundtrip(n, seed):
    """Permuting by p then by the inverse of p recovers the original pattern."""
    rng = np.random.default_rng(seed)
    rows = rng.integers(0, n, size=3 * n)
    cols = rng.integers(0, n, size=3 * n)
    pattern = SparsePattern.from_coo(n, rows, cols)
    perm = rng.permutation(n)
    # permuted(perm) relabels variable perm[k] -> k; permuting the result by
    # the inverse permutation (argsort of perm) restores the original pattern
    once = pattern.permuted(perm)
    back = once.permuted(np.argsort(perm))
    assert back == pattern
