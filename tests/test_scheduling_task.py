"""Unit tests for the task-selection strategies (LIFO, FIFO, Algorithm 2)."""

import pytest

from repro.runtime.tasks import Task, TaskKind
from repro.scheduling import (
    FifoTaskSelector,
    LifoTaskSelector,
    MemoryAwareTaskSelector,
    TaskSelectionContext,
    get_strategy,
)


def task(node, memory_cost, in_subtree=-1, kind=TaskKind.TYPE1):
    return Task(kind=kind, node=node, proc=0, flops=1.0, memory_cost=memory_cost, in_subtree=in_subtree)


def ctx(pool, *, current_memory=0.0, current_subtree=-1, subtree_peak=0.0, observed_peak=0.0):
    return TaskSelectionContext(
        proc=0,
        pool=pool,
        current_memory=current_memory,
        current_subtree=current_subtree,
        current_subtree_peak=subtree_peak,
        observed_peak=observed_peak,
    )


class TestLifoFifo:
    def test_lifo_takes_top(self):
        pool = [task(1, 10), task(2, 10), task(3, 10)]
        assert LifoTaskSelector().select(ctx(pool)) == 2

    def test_fifo_takes_bottom(self):
        pool = [task(1, 10), task(2, 10)]
        assert FifoTaskSelector().select(ctx(pool)) == 0

    def test_empty_pool_raises(self):
        with pytest.raises(ValueError):
            LifoTaskSelector().select(ctx([]))
        with pytest.raises(ValueError):
            FifoTaskSelector().select(ctx([]))
        with pytest.raises(ValueError):
            MemoryAwareTaskSelector().select(ctx([]))


class TestAlgorithm2:
    def test_subtree_top_always_taken(self):
        """Rule 1: the top of the pool belongs to the current subtree."""
        pool = [task(1, 10**9, in_subtree=-1), task(2, 10**9, in_subtree=7)]
        choice = MemoryAwareTaskSelector().select(
            ctx(pool, current_subtree=7, subtree_peak=100, observed_peak=1)
        )
        assert choice == 1

    def test_large_upper_task_taken_when_it_fits(self):
        """Rule 2: an upper-layer task is taken if it does not raise the peak."""
        pool = [task(1, 50), task(2, 100)]
        choice = MemoryAwareTaskSelector().select(
            ctx(pool, current_memory=10, observed_peak=1000)
        )
        assert choice == 1  # LIFO behaviour preserved when memory is comfortable

    def test_large_upper_task_delayed(self):
        """The Figure 8 situation: the big type-2 node is delayed, a subtree task is taken."""
        pool = [
            task(1, 500, in_subtree=3),
            task(2, 50_000, in_subtree=-1, kind=TaskKind.TYPE2_MASTER),
        ]
        choice = MemoryAwareTaskSelector().select(
            ctx(pool, current_memory=8000, current_subtree=3, subtree_peak=6000, observed_peak=20_000)
        )
        assert pool[choice].node == 1

    def test_scan_skips_to_fitting_task(self):
        pool = [task(1, 10), task(2, 10**6), task(3, 10**6)]
        choice = MemoryAwareTaskSelector().select(
            ctx(pool, current_memory=0, observed_peak=100)
        )
        assert pool[choice].node == 1

    def test_fallback_to_top_when_nothing_fits(self):
        pool = [task(1, 10**6), task(2, 10**6)]
        choice = MemoryAwareTaskSelector().select(ctx(pool, current_memory=0, observed_peak=10))
        assert choice == len(pool) - 1

    def test_subtree_task_taken_during_scan(self):
        # nothing fits under the peak, but a subtree task is encountered first
        pool = [task(1, 10**6, in_subtree=-1), task(2, 10**6, in_subtree=4), task(3, 10**6, in_subtree=-1)]
        choice = MemoryAwareTaskSelector().select(ctx(pool, current_memory=0, observed_peak=10))
        assert pool[choice].node == 2

    def test_subtree_peak_counts_towards_current_memory(self):
        pool = [task(1, 100, in_subtree=-1)]
        # without the subtree peak the task fits (100 + 50 <= 200); with the
        # peak it does not (100 + 50 + 500 > 200) and falls back to the top
        fits = MemoryAwareTaskSelector().select(
            ctx(pool, current_memory=50, observed_peak=200)
        )
        assert fits == 0
        still_top = MemoryAwareTaskSelector().select(
            ctx(pool, current_memory=50, current_subtree=9, subtree_peak=500, observed_peak=200)
        )
        assert still_top == 0  # fallback is also index 0 here (single entry)


class TestPresets:
    def test_all_presets_build(self):
        from repro.scheduling import STRATEGIES

        for name in STRATEGIES:
            slave, task_sel = get_strategy(name).build()
            assert hasattr(slave, "select")
            assert hasattr(task_sel, "select")

    def test_get_strategy_unknown(self):
        with pytest.raises(ValueError):
            get_strategy("does-not-exist")

    def test_get_strategy_case_insensitive(self):
        assert get_strategy("MEMORY-FULL").name == "memory-full"

    def test_baseline_is_lifo_workload(self):
        slave, task_sel = get_strategy("mumps-workload").build()
        assert isinstance(task_sel, LifoTaskSelector)
        assert type(slave).__name__ == "WorkloadSlaveSelector"

    def test_memory_full_is_algorithm_1_plus_2(self):
        slave, task_sel = get_strategy("memory-full").build()
        assert isinstance(task_sel, MemoryAwareTaskSelector)
        assert type(slave).__name__ == "MemorySlaveSelector"
        assert slave.use_predictions is True

    def test_memory_basic_has_no_predictions(self):
        slave, _ = get_strategy("memory-basic").build()
        assert slave.use_predictions is False
