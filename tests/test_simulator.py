"""Tests for the discrete-event simulator of the parallel factorization."""

import numpy as np
import pytest

from repro.mapping import compute_mapping
from repro.ordering import compute_ordering
from repro.runtime import FactorizationSimulator, SimulationConfig
from repro.scheduling import get_strategy
from repro.analysis import sequential_stack_peak
from repro.symbolic import build_assembly_tree


def run_sim(tree, nprocs=4, strategy="mumps-workload", mapping=None, **cfg_kwargs):
    defaults = dict(
        nprocs=nprocs,
        type2_front_threshold=40,
        type2_cb_threshold=8,
        type3_front_threshold=80,
    )
    defaults.update(cfg_kwargs)
    config = SimulationConfig(**defaults)
    slave, task = get_strategy(strategy).build()
    sim = FactorizationSimulator(
        tree,
        config=config,
        mapping=mapping,
        slave_selector=slave,
        task_selector=task,
        strategy_name=strategy,
    )
    return sim.run()


class TestBasicCorrectness:
    def test_all_strategies_complete(self, medium_tree):
        for strategy in ("mumps-workload", "memory-basic", "memory-slave", "memory-task", "memory-full", "hybrid"):
            result = run_sim(medium_tree, strategy=strategy)
            assert result.nodes == medium_tree.nnodes
            assert result.total_time > 0

    def test_factor_entries_conserved(self, medium_tree):
        """Whatever the strategy, the factors produced must equal the tree's factors."""
        for strategy in ("mumps-workload", "memory-full"):
            result = run_sim(medium_tree, strategy=strategy)
            assert result.total_factor_entries == pytest.approx(medium_tree.total_factor_entries())

    def test_factor_entries_conserved_unsym(self, unsym_tree):
        result = run_sim(unsym_tree, strategy="memory-full")
        assert result.total_factor_entries == pytest.approx(unsym_tree.total_factor_entries())

    def test_peaks_positive_and_bounded(self, medium_tree):
        result = run_sim(medium_tree)
        assert result.max_peak_stack > 0
        assert result.per_proc_peak_stack.shape == (4,)
        # no processor can ever exceed the whole problem's working set
        upper = sum(medium_tree.front_entries(i) for i in range(medium_tree.nnodes))
        assert result.max_peak_stack <= upper

    def test_single_processor_close_to_sequential(self, medium_tree):
        """On one processor the simulation degenerates to the sequential traversal."""
        result = run_sim(medium_tree, nprocs=1)
        seq_peak = sequential_stack_peak(medium_tree, child_order="natural")
        seq_peak_liu = sequential_stack_peak(medium_tree, child_order="liu")
        assert result.per_proc_peak_stack[0] >= min(seq_peak, seq_peak_liu) * 0.5
        assert result.per_proc_peak_stack[0] <= max(seq_peak, seq_peak_liu) * 1.5
        assert result.total_factor_entries == pytest.approx(medium_tree.total_factor_entries())

    def test_deterministic(self, medium_tree):
        a = run_sim(medium_tree, strategy="memory-full")
        b = run_sim(medium_tree, strategy="memory-full")
        assert np.array_equal(a.per_proc_peak_stack, b.per_proc_peak_stack)
        assert a.total_time == b.total_time
        assert a.message_counts == b.message_counts

    def test_cannot_run_twice(self, medium_tree):
        config = SimulationConfig(nprocs=2, type2_front_threshold=40, type2_cb_threshold=8)
        slave, task = get_strategy("mumps-workload").build()
        sim = FactorizationSimulator(medium_tree, config=config, slave_selector=slave, task_selector=task)
        sim.run()
        with pytest.raises(RuntimeError):
            sim.run()

    def test_mapping_nprocs_mismatch(self, medium_tree, medium_mapping):
        config = SimulationConfig(nprocs=8)
        slave, task = get_strategy("mumps-workload").build()
        with pytest.raises(ValueError):
            FactorizationSimulator(
                medium_tree, config=config, mapping=medium_mapping, slave_selector=slave, task_selector=task
            )

    def test_single_node_tree(self):
        from repro.symbolic import AssemblyTree

        tree = AssemblyTree([5], [5], [-1], symmetric=True, nvars=5)
        result = run_sim(tree, nprocs=2)
        assert result.total_factor_entries == pytest.approx(tree.total_factor_entries())

    def test_handcrafted_chain(self, chain_tree):
        result = run_sim(chain_tree, nprocs=2)
        assert result.total_factor_entries == pytest.approx(chain_tree.total_factor_entries())


class TestBehaviours:
    def test_messages_emitted(self, medium_tree):
        result = run_sim(medium_tree)
        assert result.message_counts.get("memory", 0) > 0
        assert result.message_counts.get("load", 0) > 0

    def test_slave_selections_happen(self, medium_tree, medium_mapping):
        from repro.mapping import NodeType

        result = run_sim(medium_tree, mapping=medium_mapping)
        ntype2 = len(medium_mapping.nodes_of_type(NodeType.TYPE2))
        assert result.slave_selections == ntype2

    def test_traces_recorded_when_requested(self, medium_tree):
        result = run_sim(medium_tree, track_traces=True)
        assert result.trace is not None
        assert result.trace.nprocs == 4
        assert result.trace.peak_stack(int(np.argmax(result.per_proc_peak_stack))) == pytest.approx(
            result.max_peak_stack
        )
        grid, samples = result.trace.sampled(0, nsamples=50)
        assert grid.shape == (50,) and samples.shape == (50,)
        assert isinstance(result.trace.ascii_sparkline(0), str)

    def test_no_traces_by_default(self, medium_tree):
        assert run_sim(medium_tree).trace is None

    def test_zero_latency_runs(self, medium_tree):
        result = run_sim(medium_tree, latency=0.0, memory_message_latency=0.0)
        assert result.total_factor_entries == pytest.approx(medium_tree.total_factor_entries())

    def test_more_processors_do_not_slow_down(self, medium_tree):
        t2 = run_sim(medium_tree, nprocs=2).total_time
        t8 = run_sim(medium_tree, nprocs=8).total_time
        # parallel efficiency may be poor, but more processors should not make
        # the simulated factorization dramatically slower
        assert t8 <= 2.0 * t2

    def test_memory_strategy_not_worse_than_baseline_by_much(self, medium_tree):
        """The memory-based strategy should never blow the peak up dramatically."""
        base = run_sim(medium_tree, strategy="mumps-workload").max_peak_stack
        mem = run_sim(medium_tree, strategy="memory-full").max_peak_stack
        assert mem <= 1.5 * base

    def test_summary_fields(self, medium_tree):
        result = run_sim(medium_tree)
        summary = result.summary()
        for key in ("max_peak_stack", "avg_peak_stack", "total_time", "messages"):
            assert key in summary
        assert result.peak_imbalance >= 1.0

    def test_per_proc_tasks_cover_tree(self, medium_tree):
        result = run_sim(medium_tree)
        # every node triggers at least one task completion; type-2/root nodes more
        assert result.per_proc_tasks.sum() >= medium_tree.nnodes


class TestSplitInteraction:
    def test_split_tree_simulates_and_conserves(self, unsym_tree):
        from repro.symbolic import split_large_masters

        threshold = max(int(max(unsym_tree.master_entries(i) for i in range(unsym_tree.nnodes)) // 2), 10)
        split_tree, report = split_large_masters(unsym_tree, threshold)
        result = run_sim(split_tree, strategy="memory-full")
        assert result.total_factor_entries == pytest.approx(unsym_tree.total_factor_entries())

    def test_split_reduces_largest_activation(self, unsym_tree):
        from repro.symbolic import split_large_masters

        biggest = max(unsym_tree.master_entries(i) for i in range(unsym_tree.nnodes))
        split_tree, _ = split_large_masters(unsym_tree, max(biggest // 3, 10))
        new_biggest = max(split_tree.master_entries(i) for i in range(split_tree.nnodes))
        assert new_biggest <= biggest
