"""Bench history: append-only run trajectory and its CLI listing."""

from __future__ import annotations

import json

import pytest

from repro.bench.cli import main as bench_main
from repro.bench.history import BenchHistory, HistoryPoint, default_history_dir
from repro.bench.model import BenchCase, BenchResult, BenchRun


def _run(timestamp: str, *, host: str = "ci", seconds=(0.2, 0.1), error=None) -> BenchRun:
    result = BenchResult(
        case=BenchCase(name="full_sweep", suite="pipeline", params=(("problem", "XENON2"),)),
        seconds=list(seconds),
        warmup=1,
        metrics={"cases": 4.0},
        error=error,
    )
    return BenchRun(host=host, timestamp=timestamp, results=[result])


class TestBenchHistory:
    def test_append_writes_file_then_manifest_line(self, tmp_path):
        history = BenchHistory(tmp_path)
        path = history.append(_run("2026-08-08T10:00:00+00:00"))
        assert path.exists()
        lines = history.manifest_path.read_text().splitlines()
        assert len(lines) == 1
        event = json.loads(lines[0])
        assert event["op"] == "run"
        assert event["file"] == path.name
        assert event["cases"] == 1
        assert len(history) == 1

    def test_same_stamp_twice_gets_distinct_files(self, tmp_path):
        history = BenchHistory(tmp_path)
        a = history.append(_run("2026-08-08T10:00:00+00:00"))
        b = history.append(_run("2026-08-08T10:00:00+00:00"))
        assert a != b
        assert len(history) == 2
        assert len({name for name, _ in history.runs()}) == 2

    def test_trajectory_in_append_order(self, tmp_path):
        history = BenchHistory(tmp_path)
        history.append(_run("2026-08-07T10:00:00+00:00", seconds=(0.4, 0.3)))
        history.append(_run("2026-08-08T10:00:00+00:00", seconds=(0.2, 0.1)))
        points = history.trajectory("pipeline/full_sweep")
        assert [p.timestamp for p in points] == [
            "2026-08-07T10:00:00+00:00",
            "2026-08-08T10:00:00+00:00",
        ]
        assert [p.best for p in points] == [0.3, 0.1]
        assert all(isinstance(p, HistoryPoint) for p in points)
        assert history.trajectory("nope/missing") == []
        assert history.keys() == ["pipeline/full_sweep"]

    def test_torn_manifest_line_is_skipped(self, tmp_path):
        history = BenchHistory(tmp_path)
        history.append(_run("2026-08-08T10:00:00+00:00"))
        with open(history.manifest_path, "ab") as fh:
            fh.write(b'{"op":"run","file":"run-torn')  # crash mid-append
        assert len(history) == 1
        assert len(list(history.runs())) == 1

    def test_manifest_line_without_file_is_invisible(self, tmp_path):
        history = BenchHistory(tmp_path)
        history.append(_run("2026-08-08T10:00:00+00:00"))
        with open(history.manifest_path, "ab") as fh:
            fh.write(b'{"op":"run","file":"run-ghost.json"}\n')
        assert len(history) == 2  # the manifest admits it...
        assert len(list(history.runs())) == 1  # ...but replay skips the missing file

    def test_missing_directory_is_empty(self, tmp_path):
        history = BenchHistory(tmp_path / "nowhere")
        assert len(history) == 0
        assert history.trajectory() == []
        assert history.keys() == []

    def test_error_result_is_reported(self, tmp_path):
        history = BenchHistory(tmp_path)
        history.append(_run("2026-08-08T10:00:00+00:00", seconds=(), error="boom"))
        (point,) = history.trajectory()
        assert point.error == "boom"
        assert point.repeats == 0

    def test_default_dir_is_under_baselines(self):
        assert default_history_dir().endswith("history")
        assert "baselines" in default_history_dir()


class TestCrashReplayParity:
    """A crash at any point of :meth:`BenchHistory.append` is survivable."""

    def test_torn_trailing_line_then_append_continues(self, tmp_path):
        # crash mid-manifest-append: the torn line is ignored and the next
        # append lands after it without corrupting the replay
        history = BenchHistory(tmp_path)
        history.append(_run("2026-08-07T10:00:00+00:00"))
        with open(history.manifest_path, "ab") as fh:
            fh.write(b'{"op":"run","fi')
        history.append(_run("2026-08-08T10:00:00+00:00"))
        assert len(history) == 2
        assert len(list(history.runs())) == 2
        assert history.replay_skipped == 0

    def test_orphan_run_file_adopted(self, tmp_path):
        # crash between the two append steps: the run file exists, its
        # manifest line does not — adopt_orphans repairs the manifest
        history = BenchHistory(tmp_path)
        history.append(_run("2026-08-07T10:00:00+00:00"))
        orphan = _run("2026-08-08T10:00:00+00:00", seconds=(0.9, 0.8))
        orphan.save(str(tmp_path / "run-orphaned-ci.json"))
        assert len(history) == 1  # invisible until adopted

        adopted = history.adopt_orphans()
        assert adopted == ["run-orphaned-ci.json"]
        assert len(history) == 2
        assert [p.best for p in history.trajectory("pipeline/full_sweep")] == [0.1, 0.8]
        # idempotent: a second repair adopts nothing and changes nothing
        before = history.manifest_path.read_bytes()
        assert history.adopt_orphans() == []
        assert history.manifest_path.read_bytes() == before

    def test_unloadable_files_are_counted_not_adopted(self, tmp_path):
        history = BenchHistory(tmp_path)
        history.append(_run("2026-08-07T10:00:00+00:00"))
        # a manifested file whose contents were later corrupted...
        (manifested,) = [name for name, _ in history.runs()]
        (tmp_path / manifested).write_text("{broken json")
        # ...and an orphan that never finished writing
        (tmp_path / "run-torn-ci.json").write_text('{"host": "ci"')

        assert history.adopt_orphans() == []
        assert history.replay_skipped == 1  # the unloadable orphan
        assert list(history.runs()) == []
        assert history.replay_skipped == 1  # the corrupted manifested file
        assert len(history) == 1  # the manifest line itself survives

    def test_replay_skipped_resets_per_pass(self, tmp_path):
        history = BenchHistory(tmp_path)
        history.append(_run("2026-08-07T10:00:00+00:00"))
        with open(history.manifest_path, "ab") as fh:
            fh.write(b'{"op":"run","file":"run-ghost.json"}\n')
        assert len(list(history.runs())) == 1
        assert history.replay_skipped == 1
        assert len(list(history.runs())) == 1
        assert history.replay_skipped == 1  # counted fresh, not accumulated


class TestBenchHistoryCli:
    @pytest.fixture()
    def populated(self, tmp_path):
        history = BenchHistory(tmp_path)
        history.append(_run("2026-08-07T10:00:00+00:00", seconds=(0.4, 0.3)))
        history.append(_run("2026-08-08T10:00:00+00:00", seconds=(0.2, 0.1)))
        return tmp_path

    def test_history_md_listing(self, populated, capsys):
        assert bench_main(["history", "--dir", str(populated)]) == 0
        out = capsys.readouterr().out
        assert "pipeline/full_sweep" in out
        assert "2 point(s) across 2 recorded run(s)" in out

    def test_history_json_with_case_and_limit(self, populated, capsys):
        code = bench_main(
            ["history", "--dir", str(populated), "--case", "pipeline/full_sweep",
             "--limit", "1", "--format", "json"]
        )
        assert code == 0
        points = json.loads(capsys.readouterr().out)
        assert len(points) == 1
        assert points[0]["timestamp"] == "2026-08-08T10:00:00+00:00"
        assert points[0]["best"] == 0.1

    def test_history_bad_limit_errors(self, populated):
        with pytest.raises(SystemExit):
            bench_main(["history", "--dir", str(populated), "--limit", "0"])

    def test_run_save_appends_history(self, tmp_path, capsys):
        code = bench_main(
            ["run", "--suite", "results", "--scale", "0.05", "--repeats", "1",
             "--warmup", "0", "--save", str(tmp_path / "run.json"),
             "--history", str(tmp_path / "history"), "--format", "json"]
        )
        assert code == 0
        history = BenchHistory(tmp_path / "history")
        assert len(history) == 1
        assert "appended run to bench history" in capsys.readouterr().err

    def test_run_save_no_history_skips_append(self, tmp_path, capsys):
        code = bench_main(
            ["run", "--suite", "results", "--scale", "0.05", "--repeats", "1",
             "--warmup", "0", "--save", str(tmp_path / "run.json"),
             "--no-history", "--format", "json"]
        )
        assert code == 0
        assert not (tmp_path / "history").exists()
        assert "appended run to bench history" not in capsys.readouterr().err
