"""Tests for the staged pipeline engine, artifact stores and sweep executor."""

import numpy as np
import pytest

from repro.pipeline import (
    AnalysisPipeline,
    CaseSpec,
    DiskStore,
    MemoryStore,
    PipelineSettings,
    SweepExecutor,
    TieredStore,
    content_key,
)


# --------------------------------------------------------------------------- #
# content keys
# --------------------------------------------------------------------------- #
class TestContentKey:
    def test_deterministic(self):
        a = content_key("tree", "1", {"x": 1, "y": 2.5}, ("pattern-abc",))
        b = content_key("tree", "1", {"y": 2.5, "x": 1}, ("pattern-abc",))
        assert a == b  # param order must not matter
        assert a.startswith("tree-")

    def test_sensitive_to_everything(self):
        base = content_key("tree", "1", {"x": 1}, ("up",))
        assert content_key("tree", "2", {"x": 1}, ("up",)) != base
        assert content_key("tree", "1", {"x": 2}, ("up",)) != base
        assert content_key("tree", "1", {"x": 1}, ("other",)) != base
        assert content_key("split", "1", {"x": 1}, ("up",)) != base


# --------------------------------------------------------------------------- #
# stores
# --------------------------------------------------------------------------- #
class TestStores:
    def test_memory_store(self):
        store = MemoryStore()
        assert "k" not in store
        store.put("k", [1, 2])
        assert "k" in store
        assert store.get("k") == [1, 2]
        with pytest.raises(KeyError):
            store.get("missing")

    def test_disk_store_roundtrip(self, tmp_path):
        store = DiskStore(tmp_path)
        payload = {"arr": np.arange(5), "label": "x"}
        store.put("tree-abc", payload)
        assert (tmp_path / "tree-abc.pkl").exists()
        fresh = DiskStore(tmp_path)
        loaded = fresh.get("tree-abc")
        assert loaded["label"] == "x"
        assert np.array_equal(loaded["arr"], payload["arr"])
        assert list(fresh.keys()) == ["tree-abc"]

    def test_tiered_store_persist_flag(self, tmp_path):
        store = TieredStore(DiskStore(tmp_path))
        store.put("cheap-1", "a", persist=False)
        store.put("dear-1", "b", persist=True)
        assert not (tmp_path / "cheap-1.pkl").exists()
        assert (tmp_path / "dear-1.pkl").exists()
        # both visible through the memory tier
        assert store.get("cheap-1") == "a"
        assert store.get("dear-1") == "b"
        # a fresh tiered store only sees the persisted artifact
        fresh = TieredStore(DiskStore(tmp_path))
        assert "dear-1" in fresh and "cheap-1" not in fresh

    def test_tiered_store_promotes_disk_hits(self, tmp_path):
        DiskStore(tmp_path).put("k-1", 42)
        store = TieredStore(DiskStore(tmp_path))
        assert store.get("k-1") == 42
        assert "k-1" in store.memory

    def test_disk_store_writes_are_atomic(self, tmp_path):
        """A put never leaves a temp file behind, and readers racing writers
        always see a complete payload (write-temp-then-``os.replace``)."""
        import threading

        store = DiskStore(tmp_path, durable=True)
        store.put("hot", {"gen": -1, "blob": "x" * 4096})
        errors: list[BaseException] = []

        def writer() -> None:
            try:
                for gen in range(200):
                    store.put("hot", {"gen": gen, "blob": "x" * 4096})
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        def reader() -> None:
            try:
                for _ in range(200):
                    payload = store.get("hot")  # never torn, never missing
                    assert len(payload["blob"]) == 4096
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=writer), threading.Thread(target=reader)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        leftovers = [p.name for p in tmp_path.iterdir() if not p.name.endswith(".pkl")]
        assert leftovers == []

    def test_disk_store_delete_and_size(self, tmp_path):
        store = DiskStore(tmp_path)
        store.put("k", "x" * 100)
        assert store.size_bytes("k") == store.path("k").stat().st_size > 0
        assert store.delete("k") is True
        assert store.delete("k") is False  # already gone: no error
        assert store.size_bytes("k") == 0
        assert "k" not in store


# --------------------------------------------------------------------------- #
# engine: cache-key invalidation
# --------------------------------------------------------------------------- #
SPEC = CaseSpec("XENON2", "metis", "memory-full")


def engine(**kwargs) -> AnalysisPipeline:
    kwargs.setdefault("nprocs", 4)
    kwargs.setdefault("scale", 0.2)
    return AnalysisPipeline(**kwargs)


class TestCacheKeys:
    def test_keys_stable_across_engines(self):
        a, b = engine(), engine()
        for stage in ("pattern", "ordering", "tree", "split", "mapping", "simulate"):
            assert a.stage_key(stage, SPEC) == b.stage_key(stage, SPEC)

    def test_scale_invalidates_from_pattern_down(self):
        a, b = engine(scale=0.2), engine(scale=0.25)
        for stage in ("pattern", "ordering", "tree", "split", "mapping", "simulate"):
            assert a.stage_key(stage, SPEC) != b.stage_key(stage, SPEC)

    def test_ordering_invalidates_downstream_only(self):
        other = CaseSpec("XENON2", "amd", "memory-full")
        e = engine()
        assert e.stage_key("pattern", SPEC) == e.stage_key("pattern", other)
        for stage in ("ordering", "tree", "split", "mapping", "simulate"):
            assert e.stage_key(stage, SPEC) != e.stage_key(stage, other)

    def test_amalgamation_invalidates_tree_down(self):
        a, b = engine(), engine(amalgamation_relax=0.3)
        assert a.stage_key("pattern", SPEC) == b.stage_key("pattern", SPEC)
        assert a.stage_key("ordering", SPEC) == b.stage_key("ordering", SPEC)
        for stage in ("tree", "split", "mapping", "simulate"):
            assert a.stage_key(stage, SPEC) != b.stage_key(stage, SPEC)

    def test_nprocs_invalidates_mapping_down(self):
        a, b = engine(nprocs=4), engine(nprocs=8)
        for stage in ("pattern", "ordering", "tree", "split"):
            assert a.stage_key(stage, SPEC) == b.stage_key(stage, SPEC)
        for stage in ("mapping", "simulate"):
            assert a.stage_key(stage, SPEC) != b.stage_key(stage, SPEC)

    def test_strategy_invalidates_simulation_only(self):
        other = CaseSpec("XENON2", "metis", "mumps-workload")
        e = engine()
        for stage in ("pattern", "ordering", "tree", "split", "mapping"):
            assert e.stage_key(stage, SPEC) == e.stage_key(stage, other)
        assert e.stage_key("simulate", SPEC) != e.stage_key("simulate", other)

    def test_split_invalidates_split_down(self):
        other = CaseSpec("XENON2", "metis", "memory-full", split=True)
        e = engine()
        for stage in ("pattern", "ordering", "tree"):
            assert e.stage_key(stage, SPEC) == e.stage_key(stage, other)
        for stage in ("split", "mapping", "simulate"):
            assert e.stage_key(stage, SPEC) != e.stage_key(stage, other)


# --------------------------------------------------------------------------- #
# engine: artifact reuse and disk round-trips
# --------------------------------------------------------------------------- #
class TestEngine:
    def test_artifacts_cached_in_memory(self):
        e = engine()
        assert e.pattern("XENON2") is e.pattern("XENON2")
        assert e.analysis("XENON2", "metis") is e.analysis("XENON2", "metis")
        r1, r2 = e.run_case(SPEC), e.run_case(SPEC)
        assert r1.max_peak_stack == r2.max_peak_stack

    def test_strategies_share_analysis(self):
        e = engine()
        a = e.run_case(CaseSpec("XENON2", "metis", "mumps-workload"))
        b = e.run_case(CaseSpec("XENON2", "metis", "memory-full"))
        assert a.total_factor_entries == pytest.approx(b.total_factor_entries)

    def test_disk_roundtrip_through_engine(self, tmp_path):
        first = engine(cache_dir=tmp_path)
        products = first.analysis("XENON2", "amd")
        assert list(tmp_path.glob("analysis-*.pkl"))
        assert list(tmp_path.glob("ordering-*.pkl"))
        # a fresh engine reads the bundle back instead of recomputing
        fresh = engine(cache_dir=tmp_path)
        again = fresh.analysis("XENON2", "amd")
        assert again.tree.nnodes == products.tree.nnodes
        assert np.array_equal(again.mapping.owner, products.mapping.owner)

    def test_disk_reload_simulates_identically(self, tmp_path):
        direct = engine().run_case(SPEC)
        engine(cache_dir=tmp_path).analysis(SPEC.problem, SPEC.ordering)
        reloaded = engine(cache_dir=tmp_path).run_case(SPEC)
        assert reloaded.max_peak_stack == direct.max_peak_stack
        assert reloaded.total_time == direct.total_time
        assert reloaded.messages == direct.messages

    def test_simulation_results_not_retained(self):
        # the simulate stage is cache=False: a long-lived engine must not
        # accumulate one SimulationResult per (case, config) key
        e = engine()
        first = e.simulate(SPEC)
        second = e.simulate(SPEC)
        assert first is not second
        assert first.max_peak_stack == second.max_peak_stack
        assert e.stage_key("simulate", SPEC) not in e.store
        traced = e.simulate(CaseSpec("XENON2", "metis", "memory-full", track_traces=True))
        assert traced.max_peak_stack == first.max_peak_stack

    def test_loaded_bundle_seeds_stage_artifacts(self, tmp_path):
        # an analysis bundle read from the disk tier must let the simulation
        # stage reuse the tree/mapping instead of recomputing them
        engine(cache_dir=tmp_path).analysis("XENON2", "metis")
        fresh = engine(cache_dir=tmp_path)
        products = fresh.analysis("XENON2", "metis")
        split_art = fresh.artifact("split", SPEC)
        assert split_art.tree is products.tree
        assert fresh.artifact("mapping", SPEC) is products.mapping

    def test_settings_roundtrip(self, tmp_path):
        e = engine(cache_dir=tmp_path, amalgamation_relax=0.2)
        clone = e.settings().build()
        assert clone.stage_key("simulate", SPEC) == e.stage_key("simulate", SPEC)
        assert clone.cache_dir == str(tmp_path)


# --------------------------------------------------------------------------- #
# sweep executor
# --------------------------------------------------------------------------- #
GRID = [
    CaseSpec(problem, ordering, strategy)
    for problem in ("XENON2",)
    for ordering in ("metis", "amd")
    for strategy in ("mumps-workload", "memory-full")
]


def assert_case_results_equal(a, b):
    assert (a.problem, a.ordering, a.strategy, a.split) == (b.problem, b.ordering, b.strategy, b.split)
    assert a.max_peak_stack == b.max_peak_stack
    assert a.avg_peak_stack == b.avg_peak_stack
    assert a.sum_peak_stack == b.sum_peak_stack
    assert a.total_time == b.total_time
    assert a.total_factor_entries == b.total_factor_entries
    assert np.array_equal(a.per_proc_peak_stack, b.per_proc_peak_stack)
    assert (a.nodes, a.nodes_split, a.messages, a.nprocs) == (b.nodes, b.nodes_split, b.messages, b.nprocs)


class TestSweepExecutor:
    def test_grouping(self):
        groups = SweepExecutor.group_by_analysis(GRID)
        assert len(groups) == 2  # one per (problem, ordering, split)
        for group in groups:
            signatures = {spec.analysis_signature() for _, spec in group}
            assert len(signatures) == 1
            assert len(group) == 2

    def test_rejects_bad_jobs(self):
        with pytest.raises(ValueError):
            SweepExecutor(engine(), jobs=0)

    def test_empty_sweep(self):
        assert SweepExecutor(engine(), jobs=2).run([]) == []

    def test_serial_progress_order(self):
        events = []
        executor = SweepExecutor(engine(), jobs=1, progress=events.append)
        executor.run(GRID)
        assert [e.done for e in events] == [1, 2, 3, 4]
        assert all(e.total == 4 for e in events)
        assert [e.spec for e in events] == GRID

    def test_parallel_matches_serial(self):
        serial = SweepExecutor(engine(), jobs=1).run(GRID)
        events = []
        parallel = SweepExecutor(engine(), jobs=2, progress=events.append).run(GRID)
        assert len(parallel) == len(serial) == 4
        for a, b in zip(serial, parallel):
            assert_case_results_equal(a, b)
        # one progress event per case, monotonically counting up
        assert sorted(e.done for e in events) == [1, 2, 3, 4]

    def test_parallel_through_runner_facade(self):
        from repro.experiments import ExperimentRunner

        serial = ExperimentRunner(nprocs=4, scale=0.2)
        parallel = ExperimentRunner(nprocs=4, scale=0.2, jobs=2)
        try:
            a = serial.sweep(["XENON2"], ["metis"], ["mumps-workload", "memory-full"])
            b = parallel.sweep(["XENON2"], ["metis"], ["mumps-workload", "memory-full"])
            for x, y in zip(a, b):
                assert_case_results_equal(x, y)
        finally:
            parallel.close()

    def test_pool_reused_across_runs(self):
        executor = SweepExecutor(engine(), jobs=2)
        with executor:
            first = executor.run(GRID[:2])
            pool = executor._pool
            assert pool is not None
            second = executor.run(GRID[2:])
            assert executor._pool is pool  # same long-lived workers
            assert len(first) == len(second) == 2
        assert executor._pool is None  # context exit shuts the pool down

    def test_close_idempotent(self):
        executor = SweepExecutor(engine(), jobs=2)
        executor.close()
        executor.close()

    def test_workers_honour_disabled_cache(self, tmp_path, monkeypatch):
        # cache_dir="" means "disk tier off" — workers must not fall back to
        # the REPRO_CACHE_DIR environment variable behind the driver's back
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        with SweepExecutor(engine(cache_dir=""), jobs=2) as executor:
            executor.run(GRID[:2])
        assert list(tmp_path.iterdir()) == []


class TestCaseSpec:
    def test_label_and_signature(self):
        spec = CaseSpec("PRE2", "amd", "memory-full", split=True)
        assert spec.label() == "PRE2/amd/memory-full+split"
        assert spec.analysis_signature() == ("PRE2", "amd", True)
        assert CaseSpec("PRE2", "amd", "mumps-workload", split=True).analysis_signature() == (
            "PRE2",
            "amd",
            True,
        )

    def test_settings_picklable(self):
        import pickle

        settings = PipelineSettings(nprocs=4, scale=0.2)
        clone = pickle.loads(pickle.dumps(settings))
        assert clone == settings
