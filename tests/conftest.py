"""Shared fixtures of the test suite.

Everything here is deliberately *small*: the unit tests exercise behaviours
and invariants, not performance, so grids of a few hundred unknowns and 4–8
simulated processors are enough and keep the whole suite fast.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mapping import compute_mapping
from repro.ordering import compute_ordering
from repro.runtime import SimulationConfig
from repro.sparse import SparsePattern, arrow_pattern, banded_pattern, grid_2d, grid_3d, random_pattern
from repro.symbolic import AssemblyTree, build_assembly_tree


@pytest.fixture(scope="session")
def small_grid() -> SparsePattern:
    """A 10×10 five-point grid (100 unknowns, symmetric)."""
    return grid_2d(10, 10)


@pytest.fixture(scope="session")
def medium_grid() -> SparsePattern:
    """An 8×8×8 seven-point grid (512 unknowns, symmetric)."""
    return grid_3d(8, 8, 8)


@pytest.fixture(scope="session")
def unsym_pattern() -> SparsePattern:
    """A small unsymmetric pattern with full structural diagonal."""
    return random_pattern(120, density=0.03, symmetric=False, seed=3)


@pytest.fixture(scope="session")
def band_pattern() -> SparsePattern:
    return banded_pattern(40, bandwidth=2)


@pytest.fixture(scope="session")
def small_tree(small_grid) -> AssemblyTree:
    """Assembly tree of the 10×10 grid under nested dissection."""
    perm = compute_ordering(small_grid, "metis")
    return build_assembly_tree(small_grid, perm)


@pytest.fixture(scope="session")
def medium_tree(medium_grid) -> AssemblyTree:
    """Assembly tree of the 8×8×8 grid under nested dissection."""
    perm = compute_ordering(medium_grid, "metis")
    return build_assembly_tree(medium_grid, perm)


@pytest.fixture(scope="session")
def unsym_tree(unsym_pattern) -> AssemblyTree:
    perm = compute_ordering(unsym_pattern, "amd")
    return build_assembly_tree(unsym_pattern, perm)


@pytest.fixture(scope="session")
def medium_mapping(medium_tree):
    """Static mapping of the medium tree over 4 processors."""
    return compute_mapping(
        medium_tree, 4, type2_front_threshold=40, type2_cb_threshold=8, type3_front_threshold=80
    )


@pytest.fixture()
def sim_config() -> SimulationConfig:
    """Simulation configuration used by most simulator tests (4 processors)."""
    return SimulationConfig(
        nprocs=4,
        type2_front_threshold=40,
        type2_cb_threshold=8,
        type3_front_threshold=80,
    )


@pytest.fixture(scope="session")
def chain_tree() -> AssemblyTree:
    """Hand-built path tree: 4 nodes, each the only child of the next."""
    npiv = [4, 3, 3, 5]
    nfront = [10, 9, 7, 5]
    parent = [1, 2, 3, -1]
    return AssemblyTree(npiv, nfront, parent, symmetric=True, nvars=15)


@pytest.fixture(scope="session")
def forked_tree() -> AssemblyTree:
    """Hand-built tree with two leaves feeding one root (Figure 1 shape)."""
    npiv = [2, 2, 2]
    nfront = [4, 4, 2]
    parent = [2, 2, -1]
    return AssemblyTree(npiv, nfront, parent, symmetric=True, nvars=6)
