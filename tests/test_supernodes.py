"""Tests for fundamental supernodes and relaxed amalgamation."""

import numpy as np
import pytest

from repro.sparse import banded_pattern, grid_2d
from repro.symbolic import column_counts, elimination_tree, postorder
from repro.symbolic.supernodes import Supernode, amalgamate, fundamental_supernodes


def _postordered_inputs(pattern):
    sym = pattern.symmetrized().with_diagonal()
    parent = elimination_tree(sym)
    post = postorder(parent)
    sym_post = sym.permuted(post)
    parent_post = elimination_tree(sym_post)
    counts = column_counts(sym_post, parent_post)
    return parent_post, counts


class TestFundamentalSupernodes:
    def test_band_matrix_single_supernode_chain(self):
        # tridiagonal: every column has count 2 except the last; columns chain
        parent, counts = _postordered_inputs(banded_pattern(8, bandwidth=1))
        membership, sns = fundamental_supernodes(parent, counts)
        # the whole matrix collapses into one fundamental supernode (dense band)
        assert len(sns) >= 1
        assert membership.shape == (8,)
        assert sorted(c for sn in sns for c in sn.columns) == list(range(8))

    def test_columns_partition(self):
        parent, counts = _postordered_inputs(grid_2d(6, 6))
        membership, sns = fundamental_supernodes(parent, counts)
        all_cols = sorted(c for sn in sns for c in sn.columns)
        assert all_cols == list(range(36))

    def test_membership_consistent(self):
        parent, counts = _postordered_inputs(grid_2d(5, 5))
        membership, sns = fundamental_supernodes(parent, counts)
        for s, sn in enumerate(sns):
            for c in sn.columns:
                assert membership[c] == s

    def test_supernode_front_geometry(self):
        parent, counts = _postordered_inputs(grid_2d(5, 5))
        _, sns = fundamental_supernodes(parent, counts)
        for sn in sns:
            assert sn.nfront >= sn.npiv >= 1
            assert sn.cb_order == sn.nfront - sn.npiv

    def test_parents_are_later_supernodes(self):
        parent, counts = _postordered_inputs(grid_2d(6, 4))
        _, sns = fundamental_supernodes(parent, counts)
        for s, sn in enumerate(sns):
            assert sn.parent == -1 or sn.parent > s

    def test_rejects_non_postordered(self):
        parent = np.array([-1, 0])  # parent[1] = 0 < 1
        with pytest.raises(ValueError):
            fundamental_supernodes(parent, np.array([2, 1]))

    def test_empty(self):
        membership, sns = fundamental_supernodes(np.empty(0, dtype=np.int64), np.empty(0, dtype=np.int64))
        assert len(sns) == 0 and membership.size == 0


class TestAmalgamation:
    def _chain(self, k=6, npiv=1, cb=3):
        """A chain of k supernodes, each with `npiv` pivots and cb rows of CB."""
        sns = []
        for i in range(k):
            sns.append(Supernode(columns=[i], nfront=npiv + cb, parent=(i + 1 if i + 1 < k else -1)))
        return sns

    def test_tiny_children_are_merged(self):
        sns = self._chain()
        merged, old_to_new = amalgamate(sns, min_pivots=4, relax=0.0)
        assert len(merged) < len(sns)
        assert old_to_new.shape == (len(sns),)
        assert all(0 <= int(x) < len(merged) for x in old_to_new)

    def test_zero_relax_keeps_fill_introducing_merge(self):
        # the child CB (15 rows) is strictly smaller than the parent front
        # (20), so merging would introduce zeros: forbidden at relax=0
        sns = [
            Supernode(columns=list(range(0, 10)), nfront=25, parent=1),
            Supernode(columns=list(range(10, 25)), nfront=20, parent=-1),
        ]
        merged, _ = amalgamate(sns, min_pivots=1, relax=0.0)
        assert len(merged) == 2

    def test_zero_relax_allows_fill_free_merge(self):
        # the child CB covers the whole parent front: merging costs nothing
        sns = [
            Supernode(columns=list(range(0, 10)), nfront=30, parent=1),
            Supernode(columns=list(range(10, 25)), nfront=20, parent=-1),
        ]
        merged, _ = amalgamate(sns, min_pivots=1, relax=0.0)
        assert len(merged) == 1

    def test_full_relax_collapses_chain(self):
        sns = self._chain(k=5)
        merged, _ = amalgamate(sns, min_pivots=1, relax=10.0)
        assert len(merged) == 1
        assert merged[0].npiv == 5

    def test_pivots_conserved(self):
        sns = self._chain(k=7)
        merged, _ = amalgamate(sns, min_pivots=3, relax=0.1)
        assert sum(sn.npiv for sn in merged) == 7
        assert sorted(c for sn in merged for c in sn.columns) == list(range(7))

    def test_max_front_forbids_merge(self):
        sns = self._chain(k=4, npiv=2, cb=4)
        merged, _ = amalgamate(sns, min_pivots=8, relax=10.0, max_front=6)
        # merging would push fronts beyond 6, so nothing merges
        assert len(merged) == 4

    def test_merged_front_arithmetic(self):
        # child (npiv=2, front=6) merged into parent (npiv=3, front=4):
        # merged front must be parent front + child npiv = 6
        sns = [
            Supernode(columns=[0, 1], nfront=6, parent=1),
            Supernode(columns=[2, 3, 4], nfront=4, parent=-1),
        ]
        merged, _ = amalgamate(sns, min_pivots=3, relax=10.0)
        assert len(merged) == 1
        assert merged[0].nfront == 6
        assert merged[0].npiv == 5

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            amalgamate([], min_pivots=0)
        with pytest.raises(ValueError):
            amalgamate([], relax=-1)

    def test_postorder_preserved(self):
        parent, counts = _postordered_inputs(grid_2d(6, 6))
        _, sns = fundamental_supernodes(parent, counts)
        merged, _ = amalgamate(sns)
        for s, sn in enumerate(merged):
            assert sn.parent == -1 or sn.parent > s
