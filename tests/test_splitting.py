"""Tests for the static splitting of large type-2 masters."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.ordering import compute_ordering
from repro.symbolic import AssemblyTree, build_assembly_tree, split_large_masters
from repro.symbolic.splitting import chain_pivot_counts


class TestChainPivotCounts:
    def test_no_split_needed(self):
        assert chain_pivot_counts(4, 10, 10_000, False) == [4]

    def test_counts_sum_to_npiv(self):
        counts = chain_pivot_counts(50, 120, 800, False)
        assert sum(counts) == 50
        assert all(c >= 1 for c in counts)

    def test_each_piece_respects_threshold(self):
        npiv, nfront, threshold = 60, 150, 2000
        counts = chain_pivot_counts(npiv, nfront, threshold, False)
        nf = nfront
        for c in counts:
            assert c * nf <= threshold or c == 1
            nf -= c

    def test_symmetric_threshold(self):
        counts = chain_pivot_counts(40, 100, 300, True)
        assert sum(counts) == 40
        nf = 100
        for c in counts:
            assert c * (c + 1) // 2 <= 300 or c == 1
            nf -= c

    def test_invalid(self):
        with pytest.raises(ValueError):
            chain_pivot_counts(3, 10, 0, False)
        with pytest.raises(ValueError):
            chain_pivot_counts(0, 10, 100, False)
        with pytest.raises(ValueError):
            chain_pivot_counts(11, 10, 100, False)


class TestSplitLargeMasters:
    def _big_tree(self):
        # unsymmetric tree with one huge node (npiv 60, front 100) and a small child
        return AssemblyTree(
            [5, 60, 4],
            [20, 100, 44],
            [1, 2, -1],
            symmetric=False,
            nvars=69,
            variables=[tuple(range(5)), tuple(range(5, 65)), tuple(range(65, 69))],
        )

    def test_split_reduces_master_size(self):
        tree = self._big_tree()
        new, report = split_large_masters(tree, 1500)
        assert report.nodes_split >= 1
        assert report.largest_master_after <= 1500
        assert report.largest_master_before > 1500

    def test_split_preserves_factor_entries(self):
        tree = self._big_tree()
        new, _ = split_large_masters(tree, 1500)
        assert new.total_factor_entries() == tree.total_factor_entries()

    def test_split_preserves_pivot_count_and_variables(self):
        tree = self._big_tree()
        new, _ = split_large_masters(tree, 1500)
        assert new.npiv.sum() == tree.npiv.sum()
        assert new.variables is not None
        assert sorted(v for vs in new.variables for v in vs) == list(range(69))

    def test_split_preserves_root_cb(self):
        tree = self._big_tree()
        new, _ = split_large_masters(tree, 1500)
        assert sum(new.cb_entries(r) for r in new.roots) == sum(tree.cb_entries(r) for r in tree.roots)

    def test_split_tree_is_valid(self):
        tree = self._big_tree()
        new, _ = split_large_masters(tree, 1500)
        new.validate()

    def test_chain_structure(self):
        tree = AssemblyTree([40], [50], [-1], symmetric=False, nvars=40)
        new, report = split_large_masters(tree, 500)
        assert report.pieces_created >= 1
        # the chain pieces each have exactly one child except the bottom one
        child_counts = [len(new.children(i)) for i in range(new.nnodes)]
        assert sorted(child_counts) == [0] + [1] * (new.nnodes - 1)

    def test_no_split_below_threshold(self, medium_tree):
        new, report = split_large_masters(medium_tree, 10**9)
        assert report.nodes_split == 0
        assert new.nnodes == medium_tree.nnodes

    def test_only_candidates_filter(self):
        tree = self._big_tree()
        new, report = split_large_masters(tree, 1500, only_candidates=set())
        assert report.nodes_split == 0

    def test_report_flags(self):
        tree = self._big_tree()
        _, report = split_large_masters(tree, 1500)
        assert report.any_split
        assert report.nodes_after == report.nodes_before + report.pieces_created

    def test_split_on_real_tree_preserves_everything(self, unsym_pattern):
        tree = build_assembly_tree(unsym_pattern, compute_ordering(unsym_pattern, "amd"))
        threshold = max(int(max(tree.master_entries(i) for i in range(tree.nnodes)) // 3), 10)
        new, report = split_large_masters(tree, threshold)
        assert new.total_factor_entries() == tree.total_factor_entries()
        assert new.npiv.sum() == tree.npiv.sum()
        new.validate()


@settings(max_examples=40, deadline=None)
@given(
    npiv=st.integers(min_value=1, max_value=80),
    extra=st.integers(min_value=0, max_value=60),
    threshold=st.integers(min_value=10, max_value=3000),
    sym=st.booleans(),
)
def test_property_chain_counts_partition_pivots(npiv, extra, threshold, sym):
    counts = chain_pivot_counts(npiv, npiv + extra, threshold, sym)
    assert sum(counts) == npiv
    assert all(c >= 1 for c in counts)


@settings(max_examples=25, deadline=None)
@given(
    npiv=st.integers(min_value=2, max_value=60),
    extra=st.integers(min_value=0, max_value=40),
    threshold=st.integers(min_value=50, max_value=2000),
)
def test_property_split_conserves_factors(npiv, extra, threshold):
    tree = AssemblyTree([npiv], [npiv + extra], [-1], symmetric=False, nvars=npiv)
    new, _ = split_large_masters(tree, threshold)
    assert new.total_factor_entries() == tree.total_factor_entries()
    assert new.npiv.sum() == npiv
    new.validate()
