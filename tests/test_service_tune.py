"""Tune jobs through the service: queue records, daemon execution, HTTP API.

The daemon runs a tune job's whole search under the engine lock against a
shared ``tune-store``, so re-submitting the same :class:`TuneSpec` is fully
memoized (``engine.stage_runs`` unchanged) and serves a byte-identical
leaderboard — the service-side half of ISSUE 9's acceptance criteria.
"""

from __future__ import annotations

import json
import time

import pytest

from repro.service import JobSpec, ServiceClient, SweepService, make_server
from repro.specs import SweepSpec
from repro.tune import TuneSpec

NPROCS = 4
SCALE = 0.2

TUNE = dict(
    space="hybrid(alpha=0.0..1.0)",
    problems=["XENON2"],
    searcher="random(samples=2)",
    objective="peak-memory",
    seed=3,
)


def tiny_tune(**overrides) -> TuneSpec:
    return TuneSpec(**{**TUNE, **overrides})


def _wait_terminal(service: SweepService, job_id: str, timeout: float = 120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = service.queue.get(job_id)
        if record.state in ("done", "failed"):
            return record
        time.sleep(0.01)
    raise AssertionError(f"job {job_id} did not finish within {timeout}s")


# --------------------------------------------------------------------------- #
# JobSpec plumbing
# --------------------------------------------------------------------------- #
class TestTuneJobSpec:
    def test_round_trip(self):
        spec = JobSpec(tune=tiny_tune(), priority=2)
        clone = JobSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert clone.tune == tiny_tune()

    def test_tune_is_exclusive(self):
        sweep = SweepSpec(problems=["XENON2"], orderings=["metis"], strategies=["memory-full"])
        with pytest.raises(ValueError, match="exclusive"):
            JobSpec(sweep=sweep, tune=tiny_tune())

    def test_tune_expands_to_no_shardable_cases(self):
        spec = JobSpec(tune=tiny_tune())
        assert spec.expand() == []
        assert spec.total_cases() == tiny_tune().planned_evaluations() == 2

    def test_sweep_total_cases_unchanged(self):
        sweep = SweepSpec(problems=["XENON2"], orderings=["metis"], strategies=["memory-full"])
        assert JobSpec(sweep=sweep).total_cases() == 1


# --------------------------------------------------------------------------- #
# daemon execution (no sockets)
# --------------------------------------------------------------------------- #
@pytest.fixture()
def service(tmp_path):
    svc = SweepService(
        data_dir=tmp_path / "svc", nprocs=NPROCS, scale=SCALE, journal_fsync=False
    )
    with svc:
        yield svc


class TestTuneJobExecution:
    def test_tune_job_runs_to_done_and_persists_leaderboard(self, service):
        record = service.submit(JobSpec(tune=tiny_tune()))
        final = _wait_terminal(service, record.id)
        assert final.state == "done"
        assert final.done == final.total == 2
        (key,) = final.result_keys
        assert key.endswith(f"{record.id}.json")

        payload = service.leaderboard(record.id)
        assert payload == service.leaderboard()  # latest == this job
        assert len(payload["entries"]) == 2
        assert payload["spec"]["seed"] == 3

    def test_resubmitted_tune_is_memoized_and_byte_identical(self, service):
        first = _wait_terminal(service, service.submit(JobSpec(tune=tiny_tune())).id)
        runs_before = dict(service.engine.stage_runs)

        second = _wait_terminal(service, service.submit(JobSpec(tune=tiny_tune())).id)
        assert second.state == "done"
        assert dict(service.engine.stage_runs) == runs_before  # nothing recomputed

        a = (service.leaderboard_dir / f"{first.id}.json").read_bytes()
        b = (service.leaderboard_dir / f"{second.id}.json").read_bytes()
        assert a == b

    def test_leaderboard_lookup_errors(self, service):
        with pytest.raises(KeyError):
            service.leaderboard()  # nothing tuned yet
        with pytest.raises(KeyError):
            service.leaderboard("job-000042")
        with pytest.raises(ValueError):
            service.leaderboard("../../etc/passwd")


# --------------------------------------------------------------------------- #
# HTTP API
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def served(tmp_path_factory):
    data_dir = tmp_path_factory.mktemp("tune-e2e")
    service = SweepService(
        data_dir=data_dir, nprocs=NPROCS, scale=SCALE, journal_fsync=False
    )
    service.start()
    server = make_server(service, quiet=True)
    server.serve_background()
    client = ServiceClient(f"http://127.0.0.1:{server.port}")
    yield service, client
    server.shutdown()
    server.server_close()
    service.stop()


class TestTuneOverHttp:
    def test_leaderboard_404_before_any_tune(self, served):
        _, client = served
        with pytest.raises(Exception) as excinfo:
            client.leaderboard()
        assert "404" in str(excinfo.value) or "no leaderboard" in str(excinfo.value)

    def test_submit_tune_then_get_leaderboard(self, served):
        _, client = served
        record = client.submit({"tune": tiny_tune().to_dict()})
        final = client.wait(str(record["id"]), timeout=120)
        assert final["state"] == "done"

        latest = client.leaderboard()
        by_job = client.leaderboard(str(record["id"]))
        assert latest.payload == by_job.payload
        assert len(latest.payload["entries"]) == 2
        best = latest.payload["entries"][0]
        assert best["rank"] == 1
        assert best["strategy"].startswith("hybrid(")

    def test_leaderboard_unknown_job_is_404(self, served):
        _, client = served
        with pytest.raises(Exception) as excinfo:
            client.leaderboard("job-999999")
        assert "404" in str(excinfo.value) or "no leaderboard" in str(excinfo.value)
