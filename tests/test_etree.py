"""Tests for the elimination tree and tree utilities."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import SparsePattern, banded_pattern, grid_2d, random_pattern
from repro.symbolic import (
    children_lists,
    elimination_tree,
    postorder,
    tree_depth,
    tree_levels,
)
from repro.symbolic.etree import is_postordered, subtree_sizes


def brute_force_etree(pattern):
    """Reference etree: parent[j] = min{i > j : L[i, j] != 0} via dense filled graph."""
    sym = pattern.symmetrized().with_diagonal()
    n = sym.n
    dense = np.zeros((n, n), dtype=bool)
    for i in range(n):
        dense[i, sym.row(i)] = True
    # dense symbolic Cholesky fill
    for k in range(n):
        rows = np.nonzero(dense[:, k])[0]
        rows = rows[rows > k]
        for a in rows:
            dense[a, rows] = True
            dense[rows, a] = True
    parent = np.full(n, -1, dtype=np.int64)
    for j in range(n):
        below = np.nonzero(dense[j + 1:, j])[0]
        if below.size:
            parent[j] = j + 1 + below[0]
    return parent


class TestEliminationTree:
    def test_band_matrix_is_path(self):
        p = banded_pattern(10, bandwidth=1)
        parent = elimination_tree(p)
        assert list(parent) == list(range(1, 10)) + [-1]

    def test_diagonal_matrix_is_forest_of_singletons(self):
        p = SparsePattern.from_coo(5, range(5), range(5), symmetric=True)
        parent = elimination_tree(p)
        assert all(x == -1 for x in parent)

    def test_matches_brute_force_on_grid(self):
        g = grid_2d(5, 5)
        assert np.array_equal(elimination_tree(g), brute_force_etree(g))

    def test_matches_brute_force_on_random(self):
        p = random_pattern(30, density=0.08, symmetric=True, seed=5)
        assert np.array_equal(elimination_tree(p), brute_force_etree(p))

    def test_parent_always_larger(self, small_grid):
        parent = elimination_tree(small_grid)
        for j, pj in enumerate(parent):
            assert pj == -1 or pj > j

    def test_figure1_example(self):
        # the 6x6 matrix of Figure 1 of the paper
        rows = [[0, 1, 4], [0, 1, 5], [2, 3, 4], [2, 3, 5], [0, 2, 4, 5], [1, 3, 4, 5]]
        p = SparsePattern.from_rows(rows, symmetric=True)
        parent = elimination_tree(p)
        # variables 0,1 and 2,3 chain into the separator {4,5}
        assert parent[4] == 5
        assert parent[5] == -1


class TestPostorder:
    def test_postorder_is_permutation(self, small_grid):
        parent = elimination_tree(small_grid)
        post = postorder(parent)
        assert sorted(post.tolist()) == list(range(small_grid.n))

    def test_children_before_parent(self, small_grid):
        parent = elimination_tree(small_grid)
        post = postorder(parent)
        position = np.empty(len(parent), dtype=int)
        position[post] = np.arange(len(parent))
        for j, pj in enumerate(parent):
            if pj >= 0:
                assert position[j] < position[pj]

    def test_postorder_detects_cycle(self):
        with pytest.raises(ValueError):
            postorder(np.array([1, 0]))

    def test_relabelled_tree_is_postordered(self, small_grid):
        parent = elimination_tree(small_grid)
        post = postorder(parent)
        relabelled = elimination_tree(small_grid.symmetrized().with_diagonal().permuted(post))
        assert is_postordered(relabelled)


class TestTreeUtilities:
    def test_children_lists(self):
        parent = np.array([2, 2, -1])
        assert children_lists(parent) == [[], [], [0, 1]]

    def test_subtree_sizes_path(self):
        parent = np.array([1, 2, -1])
        assert list(subtree_sizes(parent)) == [1, 2, 3]

    def test_levels_and_depth(self):
        parent = np.array([2, 2, -1])
        levels = tree_levels(parent)
        assert list(levels) == [1, 1, 0]
        assert tree_depth(parent) == 2

    def test_depth_empty(self):
        assert tree_depth(np.array([], dtype=np.int64)) == 0

    def test_depth_single(self):
        assert tree_depth(np.array([-1])) == 1


@settings(max_examples=20, deadline=None)
@given(n=st.integers(min_value=2, max_value=18), seed=st.integers(0, 500))
def test_property_etree_matches_brute_force(n, seed):
    """Liu's algorithm agrees with the dense reference on random symmetric patterns."""
    rng = np.random.default_rng(seed)
    nnz = max(1, int(0.15 * n * n))
    rows = rng.integers(0, n, size=nnz)
    cols = rng.integers(0, n, size=nnz)
    pattern = SparsePattern.from_coo(n, rows, cols, symmetrize_pattern=True)
    assert np.array_equal(elimination_tree(pattern), brute_force_etree(pattern))
