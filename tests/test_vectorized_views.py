"""The vectorized view bank must be an exact drop-in for the scalar loops.

``ViewBank(vectorized=False)`` preserves the historical implementation —
independent per-processor :class:`SystemView` arrays updated one method call
at a time — as an executable reference.  These tests check the batched
column updates against it at two levels: the bank operations themselves, and
whole simulations, which must be *bit-identical* (the paper's tables are
reproduced from these numbers; "close" is not good enough)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.mapping import compute_mapping
from repro.ordering import compute_ordering
from repro.runtime import FactorizationSimulator, SimulationConfig, ViewBank
from repro.scheduling import get_strategy
from repro.sparse import grid_3d
from repro.symbolic import build_assembly_tree


def _banks(nprocs: int) -> tuple[ViewBank, ViewBank]:
    return ViewBank(nprocs), ViewBank(nprocs, vectorized=False)


def _assert_banks_equal(vec: ViewBank, ref: ViewBank) -> None:
    for p in range(vec.nprocs):
        a, b = vec.view(p), ref.view(p)
        np.testing.assert_array_equal(a.memory, b.memory)
        np.testing.assert_array_equal(a.load, b.load)
        np.testing.assert_array_equal(a.subtree_peak, b.subtree_peak)
        np.testing.assert_array_equal(a.predicted_master, b.predicted_master)


class TestViewBankSemantics:
    def test_broadcast_skips_the_sender(self):
        vec, ref = _banks(4)
        for bank in (vec, ref):
            bank.view(2).set_memory(2, 99.0)  # the sender's own exact knowledge
            bank.apply_broadcast("memory", 2, 7.0)
        _assert_banks_equal(vec, ref)
        assert vec.view(2).memory[2] == 99.0  # own row untouched by the broadcast
        assert vec.view(0).memory[2] == 7.0
        assert vec.view(1).memory[2] == 7.0

    @pytest.mark.parametrize("kind", ["memory", "load", "subtree", "prediction"])
    def test_broadcast_kinds_match_reference(self, kind):
        vec, ref = _banks(5)
        for bank in (vec, ref):
            bank.apply_broadcast(kind, 1, 3.5)
            bank.apply_broadcast(kind, 3, -2.0)  # non-memory kinds clamp at zero
        _assert_banks_equal(vec, ref)

    def test_unknown_kind_raises(self):
        vec, _ = _banks(2)
        with pytest.raises(ValueError, match="unknown broadcast kind"):
            vec.apply_broadcast("voltage", 0, 1.0)

    def test_reservations_skip_source_and_slave_rows(self):
        vec, ref = _banks(4)
        reservations = [(1, 10.0), (3, 5.0)]
        for bank in (vec, ref):
            bank.apply_reservations(0, reservations)
        _assert_banks_equal(vec, ref)
        # the master (source=0) already accounted for its own decision
        assert vec.view(0).memory[1] == 0.0
        # a slave skips its own entry (it learns the truth from the task itself)
        assert vec.view(1).memory[1] == 0.0
        # third parties apply the reservation
        assert vec.view(2).memory[1] == 10.0
        assert vec.view(2).memory[3] == 5.0

    def test_reservations_clamp_at_zero_like_add_memory(self):
        vec, ref = _banks(3)
        for bank in (vec, ref):
            bank.apply_broadcast("memory", 1, 2.0)
            bank.apply_reservations(0, [(1, -10.0)])
        _assert_banks_equal(vec, ref)
        assert vec.view(2).memory[1] == 0.0

    def test_row_views_share_storage_with_the_matrix(self):
        vec = ViewBank(3)
        vec.view(1).set_memory(2, 42.0)
        assert vec.memory[1, 2] == 42.0

    def test_nprocs_validation(self):
        with pytest.raises(ValueError):
            ViewBank(0)


class TestSimulationIdentity:
    """The no-regression gate: vectorized accounting == per-task loops, bitwise."""

    @pytest.fixture(scope="class")
    def tree(self):
        pattern = grid_3d(8, 8, 8)
        return build_assembly_tree(
            pattern, compute_ordering(pattern, "metis"), keep_variables=False
        )

    @pytest.mark.parametrize("nprocs", [4, 8])
    @pytest.mark.parametrize(
        "strategy", ["mumps-workload", "memory-basic", "memory-full", "hybrid"]
    )
    def test_bit_identical_simulations(self, tree, nprocs, strategy):
        config = SimulationConfig.paper(nprocs=nprocs)
        mapping = compute_mapping(tree, nprocs, **config.mapping_params())

        def run(vectorized: bool):
            slave, task = get_strategy(strategy).build()
            return FactorizationSimulator(
                tree,
                config=config,
                mapping=mapping,
                slave_selector=slave,
                task_selector=task,
                views=ViewBank(nprocs, vectorized=vectorized),
            ).run()

        vec, ref = run(True), run(False)
        np.testing.assert_array_equal(vec.per_proc_peak_stack, ref.per_proc_peak_stack)
        np.testing.assert_array_equal(vec.per_proc_factor_entries, ref.per_proc_factor_entries)
        np.testing.assert_array_equal(vec.per_proc_tasks, ref.per_proc_tasks)
        assert vec.total_time == ref.total_time
        assert vec.message_counts == ref.message_counts
        assert vec.slave_selections == ref.slave_selections

    def test_reused_bank_is_reset_between_runs(self, tree):
        config = SimulationConfig.paper(nprocs=4)
        mapping = compute_mapping(tree, 4, **config.mapping_params())
        bank = ViewBank(4)

        def run():
            slave, task = get_strategy("memory-full").build()
            return FactorizationSimulator(
                tree,
                config=config,
                mapping=mapping,
                slave_selector=slave,
                task_selector=task,
                views=bank,
            ).run()

        first, second = run(), run()
        np.testing.assert_array_equal(first.per_proc_peak_stack, second.per_proc_peak_stack)
        assert first.total_time == second.total_time
        assert first.message_counts == second.message_counts

    def test_mismatched_bank_size_is_rejected(self, tree):
        config = SimulationConfig.paper(nprocs=4)
        mapping = compute_mapping(tree, 4, **config.mapping_params())
        slave, task = get_strategy("memory-full").build()
        with pytest.raises(ValueError, match="views.nprocs"):
            FactorizationSimulator(
                tree,
                config=config,
                mapping=mapping,
                slave_selector=slave,
                task_selector=task,
                views=ViewBank(8),
            )
