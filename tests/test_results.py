"""Tests of the columnar result store: table, serialization, store, traces.

Covers the :mod:`repro.results` package layer by layer — exact
``CaseResult`` round-trips through the columns, the versioned
serialization policy of :mod:`repro.serialize`, the append-only
:class:`ResultStore` (replay, torn lines, torn segments, orphan adoption)
and the delta-encoded trace codec.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.pipeline.stage import CaseResult, CaseSpec
from repro.results import (
    CaseResultView,
    RESULT_COLUMNS,
    ResultStore,
    ResultTable,
    ResultTableBuilder,
    case_key,
    decode_trace,
    encode_trace,
)
from repro.runtime.trace import SimulationTrace
from repro.serialize import (
    canonical_json,
    check_schema,
    decode_fields,
    parse_schema_tag,
    schema_tag,
    with_schema,
)


def make_result(i: int, *, problem: str = "XENON2", nprocs: int = 4, key_seed: float = 0.0) -> CaseResult:
    """A synthetic, deterministic CaseResult (no engine run needed)."""
    per_proc = np.linspace(1.0 + i + key_seed, 100.0 + i, nprocs)
    return CaseResult(
        problem=problem,
        ordering="metis" if i % 2 == 0 else "amd",
        strategy="memory-full" if i % 3 == 0 else "mumps-workload",
        split=bool(i % 2),
        nprocs=nprocs,
        max_peak_stack=float(per_proc.max()),
        avg_peak_stack=float(per_proc.mean()),
        sum_peak_stack=float(per_proc.sum()),
        total_time=0.001 * (i + 1) + key_seed,
        total_factor_entries=1000.0 * (i + 1),
        per_proc_peak_stack=per_proc,
        nodes=50 + i,
        nodes_split=i % 3,
        messages=200 + 7 * i,
    )


def assert_results_equal(a: CaseResult, b: CaseResult) -> None:
    da, db = a.to_dict(), b.to_dict()
    assert da == db


# --------------------------------------------------------------------------- #
# repro.serialize — the one serialization policy
# --------------------------------------------------------------------------- #
class TestSerialize:
    def test_canonical_json_is_byte_stable(self):
        a = canonical_json({"b": 1, "a": [1, 2]})
        b = canonical_json({"a": [1, 2], "b": 1})
        assert a == b == b'{"a":[1,2],"b":1}\n'

    def test_schema_tag_roundtrip(self):
        tag = schema_tag("case_result")
        assert parse_schema_tag(tag) == ("case_result", 1)
        with pytest.raises(ValueError, match="malformed schema tag"):
            parse_schema_tag("no-version-here")

    def test_check_schema_accepts_absent_and_current(self):
        check_schema("case_spec", {})  # pre-schema payloads keep loading
        check_schema("case_spec", with_schema("case_spec", {"problem": "X"}))

    def test_check_schema_rejects_wrong_kind_and_newer_version(self):
        with pytest.raises(ValueError, match="expected a 'case_spec' payload"):
            check_schema("case_spec", {"schema": "job_spec/v1"})
        with pytest.raises(ValueError, match="newer than this build"):
            check_schema("case_spec", {"schema": "case_spec/v999"})

    def test_decode_fields_strict_raises_historical_message(self):
        with pytest.raises(ValueError, match=r"unknown CaseSpec fields \['nope'\]"):
            decode_fields(
                "case_spec", {"problem": "X", "nope": 1}, {"problem"},
                label="CaseSpec", strict=True,
            )

    def test_decode_fields_tolerant_drops_unknown_and_schema(self):
        payload = with_schema("case_result", {"problem": "X", "future_field": 7})
        decoded = decode_fields("case_result", payload, {"problem"}, strict=False)
        assert decoded == {"problem": "X"}

    def test_case_spec_from_dict_is_strict_by_default(self):
        payload = {"problem": "XENON2", "ordering": "metis", "bogus": True}
        with pytest.raises(ValueError, match="unknown CaseSpec fields"):
            CaseSpec.from_dict(payload)
        spec = CaseSpec.from_dict(payload, strict=False)
        assert spec.problem == "XENON2"

    def test_case_result_from_dict_tolerates_newer_writers(self):
        result = make_result(0)
        payload = result.to_dict()
        payload["added_in_v9"] = "whatever"
        clone = CaseResult.from_dict(payload)
        assert_results_equal(result, clone)


# --------------------------------------------------------------------------- #
# Canonical case keys
# --------------------------------------------------------------------------- #
class TestCaseKeys:
    def test_equal_logical_cases_share_a_key(self):
        a = case_key(CaseSpec("xenon2", "metis", "hybrid(alpha=0.3)"), nprocs=8, scale=0.2)
        b = case_key(CaseSpec("XENON2", "metis", "hybrid( alpha = 0.3 )"), nprocs=8, scale=0.2)
        assert a == b

    def test_parameters_separate_keys(self):
        base = dict(nprocs=8, scale=0.2)
        spec = CaseSpec("XENON2", "metis", "memory-full")
        assert case_key(spec, **base) != case_key(spec, nprocs=16, scale=0.2)
        assert case_key(spec, **base) != case_key(spec, nprocs=8, scale=0.4)
        assert case_key(spec, **base) != case_key(
            CaseSpec("XENON2", "metis", "memory-full", split=True), **base
        )

    def test_matches_service_result_key(self):
        from repro.pipeline.engine import AnalysisPipeline
        from repro.service.daemon import result_key

        engine = AnalysisPipeline(nprocs=4, scale=0.2, cache_dir="")
        spec = CaseSpec("XENON2", "metis", "memory-full")
        assert result_key(engine, spec) == case_key(spec, nprocs=4, scale=0.2)


# --------------------------------------------------------------------------- #
# ResultTable
# --------------------------------------------------------------------------- #
class TestResultTable:
    def test_roundtrip_is_exact(self):
        results = [make_result(i, nprocs=3 + i % 3) for i in range(7)]
        table = ResultTable.from_results(results, keys=[f"k{i}" for i in range(7)])
        assert len(table) == 7
        for i, original in enumerate(results):
            assert_results_equal(table.result(i), original)
        assert_results_equal(table.result(-1), results[-1])

    def test_column_and_per_proc_access(self):
        results = [make_result(i) for i in range(4)]
        table = ResultTable.from_results(results)
        assert list(table.column("problem")) == ["XENON2"] * 4
        assert table.column("nprocs").dtype == np.int64
        np.testing.assert_array_equal(table.per_proc(2), results[2].per_proc_peak_stack)
        # per_proc returns a copy: mutating it must not poison the table
        table.per_proc(2)[:] = -1.0
        np.testing.assert_array_equal(table.per_proc(2), results[2].per_proc_peak_stack)
        with pytest.raises(KeyError, match="no such column"):
            table.column("bogus")

    def test_to_dicts_matches_case_result_to_dict(self):
        results = [make_result(i) for i in range(3)]
        table = ResultTable.from_results(results)
        rows = table.to_dicts(fields=[c for c in RESULT_COLUMNS if c != "key"])
        assert rows == [r.to_dict() for r in results]

    def test_to_dicts_projection_and_unknown_field(self):
        table = ResultTable.from_results([make_result(0)], keys=["k0"])
        (row,) = table.to_dicts(fields=["problem", "key", "nprocs"])
        assert row == {"problem": "XENON2", "key": "k0", "nprocs": 4}
        with pytest.raises(ValueError, match="unknown result field"):
            table.to_dicts(fields=["problem", "oops"])

    def test_filter_on_columns(self):
        results = [make_result(i, problem="XENON2" if i < 4 else "PRE2") for i in range(8)]
        table = ResultTable.from_results(results)
        assert len(table.filter(problem="PRE2")) == 4
        assert len(table.filter(problem=["XENON2", "PRE2"])) == 8
        assert len(table.filter(problem="PRE2", split=True)) == 2
        assert len(table.filter(nprocs=4)) == 8
        assert len(table.filter(nprocs=64)) == 0
        assert len(table.filter(ordering="metis", strategy="memory-full")) > 0

    def test_sorted_is_insertion_order_independent(self):
        results = [make_result(i, nprocs=2 + i) for i in range(6)]
        keys = [f"key-{i}" for i in range(6)]
        forward = ResultTable.from_results(results, keys=keys).sorted()
        backward = ResultTable.from_results(results[::-1], keys=keys[::-1]).sorted()
        assert forward.to_dicts() == backward.to_dicts()

    def test_dedupe_by_key_keeps_last_write(self):
        old, new = make_result(0), make_result(0, key_seed=10.0)
        table = ResultTable.from_results(
            [old, make_result(1), new], keys=["dup", "other", "dup"]
        )
        deduped = table.dedupe_by_key()
        assert len(deduped) == 2
        by_key = {str(k): i for i, k in enumerate(deduped.keys)}
        assert_results_equal(deduped.result(by_key["dup"]), new)

    def test_dedupe_never_drops_empty_keys(self):
        table = ResultTable.from_results([make_result(i) for i in range(3)])  # all keys ""
        assert len(table.dedupe_by_key()) == 3

    def test_concat_merges_vocabularies(self):
        a = ResultTable.from_results([make_result(0, problem="XENON2")], keys=["a"])
        b = ResultTable.from_results([make_result(1, problem="PRE2")], keys=["b"])
        merged = ResultTable.concat([a, b])
        assert list(merged.column("problem")) == ["XENON2", "PRE2"]
        assert list(merged.keys) == ["a", "b"]

    def test_npz_roundtrip(self, tmp_path):
        results = [make_result(i, nprocs=2 + i % 4) for i in range(9)]
        table = ResultTable.from_results(results, keys=[f"k{i}" for i in range(9)])
        path = tmp_path / "table.npz"
        table.save_npz(path)
        loaded = ResultTable.load_npz(path)
        assert loaded.to_dicts() == table.to_dicts()
        # no temp sibling left behind
        assert list(tmp_path.iterdir()) == [path]

    def test_npz_rejects_wrong_schema(self, tmp_path):
        path = tmp_path / "bogus.npz"
        np.savez_compressed(path, schema=np.asarray("trace/v1"))
        with pytest.raises(ValueError, match="expected a 'result_table' payload"):
            ResultTable.load_npz(path)

    def test_parquet_gate_without_pyarrow(self, tmp_path):
        try:
            import pyarrow  # noqa: F401

            pytest.skip("pyarrow installed: the gate does not trigger")
        except ImportError:
            pass
        table = ResultTable.from_results([make_result(0)])
        with pytest.raises(RuntimeError, match="optional 'pyarrow' package"):
            table.to_parquet(tmp_path / "t.parquet")

    def test_empty_builder_builds_empty_table(self):
        table = ResultTableBuilder().build()
        assert len(table) == 0
        assert table.to_dicts() == []
        assert len(table.sorted()) == 0
        assert len(table.filter(problem="XENON2")) == 0


class TestCaseResultView:
    """The list-contract regression: sweep callers must notice nothing."""

    def make_view(self, n: int = 5) -> tuple[CaseResultView, list[CaseResult]]:
        results = [make_result(i) for i in range(n)]
        return ResultTable.from_results(results).view(), results

    def test_len_index_negative_and_out_of_range(self):
        view, results = self.make_view()
        assert len(view) == 5
        assert_results_equal(view[0], results[0])
        assert_results_equal(view[-1], results[-1])
        with pytest.raises(IndexError):
            view[5]

    def test_slice_returns_list(self):
        view, results = self.make_view()
        sliced = view[1:4]
        assert isinstance(sliced, list) and len(sliced) == 3
        for got, expected in zip(sliced, results[1:4]):
            assert_results_equal(got, expected)

    def test_iteration_and_zip(self):
        view, results = self.make_view()
        for got, expected in zip(view, results):
            assert_results_equal(got, expected)
        assert [r.nodes for r in view] == [r.nodes for r in results]


# --------------------------------------------------------------------------- #
# ResultStore
# --------------------------------------------------------------------------- #
class TestResultStore:
    def test_append_get_contains_len(self, tmp_path):
        store = ResultStore(tmp_path / "store", fsync=False)
        result = make_result(0)
        store.append("k0", result)
        assert "k0" in store and "nope" not in store
        assert len(store) == 1
        assert list(store.keys()) == ["k0"]
        assert_results_equal(store.get("k0"), result)
        with pytest.raises(KeyError):
            store.get("nope")

    def test_reopen_replays_everything(self, tmp_path):
        results = {f"k{i}": make_result(i) for i in range(5)}
        store = ResultStore(tmp_path / "store", fsync=False)
        for key, result in results.items():
            store.append(key, result)
        reopened = ResultStore(tmp_path / "store", fsync=False)
        assert len(reopened) == 5
        assert reopened.replay_skipped == 0
        for key, result in results.items():
            assert_results_equal(reopened.get(key), result)

    def test_last_write_wins_across_segments(self, tmp_path):
        store = ResultStore(tmp_path / "store", fsync=False)
        store.append("dup", make_result(0))
        newer = make_result(0, key_seed=42.0)
        store.append("dup", newer)
        assert len(store) == 1
        assert_results_equal(store.get("dup"), newer)
        table = store.table()
        assert len(table) == 1
        reopened = ResultStore(tmp_path / "store", fsync=False)
        assert_results_equal(reopened.get("dup"), newer)

    def test_writer_batches_rows_into_segments(self, tmp_path):
        store = ResultStore(tmp_path / "store", fsync=False)
        with store.writer(flush_every=4) as writer:
            for i in range(10):
                writer.append(f"k{i}", make_result(i))
        assert writer.rows_written == 10
        assert len(store) == 10
        # 4 + 4 + 2 on close
        assert store.stats()["segments"] == 3

    def test_writer_flushes_on_the_error_path(self, tmp_path):
        store = ResultStore(tmp_path / "store", fsync=False)
        with pytest.raises(RuntimeError, match="interrupted"):
            with store.writer(flush_every=100) as writer:
                writer.append("done-before-crash", make_result(0))
                raise RuntimeError("interrupted")
        assert "done-before-crash" in store
        assert "done-before-crash" in ResultStore(tmp_path / "store", fsync=False)

    def test_writer_rejects_bad_flush_every(self, tmp_path):
        store = ResultStore(tmp_path / "store", fsync=False)
        with pytest.raises(ValueError, match="flush_every"):
            store.writer(flush_every=0)

    def test_torn_manifest_line_is_skipped(self, tmp_path):
        store = ResultStore(tmp_path / "store", fsync=False)
        store.append("k0", make_result(0))
        # simulate a crash mid-append: a half-written trailing line
        with open(store.manifest_path, "ab") as fh:
            fh.write(b'{"op":"segment","file":"seg-trunc')
        reopened = ResultStore(tmp_path / "store", fsync=False)
        assert len(reopened) == 1
        assert_results_equal(reopened.get("k0"), make_result(0))

    def test_torn_segment_is_counted_not_fatal(self, tmp_path):
        store = ResultStore(tmp_path / "store", fsync=False)
        store.append("k0", make_result(0))
        store.append("k1", make_result(1))
        # corrupt one segment file in place
        victim = next(iter(sorted(p.name for p in (tmp_path / "store").glob("seg-*.npz"))))
        (tmp_path / "store" / victim).write_bytes(b"not an npz at all")
        reopened = ResultStore(tmp_path / "store", fsync=False)
        assert reopened.replay_skipped >= 1
        assert len(reopened) == 1  # the surviving row is still served
        assert reopened.stats()["replay_skipped"] >= 1

    def test_orphan_segment_is_adopted_and_manifested(self, tmp_path):
        directory = tmp_path / "store"
        store = ResultStore(directory, fsync=False)
        store.append("manifested", make_result(0))
        # a complete segment whose manifest line was lost to a crash
        orphan = ResultTable.from_results([make_result(1)], keys=["orphan"])
        orphan.save_npz(directory / "seg-deadbeef-000000.npz")
        reopened = ResultStore(directory, fsync=False)
        assert "orphan" in reopened and "manifested" in reopened
        # adoption re-manifests: a third open finds it via the manifest
        manifest = [
            json.loads(line)["file"]
            for line in (directory / "manifest.jsonl").read_text().splitlines()
            if line.strip()
        ]
        assert "seg-deadbeef-000000.npz" in manifest

    def test_refresh_picks_up_sibling_writers(self, tmp_path):
        directory = tmp_path / "store"
        reader = ResultStore(directory, fsync=False)
        assert len(reader) == 0
        sibling = ResultStore(directory, fsync=False)
        sibling.append("from-sibling", make_result(0))
        assert "from-sibling" not in reader
        assert reader.refresh() == 1
        assert_results_equal(reader.get("from-sibling"), make_result(0))

    def test_filter_and_table_dedupe(self, tmp_path):
        store = ResultStore(tmp_path / "store", fsync=False)
        for i in range(6):
            store.append(f"k{i}", make_result(i, problem="XENON2" if i < 3 else "PRE2"))
        assert len(store.filter(problem="PRE2")) == 3
        assert len(store.table()) == 6


class TestTraces:
    def make_trace(self, nprocs: int = 3, n: int = 50) -> SimulationTrace:
        rng = np.random.default_rng(7)
        blocks = []
        for p in range(nprocs):
            times = np.cumsum(rng.uniform(0.0, 0.01, n + p))
            stack = np.abs(np.cumsum(rng.normal(0.0, 5.0, n + p)))
            factors = np.cumsum(rng.uniform(0.0, 3.0, n + p))
            blocks.append(np.stack((times, stack, factors)))
        return SimulationTrace.from_blocks(blocks)

    def test_codec_roundtrip_close_to_ulp(self):
        trace = self.make_trace()
        payload = encode_trace(trace)
        assert str(payload["schema"]) == "trace/v1"
        decoded = decode_trace(payload)
        assert decoded.nprocs == trace.nprocs
        for p in range(trace.nprocs):
            np.testing.assert_allclose(decoded.times[p], trace.times[p], rtol=1e-12)
            np.testing.assert_allclose(decoded.stack[p], trace.stack[p], rtol=1e-12)
            np.testing.assert_allclose(decoded.factors[p], trace.factors[p], rtol=1e-12)

    def test_empty_trace_roundtrip(self):
        trace = SimulationTrace.from_blocks([])
        decoded = decode_trace(encode_trace(trace))
        assert decoded.nprocs == 0

    def test_store_trace_roundtrip(self, tmp_path):
        store = ResultStore(tmp_path / "store", fsync=False)
        trace = self.make_trace()
        assert not store.has_trace("case-1")
        store.put_trace("case-1", trace)
        assert store.has_trace("case-1")
        loaded = store.get_trace("case-1")
        np.testing.assert_allclose(loaded.stack[0], trace.stack[0], rtol=1e-12)
        with pytest.raises(KeyError):
            store.get_trace("absent")

    def test_deltas_beat_json_on_disk(self, tmp_path):
        """The headline claim: delta + deflate is much smaller than JSON."""
        trace = self.make_trace(nprocs=4, n=2000)
        store = ResultStore(tmp_path / "store", fsync=False)
        store.put_trace("big", trace)
        npz_bytes = store._trace_path("big").stat().st_size
        json_bytes = len(
            json.dumps(
                {
                    "times": [t.tolist() for t in trace.times],
                    "stack": [s.tolist() for s in trace.stack],
                    "factors": [f.tolist() for f in trace.factors],
                }
            ).encode()
        )
        assert npz_bytes < json_bytes / 2
