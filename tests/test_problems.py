"""Tests for the test-problem registry (Table 1 analogues)."""

import pytest

from repro.experiments import PROBLEMS, SYMMETRIC_PROBLEMS, UNSYMMETRIC_PROBLEMS, get_problem


class TestRegistry:
    def test_eight_problems(self):
        assert len(PROBLEMS) == 8
        assert set(PROBLEMS) == {
            "BMWCRA_1",
            "GUPTA3",
            "MSDOOR",
            "SHIP_003",
            "PRE2",
            "TWOTONE",
            "ULTRASOUND3",
            "XENON2",
        }

    def test_symmetry_split_matches_paper(self):
        assert set(SYMMETRIC_PROBLEMS) == {"BMWCRA_1", "GUPTA3", "MSDOOR", "SHIP_003"}
        assert set(UNSYMMETRIC_PROBLEMS) == {"PRE2", "TWOTONE", "ULTRASOUND3", "XENON2"}

    def test_get_problem_case_insensitive(self):
        assert get_problem("xenon2").name == "XENON2"

    def test_get_problem_unknown(self):
        with pytest.raises(ValueError):
            get_problem("BCSSTK33")

    def test_paper_metadata_present(self):
        for spec in PROBLEMS.values():
            assert spec.paper_order > 0
            assert spec.paper_nnz > 0
            assert spec.description
            assert spec.split_threshold > 0


class TestBuilders:
    @pytest.mark.parametrize("name", sorted(PROBLEMS))
    def test_small_scale_build(self, name):
        spec = get_problem(name)
        pattern = spec.build(0.2)
        assert pattern.n >= 50
        assert pattern.nnz >= pattern.n
        assert pattern.symmetric == spec.symmetric
        assert pattern.name == spec.name

    @pytest.mark.parametrize("name", ["XENON2", "TWOTONE"])
    def test_deterministic(self, name):
        spec = get_problem(name)
        assert spec.build(0.3) == spec.build(0.3)

    def test_scale_changes_size(self):
        spec = get_problem("XENON2")
        small = spec.build(0.2)
        large = spec.build(0.5)
        assert large.n > small.n

    def test_invalid_scale(self):
        with pytest.raises(ValueError):
            get_problem("PRE2").build(0.0)

    def test_symmetric_problems_structurally_symmetric(self):
        for name in SYMMETRIC_PROBLEMS:
            pattern = get_problem(name).build(0.2)
            assert pattern.is_structurally_symmetric()
