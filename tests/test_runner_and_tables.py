"""Tests for the experiment runner, the tables and the figures (small scale)."""

import numpy as np
import pytest

from repro.experiments import ExperimentRunner
from repro.experiments import figures as figs
from repro.experiments import tables as tbl
from repro.experiments.runner import percentage_decrease


@pytest.fixture(scope="module")
def runner():
    """A small-scale runner shared by the table tests (8 simulated processors)."""
    return ExperimentRunner(nprocs=8, scale=0.3)


class TestRunner:
    def test_pattern_cached(self, runner):
        a = runner.pattern("XENON2")
        b = runner.pattern("XENON2")
        assert a is b

    def test_analysis_cached(self, runner):
        a = runner.analysis("XENON2", "metis", split=False)
        b = runner.analysis("XENON2", "metis", split=False)
        assert a is b
        c = runner.analysis("XENON2", "metis", split=True)
        assert c is not a

    def test_disk_cache_roundtrip(self, tmp_path):
        r1 = ExperimentRunner(nprocs=4, scale=0.2, cache_dir=tmp_path)
        first = r1.analysis("XENON2", "amd", split=False)
        r2 = ExperimentRunner(nprocs=4, scale=0.2, cache_dir=tmp_path)
        second = r2.analysis("XENON2", "amd", split=False)
        assert second.tree.nnodes == first.tree.nnodes
        assert list(tmp_path.glob("analysis-*.pkl"))

    def test_run_case_metrics(self, runner):
        case = runner.run_case("XENON2", "metis", "mumps-workload")
        assert case.max_peak_stack > 0
        assert case.total_factor_entries > 0
        assert case.nprocs == 8
        assert case.per_proc_peak_stack.shape == (8,)

    def test_same_analysis_for_both_strategies(self, runner):
        base = runner.run_case("XENON2", "metis", "mumps-workload")
        mem = runner.run_case("XENON2", "metis", "memory-full")
        assert base.total_factor_entries == pytest.approx(mem.total_factor_entries)

    def test_compare_fields(self, runner):
        cmp = runner.compare("XENON2", "metis")
        for key in ("baseline_peak", "candidate_peak", "gain_percent", "time_loss_percent"):
            assert key in cmp
        assert cmp["gain_percent"] == pytest.approx(
            percentage_decrease(cmp["baseline_peak"], cmp["candidate_peak"])
        )

    def test_split_changes_tree(self, runner):
        plain = runner.analysis("PRE2", "amd", split=False)
        split = runner.analysis("PRE2", "amd", split=True)
        assert split.tree.nnodes >= plain.tree.nnodes

    def test_sweep(self, runner):
        results = runner.sweep(["XENON2"], ["metis"], ["mumps-workload", "memory-full"])
        assert len(results) == 2

    def test_percentage_decrease(self):
        assert percentage_decrease(100, 80) == pytest.approx(20.0)
        assert percentage_decrease(100, 120) == pytest.approx(-20.0)
        assert percentage_decrease(0, 10) == 0.0


class TestTables:
    def test_table1_structure(self, runner):
        rows = tbl.table1(runner, problems=["XENON2", "PRE2"])
        assert set(rows) == {"XENON2", "PRE2"}
        assert rows["XENON2"]["Type"] == "UNS"
        assert rows["XENON2"]["Order"] > 0

    def test_table2_structure(self, runner):
        rows = tbl.table2(runner, problems=["XENON2"], orderings=["metis", "amd"])
        assert set(rows) == {"XENON2"}
        assert set(rows["XENON2"]) == {"METIS", "AMD"}
        for value in rows["XENON2"].values():
            assert isinstance(value, float)

    def test_table3_unsymmetric_default(self, runner):
        rows = tbl.table3(runner, problems=["XENON2"], orderings=["metis"])
        assert "XENON2" in rows

    def test_table4_structure(self, runner):
        rows = tbl.table4(runner, cases=[("XENON2", "metis")])
        label = "XENON2 - METIS"
        assert label in rows
        assert len(rows[label]) == 4
        for value in rows[label].values():
            assert value >= 0

    def test_table5_and_6(self, runner):
        rows5 = tbl.table5(runner, problems=["XENON2"], orderings=["metis"])
        assert "XENON2" in rows5
        rows6 = tbl.table6(runner, problems=["XENON2"], orderings=["metis"])
        assert "XENON2" in rows6

    def test_format_table(self, runner):
        rows = tbl.table1(runner, problems=["XENON2"])
        text = tbl.format_table(rows, title="Table 1")
        assert "Table 1" in text
        assert "XENON2" in text
        assert tbl.format_table({}) == ""


class TestFigures:
    def test_figure1(self):
        data = figs.figure1()
        assert data["tree"].nvars == 6
        assert "ascii" in data

    def test_figure2(self):
        data = figs.figure2(nprocs=4)
        assert data["mapping"].nprocs == 4
        assert "TYPE" in data["ascii"] or "SUBTREE" in data["ascii"]

    def test_figure3_blocking(self):
        data = figs.figure3(npiv=40, nfront=200, nslaves=4)
        assert sum(data["unsymmetric_rows"]) == 160
        assert sum(data["symmetric_rows"]) == 160
        # symmetric blocking is irregular: later blocks hold fewer rows
        assert data["symmetric_rows"][0] >= data["symmetric_rows"][-1]

    def test_figure4_levelling(self):
        data = figs.figure4()
        after = data["memory_after"][1:]
        before = data["memory_before"][1:]
        # levelling must shrink the spread of the candidate memories
        assert (after.max() - after.min()) <= (before.max() - before.min()) + 1e-9

    def test_figure5_runs(self):
        data = figs.figure5(latency=1e-4)
        assert set(data["peaks"]) == {"fresh views", "stale views"}

    def test_figure6_prediction_avoids_p0(self):
        data = figs.figure6()
        assert data["rows_on_p0_with"] < data["rows_on_p0_without"]

    def test_figure7_pools(self):
        data = figs.figure7(nprocs=4)
        assert len(data["pools"]) == 4

    def test_figure8_algorithm2_delays(self):
        data = figs.figure8()
        assert data["lifo_choice_node"] == 3
        assert data["memory_choice_node"] != 3
