"""Tests for the spec mini-language, the registries and spec-aware cache keys."""

import json

import pytest

from repro.ordering import ORDERINGS, canonical_ordering, compute_ordering, resolve_ordering
from repro.pipeline import AnalysisPipeline, CaseSpec
from repro.registry import Registry
from repro.scheduling import (
    STRATEGIES,
    canonical_strategy,
    get_strategy,
    resolve_strategy,
)
from repro.scheduling.hybrid import HybridSlaveSelector
from repro.specs import ParamSpec, SweepSpec, parse_spec, split_spec_list


# --------------------------------------------------------------------------- #
# parse_spec
# --------------------------------------------------------------------------- #
class TestParseSpec:
    def test_bare_name(self):
        spec = parse_spec("memory-full")
        assert spec.name == "memory-full"
        assert spec.params == ()
        assert spec.canonical() == "memory-full"

    def test_params_of_every_type(self):
        spec = parse_spec("hybrid(alpha=0.3, use_predictions=false, seed=7, mode=greedy)")
        assert spec.kwargs == {
            "alpha": 0.3,
            "use_predictions": False,
            "seed": 7,
            "mode": "greedy",
        }
        assert isinstance(spec.kwargs["seed"], int)
        assert isinstance(spec.kwargs["alpha"], float)

    def test_roundtrip_string_object_string(self):
        for text in (
            "memory-full",
            "hybrid(alpha=0.3)",
            "hybrid(alpha=0.25,use_predictions=false)",
            "metis(balance=0.5,leaf_method=degree,leaf_size=32)",
        ):
            spec = parse_spec(text)
            assert parse_spec(spec.canonical()) == spec
            assert spec.canonical() == text.replace(" ", "")

    def test_param_order_is_canonicalised(self):
        a = parse_spec("hybrid(alpha=0.3, use_predictions=true)")
        b = parse_spec("hybrid(use_predictions=true, alpha=0.3)")
        assert a == b
        assert hash(a) == hash(b)
        assert a.canonical() == b.canonical()

    def test_idempotent_on_paramspec(self):
        spec = parse_spec("hybrid(alpha=0.3)")
        assert parse_spec(spec) is spec

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "hybrid(",
            "hybrid(alpha)",
            "hybrid(alpha=0.3))",
            "hybrid(alpha=0.3,alpha=0.4)",
            "hy brid",
            "hybrid(=3)",
            "hybrid(alpha=)",
        ],
    )
    def test_malformed_specs_rejected(self, bad):
        with pytest.raises(ValueError):
            parse_spec(bad)

    def test_to_dict_roundtrip(self):
        spec = parse_spec("hybrid(alpha=0.3)")
        clone = ParamSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec

    def test_equal_values_canonicalise_equally(self):
        # 1 == 1.0 in Python, so the canonical (cache-key) form must agree too
        a = parse_spec("hybrid(alpha=1)")
        b = parse_spec("hybrid(alpha=1.0)")
        assert a == b
        assert a.canonical() == b.canonical() == "hybrid(alpha=1)"
        assert parse_spec("hybrid(alpha=0.5)").canonical() == "hybrid(alpha=0.5)"

    def test_quoted_values_roundtrip_without_escapes(self):
        spec = ParamSpec("x", (("k", "it's fine"),))
        assert parse_spec(spec.canonical()) == spec
        spec = ParamSpec("x", (("k", 'say "hi" now'),))
        assert parse_spec(spec.canonical()) == spec
        with pytest.raises(ValueError, match="both quote"):
            ParamSpec("x", (("k", """both ' and " quotes"""),)).canonical()

    def test_split_spec_list_respects_parens(self):
        parts = split_spec_list("mumps-workload,hybrid(alpha=0.25,use_predictions=false),amd")
        assert parts == ["mumps-workload", "hybrid(alpha=0.25,use_predictions=false)", "amd"]


# --------------------------------------------------------------------------- #
# registries
# --------------------------------------------------------------------------- #
class TestRegistry:
    def test_mapping_view(self):
        registry = Registry("thing")
        registry.add("Alpha", 1, description="first")
        registry.add("beta", 2)
        assert list(registry) == ["Alpha", "beta"]
        assert registry["ALPHA"] == 1
        assert "alpha" in registry and "beta" in registry and "gamma" not in registry
        assert len(registry) == 2
        assert dict(registry.items()) == {"Alpha": 1, "beta": 2}

    def test_did_you_mean(self):
        with pytest.raises(ValueError, match="did you mean 'hybrid'"):
            STRATEGIES.get("hybird")
        with pytest.raises(ValueError, match="did you mean"):
            ORDERINGS.get("metsi")

    def test_register_decorator_uses_docstring(self):
        registry = Registry("fn")

        @registry.register("thing", params={"x": 1})
        def thing(x=1):
            """Does the thing."""

        assert registry.get("THING") is thing
        assert registry.params_of("thing") == {"x": 1}
        assert registry.describe() == [
            {"name": "thing", "description": "Does the thing.", "params": {"x": 1}}
        ]

    def test_builtin_registries_expose_metadata(self):
        strategies = {e["name"]: e for e in STRATEGIES.describe()}
        assert "alpha" in strategies["hybrid"]["params"]
        orderings = {e["name"]: e for e in ORDERINGS.describe()}
        assert "leaf_size" in orderings["metis"]["params"]


# --------------------------------------------------------------------------- #
# parameterized strategies and orderings
# --------------------------------------------------------------------------- #
class TestParameterizedStrategies:
    def test_resolve_binds_params(self):
        strategy, params = resolve_strategy("hybrid(alpha=0.25)")
        assert strategy.name == "hybrid"
        assert params == {"alpha": 0.25}
        slave, _ = strategy.build(**params)
        assert isinstance(slave, HybridSlaveSelector)
        assert slave.alpha == 0.25

    def test_build_rejects_unknown_params(self):
        with pytest.raises(ValueError, match="accepted"):
            resolve_strategy("hybrid(gamma=1)")
        with pytest.raises(ValueError, match="accepted: none"):
            resolve_strategy("mumps-workload(alpha=0.5)")
        with pytest.raises(ValueError, match="accepted"):
            get_strategy("hybrid").build(gamma=1)

    def test_get_strategy_accepts_spec_strings(self):
        assert get_strategy("hybrid(alpha=0.3)").name == "hybrid"

    def test_canonical_binds_defaults(self):
        assert (
            canonical_strategy("hybrid")
            == canonical_strategy("HYBRID(alpha=0.5)")
            == "hybrid(alpha=0.5,use_predictions=true)"
        )
        assert canonical_strategy("hybrid(alpha=0.3)") != canonical_strategy("hybrid")
        assert canonical_strategy("memory-full") == "memory-full"

    def test_ordering_specs(self):
        name, params = resolve_ordering("metis(leaf_size=32)")
        assert name == "metis"
        assert params == {"leaf_size": 32}
        assert canonical_ordering("metis") == canonical_ordering("METIS(leaf_size=64)")
        assert canonical_ordering("metis(leaf_size=32)") != canonical_ordering("metis")
        with pytest.raises(ValueError):
            resolve_ordering("metis(bogus=1)")

    def test_compute_ordering_with_spec_params(self, small_grid=None):
        from repro.sparse import grid_2d

        pattern = grid_2d(8, 8)
        a = compute_ordering(pattern, "metis(leaf_size=16)")
        b = compute_ordering(pattern, "metis", leaf_size=16)
        assert (a == b).all()


# --------------------------------------------------------------------------- #
# cache keys are sensitive to spec params and per-case overrides
# --------------------------------------------------------------------------- #
def engine(**kwargs) -> AnalysisPipeline:
    kwargs.setdefault("nprocs", 4)
    kwargs.setdefault("scale", 0.2)
    return AnalysisPipeline(**kwargs)


class TestSpecCacheKeys:
    def test_strategy_params_change_simulation_key(self):
        e = engine()
        a = CaseSpec("XENON2", "metis", "hybrid(alpha=0.3)")
        b = CaseSpec("XENON2", "metis", "hybrid(alpha=0.5)")
        bare = CaseSpec("XENON2", "metis", "hybrid")
        # an alpha=0.3 result must never be addressed by the alpha=0.5 key …
        assert e.stage_key("simulate", a) != e.stage_key("simulate", b)
        # … while the explicit default and the bare name share one identity
        assert e.stage_key("simulate", b) == e.stage_key("simulate", bare)
        # the analysis phase is strategy-independent and stays shared
        for stage in ("pattern", "ordering", "tree", "split", "mapping"):
            assert e.stage_key(stage, a) == e.stage_key(stage, b)

    def test_ordering_params_change_ordering_key_downstream(self):
        e = engine()
        a = CaseSpec("XENON2", "metis")
        b = CaseSpec("XENON2", "metis(leaf_size=32)")
        c = CaseSpec("XENON2", "METIS(leaf_size=64)")
        assert e.stage_key("pattern", a) == e.stage_key("pattern", b)
        for stage in ("ordering", "tree", "split", "mapping", "simulate"):
            assert e.stage_key(stage, a) != e.stage_key(stage, b)
            assert e.stage_key(stage, a) == e.stage_key(stage, c)

    def test_nprocs_override_changes_mapping_key_only(self):
        e = engine(nprocs=4)
        base = CaseSpec("XENON2", "metis")
        override = CaseSpec("XENON2", "metis", nprocs=8)
        for stage in ("pattern", "ordering", "tree", "split"):
            assert e.stage_key(stage, base) == e.stage_key(stage, override)
        for stage in ("mapping", "simulate"):
            assert e.stage_key(stage, base) != e.stage_key(stage, override)
        # an override equal to the engine default is a no-op
        same = CaseSpec("XENON2", "metis", nprocs=4)
        for stage in ("pattern", "ordering", "tree", "split", "mapping", "simulate"):
            assert e.stage_key(stage, base) == e.stage_key(stage, same)

    def test_scale_override_changes_everything(self):
        e = engine(scale=0.2)
        base = CaseSpec("XENON2", "metis")
        override = CaseSpec("XENON2", "metis", scale=0.25)
        for stage in ("pattern", "ordering", "tree", "split", "mapping", "simulate"):
            assert e.stage_key(stage, base) != e.stage_key(stage, override)

    def test_split_threshold_override(self):
        e = engine()
        base = CaseSpec("XENON2", "metis", split=True)
        override = CaseSpec("XENON2", "metis", split=True, split_threshold=2_000)
        assert e.stage_key("split", base) != e.stage_key("split", override)
        assert e.stage_key("tree", base) == e.stage_key("tree", override)

    def test_hybrid_variant_not_served_from_other_alpha_cache(self):
        # end to end: running alpha extremes through one engine must yield the
        # metrics a fresh single-case engine computes, not a cache cross-hit
        shared = engine(nprocs=4)
        extreme = CaseSpec("XENON2", "metis", "hybrid(alpha=0.0)")
        lone = engine(nprocs=4).run_case(extreme)
        shared.run_case(CaseSpec("XENON2", "metis", "hybrid(alpha=1.0)"))
        mixed = shared.run_case(extreme)
        assert mixed.max_peak_stack == lone.max_peak_stack
        assert mixed.total_time == lone.total_time


# --------------------------------------------------------------------------- #
# CaseSpec / SweepSpec serialization
# --------------------------------------------------------------------------- #
class TestSerialization:
    def test_case_spec_roundtrip(self):
        spec = CaseSpec("XENON2", "metis", "hybrid(alpha=0.3)", split=True, nprocs=16, scale=0.5)
        clone = CaseSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec

    def test_case_spec_dict_omits_defaults(self):
        assert CaseSpec("XENON2", "metis").to_dict() == {"problem": "XENON2", "ordering": "metis"}

    def test_case_spec_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown CaseSpec fields"):
            CaseSpec.from_dict({"problem": "XENON2", "ordering": "metis", "bogus": 1})

    def test_sweep_spec_expand_grid_order(self):
        sweep = SweepSpec(
            problems="XENON2",
            strategies=["hybrid(alpha=0.25)", "hybrid(alpha=0.75)"],
            nprocs=[8, 16],
        )
        specs = sweep.expand()
        assert len(specs) == len(sweep) == 4
        assert [(s.strategy, s.nprocs) for s in specs] == [
            ("hybrid(alpha=0.25)", 8),
            ("hybrid(alpha=0.25)", 16),
            ("hybrid(alpha=0.75)", 8),
            ("hybrid(alpha=0.75)", 16),
        ]

    def test_sweep_spec_roundtrip(self):
        sweep = SweepSpec(problems=["XENON2", "PRE2"], split=[False, True], nprocs=[4, None])
        clone = SweepSpec.from_dict(json.loads(json.dumps(sweep.to_dict())))
        assert clone.expand() == sweep.expand()

    def test_sweep_spec_needs_problems(self):
        with pytest.raises(ValueError):
            SweepSpec()

    def test_analysis_signature_extends_only_when_overridden(self):
        plain = CaseSpec("XENON2", "metis")
        assert plain.analysis_signature() == ("XENON2", "metis", False)
        override = CaseSpec("XENON2", "metis", nprocs=8)
        assert override.analysis_signature() != plain.analysis_signature()
