"""Crash tolerance of the execution paths and queue backpressure.

A SIGKILLed worker (the OOM-killer's signature) must never wedge a sweep:
:class:`ProcessShardBackend` surfaces the dead pool as a retryable
:class:`WorkerCrashError` (and drops it, so the retry builds a fresh one),
:class:`SweepExecutor` rebuilds its pool mid-sweep and resubmits exactly the
unfinished analysis groups, and the service daemon counts the crash toward
the job's ``max_attempts`` like any other shard failure.

The backpressure half: ``max_pending`` bounds the queue depth —
``POST /jobs`` answers 503 with a ``Retry-After`` header while saturated,
and ``/healthz`` reports ``queue_depth``/``saturated``.
"""

from __future__ import annotations

import json
import os
import signal
import time
import urllib.error
import urllib.request

import pytest

from repro.pipeline.engine import AnalysisPipeline
from repro.pipeline.executor import SweepExecutor, WorkerCrashError
from repro.pipeline.stage import CaseSpec
from repro.service import SweepService, make_server
from repro.service.daemon import QueueSaturated
from repro.service.shards import ProcessShardBackend, ShardBackend

NPROCS = 4
SCALE = 0.2


def _engine() -> AnalysisPipeline:
    return AnalysisPipeline(nprocs=NPROCS, scale=SCALE, cache_dir="")


def _specs(strategies) -> list[CaseSpec]:
    return [CaseSpec("XENON2", "metis", s) for s in strategies]


def _kill_one_worker(pool) -> None:
    """SIGKILL one live worker process of a concurrent.futures pool."""
    for pid, proc in pool._processes.items():
        if proc.is_alive():
            os.kill(pid, signal.SIGKILL)
            return
    raise AssertionError("no live worker process to kill")


def _wait_terminal(service: SweepService, job_id: str, timeout: float = 120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = service.queue.get(job_id)
        if record.state in ("done", "failed"):
            return record
        time.sleep(0.01)
    raise AssertionError(f"job {job_id} did not finish within {timeout}s")


# --------------------------------------------------------------------------- #
# ProcessShardBackend
# --------------------------------------------------------------------------- #
class TestShardBackendCrash:
    def test_sigkilled_worker_surfaces_and_recovers(self):
        engine = _engine()
        backend = ProcessShardBackend(engine, jobs=1)
        try:
            specs = _specs(["memory-full"])
            baseline = backend.run_shard(specs)  # warms the pool
            _kill_one_worker(backend._pool)
            with pytest.raises(WorkerCrashError, match="worker process died"):
                backend.run_shard(specs)
            # the dead pool was dropped, so the retry builds a fresh one
            assert backend._pool is None
            recovered = backend.run_shard(specs)
            assert recovered[0].to_dict() == baseline[0].to_dict()
        finally:
            backend.close()

    def test_worker_crash_error_is_retryable_runtime_error(self):
        # the daemon's retry loop catches Exception: the crash must be one
        assert issubclass(WorkerCrashError, RuntimeError)


# --------------------------------------------------------------------------- #
# SweepExecutor
# --------------------------------------------------------------------------- #
class TestExecutorCrashRecovery:
    STRATEGIES = ["memory-full", "mumps-workload", "memory-basic", "memory-task"]

    def test_pool_broken_between_runs_is_rebuilt(self):
        # distinct orderings → one analysis group per case → parallel path
        specs = [
            CaseSpec("XENON2", o, "memory-full")
            for o in ("metis", "amd", "amf", "pord")
        ]
        serial = [r.to_dict() for r in _engine().run_cases_batched(specs)]
        with SweepExecutor(_engine(), jobs=2) as executor:
            first = executor.run(specs)
            assert [r.to_dict() for r in first] == serial
            _kill_one_worker(executor._pool)
            # the killed worker breaks the pool; the next run must rebuild
            # it transparently and still deliver every result
            second = executor.run(specs)
            assert [r.to_dict() for r in second] == serial

    def test_kill_mid_sweep_recovers_and_matches_serial(self):
        specs = [
            CaseSpec("XENON2", o, s)
            for o in ("metis", "amd", "amf", "pord")
            for s in ("memory-full", "mumps-workload")
        ]
        serial_engine = _engine()
        serial = [r.to_dict() for r in [serial_engine.run_case(s) for s in specs]]
        killed = {"done": False}

        with SweepExecutor(_engine(), jobs=2) as executor:

            def kill_once(index, spec, result):
                if not killed["done"]:
                    killed["done"] = True
                    _kill_one_worker(executor._pool)

            results = executor.run(specs, on_result=kill_once)
        assert killed["done"]
        assert [r.to_dict() for r in results] == serial


# --------------------------------------------------------------------------- #
# daemon: a crashed shard counts toward max_attempts
# --------------------------------------------------------------------------- #
class CrashOnceBackend(ShardBackend):
    def __init__(self, engine) -> None:
        self.engine = engine
        self.crashes = 0

    def run_shard(self, specs, *, timeout_s=None):
        if self.crashes == 0:
            self.crashes += 1
            raise WorkerCrashError("worker process died (simulated)")
        return self.engine.run_cases_batched(list(specs))


class TestDaemonCrashRetry:
    def test_crashed_shard_retries_and_finishes(self, tmp_path):
        service = SweepService(
            data_dir=tmp_path / "svc", nprocs=NPROCS, scale=SCALE,
            journal_fsync=False, retry_base_delay=0.01,
        )
        service.backend = CrashOnceBackend(service.engine)
        with service:
            record = service.submit(
                {"sweep": {"problems": ["XENON2"], "strategies": ["memory-full"]},
                 "max_attempts": 3}
            )
            final = _wait_terminal(service, record.id)
        assert final.state == "done"
        assert final.attempts == 1  # the crash was journaled as an attempt
        assert service.backend.crashes == 1

    def test_crash_budget_exhausted_fails_with_crash_error(self, tmp_path):
        service = SweepService(
            data_dir=tmp_path / "svc", nprocs=NPROCS, scale=SCALE,
            journal_fsync=False, retry_base_delay=0.01,
        )

        class AlwaysCrash(ShardBackend):
            def run_shard(self, specs, *, timeout_s=None):
                raise WorkerCrashError("worker process died (simulated)")

        service.backend = AlwaysCrash()
        with service:
            record = service.submit(
                {"sweep": {"problems": ["XENON2"], "strategies": ["memory-full"]},
                 "max_attempts": 2}
            )
            final = _wait_terminal(service, record.id)
        assert final.state == "failed"
        assert "WorkerCrashError" in final.error


# --------------------------------------------------------------------------- #
# backpressure
# --------------------------------------------------------------------------- #
def _job_payload() -> dict:
    return {"sweep": {"problems": ["XENON2"], "strategies": ["memory-full"]}}


class TestBackpressure:
    def test_submit_rejected_at_max_pending(self, tmp_path):
        # never started: jobs stay queued, so the depth is deterministic
        service = SweepService(
            data_dir=tmp_path / "svc", nprocs=NPROCS, scale=SCALE,
            journal_fsync=False, max_pending=2,
        )
        try:
            service.submit(_job_payload())
            service.submit(_job_payload())
            assert service.saturated()
            with pytest.raises(QueueSaturated, match="saturated"):
                service.submit(_job_payload())
            stats = service.stats()
            assert stats["queue_depth"] == 2
            assert stats["saturated"] is True
            assert stats["max_pending"] == 2
        finally:
            service.stop()

    def test_unbounded_by_default(self, tmp_path):
        service = SweepService(
            data_dir=tmp_path / "svc", nprocs=NPROCS, scale=SCALE,
            journal_fsync=False,
        )
        try:
            for _ in range(5):
                service.submit(_job_payload())
            assert service.saturated() is False
            assert service.stats()["max_pending"] is None
        finally:
            service.stop()

    def test_invalid_max_pending_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="max_pending must be >= 1"):
            SweepService(
                data_dir=tmp_path / "svc", nprocs=NPROCS, scale=SCALE,
                journal_fsync=False, max_pending=0,
            )

    def test_http_503_with_retry_after(self, tmp_path):
        service = SweepService(
            data_dir=tmp_path / "svc", nprocs=NPROCS, scale=SCALE,
            journal_fsync=False, max_pending=1,
        )
        server = make_server(service, port=0, quiet=True)
        server.serve_background()
        base = f"http://127.0.0.1:{server.port}"
        try:
            body = json.dumps(_job_payload()).encode()

            def post():
                request = urllib.request.Request(
                    f"{base}/jobs", data=body,
                    headers={"Content-Type": "application/json"},
                )
                return urllib.request.urlopen(request, timeout=10)

            first = post()
            assert first.status == 202
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                post()
            response = excinfo.value
            assert response.code == 503
            assert response.headers["Retry-After"] == "5"
            payload = json.loads(response.read())
            assert "saturated" in payload["error"]
            assert payload["retry_after"] == 5.0
            # healthz reports the saturation out-of-band
            health = json.loads(
                urllib.request.urlopen(f"{base}/healthz", timeout=10).read()
            )
            assert health["queue_depth"] == 1
            assert health["saturated"] is True
        finally:
            server.shutdown()
            server.server_close()
            service.stop()
