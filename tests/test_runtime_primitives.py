"""Tests for the runtime primitives: events, messages, memory state, views, tasks."""

import numpy as np
import pytest

from repro.runtime import (
    CommunicationModel,
    EventQueue,
    ProcessorMemory,
    SimulationConfig,
    SystemView,
    Task,
    TaskKind,
)
from repro.runtime.processor import ProcessorState
from repro.runtime.trace import SimulationTrace, TraceBuffer


class TestEventQueue:
    def test_fifo_within_same_time(self):
        q = EventQueue()
        q.push(1.0, "a")
        q.push(1.0, "b")
        q.push(0.5, "c")
        assert [q.pop().payload for _ in range(3)] == ["c", "a", "b"]

    def test_clock_advances(self):
        q = EventQueue()
        q.push(2.0, "x")
        assert q.now == 0.0
        q.pop()
        assert q.now == 2.0

    def test_push_after(self):
        q = EventQueue()
        q.push(1.0, "x")
        q.pop()
        ev = q.push_after(0.5, "y")
        assert ev.time == pytest.approx(1.5)

    def test_cannot_schedule_in_past(self):
        q = EventQueue()
        q.push(1.0, "x")
        q.pop()
        with pytest.raises(ValueError):
            q.push(0.5, "y")
        with pytest.raises(ValueError):
            q.push_after(-1.0, "y")

    def test_pop_empty_raises(self):
        with pytest.raises(IndexError):
            EventQueue().pop()

    def test_len_bool_drain(self):
        q = EventQueue()
        assert not q
        q.push(1.0, "a")
        q.push(2.0, "b")
        assert len(q) == 2
        assert [e.payload for e in q.drain()] == ["a", "b"]
        assert not q


class TestCommunicationModel:
    def test_transfer_time_monotone(self):
        comm = CommunicationModel(latency=1e-5, bandwidth_entries=1e6)
        assert comm.transfer_time(0) == pytest.approx(1e-5)
        assert comm.transfer_time(1000) > comm.transfer_time(10)

    def test_notification_time_override(self):
        comm = CommunicationModel(latency=1e-5, bandwidth_entries=1e6, small_message_latency=3e-6)
        assert comm.notification_time() == pytest.approx(3e-6)

    def test_invalid(self):
        with pytest.raises(ValueError):
            CommunicationModel(latency=-1)
        with pytest.raises(ValueError):
            CommunicationModel(bandwidth_entries=0)
        with pytest.raises(ValueError):
            CommunicationModel().transfer_time(-5)


class TestProcessorMemory:
    def test_peak_tracking(self):
        mem = ProcessorMemory(proc=0)
        mem.allocate_stack(100, now=1.0)
        mem.allocate_stack(50, now=2.0)
        mem.free_stack(120, now=3.0)
        assert mem.stack == pytest.approx(30)
        assert mem.peak_stack == pytest.approx(150)
        assert mem.peak_time == pytest.approx(2.0)

    def test_negative_stack_raises(self):
        mem = ProcessorMemory(proc=0)
        mem.allocate_stack(10, now=0.0)
        with pytest.raises(RuntimeError):
            mem.free_stack(20, now=1.0)

    def test_factors_grow_only(self):
        mem = ProcessorMemory(proc=0)
        mem.add_factors(10, now=0.0)
        mem.add_factors(5, now=1.0)
        assert mem.factors == 15
        assert mem.total == 15
        with pytest.raises(ValueError):
            mem.add_factors(-1, now=2.0)

    def test_trace_recording(self):
        mem = ProcessorMemory(proc=0, track_trace=True)
        mem.allocate_stack(10, now=0.5)
        mem.add_factors(3, now=1.0)
        mem.free_stack(10, now=1.5)
        assert len(mem.trace_times) == 3
        assert mem.trace_stack[-1] == pytest.approx(0.0)
        assert mem.trace_factors[-1] == pytest.approx(3.0)

    def test_invalid_arguments(self):
        mem = ProcessorMemory(proc=0)
        with pytest.raises(ValueError):
            mem.allocate_stack(-1, 0.0)
        with pytest.raises(ValueError):
            mem.free_stack(-1, 0.0)


class TestTraceBuffer:
    def test_append_and_views(self):
        buf = TraceBuffer(capacity=4)
        buf.append(0.0, 10.0, 0.0)
        buf.append(1.5, 4.0, 6.0)
        assert len(buf) == 2
        np.testing.assert_array_equal(buf.times, [0.0, 1.5])
        np.testing.assert_array_equal(buf.stack, [10.0, 4.0])
        np.testing.assert_array_equal(buf.factors, [0.0, 6.0])

    def test_grows_past_initial_capacity(self):
        buf = TraceBuffer(capacity=2)
        for i in range(100):
            buf.append(float(i), float(i % 7), float(i))
        assert len(buf) == 100
        np.testing.assert_array_equal(buf.times, np.arange(100.0))
        assert buf.times[-1] == 99.0
        assert buf.stack[13] == 13 % 7

    def test_views_are_zero_copy(self):
        buf = TraceBuffer(capacity=8)
        buf.append(0.0, 1.0, 2.0)
        assert buf.times.base is buf._data
        assert buf.stack.base is buf._data

    def test_from_buffers(self):
        bufs = [TraceBuffer(capacity=2) for _ in range(2)]
        bufs[0].append(0.0, 5.0, 0.0)
        bufs[0].append(2.0, 0.0, 5.0)
        trace = SimulationTrace.from_buffers(bufs)
        assert trace.nprocs == 2
        assert trace.peak_stack(0) == 5.0
        assert trace.peak_stack(1) == 0.0
        np.testing.assert_array_equal(trace.times[0], [0.0, 2.0])
        assert trace.times[1].size == 0


class TestSystemView:
    def test_defaults(self):
        view = SystemView(nprocs=4, owner=1)
        assert view.memory.shape == (4,)
        assert view.effective_memory(2) == 0.0

    def test_effective_memory_composition(self):
        view = SystemView(nprocs=3, owner=0)
        view.set_memory(1, 100)
        view.set_subtree_peak(1, 50)
        view.set_predicted_master(1, 25)
        assert view.instantaneous_memory(1) == 100
        assert view.effective_memory(1) == 175
        assert view.effective_memory(1, with_predictions=False) == 100

    def test_add_memory_clamped(self):
        view = SystemView(nprocs=2, owner=0)
        view.add_memory(1, -50)
        assert view.memory[1] == 0.0
        view.add_memory(1, 30)
        assert view.memory[1] == 30.0

    def test_negative_values_clamped(self):
        view = SystemView(nprocs=2, owner=0)
        view.set_load(1, -5)
        view.set_subtree_peak(1, -5)
        view.set_predicted_master(1, -5)
        assert view.load[1] == 0.0
        assert view.subtree_peak[1] == 0.0
        assert view.predicted_master[1] == 0.0

    def test_snapshot_copies(self):
        view = SystemView(nprocs=2, owner=0)
        snap = view.snapshot()
        snap["memory"][0] = 999
        assert view.memory[0] == 0.0


class TestTasksAndProcessorState:
    def test_task_subtree_flag(self):
        t = Task(kind=TaskKind.TYPE1, node=3, proc=0, flops=10, memory_cost=5, in_subtree=2)
        assert t.is_subtree_task
        t2 = Task(kind=TaskKind.TYPE2_MASTER, node=3, proc=0, flops=10, memory_cost=5)
        assert not t2.is_subtree_task

    def test_processor_pool_stack_semantics(self):
        p = ProcessorState(proc=0, nprocs=2)
        a = Task(kind=TaskKind.TYPE1, node=0, proc=0, flops=1, memory_cost=1)
        b = Task(kind=TaskKind.TYPE1, node=1, proc=0, flops=1, memory_cost=1)
        p.push_ready_task(a)
        p.push_ready_task(b)
        assert p.has_work()
        assert p.pop_task(len(p.pool) - 1) is b
        assert p.pop_task(0) is a
        assert not p.has_work()

    def test_local_memory_for_decisions(self):
        p = ProcessorState(proc=0, nprocs=2)
        p.memory.allocate_stack(100, 0.0)
        assert p.local_memory_for_decisions() == pytest.approx(100)
        p.current_subtree = 5
        p.current_subtree_peak = 40
        assert p.local_memory_for_decisions() == pytest.approx(140)

    def test_observed_peak(self):
        p = ProcessorState(proc=0, nprocs=2)
        p.memory.allocate_stack(10, 0.0)
        p.note_observed_peak()
        p.memory.free_stack(10, 1.0)
        p.note_observed_peak()
        assert p.observed_peak == pytest.approx(10)


class TestSimulationConfig:
    def test_defaults_valid(self):
        cfg = SimulationConfig()
        assert cfg.nprocs == 32
        assert cfg.effective_max_slaves() == 31

    def test_max_slaves_bound(self):
        cfg = SimulationConfig(nprocs=8, max_slaves_per_node=4)
        assert cfg.effective_max_slaves() == 4
        cfg2 = SimulationConfig(nprocs=8, max_slaves_per_node=100)
        assert cfg2.effective_max_slaves() == 7

    def test_invalid(self):
        with pytest.raises(ValueError):
            SimulationConfig(nprocs=0)
        with pytest.raises(ValueError):
            SimulationConfig(flop_rate=-1)
        with pytest.raises(ValueError):
            SimulationConfig(latency=-1)
        with pytest.raises(ValueError):
            SimulationConfig(min_rows_per_slave=0)
        with pytest.raises(ValueError):
            SimulationConfig(max_slaves_per_node=-1)
