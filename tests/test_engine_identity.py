"""The fast event engine must be an exact drop-in for the reference engine.

PR 5 rewrote the simulator hot path: flat-tuple events with integer tags and
a dispatch table, zero-latency broadcast coalescing, precomputed per-node
geometry and inlined task selection.  The historical event core stays
reachable as ``engine="reference"`` (or ``REPRO_SIM_ENGINE=reference``), and
this suite pins the two engines *bit-identical* — every field of
:class:`SimulationResult`, including ``message_counts`` and
``slave_selections``, over a randomized scenario matrix of tree shapes ×
strategies × processor counts × latency configurations.

The slave selectors' vectorized paths are pinned to their scalar references
the same way, over randomized selection contexts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mapping import compute_mapping
from repro.runtime import (
    FactorizationSimulator,
    SimulationConfig,
    resolve_engine,
)
from repro.scheduling import get_strategy
from repro.scheduling.base import SlaveSelectionContext
from repro.scheduling.hybrid import HybridSlaveSelector
from repro.scheduling.memory_slave import MemorySlaveSelector
from repro.scheduling.workload import WorkloadSlaveSelector
from repro.sparse import grid_2d
from repro.symbolic import AssemblyTree, build_assembly_tree


# --------------------------------------------------------------------------- #
# scenario matrix
# --------------------------------------------------------------------------- #
STRATEGIES = [
    "mumps-workload",
    "memory-basic",
    "memory-slave",
    "memory-task",
    "memory-full",
    "hybrid",
]

#: (seed, nprocs, strategy, latency, memory_message_latency, track_traces)
#: — zero-latency rows are the broadcast-coalescing stress (every broadcast
#: of a timestamp lands at the same instant), high-latency rows maximise
#: view staleness, and the traced rows also compare the full memory traces.
SCENARIOS = [
    (0, 2, "mumps-workload", 20.0e-6, 20.0e-6, False),
    (1, 3, "memory-basic", 20.0e-6, 20.0e-6, False),
    (2, 4, "memory-slave", 0.0, 0.0, False),
    (3, 4, "memory-task", 20.0e-6, 0.0, False),
    (4, 8, "memory-full", 0.0, 0.0, True),
    (5, 8, "hybrid", 20.0e-6, 20.0e-6, False),
    (6, 4, "memory-full", 1.0e-3, 1.0e-3, False),
    (7, 16, "memory-full", 20.0e-6, 20.0e-6, False),
    (8, 5, "mumps-workload", 0.0, 0.0, False),
    (9, 4, "hybrid", 0.0, 0.0, True),
    (10, 2, "memory-task", 1.0e-3, 20.0e-6, False),
    (11, 8, "memory-slave", 20.0e-6, 1.0e-3, False),
    (12, 6, "memory-full", 0.0, 20.0e-6, False),
    (13, 3, "hybrid", 1.0e-3, 0.0, False),
    (14, 16, "mumps-workload", 0.0, 0.0, False),
    (15, 7, "memory-basic", 20.0e-6, 20.0e-6, False),
]


def random_tree(seed: int) -> AssemblyTree:
    """A random valid assembly tree (postordered forest, random geometry)."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(8, 70))
    parent = np.full(n, -1, dtype=np.int64)
    for j in range(n - 1):
        # mostly one root; an occasional cut makes a forest
        parent[j] = -1 if rng.random() < 0.04 else int(rng.integers(j + 1, n))
    npiv = rng.integers(1, 18, size=n)
    nfront = npiv + rng.integers(0, 40, size=n)
    symmetric = bool(rng.random() < 0.5)
    return AssemblyTree(npiv, nfront, parent, symmetric=symmetric, nvars=int(npiv.sum()))


def run_engine(tree, config, mapping, strategy: str, engine: str):
    slave, task = get_strategy(strategy).build()
    return FactorizationSimulator(
        tree,
        config=config,
        mapping=mapping,
        slave_selector=slave,
        task_selector=task,
        engine=engine,
    ).run()


def assert_identical(fast, ref, *, traces: bool = False) -> None:
    np.testing.assert_array_equal(fast.per_proc_peak_stack, ref.per_proc_peak_stack)
    np.testing.assert_array_equal(fast.per_proc_factor_entries, ref.per_proc_factor_entries)
    np.testing.assert_array_equal(fast.per_proc_tasks, ref.per_proc_tasks)
    assert fast.total_time == ref.total_time
    assert fast.message_counts == ref.message_counts
    assert fast.slave_selections == ref.slave_selections
    assert fast.nodes == ref.nodes
    assert fast.total_factor_entries == ref.total_factor_entries
    if traces:
        assert fast.trace is not None and ref.trace is not None
        for p in range(fast.nprocs):
            np.testing.assert_array_equal(fast.trace.times[p], ref.trace.times[p])
            np.testing.assert_array_equal(fast.trace.stack[p], ref.trace.stack[p])
            np.testing.assert_array_equal(fast.trace.factors[p], ref.trace.factors[p])


class TestEngineIdentityFuzz:
    """Randomized scenario matrix: fast engine ≡ reference engine, bitwise."""

    @pytest.mark.parametrize(
        "seed,nprocs,strategy,latency,mem_latency,traces", SCENARIOS
    )
    def test_random_scenarios(self, seed, nprocs, strategy, latency, mem_latency, traces):
        tree = random_tree(seed)
        config = SimulationConfig(
            nprocs=nprocs,
            type2_front_threshold=24,
            type2_cb_threshold=6,
            type3_front_threshold=72,
            latency=latency,
            memory_message_latency=mem_latency,
            min_rows_per_slave=2,
            track_traces=traces,
        )
        mapping = compute_mapping(
            tree,
            nprocs,
            type2_front_threshold=config.type2_front_threshold,
            type2_cb_threshold=config.type2_cb_threshold,
            type3_front_threshold=config.type3_front_threshold,
        )
        fast = run_engine(tree, config, mapping, strategy, "fast")
        ref = run_engine(tree, config, mapping, strategy, "reference")
        assert_identical(fast, ref, traces=traces)

    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_matrix_built_tree(self, strategy):
        """One realistic tree (pattern → analysis) per strategy, both engines."""
        pattern = grid_2d(14, 14)
        tree = build_assembly_tree(pattern, None, keep_variables=False)
        config = SimulationConfig.paper(nprocs=4, type2_front_threshold=40, type2_cb_threshold=8)
        mapping = compute_mapping(tree, 4, **config.mapping_params())
        fast = run_engine(tree, config, mapping, strategy, "fast")
        ref = run_engine(tree, config, mapping, strategy, "reference")
        assert_identical(fast, ref)


class TestEngineSelection:
    def test_env_var_selects_reference(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "reference")
        assert resolve_engine() == "reference"
        tree = random_tree(3)
        config = SimulationConfig(nprocs=2)
        slave, task = get_strategy("memory-full").build()
        sim = FactorizationSimulator(
            tree, config=config, slave_selector=slave, task_selector=task
        )
        assert sim.engine == "reference"

    def test_default_is_fast(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_ENGINE", raising=False)
        assert resolve_engine() == "fast"

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "reference")
        assert resolve_engine("fast") == "fast"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown simulator engine"):
            resolve_engine("warp")


# --------------------------------------------------------------------------- #
# selector-level equivalence: vectorized ≡ scalar reference
# --------------------------------------------------------------------------- #
def random_context(seed: int) -> SlaveSelectionContext:
    rng = np.random.default_rng(seed)
    nprocs = int(rng.integers(2, 40))
    master = int(rng.integers(0, nprocs))
    pool = [q for q in range(nprocs) if q != master]
    ncand = int(rng.integers(1, len(pool) + 1))
    candidates = list(rng.choice(pool, size=ncand, replace=False))
    candidates = [int(q) for q in candidates]
    npiv = int(rng.integers(1, 60))
    ncb = int(rng.integers(0, 120))
    memory = rng.uniform(0.0, 5e4, size=nprocs)
    # exercise exact ties in the sort and in the levelling boundary
    if nprocs > 4 and rng.random() < 0.5:
        memory[:: 2] = memory[0]
    return SlaveSelectionContext(
        master_proc=master,
        node=0,
        npiv=npiv,
        nfront=npiv + ncb,
        ncb=ncb,
        symmetric=bool(rng.random() < 0.5),
        candidates=candidates,
        memory_view=memory,
        effective_memory_view=memory + rng.uniform(0.0, 1e4, size=nprocs),
        load_view=rng.uniform(0.0, 1e9, size=nprocs),
        own_load=float(rng.uniform(0.0, 1e9)),
        own_memory=float(rng.uniform(0.0, 5e4)),
        min_rows_per_slave=int(rng.integers(1, 8)),
        max_slaves=int(rng.integers(1, nprocs)),
    )


class TestSelectorVectorization:
    @pytest.mark.parametrize("seed", range(60))
    def test_memory_selector_matches_scalar(self, seed):
        ctx = random_context(seed)
        for use_predictions in (False, True):
            vec = MemorySlaveSelector(use_predictions=use_predictions).select(ctx)
            ref = MemorySlaveSelector(
                use_predictions=use_predictions, vectorized=False
            ).select(ctx)
            assert vec == ref

    @pytest.mark.parametrize("seed", range(60))
    def test_workload_selector_matches_scalar(self, seed):
        ctx = random_context(seed + 1000)
        for proportional in (False, True):
            vec = WorkloadSlaveSelector(proportional=proportional).select(ctx)
            ref = WorkloadSlaveSelector(
                proportional=proportional, vectorized=False
            ).select(ctx)
            assert vec == ref

    @pytest.mark.parametrize("seed", range(30))
    def test_hybrid_selector_matches_scalar(self, seed):
        ctx = random_context(seed + 2000)
        for alpha in (0.0, 0.3, 1.0):
            vec = HybridSlaveSelector(alpha=alpha).select(ctx)
            ref = HybridSlaveSelector(alpha=alpha, vectorized=False).select(ctx)
            assert vec == ref

    def test_empty_candidates_and_zero_rows(self):
        ctx = random_context(7)
        empty = SlaveSelectionContext(
            master_proc=ctx.master_proc,
            node=0,
            npiv=ctx.npiv,
            nfront=ctx.nfront,
            ncb=0,
            symmetric=ctx.symmetric,
            candidates=[],
            memory_view=ctx.memory_view,
            effective_memory_view=ctx.effective_memory_view,
            load_view=ctx.load_view,
            own_load=ctx.own_load,
            own_memory=ctx.own_memory,
        )
        for selector in (MemorySlaveSelector(), WorkloadSlaveSelector(), HybridSlaveSelector()):
            assert selector.select(empty) == []
