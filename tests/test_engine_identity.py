"""Every optimized event engine must be an exact drop-in for the reference.

PR 5 rewrote the simulator hot path (flat-tuple events, dispatch table,
broadcast coalescing, inlined task selection → ``flat``); PR 6 added the
structure-of-arrays engines (``soa`` and its numba-kernel twin ``jit``) and
the batched sweep path.  The historical event core stays reachable as
``engine="reference"`` (or ``REPRO_SIM_ENGINE=reference``), and this suite
pins every other engine *bit-identical* to it — every field of
:class:`SimulationResult`, including ``message_counts`` and
``slave_selections``, over a randomized scenario matrix of tree shapes ×
strategies × processor counts × latency configurations.  ``jit`` runs here
whether or not numba is installed: without it the engine must degrade to the
pure-Python SoA loop with unchanged results.

The batched path (one shared geometry + view bank for many runs) is pinned
to the one-simulator-per-run path, and the slave selectors' vectorized paths
to their scalar references, the same way.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.mapping import compute_mapping
from repro.runtime import (
    BatchScenario,
    FactorizationSimulator,
    SimulationConfig,
    resolve_engine,
    run_batch,
)
from repro.scheduling import get_strategy
from repro.scheduling.base import SlaveSelectionContext
from repro.scheduling.hybrid import HybridSlaveSelector
from repro.scheduling.memory_slave import MemorySlaveSelector
from repro.scheduling.workload import WorkloadSlaveSelector
from repro.sparse import grid_2d
from repro.symbolic import AssemblyTree, build_assembly_tree


# --------------------------------------------------------------------------- #
# scenario matrix
# --------------------------------------------------------------------------- #
STRATEGIES = [
    "mumps-workload",
    "memory-basic",
    "memory-slave",
    "memory-task",
    "memory-full",
    "hybrid",
]

#: (seed, nprocs, strategy, latency, memory_message_latency, track_traces)
#: — zero-latency rows are the broadcast-coalescing stress (every broadcast
#: of a timestamp lands at the same instant), high-latency rows maximise
#: view staleness, and the traced rows also compare the full memory traces.
SCENARIOS = [
    (0, 2, "mumps-workload", 20.0e-6, 20.0e-6, False),
    (1, 3, "memory-basic", 20.0e-6, 20.0e-6, False),
    (2, 4, "memory-slave", 0.0, 0.0, False),
    (3, 4, "memory-task", 20.0e-6, 0.0, False),
    (4, 8, "memory-full", 0.0, 0.0, True),
    (5, 8, "hybrid", 20.0e-6, 20.0e-6, False),
    (6, 4, "memory-full", 1.0e-3, 1.0e-3, False),
    (7, 16, "memory-full", 20.0e-6, 20.0e-6, False),
    (8, 5, "mumps-workload", 0.0, 0.0, False),
    (9, 4, "hybrid", 0.0, 0.0, True),
    (10, 2, "memory-task", 1.0e-3, 20.0e-6, False),
    (11, 8, "memory-slave", 20.0e-6, 1.0e-3, False),
    (12, 6, "memory-full", 0.0, 20.0e-6, False),
    (13, 3, "hybrid", 1.0e-3, 0.0, False),
    (14, 16, "mumps-workload", 0.0, 0.0, False),
    (15, 7, "memory-basic", 20.0e-6, 20.0e-6, False),
]


def random_tree(seed: int) -> AssemblyTree:
    """A random valid assembly tree (postordered forest, random geometry)."""
    rng = np.random.default_rng(seed)
    n = int(rng.integers(8, 70))
    parent = np.full(n, -1, dtype=np.int64)
    for j in range(n - 1):
        # mostly one root; an occasional cut makes a forest
        parent[j] = -1 if rng.random() < 0.04 else int(rng.integers(j + 1, n))
    npiv = rng.integers(1, 18, size=n)
    nfront = npiv + rng.integers(0, 40, size=n)
    symmetric = bool(rng.random() < 0.5)
    return AssemblyTree(npiv, nfront, parent, symmetric=symmetric, nvars=int(npiv.sum()))


def run_engine(tree, config, mapping, strategy: str, engine: str):
    slave, task = get_strategy(strategy).build()
    return FactorizationSimulator(
        tree,
        config=config,
        mapping=mapping,
        slave_selector=slave,
        task_selector=task,
        engine=engine,
    ).run()


def assert_identical(fast, ref, *, traces: bool = False) -> None:
    np.testing.assert_array_equal(fast.per_proc_peak_stack, ref.per_proc_peak_stack)
    np.testing.assert_array_equal(fast.per_proc_factor_entries, ref.per_proc_factor_entries)
    np.testing.assert_array_equal(fast.per_proc_tasks, ref.per_proc_tasks)
    assert fast.total_time == ref.total_time
    assert fast.message_counts == ref.message_counts
    assert fast.slave_selections == ref.slave_selections
    assert fast.nodes == ref.nodes
    assert fast.total_factor_entries == ref.total_factor_entries
    if traces:
        assert fast.trace is not None and ref.trace is not None
        for p in range(fast.nprocs):
            np.testing.assert_array_equal(fast.trace.times[p], ref.trace.times[p])
            np.testing.assert_array_equal(fast.trace.stack[p], ref.trace.stack[p])
            np.testing.assert_array_equal(fast.trace.factors[p], ref.trace.factors[p])


#: engines pinned against "reference" by the fuzz matrix
OPTIMIZED_ENGINES = ("flat", "soa", "jit")


class TestEngineIdentityFuzz:
    """Randomized scenario matrix: every engine ≡ reference engine, bitwise."""

    @pytest.mark.parametrize("engine", OPTIMIZED_ENGINES)
    @pytest.mark.parametrize(
        "seed,nprocs,strategy,latency,mem_latency,traces", SCENARIOS
    )
    def test_random_scenarios(self, seed, nprocs, strategy, latency, mem_latency, traces, engine):
        tree = random_tree(seed)
        config = SimulationConfig(
            nprocs=nprocs,
            type2_front_threshold=24,
            type2_cb_threshold=6,
            type3_front_threshold=72,
            latency=latency,
            memory_message_latency=mem_latency,
            min_rows_per_slave=2,
            track_traces=traces,
        )
        mapping = compute_mapping(
            tree,
            nprocs,
            type2_front_threshold=config.type2_front_threshold,
            type2_cb_threshold=config.type2_cb_threshold,
            type3_front_threshold=config.type3_front_threshold,
        )
        opt = run_engine(tree, config, mapping, strategy, engine)
        ref = run_engine(tree, config, mapping, strategy, "reference")
        assert_identical(opt, ref, traces=traces)

    @pytest.mark.parametrize("engine", OPTIMIZED_ENGINES)
    @pytest.mark.parametrize("strategy", STRATEGIES)
    def test_matrix_built_tree(self, strategy, engine):
        """One realistic tree (pattern → analysis) per strategy, all engines."""
        pattern = grid_2d(14, 14)
        tree = build_assembly_tree(pattern, None, keep_variables=False)
        config = SimulationConfig.paper(nprocs=4, type2_front_threshold=40, type2_cb_threshold=8)
        mapping = compute_mapping(tree, 4, **config.mapping_params())
        opt = run_engine(tree, config, mapping, strategy, engine)
        ref = run_engine(tree, config, mapping, strategy, "reference")
        assert_identical(opt, ref)

    def test_single_processor(self):
        """nprocs=1 degenerate runs (no broadcasts, root split of one share)."""
        tree = random_tree(4)
        config = SimulationConfig(nprocs=1, track_traces=True)
        mapping = compute_mapping(tree, 1)
        ref = run_engine(tree, config, mapping, "memory-full", "reference")
        for engine in OPTIMIZED_ENGINES:
            assert_identical(
                run_engine(tree, config, mapping, "memory-full", engine), ref, traces=True
            )

    def test_custom_task_selector_falls_back(self):
        """A custom task selector keeps its contract on the SoA engines."""
        from repro.scheduling.task_selection import LifoTaskSelector

        class AlwaysOldest(LifoTaskSelector):  # subclass ⇒ not inlined
            def select(self, ctx):
                return 0

        tree = random_tree(5)
        config = SimulationConfig(nprocs=4)
        mapping = compute_mapping(tree, 4)
        slave, _ = get_strategy("memory-full").build()

        def run(engine):
            return FactorizationSimulator(
                tree, config=config, mapping=mapping, slave_selector=slave,
                task_selector=AlwaysOldest(), engine=engine,
            ).run()

        ref = run("reference")
        for engine in OPTIMIZED_ENGINES:
            assert_identical(run(engine), ref)


class TestBatchIdentity:
    """run_batch (shared geometry + view bank) ≡ one simulator per run."""

    def test_batch_matches_single_runs(self):
        tree = random_tree(6)
        config = SimulationConfig(nprocs=8, track_traces=False)
        mapping = compute_mapping(tree, 8)
        strategies = ["mumps-workload", "memory-full", "hybrid", "memory-task"]

        singles = [run_engine(tree, config, mapping, s, "soa") for s in strategies]

        scenarios = []
        for s in strategies:
            slave, task = get_strategy(s).build()
            scenarios.append(
                BatchScenario(slave_selector=slave, task_selector=task, strategy_name=s)
            )
        batched = run_batch(tree, scenarios, config=config, mapping=mapping)
        for single, batch in zip(singles, batched):
            assert_identical(batch, single)

    def test_batch_with_traced_scenario(self):
        """A per-scenario config override (traces on one run) stays isolated."""
        tree = random_tree(7)
        config = SimulationConfig(nprocs=4)
        mapping = compute_mapping(tree, 4)
        slave1, task1 = get_strategy("memory-full").build()
        slave2, task2 = get_strategy("memory-full").build()
        traced_cfg = config.replace(track_traces=True)
        batched = run_batch(
            tree,
            [
                BatchScenario(slave_selector=slave1, task_selector=task1,
                              strategy_name="a", config=traced_cfg),
                BatchScenario(slave_selector=slave2, task_selector=task2,
                              strategy_name="b"),
            ],
            config=config,
            mapping=mapping,
        )
        ref = run_engine(tree, traced_cfg, mapping, "memory-full", "reference")
        assert_identical(batched[0], ref, traces=True)
        assert batched[0].trace is not None
        assert batched[1].trace is None

    def test_pipeline_batched_matches_run_case(self):
        """Session.sweep(batch=True) ≡ the per-case pipeline path."""
        from repro.session import Session

        strategies = ["mumps-workload", "memory-full"]
        with Session(nprocs=4, scale=0.2, cache_dir="") as session:
            single = session.sweep(problems=["XENON2"], strategies=strategies)
            batched = session.sweep(problems=["XENON2"], strategies=strategies, batch=True)
        for a, b in zip(single, batched):
            assert a.max_peak_stack == b.max_peak_stack
            assert a.total_time == b.total_time
            assert a.messages == b.messages
            np.testing.assert_array_equal(a.per_proc_peak_stack, b.per_proc_peak_stack)


#: fault specs exercising every injection site: static per-proc speeds,
#: transient slowdown windows, and message loss-and-retry (heap-routed
#: child-completed events in the SoA engine).
FAULT_SPECS = [
    "stragglers(frac=0.4,slowdown=4.0)",
    "stragglers(frac=0.2,slowdown=2.5)+msgloss(p=0.2,retry_timeout=5e-4)"
    "+slowdown(n=2,span=0.001,duration=0.0005,factor=3.0)",
]


class TestFaultIdentity:
    """Fault injection keeps every engine bit-identical to the reference —
    and ``faults=None`` keeps every engine bit-identical to the clean seed
    behaviour (the faults-off leg of the acceptance criteria)."""

    #: a subset of the clean matrix: enough shape/latency/strategy diversity
    #: without doubling the suite's runtime
    FAULT_SCENARIOS = [SCENARIOS[i] for i in (0, 2, 4, 6, 7, 9, 11)]

    @staticmethod
    def _setup(seed, nprocs, latency, mem_latency, traces, faults):
        tree = random_tree(seed)
        config = SimulationConfig(
            nprocs=nprocs,
            type2_front_threshold=24,
            type2_cb_threshold=6,
            type3_front_threshold=72,
            latency=latency,
            memory_message_latency=mem_latency,
            min_rows_per_slave=2,
            track_traces=traces,
            faults=faults,
            fault_seed=seed + 17,
        )
        mapping = compute_mapping(
            tree,
            nprocs,
            type2_front_threshold=config.type2_front_threshold,
            type2_cb_threshold=config.type2_cb_threshold,
            type3_front_threshold=config.type3_front_threshold,
        )
        return tree, config, mapping

    @pytest.mark.parametrize("faults", FAULT_SPECS)
    @pytest.mark.parametrize(
        "seed,nprocs,strategy,latency,mem_latency,traces", FAULT_SCENARIOS
    )
    def test_faulted_engines_identical(
        self, seed, nprocs, strategy, latency, mem_latency, traces, faults
    ):
        tree, config, mapping = self._setup(
            seed, nprocs, latency, mem_latency, traces, faults
        )
        ref = run_engine(tree, config, mapping, strategy, "reference")
        for engine in OPTIMIZED_ENGINES:
            opt = run_engine(tree, config, mapping, strategy, engine)
            assert_identical(opt, ref, traces=traces)

    @pytest.mark.parametrize(
        "seed,nprocs,strategy,latency,mem_latency,traces", FAULT_SCENARIOS
    )
    def test_faults_off_identical_to_clean(
        self, seed, nprocs, strategy, latency, mem_latency, traces
    ):
        """faults=None must leave every engine exactly on the clean path."""
        tree, config, mapping = self._setup(
            seed, nprocs, latency, mem_latency, traces, None
        )
        clean = config.replace(fault_seed=0)
        assert clean.faults is None
        ref = run_engine(tree, clean, mapping, strategy, "reference")
        for engine in OPTIMIZED_ENGINES:
            assert_identical(run_engine(tree, clean, mapping, strategy, engine),
                             ref, traces=traces)

    def test_same_seed_reproduces_different_seed_diverges(self):
        tree, config, mapping = self._setup(2, 4, 20.0e-6, 20.0e-6, False, FAULT_SPECS[1])
        a = run_engine(tree, config, mapping, "memory-full", "soa")
        b = run_engine(tree, config, mapping, "memory-full", "soa")
        assert_identical(a, b)
        other = config.replace(fault_seed=config.fault_seed + 1)
        c = run_engine(tree, other, mapping, "memory-full", "soa")
        assert c.total_time != a.total_time

    def test_faults_change_the_outcome(self):
        """The injection actually bites: total_time grows under stragglers."""
        tree, config, mapping = self._setup(
            4, 8, 0.0, 0.0, False, "stragglers(frac=1.0,slowdown=4.0)"
        )
        clean_cfg = config.replace(faults=None, fault_seed=0)
        faulted = run_engine(tree, config, mapping, "memory-full", "soa")
        clean = run_engine(tree, clean_cfg, mapping, "memory-full", "soa")
        assert faulted.total_time > clean.total_time

    def test_batched_faulted_matches_single(self):
        """run_batch over faulted configs ≡ one simulator per faulted run."""
        tree = random_tree(8)
        config = SimulationConfig(nprocs=8)
        mapping = compute_mapping(tree, 8)
        configs = [
            config,
            config.replace(faults=FAULT_SPECS[0], fault_seed=3),
            config.replace(faults=FAULT_SPECS[1], fault_seed=9),
        ]
        singles = []
        scenarios = []
        for cfg in configs:
            slave, task = get_strategy("memory-full").build()
            singles.append(
                FactorizationSimulator(
                    tree, config=cfg, mapping=mapping, slave_selector=slave,
                    task_selector=task, engine="soa",
                ).run()
            )
            slave2, task2 = get_strategy("memory-full").build()
            scenarios.append(
                BatchScenario(slave_selector=slave2, task_selector=task2,
                              strategy_name="memory-full", config=cfg)
            )
        batched = run_batch(tree, scenarios, config=config, mapping=mapping)
        for single, batch in zip(singles, batched):
            assert_identical(batch, single)


class TestEngineSelection:
    def test_env_var_selects_reference(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "reference")
        assert resolve_engine() == "reference"
        tree = random_tree(3)
        config = SimulationConfig(nprocs=2)
        slave, task = get_strategy("memory-full").build()
        sim = FactorizationSimulator(
            tree, config=config, slave_selector=slave, task_selector=task
        )
        assert sim.engine == "reference"

    def test_default_is_soa(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_ENGINE", raising=False)
        assert resolve_engine() == "soa"

    def test_explicit_argument_wins(self, monkeypatch):
        monkeypatch.setenv("REPRO_SIM_ENGINE", "reference")
        assert resolve_engine("soa") == "soa"

    def test_fast_alias_maps_to_flat(self):
        # "fast" was the PR 5 name of the flat-tuple engine; keep it working
        assert resolve_engine("fast") == "flat"
        assert resolve_engine("FLAT") == "flat"

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="unknown simulator engine"):
            resolve_engine("warp")

    def test_typo_gets_did_you_mean_hint(self):
        with pytest.raises(ValueError, match="did you mean 'soa'"):
            resolve_engine("sao")
        with pytest.raises(ValueError, match="did you mean 'reference'"):
            resolve_engine("referance")


# --------------------------------------------------------------------------- #
# selector-level equivalence: vectorized ≡ scalar reference
# --------------------------------------------------------------------------- #
def random_context(seed: int) -> SlaveSelectionContext:
    rng = np.random.default_rng(seed)
    nprocs = int(rng.integers(2, 40))
    master = int(rng.integers(0, nprocs))
    pool = [q for q in range(nprocs) if q != master]
    ncand = int(rng.integers(1, len(pool) + 1))
    candidates = list(rng.choice(pool, size=ncand, replace=False))
    candidates = [int(q) for q in candidates]
    npiv = int(rng.integers(1, 60))
    ncb = int(rng.integers(0, 120))
    memory = rng.uniform(0.0, 5e4, size=nprocs)
    # exercise exact ties in the sort and in the levelling boundary
    if nprocs > 4 and rng.random() < 0.5:
        memory[:: 2] = memory[0]
    return SlaveSelectionContext(
        master_proc=master,
        node=0,
        npiv=npiv,
        nfront=npiv + ncb,
        ncb=ncb,
        symmetric=bool(rng.random() < 0.5),
        candidates=candidates,
        memory_view=memory,
        effective_memory_view=memory + rng.uniform(0.0, 1e4, size=nprocs),
        load_view=rng.uniform(0.0, 1e9, size=nprocs),
        own_load=float(rng.uniform(0.0, 1e9)),
        own_memory=float(rng.uniform(0.0, 5e4)),
        min_rows_per_slave=int(rng.integers(1, 8)),
        max_slaves=int(rng.integers(1, nprocs)),
    )


class TestSelectorVectorization:
    @pytest.mark.parametrize("seed", range(60))
    def test_memory_selector_matches_scalar(self, seed):
        ctx = random_context(seed)
        for use_predictions in (False, True):
            vec = MemorySlaveSelector(use_predictions=use_predictions).select(ctx)
            ref = MemorySlaveSelector(
                use_predictions=use_predictions, vectorized=False
            ).select(ctx)
            assert vec == ref

    @pytest.mark.parametrize("seed", range(60))
    def test_workload_selector_matches_scalar(self, seed):
        ctx = random_context(seed + 1000)
        for proportional in (False, True):
            vec = WorkloadSlaveSelector(proportional=proportional).select(ctx)
            ref = WorkloadSlaveSelector(
                proportional=proportional, vectorized=False
            ).select(ctx)
            assert vec == ref

    @pytest.mark.parametrize("seed", range(30))
    def test_hybrid_selector_matches_scalar(self, seed):
        ctx = random_context(seed + 2000)
        for alpha in (0.0, 0.3, 1.0):
            vec = HybridSlaveSelector(alpha=alpha).select(ctx)
            ref = HybridSlaveSelector(alpha=alpha, vectorized=False).select(ctx)
            assert vec == ref

    def test_empty_candidates_and_zero_rows(self):
        ctx = random_context(7)
        empty = SlaveSelectionContext(
            master_proc=ctx.master_proc,
            node=0,
            npiv=ctx.npiv,
            nfront=ctx.nfront,
            ncb=0,
            symmetric=ctx.symmetric,
            candidates=[],
            memory_view=ctx.memory_view,
            effective_memory_view=ctx.effective_memory_view,
            load_view=ctx.load_view,
            own_load=ctx.own_load,
            own_memory=ctx.own_memory,
        )
        for selector in (MemorySlaveSelector(), WorkloadSlaveSelector(), HybridSlaveSelector()):
            assert selector.select(empty) == []
