"""Resumable-sweep tests: interrupt, reopen, recompute only what is missing.

The acceptance contract of the result store: a sweep interrupted partway
through resumes from its store recomputing *only* the missing cases
(proven with the engine's ``stage_runs`` counters), every resumed result
is bit-identical to an uninterrupted run, and the interrupted store is
never corrupted — no torn segments, no lost completed cases.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.results import ResultStore
from repro.session import open_session
from repro.specs import SweepSpec

NPROCS = 4
SCALE = 0.1

GRID = SweepSpec(
    problems=["XENON2"],
    orderings=["metis"],
    strategies=["mumps-workload", "memory-full"],
    nprocs=[4, 8],
)  # 4 cases


def assert_case_results_equal(a, b):
    assert a.to_dict() == b.to_dict()


class Interrupter:
    """A progress callback that raises after ``after`` completed cases."""

    def __init__(self, after: int) -> None:
        self.after = after
        self.seen = 0

    def __call__(self, event) -> None:
        self.seen += 1
        if self.seen >= self.after:
            raise KeyboardInterrupt("simulated interrupt")


@pytest.fixture(scope="module")
def reference():
    """The uninterrupted run every resumed result must match bit for bit."""
    with open_session(nprocs=NPROCS, scale=SCALE, cache_dir="") as session:
        return list(session.sweep(GRID))


class TestResumeInline:
    def test_interrupt_then_resume_recomputes_only_missing(self, tmp_path, reference):
        store_dir = tmp_path / "store"

        # interrupted run: the progress hook fires after each case persists
        interrupter = Interrupter(after=2)
        with pytest.raises(KeyboardInterrupt):
            with open_session(
                nprocs=NPROCS, scale=SCALE, cache_dir="", progress=interrupter
            ) as session:
                session.sweep(GRID, store=store_dir)

        # the completed prefix is durable, nothing else
        store = ResultStore(store_dir, fsync=False)
        assert len(store) == 2
        assert store.replay_skipped == 0

        # resume: only the 2 missing cases touch the simulator
        with open_session(nprocs=NPROCS, scale=SCALE, cache_dir="") as session:
            resumed = session.sweep(GRID, store=store_dir)
            assert resumed.computed == 2
            assert resumed.skipped == 2
            assert session.engine.stage_runs["simulate"] == 2
        assert len(resumed) == 4
        for got, expected in zip(resumed, reference):
            assert_case_results_equal(got, expected)

    def test_second_resume_computes_nothing(self, tmp_path, reference):
        store_dir = tmp_path / "store"
        with open_session(nprocs=NPROCS, scale=SCALE, cache_dir="") as session:
            first = session.sweep(GRID, store=store_dir)
            assert first.computed == 4 and first.skipped == 0

        with open_session(nprocs=NPROCS, scale=SCALE, cache_dir="") as session:
            again = session.sweep(GRID, store=store_dir)
            assert again.computed == 0 and again.skipped == 4
            # the engine never ran a single stage: pure store reads
            assert sum(session.engine.stage_runs.values()) == 0
        for got, expected in zip(again, reference):
            assert_case_results_equal(got, expected)

    def test_store_accepts_a_path_or_an_instance(self, tmp_path, reference):
        store = ResultStore(tmp_path / "store", fsync=False)
        with open_session(nprocs=NPROCS, scale=SCALE, cache_dir="") as session:
            by_instance = session.sweep(GRID, store=store)
        with open_session(nprocs=NPROCS, scale=SCALE, cache_dir="") as session:
            by_path = session.sweep(GRID, store=tmp_path / "store")
        assert by_instance.computed == 4 and by_path.skipped == 4
        for got, expected in zip(by_path, reference):
            assert_case_results_equal(got, expected)

    def test_duplicate_grid_keys_computed_once(self, tmp_path):
        # the same logical strategy spelled two canonically-equal ways
        grid = SweepSpec(
            problems=["XENON2"],
            orderings=["metis"],
            strategies=["hybrid(alpha=0.5)", "hybrid( alpha = 0.5 )"],
        )
        with open_session(nprocs=NPROCS, scale=SCALE, cache_dir="") as session:
            results = session.sweep(grid, store=tmp_path / "store")
            assert len(results) == 2  # grid order is preserved...
            assert results.computed == 1  # ...but the case ran once
            assert session.engine.stage_runs["simulate"] == 1
        assert_case_results_equal(results[0], results[1])


class TestResumeParallel:
    def test_interrupted_parallel_sweep_resumes(self, tmp_path, reference):
        store_dir = tmp_path / "store"
        interrupter = Interrupter(after=2)
        with pytest.raises(KeyboardInterrupt):
            with open_session(
                nprocs=NPROCS, scale=SCALE, cache_dir="", jobs=2, progress=interrupter
            ) as session:
                session.sweep(GRID, store=store_dir)

        store = ResultStore(store_dir, fsync=False)
        done = len(store)
        assert 2 <= done < 4  # the 2 persisted cases, maybe an in-flight one
        assert store.replay_skipped == 0

        with open_session(nprocs=NPROCS, scale=SCALE, cache_dir="", jobs=2) as session:
            resumed = session.sweep(GRID, store=store_dir)
            assert resumed.computed == 4 - done
            assert resumed.skipped == done
        for got, expected in zip(resumed, reference):
            assert_case_results_equal(got, expected)


class TestSweepViewContract:
    """``Session.sweep`` keeps the historical list contract (lazy view)."""

    def test_sweep_without_store_returns_list_like_view(self, reference):
        with open_session(nprocs=NPROCS, scale=SCALE, cache_dir="") as session:
            results = session.sweep(GRID)
        assert len(results) == 4
        assert results.computed == 4 and results.skipped == 0
        # indexing, negative indexing, slicing, iteration, zip
        assert_case_results_equal(results[0], reference[0])
        assert_case_results_equal(results[-1], reference[-1])
        sliced = results[1:3]
        assert isinstance(sliced, list) and len(sliced) == 2
        for got, expected in zip(results, reference):
            assert_case_results_equal(got, expected)
        # the columns underneath are exposed for analysis
        assert len(results.table) == 4
        np.testing.assert_array_equal(
            results.table.column("nprocs"), np.asarray([4, 8, 4, 8])
        )

    def test_view_rows_keep_grid_order(self, tmp_path, reference):
        with open_session(nprocs=NPROCS, scale=SCALE, cache_dir="") as session:
            results = session.sweep(GRID, store=tmp_path / "store")
        got = [(r.strategy, r.nprocs) for r in results]
        expected = [(r.strategy, r.nprocs) for r in reference]
        assert got == expected
