"""Tests for the frontal-matrix entry and flop models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.flops import (
    assembly_flops,
    cb_entries,
    factor_entries,
    front_entries,
    partial_factorization_flops,
    type2_master_flops,
    type2_slave_block_entries,
    type2_slave_factor_entries,
    type2_slave_flops,
)


def brute_force_flops(npiv, nfront, symmetric):
    total = 0
    for k in range(1, npiv + 1):
        r = nfront - k
        if symmetric:
            total += r + r * (r + 1)
        else:
            total += r + 2 * r * r
    return float(total)


class TestEntryCounts:
    def test_front_entries(self):
        assert front_entries(4, True) == 10
        assert front_entries(4, False) == 16
        assert front_entries(0, True) == 0

    def test_factor_plus_cb_equals_front(self):
        for sym in (True, False):
            for npiv, nfront in [(1, 1), (2, 5), (5, 5), (3, 10)]:
                assert factor_entries(npiv, nfront, sym) + cb_entries(npiv, nfront, sym) == front_entries(
                    nfront, sym
                )

    def test_cb_zero_when_fully_summed(self):
        assert cb_entries(6, 6, True) == 0
        assert cb_entries(6, 6, False) == 0

    def test_invalid_geometry(self):
        with pytest.raises(ValueError):
            factor_entries(5, 3, True)
        with pytest.raises(ValueError):
            cb_entries(-1, 3, True)
        with pytest.raises(ValueError):
            front_entries(-1, True)


class TestFlops:
    @pytest.mark.parametrize("sym", [True, False])
    @pytest.mark.parametrize("npiv,nfront", [(1, 1), (1, 10), (4, 10), (10, 10), (7, 23)])
    def test_matches_brute_force(self, sym, npiv, nfront):
        assert partial_factorization_flops(npiv, nfront, sym) == pytest.approx(
            brute_force_flops(npiv, nfront, sym)
        )

    def test_unsym_costs_more_than_sym(self):
        assert partial_factorization_flops(5, 20, False) > partial_factorization_flops(5, 20, True)

    def test_zero_pivots(self):
        assert partial_factorization_flops(0, 10, True) == 0.0

    def test_assembly_flops(self):
        assert assembly_flops([3, 4, 5]) == 12.0
        assert assembly_flops([]) == 0.0


class TestType2Split:
    @pytest.mark.parametrize("sym", [True, False])
    def test_slave_factor_pieces_sum_to_l_block(self, sym):
        npiv, nfront = 6, 20
        ncb = nfront - npiv
        assert type2_slave_factor_entries(npiv, nfront, ncb, sym) == ncb * npiv

    def test_slave_block_entries_unsym(self):
        assert type2_slave_block_entries(4, 10, 3, False) == 30

    def test_slave_block_entries_sym_bounds(self):
        npiv, nfront, rows = 4, 10, 3
        block = type2_slave_block_entries(npiv, nfront, rows, True)
        # at least the factor part, at most full rows
        assert rows * npiv <= block <= rows * nfront

    def test_slave_rows_bounds_checked(self):
        with pytest.raises(ValueError):
            type2_slave_flops(4, 10, 7, True)
        with pytest.raises(ValueError):
            type2_slave_block_entries(4, 10, -1, True)

    def test_master_flops_less_than_full_factorization(self):
        for sym in (True, False):
            assert type2_master_flops(6, 30, sym) < partial_factorization_flops(6, 30, sym)

    def test_master_plus_slaves_close_to_total(self):
        """The distributed work must roughly add up to the sequential work."""
        npiv, nfront = 10, 50
        for sym in (True, False):
            total = partial_factorization_flops(npiv, nfront, sym)
            distributed = type2_master_flops(npiv, nfront, sym) + type2_slave_flops(
                npiv, nfront, nfront - npiv, sym
            )
            assert distributed == pytest.approx(total, rel=0.35)

    def test_slave_flops_linear_in_rows(self):
        one = type2_slave_flops(5, 30, 1, False)
        ten = type2_slave_flops(5, 30, 10, False)
        assert ten == pytest.approx(10 * one)


@settings(max_examples=50, deadline=None)
@given(
    npiv=st.integers(min_value=0, max_value=40),
    extra=st.integers(min_value=0, max_value=40),
    sym=st.booleans(),
)
def test_property_flops_match_brute_force(npiv, extra, sym):
    nfront = npiv + extra
    assert partial_factorization_flops(npiv, nfront, sym) == pytest.approx(
        brute_force_flops(npiv, nfront, sym)
    )


@settings(max_examples=50, deadline=None)
@given(
    npiv=st.integers(min_value=1, max_value=30),
    extra=st.integers(min_value=0, max_value=30),
    sym=st.booleans(),
)
def test_property_entry_conservation(npiv, extra, sym):
    """factors + CB = front, and the type-2 split conserves the factor entries."""
    nfront = npiv + extra
    assert factor_entries(npiv, nfront, sym) + cb_entries(npiv, nfront, sym) == front_entries(nfront, sym)
    ncb = nfront - npiv
    master = npiv * (npiv + 1) // 2 if sym else npiv * nfront
    assert master + type2_slave_factor_entries(npiv, nfront, ncb, sym) == factor_entries(npiv, nfront, sym)


@settings(max_examples=50, deadline=None)
@given(
    npiv=st.integers(min_value=1, max_value=25),
    extra=st.integers(min_value=1, max_value=25),
    sym=st.booleans(),
    data=st.data(),
)
def test_property_slave_blocks_partition_cb_rows(npiv, extra, sym, data):
    """Splitting the CB rows among slaves never loses or duplicates entries (unsym)."""
    nfront = npiv + extra
    ncb = extra
    k = data.draw(st.integers(min_value=1, max_value=min(4, ncb)))
    cuts = sorted(data.draw(st.lists(st.integers(0, ncb), min_size=k - 1, max_size=k - 1)))
    bounds = [0] + cuts + [ncb]
    rows = [bounds[i + 1] - bounds[i] for i in range(k)]
    if not sym:
        total = sum(type2_slave_block_entries(npiv, nfront, r, False) for r in rows)
        assert total == ncb * nfront
    # factor parts always partition exactly, symmetric or not
    total_factor = sum(type2_slave_factor_entries(npiv, nfront, r, sym) for r in rows)
    assert total_factor == ncb * npiv
