"""Tests for the Session façade, declarative sweeps and the machine-readable CLI."""

import json

import numpy as np
import pytest

import repro
from repro import CaseSpec, SweepSpec, open_session
from repro.cli import main
from repro.pipeline import CaseResult
from repro.runtime import SimulationConfig
from repro.session import Session


def assert_case_results_equal(a: CaseResult, b: CaseResult) -> None:
    assert (a.problem, a.ordering, a.strategy, a.split) == (b.problem, b.ordering, b.strategy, b.split)
    assert a.max_peak_stack == b.max_peak_stack
    assert a.total_time == b.total_time
    assert np.array_equal(a.per_proc_peak_stack, b.per_proc_peak_stack)
    assert (a.nodes, a.nodes_split, a.messages, a.nprocs) == (b.nodes, b.nodes_split, b.messages, b.nprocs)


class TestSession:
    def test_open_session_context_manager(self):
        with open_session(nprocs=4, scale=0.2) as session:
            assert isinstance(session, Session)
            result = session.run(CaseSpec("XENON2", "metis", "memory-full"))
            assert result.max_peak_stack > 0
        assert session._executor is None

    def test_close_is_idempotent(self):
        session = open_session(nprocs=4, scale=0.2)
        session.sweep(problems="XENON2", strategies=["memory-full"])
        assert not session.closed  # sweep instantiated the lazy executor
        session.close()
        assert session.closed
        session.close()  # second close: a no-op, not an error
        assert session.closed

    def test_context_manager_safe_after_explicit_close(self):
        """``close()`` inside the ``with`` body must not break ``__exit__``."""
        with open_session(nprocs=4, scale=0.2, jobs=2) as session:
            session.sweep(problems="XENON2", strategies=["memory-full"])
            session.close()
        assert session.closed

    def test_close_before_any_work(self):
        session = open_session(nprocs=4, scale=0.2)
        assert session.closed  # executor is lazy: nothing to shut down yet
        session.close()
        assert session.closed

    def test_run_accepts_dict_cases(self):
        with open_session(nprocs=4, scale=0.2) as session:
            a = session.run({"problem": "XENON2", "ordering": "metis"})
            b = session.run(CaseSpec("XENON2", "metis"))
            assert_case_results_equal(a, b)

    def test_sweep_kwargs_and_spec_forms_agree(self):
        with open_session(nprocs=4, scale=0.2) as session:
            via_kwargs = session.sweep(problems="XENON2", strategies=["memory-full"])
            via_spec = session.sweep(SweepSpec(problems="XENON2", strategies=["memory-full"]))
            via_dict = session.sweep({"problems": ["XENON2"], "strategies": ["memory-full"]})
        for x, y in zip(via_kwargs, via_spec):
            assert_case_results_equal(x, y)
        for x, y in zip(via_kwargs, via_dict):
            assert_case_results_equal(x, y)

    def test_sweep_rejects_mixed_forms(self):
        with open_session(nprocs=4, scale=0.2) as session:
            with pytest.raises(TypeError):
                session.sweep(SweepSpec(problems="XENON2"), problems=["PRE2"])

    def test_per_case_nprocs_override(self):
        with open_session(nprocs=4, scale=0.2) as session:
            results = session.sweep(problems="XENON2", nprocs=[4, 8])
        assert [r.nprocs for r in results] == [4, 8]
        assert results[0].per_proc_peak_stack.shape == (4,)
        assert results[1].per_proc_peak_stack.shape == (8,)

    def test_compare_matches_quick_compare(self):
        outcome = repro.quick_compare("XENON2", "metis", nprocs=4, scale=0.2)
        for key in ("baseline_peak", "candidate_peak", "gain_percent", "time_loss_percent"):
            assert key in outcome

    def test_acceptance_grid_strategy_params_times_nprocs(self):
        """One sweep() varies hybrid alpha AND processor count; serial ≡ parallel; JSON-safe."""
        grid = dict(
            problems="XENON2",
            orderings=["metis"],
            strategies=["hybrid(alpha=0.25)", "hybrid(alpha=0.5)", "hybrid(alpha=0.75)"],
            nprocs=[4, 8],
        )
        with open_session(nprocs=4, scale=0.2) as serial:
            expected = serial.sweep(**grid)
        with open_session(nprocs=4, scale=0.2, jobs=2) as parallel:
            observed = parallel.sweep(**grid)
        assert len(expected) == len(observed) == 6
        for a, b in zip(expected, observed):
            assert_case_results_equal(a, b)
        # the grid covers every (alpha, nprocs) combination, in grid order
        assert [(r.strategy, r.nprocs) for r in expected] == [
            (s, n)
            for s in ("hybrid(alpha=0.25)", "hybrid(alpha=0.5)", "hybrid(alpha=0.75)")
            for n in (4, 8)
        ]
        # results round-trip through JSON bit-identically
        payload = json.dumps([r.to_dict() for r in expected])
        for original, restored in zip(expected, [CaseResult.from_dict(d) for d in json.loads(payload)]):
            assert_case_results_equal(original, restored)

    def test_session_shares_analysis_across_strategy_params(self):
        with open_session(nprocs=4, scale=0.2) as session:
            session.sweep(problems="XENON2", strategies=["hybrid(alpha=0.25)", "hybrid(alpha=0.75)"])
            a = session.analysis("XENON2", "metis")
            b = session.analysis("XENON2", "metis")
            assert a is b  # one analysis bundle serves every strategy variant

    def test_session_config_passthrough(self):
        config = SimulationConfig.paper(8, latency=1e-5)
        with open_session(nprocs=8, scale=0.2, config=config) as session:
            assert session.config.latency == 1e-5
            assert session.config.type2_front_threshold == 96


class TestExperimentRunnerShim:
    def test_runner_is_a_session(self):
        from repro.experiments import ExperimentRunner

        runner = ExperimentRunner(nprocs=4, scale=0.2)
        assert isinstance(runner, Session)
        # the historical positional call-styles still work
        case = runner.run_case("XENON2", "metis", "memory-full")
        swept = runner.sweep(["XENON2"], ["metis"], ["memory-full"])
        assert_case_results_equal(case, swept[0])

    def test_runner_accepts_strategy_specs(self):
        from repro.experiments import ExperimentRunner

        runner = ExperimentRunner(nprocs=4, scale=0.2)
        case = runner.run_case("XENON2", "metis", "hybrid(alpha=0.25)")
        assert case.strategy == "hybrid(alpha=0.25)"


class TestMachineReadableCli:
    def test_list_format_json(self, capsys):
        assert main(["list", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {p["name"] for p in payload["problems"]} >= {"XENON2", "PRE2"}
        strategies = {s["name"]: s for s in payload["strategies"]}
        assert "alpha" in strategies["hybrid"]["params"]
        orderings = {o["name"]: o for o in payload["orderings"]}
        assert "leaf_size" in orderings["metis"]["params"]
        assert "table2" in {t["name"] for t in payload["tables"]}
        assert "figure5" in {f["name"] for f in payload["figures"]}

    def test_sweep_format_json(self, capsys):
        code = main(
            ["sweep", "--scale", "0.2", "--problems", "XENON2", "--orderings", "metis",
             "--strategies", "hybrid(alpha=0.25)", "--nprocs", "4,8",
             "--format", "json", "--no-progress"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert [case["nprocs"] for case in payload] == [4, 8]
        assert all(case["strategy"] == "hybrid(alpha=0.25)" for case in payload)

    def test_sweep_format_csv(self, capsys):
        code = main(
            ["sweep", "--scale", "0.2", "--nprocs", "4", "--problems", "XENON2",
             "--orderings", "metis", "--strategies", "memory-full",
             "--format", "csv", "--no-progress"]
        )
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert lines[0].startswith("problem,ordering,strategy,split,nprocs")
        assert len(lines) == 2
        assert lines[1].startswith("XENON2,metis,memory-full")

    def test_multi_nprocs_rejected_outside_sweep(self):
        with pytest.raises(SystemExit):
            main(["table2", "--nprocs", "8,16"])

    def test_figures_reject_engine_flags_they_cannot_use(self, capsys):
        with pytest.raises(SystemExit):
            main(["figure8", "--nprocs", "8"])
        assert "--nprocs" in capsys.readouterr().err
        with pytest.raises(SystemExit):
            main(["figures", "--jobs", "2"])
        with pytest.raises(SystemExit):
            main(["figure2", "--scale", "0.5"])

    def test_figures_reject_condensed_and_abbreviated_flags(self, capsys):
        # -j4 (condensed short option) must be detected like --jobs 4 …
        with pytest.raises(SystemExit):
            main(["figures", "-j4"])
        assert "--jobs" in capsys.readouterr().err
        # … and prefix abbreviations are rejected outright (allow_abbrev=False)
        with pytest.raises(SystemExit):
            main(["figure2", "--nproc", "16"])

    def test_list_rejects_csv_format(self, capsys):
        with pytest.raises(SystemExit):
            main(["list", "--format", "csv"])
        assert "json" in capsys.readouterr().err

    def test_figures_thread_supported_flags(self, capsys):
        assert main(["figure2", "--nprocs", "6"]) == 0
        out = capsys.readouterr().out
        assert "FIGURE2" in out
        assert main(["figure5", "--cache", ""]) == 0  # figure5 accepts --cache

    def test_bad_strategy_param_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", "--strategies", "hybrid(gamma=1)"])
        assert "accepted" in capsys.readouterr().err
