"""Tests of the benchmark subsystem: env validation, the JSON result model,
baseline comparison verdicts, and the ``repro bench`` CLI."""

from __future__ import annotations

import json

import pytest

from repro.bench import (
    SCHEMA_VERSION,
    BenchCase,
    BenchEnv,
    BenchEnvError,
    BenchResult,
    BenchRun,
    BenchRunner,
    PreparedCase,
    SuiteInstance,
    compare_runs,
    default_baseline_path,
    suite_names,
)
from repro.cli import main as repro_main


# --------------------------------------------------------------------------- #
# BenchEnv
# --------------------------------------------------------------------------- #
class TestBenchEnv:
    def test_defaults_from_empty_environ(self):
        env = BenchEnv.from_environ({})
        assert env.nprocs == 32
        assert env.scale == 0.6
        assert env.jobs == 1
        assert env.pipeline_jobs == 4
        assert not env.no_speedup_check

    def test_reads_every_variable(self):
        env = BenchEnv.from_environ(
            {
                "REPRO_BENCH_NPROCS": "8",
                "REPRO_BENCH_SCALE": "0.25",
                "REPRO_BENCH_CACHE": "/tmp/c",
                "REPRO_BENCH_JOBS": "2",
                "REPRO_BENCH_PIPELINE_JOBS": "3",
                "REPRO_BENCH_NO_SPEEDUP_CHECK": "1",
            }
        )
        assert (env.nprocs, env.scale, env.cache) == (8, 0.25, "/tmp/c")
        assert (env.jobs, env.pipeline_jobs, env.no_speedup_check) == (2, 3, True)

    @pytest.mark.parametrize(
        "variable, value",
        [
            ("REPRO_BENCH_SCALE", "0"),
            ("REPRO_BENCH_SCALE", "-1"),
            ("REPRO_BENCH_SCALE", "five"),
            ("REPRO_BENCH_SCALE", "99"),
            ("REPRO_BENCH_NPROCS", "0"),
            ("REPRO_BENCH_NPROCS", "2.5"),
            ("REPRO_BENCH_JOBS", "-3"),
            ("REPRO_BENCH_JOBS", "two"),
            ("REPRO_BENCH_PIPELINE_JOBS", "0"),
        ],
    )
    def test_bad_values_raise_with_variable_name(self, variable, value):
        with pytest.raises(BenchEnvError, match=variable):
            BenchEnv.from_environ({variable: value})

    @pytest.mark.parametrize(
        "value, expected",
        [("1", True), ("true", True), ("yes", True), ("0", False), ("false", False), ("", False)],
    )
    def test_no_speedup_check_parses_falsey_spellings(self, value, expected):
        env = BenchEnv.from_environ({"REPRO_BENCH_NO_SPEEDUP_CHECK": value})
        assert env.no_speedup_check is expected

    def test_replace_validates_and_ignores_none(self):
        env = BenchEnv.from_environ({})
        assert env.replace(scale=None).scale == env.scale
        assert env.replace(scale=0.2, nprocs=4) == BenchEnv(nprocs=4, scale=0.2, cache=env.cache)
        with pytest.raises(BenchEnvError):
            env.replace(scale=0.0)


# --------------------------------------------------------------------------- #
# result model JSON round-trip
# --------------------------------------------------------------------------- #
def _sample_run() -> BenchRun:
    run = BenchRun(host="testhost", timestamp="2026-07-26T00:00:00+00:00")
    run.results.append(
        BenchResult(
            case=BenchCase("alpha", "pipeline", (("nprocs", 8), ("scale", 0.2))),
            seconds=[0.5, 0.4, 0.6],
            warmup=1,
            metrics={"max_peak_stack": 123.0},
        )
    )
    run.results.append(
        BenchResult(case=BenchCase("broken", "pipeline"), error="Traceback: boom")
    )
    return run


class TestModelRoundTrip:
    def test_case_round_trip_and_key(self):
        case = BenchCase("alpha", "pipeline", (("b", 2), ("a", 1)))
        assert case.key == "pipeline/alpha"
        assert BenchCase.from_dict(case.to_dict()) == case
        # params are order-canonical
        assert case == BenchCase("alpha", "pipeline", (("a", 1), ("b", 2)))

    def test_result_statistics(self):
        result = _sample_run().results[0]
        assert result.best == 0.4
        assert result.mean == pytest.approx(0.5)
        assert result.repeats == 3
        errored = _sample_run().results[1]
        assert errored.best != errored.best  # NaN
        assert errored.error is not None

    def test_run_round_trips_through_json_file(self, tmp_path):
        run = _sample_run()
        path = tmp_path / "run.json"
        run.save(str(path))
        loaded = BenchRun.load(str(path))
        assert loaded.to_dict() == run.to_dict()
        assert json.loads(path.read_text())["schema"] == SCHEMA_VERSION
        assert [r.case.key for r in loaded.errors] == ["pipeline/broken"]

    def test_unsupported_schema_is_rejected(self):
        payload = _sample_run().to_dict()
        payload["schema"] = SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema"):
            BenchRun.from_dict(payload)


# --------------------------------------------------------------------------- #
# baseline comparison
# --------------------------------------------------------------------------- #
def _run_with(cases: dict[str, float | None], host: str = "h") -> BenchRun:
    """A run with one result per (key → best seconds); ``None`` = errored."""
    run = BenchRun(host=host, timestamp="t")
    for key, best in cases.items():
        suite, name = key.split("/")
        case = BenchCase(name, suite)
        if best is None:
            run.results.append(BenchResult(case=case, error="boom"))
        else:
            run.results.append(BenchResult(case=case, seconds=[best]))
    return run


class TestCompare:
    def test_verdicts(self):
        baseline = _run_with({"s/same": 1.0, "s/slower": 1.0, "s/faster": 1.0, "s/gone": 1.0})
        current = _run_with(
            {"s/same": 1.1, "s/slower": 1.5, "s/faster": 0.5, "s/added": 1.0}
        )
        report = compare_runs(current, baseline, tolerance=0.25)
        verdicts = {d.key: d.verdict for d in report.deltas}
        assert verdicts == {
            "s/same": "within-tolerance",
            "s/slower": "regression",
            "s/faster": "improvement",
            "s/added": "new",
            "s/gone": "missing",
        }
        slower = next(d for d in report.deltas if d.key == "s/slower")
        assert slower.ratio == pytest.approx(1.5)
        assert slower.delta_percent == pytest.approx(50.0)

    def test_identity_compare_is_all_within_tolerance(self):
        run = _run_with({"s/a": 1.0, "s/b": 0.01})
        report = compare_runs(run, run, tolerance=0.0)
        assert all(d.verdict == "within-tolerance" for d in report.deltas)
        assert not report.failed()

    def test_failure_policy(self):
        baseline = _run_with({"s/a": 1.0})
        # a 1.5x slowdown fails by default...
        report = compare_runs(_run_with({"s/a": 1.5}), baseline, tolerance=0.25)
        assert report.failed()
        # ...but passes a CI-style gate that only rejects >2x
        assert not report.failed(max_regression=2.0)
        assert compare_runs(_run_with({"s/a": 2.5}), baseline, tolerance=0.25).failed(
            max_regression=2.0
        )
        # hard errors always fail, whatever the thresholds
        errored = compare_runs(_run_with({"s/a": None}), baseline, tolerance=0.25)
        assert errored.deltas[0].verdict == "error"
        assert errored.failed(max_regression=100.0)

    def test_zero_overlap_fails_the_gate(self):
        # renamed cases (or a baseline from a failed run) must not pass green
        report = compare_runs(
            _run_with({"s/renamed": 1.0}), _run_with({"s/old-name": 1.0}), tolerance=0.25
        )
        assert {d.verdict for d in report.deltas} == {"new", "missing"}
        assert report.failed()
        assert report.failed(max_regression=2.0)
        # a genuinely added case next to matched ones is still fine
        ok = compare_runs(
            _run_with({"s/kept": 1.0, "s/added": 1.0}), _run_with({"s/kept": 1.0})
        )
        assert not ok.failed()

    def test_partial_missing_fails_but_unrun_suites_are_out_of_scope(self):
        baseline = _run_with({"s/kept": 1.0, "s/dropped": 1.0, "other/x": 1.0})
        current = _run_with({"s/kept": 1.0})
        report = compare_runs(current, baseline, tolerance=0.25)
        verdicts = {d.key: d.verdict for d in report.deltas}
        # lost coverage within a suite that ran fails the gate...
        assert verdicts["s/dropped"] == "missing"
        assert report.failed()
        assert report.failed(max_regression=100.0)
        # ...but a suite absent from the current run is simply out of scope
        assert "other/x" not in verdicts

    def test_config_mismatch_is_flagged_and_fails(self):
        def run_at(scale: float) -> BenchRun:
            run = BenchRun(host="h", timestamp="t")
            run.results.append(
                BenchResult(case=BenchCase("a", "s", (("scale", scale),)), seconds=[1.0])
            )
            return run

        report = compare_runs(run_at(0.2), run_at(0.6), tolerance=0.25)
        assert [d.verdict for d in report.deltas] == ["config-mismatch"]
        assert report.failed()
        assert report.failed(max_regression=100.0)
        # identical knobs compare normally
        assert not compare_runs(run_at(0.2), run_at(0.2)).failed()

    def test_tolerance_validation(self):
        run = _run_with({"s/a": 1.0})
        with pytest.raises(ValueError, match="tolerance"):
            compare_runs(run, run, tolerance=1.5)

    def test_report_json_shape(self):
        report = compare_runs(_run_with({"s/a": 2.0}), _run_with({"s/a": 1.0}))
        data = report.to_dict()
        assert data["failed"] is True
        assert data["deltas"][0]["verdict"] == "regression"
        assert "summary" in data

    def test_report_json_is_strictly_parseable_with_unpaired_cases(self):
        # new/missing/error deltas carry NaN internally; JSON must get null
        report = compare_runs(
            _run_with({"s/added": 1.0, "s/err": None}), _run_with({"s/gone": 1.0})
        )
        text = json.dumps(report.to_dict())
        assert "NaN" not in text
        deltas = {d["key"]: d for d in json.loads(text)["deltas"]}
        assert deltas["s/added"]["baseline_seconds"] is None
        assert deltas["s/gone"]["current_seconds"] is None
        assert deltas["s/err"]["ratio"] is None

    def test_report_json_failed_honours_max_regression(self):
        # the artifact and the exit code must tell the same story
        report = compare_runs(_run_with({"s/a": 1.5}), _run_with({"s/a": 1.0}), tolerance=0.25)
        assert report.to_dict()["failed"] is True
        relaxed = report.to_dict(max_regression=2.0)
        assert relaxed["failed"] is False
        assert relaxed["max_regression"] == 2.0


# --------------------------------------------------------------------------- #
# runner
# --------------------------------------------------------------------------- #
class TestBenchRunner:
    def test_warmup_and_repeats_with_fake_timer(self):
        calls = []
        ticks = iter(range(100))

        def fn():
            calls.append("run")
            return {"value": 1.0}

        prepared = PreparedCase(
            case=BenchCase("c", "s"), fn=fn, repeats=3, warmup=2
        )
        runner = BenchRunner(BenchEnv.from_environ({}), timer=lambda: float(next(ticks)))
        result = runner.run_case(prepared)
        assert len(calls) == 5  # 2 warmups + 3 timed repeats
        assert result.seconds == [1.0, 1.0, 1.0]
        assert result.warmup == 2
        assert result.metrics == {"value": 1.0}

    def test_global_overrides_and_validation(self):
        prepared = PreparedCase(case=BenchCase("c", "s"), fn=lambda: None, repeats=5, warmup=3)
        runner = BenchRunner(BenchEnv.from_environ({}), repeats=1, warmup=0)
        assert runner.run_case(prepared).repeats == 1
        with pytest.raises(ValueError):
            BenchRunner(repeats=0)
        with pytest.raises(ValueError):
            BenchRunner(warmup=-1)

    def test_case_error_is_captured_not_raised(self):
        def explode():
            raise RuntimeError("kaboom")

        runner = BenchRunner(BenchEnv.from_environ({}))
        result = runner.run_case(PreparedCase(case=BenchCase("c", "s"), fn=explode))
        assert result.seconds == []
        assert "kaboom" in result.error

    def test_profile_top_attaches_digest_and_round_trips(self):
        calls = []

        def fn():
            calls.append("run")
            return {"value": 1.0}

        prepared = PreparedCase(case=BenchCase("c", "s"), fn=fn, repeats=2, warmup=1)
        runner = BenchRunner(BenchEnv.from_environ({}), profile_top=5)
        result = runner.run_case(prepared)
        # 1 warmup + 2 timed + 1 profiled execution
        assert len(calls) == 4
        assert result.seconds and result.error is None
        assert result.profile is not None and 1 <= len(result.profile) <= 5
        for row in result.profile:
            assert set(row) == {"function", "ncalls", "tottime", "cumtime"}
            assert row["ncalls"] >= 1 and row["cumtime"] >= 0.0
        # the digest survives the JSON round trip (and stays optional)
        back = BenchResult.from_dict(result.to_dict())
        assert back.profile == result.profile
        plain = BenchResult.from_dict(
            BenchResult(case=BenchCase("c", "s"), seconds=[0.1]).to_dict()
        )
        assert plain.profile is None

    def test_profile_failure_never_voids_the_timings(self):
        calls = []

        def fn():
            calls.append("run")
            if len(calls) > 2:  # timed repeats succeed, the profiled run raises
                raise RuntimeError("profiling-only failure")
            return {"value": 1.0}

        prepared = PreparedCase(case=BenchCase("c", "s"), fn=fn, repeats=2, warmup=0)
        result = BenchRunner(BenchEnv.from_environ({}), profile_top=5).run_case(prepared)
        assert len(result.seconds) == 2 and result.error is None
        assert len(result.profile) == 1
        assert result.profile[0]["function"].startswith("<profiling failed>")

    def test_profile_disabled_by_default_and_validated(self):
        runner = BenchRunner(BenchEnv.from_environ({}))
        result = runner.run_case(PreparedCase(case=BenchCase("c", "s"), fn=lambda: None))
        assert result.profile is None
        with pytest.raises(ValueError):
            BenchRunner(profile_top=0)

    def test_suite_registry_names(self):
        assert {"pipeline", "tables", "ablations", "components"} <= set(suite_names())

    def test_suite_build_failure_is_recorded_not_raised(self, monkeypatch):
        from repro.bench import suites as suites_mod

        def broken_build(env):
            raise RuntimeError("analysis chain broke")

        monkeypatch.setitem(
            suites_mod.SUITES._entries,
            "broken",
            type(suites_mod.SUITES.entry("pipeline"))(
                name="broken", value=broken_build, description="", params={}
            ),
        )
        runner = BenchRunner(BenchEnv.from_environ({}))
        run = runner.run_suites(["broken"])
        assert [r.case.key for r in run.results] == ["broken/broken-build"]
        assert "analysis chain broke" in run.results[0].error


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
class TestBenchCli:
    def test_list_json(self, capsys):
        assert repro_main(["bench", "list", "--format", "json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert {entry["name"] for entry in payload} >= {"pipeline", "tables"}

    def test_unknown_suite_is_a_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            repro_main(["bench", "run", "--suite", "nope"])
        assert excinfo.value.code == 2
        assert "nope" in capsys.readouterr().err

    def test_suite_all_cannot_be_combined(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            repro_main(["bench", "run", "--suite", "all,components"])
        assert excinfo.value.code == 2
        assert "don't combine" in capsys.readouterr().err

    def test_flag_errors_name_the_flag_not_the_env_var(self, capsys):
        with pytest.raises(SystemExit):
            repro_main(["bench", "run", "--scale", "0"])
        err = capsys.readouterr().err
        assert "--scale" in err and "REPRO_BENCH_SCALE" not in err

    @pytest.mark.parametrize(
        "argv",
        [
            ["bench", "run", "--scale", "0"],
            ["bench", "run", "--nprocs", "0"],
            ["bench", "run", "--repeats", "0"],
            ["bench", "run", "--warmup", "-1"],
            ["bench", "compare", "a.json", "b.json", "--tolerance", "1.5"],
            ["bench", "compare", "a.json", "b.json", "--max-regression", "0.9"],
            ["bench", "run", "--baseline", "b.json", "--tolerance", "1.5"],
            ["bench", "run", "--baseline", "b.json", "--max-regression", "1.0"],
            ["bench", "run", "--format", "yaml"],
            ["bench", "run", "--profile", "0"],
            ["bench"],
        ],
    )
    def test_argument_validation(self, argv, capsys):
        with pytest.raises(SystemExit) as excinfo:
            repro_main(argv)
        assert excinfo.value.code == 2

    def test_compare_missing_file_is_a_clean_error(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        with pytest.raises(SystemExit) as excinfo:
            repro_main(["bench", "compare", missing, missing])
        assert "not found" in str(excinfo.value)

    def test_run_save_and_self_compare_end_to_end(self, tmp_path, capsys):
        out = str(tmp_path / "run.json")
        code = repro_main(
            [
                "bench", "run", "--suite", "components", "--scale", "0.15",
                "--repeats", "1", "--warmup", "0", "--quiet",
                "--format", "json", "--save", out,
                "--history", str(tmp_path / "history"),
            ]
        )
        assert code == 0
        stdout = capsys.readouterr().out
        payload = json.loads(stdout)
        assert payload["schema"] == SCHEMA_VERSION
        assert all(r["case"]["suite"] == "components" for r in payload["results"])
        assert BenchRun.load(out).to_dict() == payload

        assert repro_main(["bench", "compare", out, out, "--format", "json"]) == 0
        report = json.loads(capsys.readouterr().out)
        assert report["failed"] is False
        assert all(d["verdict"] == "within-tolerance" for d in report["deltas"])

    def test_run_with_baseline_json_is_one_document(self, tmp_path, capsys):
        out = str(tmp_path / "run.json")
        assert repro_main(
            [
                "bench", "run", "--suite", "components", "--scale", "0.15",
                "--repeats", "1", "--warmup", "0", "--quiet",
                "--format", "json", "--save", out, "--no-history",
            ]
        ) == 0
        capsys.readouterr()
        # PR 5 made the micro cases sub-millisecond: a 1-repeat self-compare
        # can jitter past any plain tolerance, so gate on --max-regression —
        # this test pins the one-JSON-document contract, not the timings
        assert repro_main(
            [
                "bench", "run", "--suite", "components", "--scale", "0.15",
                "--repeats", "1", "--warmup", "0", "--quiet",
                "--format", "json", "--baseline", out, "--max-regression", "50.0",
            ]
        ) == 0
        payload = json.loads(capsys.readouterr().out)  # must parse as ONE document
        assert set(payload) == {"run", "compare"}
        assert payload["compare"]["failed"] is False

    def test_default_baseline_path_shape(self):
        path = default_baseline_path(host="box", directory="/tmp/x")
        assert path.endswith("BENCH_box.json")

    def test_save_creates_missing_directories(self, tmp_path):
        run = _sample_run()
        path = tmp_path / "deep" / "nested" / "run.json"
        run.save(str(path))
        assert BenchRun.load(str(path)).to_dict() == run.to_dict()

    def test_flag_first_bench_is_a_clear_usage_error(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            repro_main(["--nprocs", "8", "bench"])
        assert excinfo.value.code == 2
        assert "'bench' must come first" in capsys.readouterr().err


# --------------------------------------------------------------------------- #
# pytest-shim compatibility: suites must build against a tiny env
# --------------------------------------------------------------------------- #
def test_pipeline_suite_builds_and_closes():
    from repro.bench import build_suite

    env = BenchEnv.from_environ({}).replace(scale=0.1, nprocs=4)
    instance = build_suite("pipeline", env)
    try:
        assert isinstance(instance, SuiteInstance)
        names = [c.case.name for c in instance.cases]
        assert "sweep-serial-cold" in names
        assert any(name.startswith("simulate-") for name in names)
    finally:
        instance.close()
