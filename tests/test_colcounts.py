"""Tests for the column-count computation (Gilbert-Ng-Peyton vs. reference)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sparse import SparsePattern, arrow_pattern, banded_pattern, grid_2d, grid_3d, random_pattern
from repro.symbolic import column_counts, column_counts_naive, elimination_tree, postorder
from repro.symbolic.colcounts import symbolic_fill


class TestColumnCounts:
    @pytest.mark.parametrize(
        "pattern",
        [
            banded_pattern(15, bandwidth=1),
            banded_pattern(15, bandwidth=3),
            grid_2d(6, 6),
            grid_2d(7, 4, stencil=9),
            grid_3d(4, 4, 4),
            arrow_pattern(20, bandwidth=2, arrow_width=2),
            random_pattern(40, density=0.08, symmetric=True, seed=1),
        ],
        ids=["band1", "band3", "grid2d", "grid2d9", "grid3d", "arrow", "random"],
    )
    def test_matches_naive(self, pattern):
        assert np.array_equal(column_counts(pattern), column_counts_naive(pattern))

    def test_band_counts_closed_form(self):
        # a tridiagonal matrix fills nothing: colcount(j) = min(2, n - j)
        p = banded_pattern(10, bandwidth=1)
        counts = column_counts(p)
        expected = [2] * 9 + [1]
        assert list(counts) == expected

    def test_dense_counts(self):
        n = 8
        rows, cols = np.meshgrid(np.arange(n), np.arange(n))
        p = SparsePattern.from_coo(n, rows.ravel(), cols.ravel(), symmetric=True)
        counts = column_counts(p)
        assert list(counts) == list(range(n, 0, -1))

    def test_counts_bounded_by_n(self, small_grid):
        counts = column_counts(small_grid)
        assert counts.min() >= 1
        assert counts.max() <= small_grid.n

    def test_accepts_precomputed_etree(self, small_grid):
        sym = small_grid.symmetrized().with_diagonal()
        parent = elimination_tree(sym)
        post = postorder(parent)
        a = column_counts(sym, parent, post)
        b = column_counts(sym)
        assert np.array_equal(a, b)

    def test_permutation_changes_fill_not_validity(self, small_grid):
        rng = np.random.default_rng(0)
        perm = rng.permutation(small_grid.n)
        counts = column_counts(small_grid.permuted(perm))
        assert counts.min() >= 1 and counts.max() <= small_grid.n


class TestSymbolicFill:
    def test_summary_keys(self, small_grid):
        info = symbolic_fill(small_grid)
        assert set(info) == {"nnz_L", "fill_ratio", "flops"}
        assert info["nnz_L"] >= small_grid.n
        assert info["fill_ratio"] >= 1.0
        assert info["flops"] > 0

    def test_band_has_no_fill(self):
        p = banded_pattern(20, bandwidth=1)
        info = symbolic_fill(p)
        assert info["fill_ratio"] == pytest.approx(1.0)

    def test_nnz_L_equals_sum_of_counts(self, small_grid):
        counts = column_counts(small_grid)
        assert symbolic_fill(small_grid)["nnz_L"] == pytest.approx(float(counts.sum()))


class TestVectorizedEquivalence:
    """PR 5 gate: the numpy-batched path ≡ the scalar reference, bitwise."""

    @pytest.mark.parametrize(
        "pattern",
        [
            banded_pattern(15, bandwidth=1),
            banded_pattern(25, bandwidth=4),
            grid_2d(8, 8),
            grid_2d(7, 4, stencil=9),
            grid_3d(5, 5, 5),
            arrow_pattern(30, bandwidth=2, arrow_width=2),
            random_pattern(60, density=0.08, symmetric=True, seed=1),
            random_pattern(60, density=0.03, symmetric=False, seed=5),
        ],
        ids=["band1", "band4", "grid2d", "grid2d9", "grid3d", "arrow", "randsym", "randuns"],
    )
    def test_matches_scalar_reference(self, pattern):
        vec = column_counts(pattern)
        ref = column_counts(pattern, vectorized=False)
        assert vec.dtype == ref.dtype
        assert np.array_equal(vec, ref)

    @settings(max_examples=40, deadline=None)
    @given(n=st.integers(min_value=1, max_value=40), seed=st.integers(0, 5000))
    def test_property_matches_scalar_on_random_patterns(self, n, seed):
        rng = np.random.default_rng(seed)
        nnz = max(1, int(rng.uniform(0.02, 0.4) * n * n))
        pattern = SparsePattern.from_coo(
            n, rng.integers(0, n, nnz), rng.integers(0, n, nnz), symmetrize_pattern=True
        )
        sym = pattern.symmetrized().with_diagonal()
        parent = elimination_tree(sym)
        post = postorder(parent)
        vec = column_counts(sym, parent, post)
        ref = column_counts(sym, parent, post, vectorized=False)
        assert np.array_equal(vec, ref)
        assert np.array_equal(vec, column_counts_naive(pattern))


@settings(max_examples=25, deadline=None)
@given(n=st.integers(min_value=2, max_value=20), seed=st.integers(0, 1000))
def test_property_gnp_equals_naive(n, seed):
    """The skeleton algorithm agrees with the row-subtree reference."""
    rng = np.random.default_rng(seed)
    nnz = max(1, int(0.2 * n * n))
    pattern = SparsePattern.from_coo(
        n, rng.integers(0, n, nnz), rng.integers(0, n, nnz), symmetrize_pattern=True
    )
    assert np.array_equal(column_counts(pattern), column_counts_naive(pattern))


@settings(max_examples=15, deadline=None)
@given(n=st.integers(min_value=2, max_value=15), seed=st.integers(0, 1000))
def test_property_counts_decrease_along_supernode(n, seed):
    """Within the etree, a child's count is at most its parent's count + 1."""
    rng = np.random.default_rng(seed)
    nnz = max(1, int(0.25 * n * n))
    pattern = SparsePattern.from_coo(
        n, rng.integers(0, n, nnz), rng.integers(0, n, nnz), symmetrize_pattern=True
    )
    sym = pattern.symmetrized().with_diagonal()
    parent = elimination_tree(sym)
    counts = column_counts(sym, parent)
    for j in range(n):
        p = int(parent[j])
        if p >= 0:
            # struct(L(:,j)) \ {j} is contained in struct(L(:,parent))
            assert counts[j] - 1 <= counts[p]
