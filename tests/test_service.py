"""Tests of the sweep service: jobs, cache, shards, daemon, HTTP API.

The unit tests drive the queue/cache/shard layers directly (with injected
clocks and backends, no sockets); the end-to-end tests run the real daemon
behind a real loopback HTTP server — submit → poll → query — and assert the
acceptance criteria: a repeated ``GET /results`` is served from the cache
(stage-execution counters unchanged) with byte-identical JSON.
"""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.pipeline.stage import CaseSpec
from repro.service import (
    CacheStore,
    InlineShardBackend,
    JobQueue,
    JobSpec,
    JobStateError,
    ServiceClient,
    ServiceError,
    SweepService,
    case_spec_from_query,
    make_server,
    partition_shards,
    result_key,
)
from repro.specs import SweepSpec

NPROCS = 4
SCALE = 0.2


def tiny_sweep(problems=("XENON2",), strategies=("memory-full",)) -> SweepSpec:
    return SweepSpec(problems=list(problems), orderings=["metis"], strategies=list(strategies))


# --------------------------------------------------------------------------- #
# JobSpec / JobRecord
# --------------------------------------------------------------------------- #
class TestJobSpec:
    def test_round_trip(self):
        spec = JobSpec(
            sweep=tiny_sweep(strategies=["mumps-workload", "memory-full"]),
            cases=(CaseSpec("PRE2", "amd"),),
            priority=2,
            max_attempts=5,
            timeout_s=9.5,
        )
        clone = JobSpec.from_dict(json.loads(json.dumps(spec.to_dict())))
        assert clone == spec
        assert [c.problem for c in clone.expand()] == ["XENON2", "XENON2", "PRE2"]

    def test_needs_work(self):
        with pytest.raises(ValueError, match="sweep grid, explicit cases, or a tune spec"):
            JobSpec()

    def test_rejects_bad_policy(self):
        with pytest.raises(ValueError, match="max_attempts"):
            JobSpec(sweep=tiny_sweep(), max_attempts=0)
        with pytest.raises(ValueError, match="timeout_s"):
            JobSpec(sweep=tiny_sweep(), timeout_s=0)

    def test_rejects_unknown_fields(self):
        with pytest.raises(ValueError, match="unknown JobSpec fields"):
            JobSpec.from_dict({"sweep": tiny_sweep().to_dict(), "nope": 1})


# --------------------------------------------------------------------------- #
# JobQueue: state machine + journal
# --------------------------------------------------------------------------- #
class TestJobQueue:
    def test_lifecycle_done(self, tmp_path):
        queue = JobQueue(tmp_path / "journal.jsonl", fsync=False)
        record = queue.submit(JobSpec(sweep=tiny_sweep()))
        assert record.state == "queued"
        assert record.total == 1
        claimed = queue.claim(timeout=1)
        assert claimed is not None and claimed.id == record.id
        assert queue.get(record.id).state == "running"
        queue.progress(record.id, done=1, shards_done=1, result_keys=["result-x"])
        queue.finish(record.id)
        final = queue.get(record.id)
        assert final.state == "done"
        assert final.done == final.total == 1
        assert final.result_keys == ["result-x"]
        assert final.finished_at is not None

    def test_lifecycle_failed_and_terminal_states_frozen(self, tmp_path):
        queue = JobQueue(tmp_path / "journal.jsonl", fsync=False)
        record = queue.submit(JobSpec(sweep=tiny_sweep()))
        queue.claim(timeout=1)
        queue.fail(record.id, "boom")
        assert queue.get(record.id).state == "failed"
        with pytest.raises(JobStateError, match="illegal transition"):
            queue.finish(record.id)
        with pytest.raises(JobStateError, match="illegal transition"):
            queue.requeue(record.id)

    def test_cannot_finish_unclaimed(self, tmp_path):
        queue = JobQueue(tmp_path / "journal.jsonl", fsync=False)
        record = queue.submit(JobSpec(sweep=tiny_sweep()))
        with pytest.raises(JobStateError, match="queued.*done"):
            queue.finish(record.id)

    def test_priority_order(self, tmp_path):
        queue = JobQueue(tmp_path / "journal.jsonl", fsync=False)
        low = queue.submit(JobSpec(sweep=tiny_sweep(), priority=0))
        high = queue.submit(JobSpec(sweep=tiny_sweep(), priority=5))
        assert queue.claim(timeout=1).id == high.id
        assert queue.claim(timeout=1).id == low.id

    def test_claim_timeout_returns_none(self, tmp_path):
        queue = JobQueue(tmp_path / "journal.jsonl", fsync=False)
        assert queue.claim(timeout=0.01) is None

    def test_requeue_bumps_attempts_and_resets_progress(self, tmp_path):
        queue = JobQueue(tmp_path / "journal.jsonl", fsync=False)
        record = queue.submit(JobSpec(sweep=tiny_sweep()))
        queue.claim(timeout=1)
        queue.progress(record.id, done=1, shards_done=1)
        queue.requeue(record.id, error="transient")
        back = queue.get(record.id)
        assert back.state == "queued"
        assert back.attempts == 1
        assert back.done == 0 and back.shards_done == 0
        assert queue.claim(timeout=1).id == record.id

    def test_journal_replay_recovers_crashed_jobs(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        queue = JobQueue(path, fsync=False)
        finished = queue.submit(JobSpec(sweep=tiny_sweep()))
        crashed = queue.submit(JobSpec(sweep=tiny_sweep()))
        waiting = queue.submit(JobSpec(sweep=tiny_sweep(), priority=-1))
        assert queue.claim(timeout=1).id == finished.id
        queue.finish(finished.id, result_keys=["result-a"])
        assert queue.claim(timeout=1).id == crashed.id  # dies while running

        revived = JobQueue(path, fsync=False)  # the "restarted daemon"
        assert revived.recovered == 1
        assert revived.get(finished.id).state == "done"
        assert revived.get(finished.id).result_keys == ["result-a"]
        assert revived.get(crashed.id).state == "queued"
        assert revived.get(waiting.id).state == "queued"
        # the crashed job is claimable again (and outranks the low-priority one)
        assert revived.claim(timeout=1).id == crashed.id

    def test_journal_ignores_torn_trailing_line(self, tmp_path):
        path = tmp_path / "journal.jsonl"
        queue = JobQueue(path, fsync=False)
        record = queue.submit(JobSpec(sweep=tiny_sweep()))
        with open(path, "a", encoding="utf-8") as fh:
            fh.write('{"op": "update", "id": "' + record.id + '", "state": "fai')  # torn
        revived = JobQueue(path, fsync=False)
        assert revived.get(record.id).state == "queued"

    def test_counts(self, tmp_path):
        queue = JobQueue(tmp_path / "journal.jsonl", fsync=False)
        a = queue.submit(JobSpec(sweep=tiny_sweep()))
        queue.submit(JobSpec(sweep=tiny_sweep()))
        queue.claim(timeout=1)
        queue.fail(a.id, "x")
        counts = queue.counts()
        assert counts == {"queued": 1, "running": 0, "done": 0, "failed": 1}


# --------------------------------------------------------------------------- #
# shard partitioning
# --------------------------------------------------------------------------- #
class TestPartitionShards:
    def test_groups_by_analysis_signature(self):
        specs = [
            CaseSpec("XENON2", "metis", "mumps-workload"),
            CaseSpec("PRE2", "metis", "memory-full"),
            CaseSpec("XENON2", "metis", "memory-full"),
            CaseSpec("XENON2", "metis", "memory-full", nprocs=8),
        ]
        shards = partition_shards(specs)
        assert [[i for i, _ in shard] for shard in shards] == [[0, 2], [1], [3]]

    def test_chunking(self):
        specs = [CaseSpec("XENON2", "metis", f"hybrid(alpha=0.{i})") for i in range(1, 6)]
        shards = partition_shards(specs, max_shard_size=2)
        assert [len(s) for s in shards] == [2, 2, 1]
        assert [i for shard in shards for i, _ in shard] == list(range(5))

    def test_bad_shard_size(self):
        with pytest.raises(ValueError, match="max_shard_size"):
            partition_shards([], max_shard_size=0)


# --------------------------------------------------------------------------- #
# CacheStore
# --------------------------------------------------------------------------- #
class FakeClock:
    def __init__(self, now: float = 1000.0) -> None:
        self.now = now

    def __call__(self) -> float:
        return self.now


class TestCacheStore:
    def test_put_get_and_stats(self, tmp_path):
        cache = CacheStore(tmp_path)
        cache.put("k1", {"v": 1})
        assert cache.get("k1") == {"v": 1}
        assert "k1" in cache
        stats = cache.stats()
        assert stats.entries == 1
        assert stats.hits == 1 and stats.misses == 0 and stats.puts == 1
        assert stats.bytes > 0

    def test_miss_counts(self, tmp_path):
        cache = CacheStore(tmp_path)
        with pytest.raises(KeyError):
            cache.get("absent")
        assert cache.stats().misses == 1

    def test_ttl_expiry(self, tmp_path):
        clock = FakeClock()
        cache = CacheStore(tmp_path, ttl_s=10.0, clock=clock)
        cache.put("k", "value")
        clock.now += 5
        assert cache.get("k") == "value"
        clock.now += 6  # 11s after the put: expired
        with pytest.raises(KeyError):
            cache.get("k")
        stats = cache.stats()
        assert stats.ttl_evictions == 1
        assert stats.entries == 0
        assert not (cache.disk.path("k")).exists()  # evicted from disk too

    def test_ttl_sweep(self, tmp_path):
        clock = FakeClock()
        cache = CacheStore(tmp_path, ttl_s=10.0, clock=clock)
        cache.put("old", 1)
        clock.now += 20
        cache.put("new", 2)
        assert cache.sweep() == 1
        assert "new" in cache and len(cache) == 1

    def test_lru_eviction_by_entries(self, tmp_path):
        cache = CacheStore(tmp_path, max_entries=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1  # touch: b becomes LRU
        cache.put("c", 3)
        assert "b" not in cache
        assert "a" in cache and "c" in cache
        assert cache.stats().lru_evictions == 1

    def test_lru_eviction_by_bytes_and_accounting(self, tmp_path):
        cache = CacheStore(tmp_path)
        cache.put("probe", "x" * 100)
        entry_size = cache.stats().bytes
        cache2 = CacheStore(tmp_path / "b", max_bytes=int(entry_size * 2.5))
        cache2.put("a", "x" * 100)
        cache2.put("b", "x" * 100)
        assert cache2.stats().entries == 2
        cache2.put("c", "x" * 100)  # over budget: evict LRU ("a")
        assert "a" not in cache2
        assert cache2.stats().entries == 2
        assert cache2.stats().bytes <= int(entry_size * 2.5)

    def test_oversized_single_entry_survives(self, tmp_path):
        cache = CacheStore(tmp_path, max_bytes=1)
        cache.put("big", "x" * 1000)
        assert cache.get("big") == "x" * 1000  # never evict the only entry

    def test_overwrite_reaccounts_size(self, tmp_path):
        cache = CacheStore(tmp_path)
        cache.put("k", "x" * 1000)
        big = cache.stats().bytes
        cache.put("k", "x")
        assert cache.stats().entries == 1
        assert cache.stats().bytes < big

    def test_sibling_process_adoption(self, tmp_path):
        writer = CacheStore(tmp_path)
        writer.put("shared", {"from": "writer"})
        reader = CacheStore(tmp_path)  # fresh index, same directory
        assert reader.get("shared") == {"from": "writer"}
        # and a key deleted by the sibling degrades into a miss
        writer.delete("shared")
        with pytest.raises(KeyError):
            reader.get("shared")

    def test_concurrent_writers_and_readers(self, tmp_path):
        cache = CacheStore(tmp_path, max_entries=32)
        errors: list[BaseException] = []

        def hammer(seed: int) -> None:
            try:
                for i in range(120):
                    key = f"k{(seed * 31 + i) % 48}"
                    if i % 3 == 0:
                        cache.put(key, {"seed": seed, "i": i})
                    else:
                        try:
                            value = cache.get(key)
                            assert isinstance(value, dict)
                        except KeyError:
                            pass
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(t,)) for t in range(6)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert not errors
        assert len(cache) <= 32
        stats = cache.stats()
        assert stats.bytes >= 0 and stats.puts > 0

    def test_clear(self, tmp_path):
        cache = CacheStore(tmp_path)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.clear() == 2
        assert len(cache) == 0
        assert list(cache.disk.keys()) == []


# --------------------------------------------------------------------------- #
# result keys and query parsing
# --------------------------------------------------------------------------- #
class TestResultKeys:
    @pytest.fixture(scope="class")
    def engine(self):
        from repro.pipeline.engine import AnalysisPipeline

        return AnalysisPipeline(nprocs=NPROCS, scale=SCALE, cache_dir="")

    def test_defaults_and_explicit_values_share_a_key(self, engine):
        implicit = CaseSpec("XENON2", "metis", "memory-full")
        explicit = CaseSpec("XENON2", "metis", "memory-full", nprocs=NPROCS, scale=SCALE)
        assert result_key(engine, implicit) == result_key(engine, explicit)

    def test_params_differentiate(self, engine):
        base = CaseSpec("XENON2", "metis", "hybrid(alpha=0.3)")
        other = CaseSpec("XENON2", "metis", "hybrid(alpha=0.5)")
        assert result_key(engine, base) != result_key(engine, other)

    def test_keyword_order_is_canonicalised(self, engine):
        a = CaseSpec("XENON2", "metis", "hybrid(alpha=0.3,use_predictions=false)")
        b = CaseSpec("XENON2", "metis", "hybrid(use_predictions=false, alpha=0.3)")
        assert result_key(engine, a) == result_key(engine, b)

    def test_query_parsing(self):
        spec = case_spec_from_query(
            {"problem": "xenon2", "strategy": "hybrid(alpha=0.3)", "nprocs": "8", "split": "true"}
        )
        assert spec.problem == "XENON2"
        assert spec.strategy == "hybrid(alpha=0.3)"
        assert spec.nprocs == 8 and spec.split is True
        assert spec.ordering == "metis"  # default

    def test_query_parsing_errors(self):
        with pytest.raises(ValueError, match="missing required"):
            case_spec_from_query({})
        with pytest.raises(ValueError, match="unknown query parameter"):
            case_spec_from_query({"problem": "XENON2", "bogus": "1"})
        with pytest.raises(ValueError, match="expects int"):
            case_spec_from_query({"problem": "XENON2", "nprocs": "eight"})
        with pytest.raises(ValueError, match="expects a boolean"):
            case_spec_from_query({"problem": "XENON2", "split": "maybe"})


# --------------------------------------------------------------------------- #
# daemon execution policies (no sockets: direct SweepService)
# --------------------------------------------------------------------------- #
class FlakyBackend(InlineShardBackend):
    """Fails the first ``failures`` run_shard calls, then delegates."""

    def __init__(self, engine, failures: int) -> None:
        super().__init__(engine)
        self.failures = failures
        self.calls = 0

    def run_shard(self, specs, *, timeout_s=None):
        self.calls += 1
        if self.calls <= self.failures:
            raise RuntimeError(f"transient failure {self.calls}")
        return super().run_shard(specs, timeout_s=timeout_s)


class SlowBackend(InlineShardBackend):
    def __init__(self, engine, delay: float) -> None:
        super().__init__(engine)
        self.delay = delay

    def run_shard(self, specs, *, timeout_s=None):
        time.sleep(self.delay)
        return super().run_shard(specs, timeout_s=timeout_s)


def _make_service(tmp_path, **kwargs) -> SweepService:
    kwargs.setdefault("nprocs", NPROCS)
    kwargs.setdefault("scale", SCALE)
    kwargs.setdefault("journal_fsync", False)
    kwargs.setdefault("retry_base_delay", 0.01)
    return SweepService(data_dir=tmp_path / "svc", **kwargs)


def _wait_terminal(service: SweepService, job_id: str, timeout: float = 120.0):
    deadline = time.monotonic() + timeout
    while time.monotonic() < deadline:
        record = service.queue.get(job_id)
        if record.state in ("done", "failed"):
            return record
        time.sleep(0.01)
    raise AssertionError(f"job {job_id} did not finish within {timeout}s")


class TestSweepServiceExecution:
    def test_retry_with_backoff_recovers(self, tmp_path):
        service = _make_service(tmp_path)
        service.backend = FlakyBackend(service.engine, failures=2)
        with service:
            record = service.submit({"sweep": tiny_sweep().to_dict(), "max_attempts": 3})
            final = _wait_terminal(service, record.id)
        assert final.state == "done"
        assert final.attempts == 2  # two failed attempts were journaled
        assert service.backend.calls == 3

    def test_retry_budget_exhausted_fails(self, tmp_path):
        service = _make_service(tmp_path)
        service.backend = FlakyBackend(service.engine, failures=99)
        with service:
            record = service.submit({"sweep": tiny_sweep().to_dict(), "max_attempts": 2})
            final = _wait_terminal(service, record.id)
        assert final.state == "failed"
        assert "RuntimeError" in final.error
        assert service.backend.calls == 2

    def test_job_timeout(self, tmp_path):
        service = _make_service(tmp_path)
        service.backend = SlowBackend(service.engine, delay=0.1)
        with service:
            # two problems → two shards; the deadline elapses after shard one
            spec = {"sweep": tiny_sweep(problems=["XENON2", "PRE2"]).to_dict(), "timeout_s": 0.05}
            record = service.submit(spec)
            final = _wait_terminal(service, record.id)
        assert final.state == "failed"
        assert final.error.startswith("timeout")

    def test_invalid_submission_rejected_before_queueing(self, tmp_path):
        service = _make_service(tmp_path)
        with pytest.raises(ValueError):
            service.submit({"sweep": {"problems": []}})
        assert len(service.queue) == 0
        service.stop()

    def test_results_cached_under_canonical_keys(self, tmp_path):
        service = _make_service(tmp_path)
        with service:
            record = service.submit(
                {"sweep": tiny_sweep(strategies=["mumps-workload", "memory-full"]).to_dict()}
            )
            final = _wait_terminal(service, record.id)
            assert final.state == "done"
            assert len(final.result_keys) == 2
            for key in final.result_keys:
                payload = service.cache.get(key)
                assert payload["problem"] == "XENON2"
            # a query for the same case is a pure cache hit
            outcome = service.query({"problem": "XENON2", "strategy": "memory-full"})
            assert outcome.cached is True

    def test_crash_recovery_reruns_job(self, tmp_path):
        service = _make_service(tmp_path)
        # no start(): submit then simulate a crash mid-queue
        record = service.submit({"sweep": tiny_sweep().to_dict()})
        claimed = service.queue.claim(timeout=1)
        assert claimed.id == record.id  # "crashed" while running
        service.stop()

        revived = _make_service(tmp_path)
        assert revived.queue.recovered == 1
        with revived:
            final = _wait_terminal(revived, record.id)
        assert final.state == "done"


# --------------------------------------------------------------------------- #
# end-to-end over a real socket
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """A running daemon + HTTP server + client (module-shared, tiny scale)."""
    data_dir = tmp_path_factory.mktemp("service-e2e")
    service = SweepService(
        data_dir=data_dir, nprocs=NPROCS, scale=SCALE, journal_fsync=False
    )
    service.start()
    server = make_server(service, quiet=True)
    server.serve_background()
    client = ServiceClient(f"http://127.0.0.1:{server.port}")
    yield service, client
    server.shutdown()
    server.server_close()
    service.stop()


class TestServiceEndToEnd:
    def test_healthz(self, served):
        _, client = served
        payload = client.healthz()
        assert payload["status"] == "ok"
        assert payload["engine"] == {"nprocs": NPROCS, "scale": SCALE, "artifact_cache_dir": ""}
        assert set(payload["jobs"]) == {"queued", "running", "done", "failed"}

    def test_submit_poll_query_roundtrip(self, served):
        service, client = served
        record = client.submit(
            {
                "sweep": {
                    "problems": ["XENON2"],
                    "orderings": ["metis"],
                    "strategies": ["mumps-workload", "hybrid(alpha=0.3)"],
                }
            }
        )
        assert record["state"] == "queued" or record["state"] == "running"
        final = client.wait(str(record["id"]), timeout=120)
        assert final["state"] == "done"
        assert final["done"] == final["total"] == 2
        assert final["shards_done"] == final["shards_total"] == 1

        # the job populated the cache: the query is a hit, not a recompute
        response = client.results(
            problem="XENON2", ordering="metis", strategy="hybrid(alpha=0.3)"
        )
        assert response.cached
        assert response.payload["result"]["strategy"] == "hybrid(alpha=0.3)"

    def test_repeated_query_is_cached_and_byte_identical(self, served):
        """The PR's acceptance criterion, end to end."""
        service, client = served
        params = {"problem": "XENON2", "ordering": "metis", "strategy": "memory-full"}
        service.cache.clear()

        first = client.results(**params)
        assert first.cache == "miss"  # computed through the pipeline

        runs_before = client.healthz()["stage_runs"]
        start = time.perf_counter()
        second = client.results(**params)
        latency = time.perf_counter() - start
        runs_after = client.healthz()["stage_runs"]

        assert second.cache == "hit"
        assert second.body == first.body  # byte-identical JSON
        assert runs_after == runs_before  # no pipeline stage re-executed
        assert latency < 0.25  # served from cache in milliseconds, not seconds

    def test_query_defaults_match_explicit_engine_values(self, served):
        _, client = served
        a = client.results(problem="XENON2", ordering="metis", strategy="memory-full")
        b = client.results(
            problem="XENON2", ordering="metis", strategy="memory-full",
            nprocs=NPROCS, scale=SCALE,
        )
        assert b.cache == "hit"
        assert a.payload["key"] == b.payload["key"]
        assert a.body == b.body

    def test_no_compute_miss_is_404(self, served):
        _, client = served
        with pytest.raises(ServiceError) as err:
            client.results(problem="XENON2", strategy="memory-basic", compute=False)
        assert err.value.status == 404

    def test_bad_requests_are_400(self, served):
        _, client = served
        with pytest.raises(ServiceError) as err:
            client.results(problem="XENON2", nprocs="eight")
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            client.submit({"sweep": {"problems": []}})
        assert err.value.status == 400
        with pytest.raises(ServiceError) as err:
            client._request("/results?bogus=1")
        assert err.value.status == 400

    def test_unknown_endpoints_and_jobs_are_404(self, served):
        _, client = served
        with pytest.raises(ServiceError) as err:
            client._request("/nope")
        assert err.value.status == 404
        with pytest.raises(ServiceError) as err:
            client.job("does-not-exist")
        assert err.value.status == 404

    def test_jobs_listing(self, served):
        _, client = served
        jobs = client.jobs()
        assert jobs, "earlier tests submitted jobs"
        assert {"id", "state", "done", "total"} <= set(jobs[0])

    def test_table_endpoint_cache_first(self, served):
        service, client = served
        first = client.table("table1", problems="XENON2,PRE2")
        second = client.table("table1", problems="XENON2,PRE2")
        assert first.payload["table"] == "table1"
        assert set(first.payload["rows"]) == {"XENON2", "PRE2"}
        assert second.cache == "hit"
        assert second.body == first.body

    def test_unknown_table_is_client_error(self, served):
        _, client = served
        with pytest.raises(ServiceError) as err:
            client.table("table99")
        assert err.value.status == 400
