"""Tests of the redesigned results API: paginated listing, shim, client.

Drives the daemon's ``list_results`` directly for the validation and
pagination semantics, then the real loopback HTTP server end-to-end for
the acceptance criteria: ``GET /results?...&limit=...`` answers from the
columnar store with byte-stable pages, the old single-result shape still
works through the ``/results`` deprecation shim (with a ``Deprecation``
header), and the new single-result home is ``GET /result``.
"""

from __future__ import annotations

import json
import urllib.request

import pytest

from repro.service import (
    ServiceClient,
    ServiceError,
    SweepService,
    make_server,
)

NPROCS = 4
SCALE = 0.2

SUBMIT_SPEC = {
    "sweep": {
        "problems": ["XENON2"],
        "orderings": ["metis"],
        "strategies": ["mumps-workload", "hybrid(alpha=0.3)"],
        "nprocs": [4, 8],
        "split": [False],
    }
}  # 4 cases


@pytest.fixture(scope="module")
def served(tmp_path_factory):
    """A running daemon + HTTP server + client, with one sweep job done."""
    data_dir = tmp_path_factory.mktemp("results-api")
    service = SweepService(
        data_dir=data_dir, nprocs=NPROCS, scale=SCALE, journal_fsync=False
    )
    service.start()
    server = make_server(service, quiet=True)
    server.serve_background()
    client = ServiceClient(f"http://127.0.0.1:{server.port}")
    record = client.submit(SUBMIT_SPEC)
    record = client.wait(str(record["id"]), timeout=120.0)
    assert record["state"] == "done", record
    yield service, client
    server.shutdown()
    server.server_close()
    service.stop()


# --------------------------------------------------------------------------- #
# daemon-level semantics
# --------------------------------------------------------------------------- #
class TestListResultsSemantics:
    def test_full_listing_shape(self, served):
        service, _ = served
        page = service.list_results({"problem": "XENON2"})
        assert page["total"] == 4
        assert page["count"] == 4
        assert page["cursor"] == 0
        assert page["limit"] == service.DEFAULT_PAGE
        assert page["next"] is None
        row = page["results"][0]
        assert row["problem"] == "XENON2"
        assert row["key"]  # every service row carries its canonical key

    def test_rows_come_in_canonical_order(self, served):
        service, _ = served
        rows = service.list_results({})["results"]
        order = [(r["strategy"], r["nprocs"]) for r in rows]
        assert order == sorted(order)

    def test_pagination_and_next_link(self, served):
        service, _ = served
        first = service.list_results({"limit": "3"})
        assert first["count"] == 3 and first["total"] == 4
        assert first["next"] == "/results?cursor=3&limit=3"
        second = service.list_results({"limit": "3", "cursor": "3"})
        assert second["count"] == 1 and second["next"] is None
        assert first["results"] + second["results"] == service.list_results({})["results"]

    def test_next_link_carries_filters_and_fields(self, served):
        service, _ = served
        page = service.list_results(
            {"problem": "XENON2", "limit": "1", "fields": "problem,nprocs"}
        )
        assert page["next"] == "/results?cursor=1&fields=problem%2Cnprocs&limit=1&problem=XENON2"
        assert page["results"] == [{"problem": "XENON2", "nprocs": 4}]

    def test_cursor_past_the_end_is_an_empty_page(self, served):
        service, _ = served
        page = service.list_results({"cursor": "999"})
        assert page["count"] == 0 and page["results"] == [] and page["next"] is None

    def test_filters_canonicalise_like_single_queries(self, served):
        service, _ = served
        sloppy = service.list_results(
            {"problem": "xenon2", "strategy": "hybrid( alpha = 0.3 )"}
        )
        assert sloppy["total"] == 2  # nprocs 4 and 8
        assert {r["nprocs"] for r in sloppy["results"]} == {4, 8}
        assert service.list_results({"nprocs": "8"})["total"] == 2
        assert service.list_results({"split": "true"})["total"] == 0
        assert service.list_results({"split": "no"})["total"] == 4

    def test_validation_errors(self, served):
        service, _ = served
        with pytest.raises(ValueError, match="unknown query parameter"):
            service.list_results({"bogus": "1"})
        with pytest.raises(ValueError, match="limit must be in"):
            service.list_results({"limit": "0"})
        with pytest.raises(ValueError, match="limit must be in"):
            service.list_results({"limit": str(service.MAX_PAGE + 1)})
        with pytest.raises(ValueError, match="cursor must be"):
            service.list_results({"cursor": "-1"})
        with pytest.raises(ValueError, match="expects int"):
            service.list_results({"limit": "lots"})
        with pytest.raises(ValueError, match="'split' expects a boolean"):
            service.list_results({"split": "maybe"})
        with pytest.raises(ValueError, match="unknown result field"):
            service.list_results({"fields": "problem,owner"})

    def test_listing_agrees_with_the_store(self, served):
        service, _ = served
        rows = service.list_results({})["results"]
        assert {r["key"] for r in rows} == set(service.results.keys())


# --------------------------------------------------------------------------- #
# HTTP end to end
# --------------------------------------------------------------------------- #
class TestResultsOverHTTP:
    def test_acceptance_url_pages_from_the_store(self, served):
        _, client = served
        response = client.list_results(problem="xenon2", limit=50)
        assert response.status == 200
        assert response.payload["total"] == 4
        assert len(response.payload["results"]) == 4

    def test_repeated_listing_is_byte_identical(self, served):
        _, client = served
        a = client.list_results(problem="XENON2", limit=50)
        b = client.list_results(problem="XENON2", limit=50)
        assert a.body == b.body

    def test_cursor_walk_via_next_links(self, served):
        _, client = served
        full = client.list_results(limit=50).payload["results"]
        walked: list[dict] = []
        page = client._request("/results?limit=2").payload
        walked.extend(page["results"])
        while page["next"]:
            page = client._request(str(page["next"])).payload
            walked.extend(page["results"])
        assert walked == full

    def test_bad_requests_are_400(self, served):
        _, client = served
        with pytest.raises(ServiceError) as excinfo:
            client.list_results(limit=0)
        assert excinfo.value.status == 400
        with pytest.raises(ServiceError) as excinfo:
            client._request("/results?bogus=1&limit=5")
        assert excinfo.value.status == 400

    def test_new_single_result_endpoint(self, served):
        _, client = served
        response = client.result(
            problem="XENON2", ordering="metis", strategy="hybrid(alpha=0.3)", nprocs=8
        )
        assert response.status == 200
        assert response.cached  # computed by the job, served from cache
        assert response.payload["result"]["problem"] == "XENON2"

    def test_single_result_no_compute_miss_is_404(self, served):
        _, client = served
        with pytest.raises(ServiceError) as excinfo:
            client.result(
                problem="PRE2", ordering="metis", strategy="memory-full", compute=False
            )
        assert excinfo.value.status == 404

    def test_legacy_results_shim_still_answers_single_lookups(self, served):
        _, client = served
        legacy = client.results(
            problem="XENON2", ordering="metis", strategy="hybrid(alpha=0.3)", nprocs=8
        )
        new = client.result(
            problem="XENON2", ordering="metis", strategy="hybrid(alpha=0.3)", nprocs=8
        )
        assert legacy.body == new.body  # same payload, old URL

    def test_legacy_shim_sends_deprecation_headers(self, served):
        _, client = served
        url = (
            client.base_url
            + "/results?problem=XENON2&ordering=metis&strategy=mumps-workload&nprocs=8"
        )
        with urllib.request.urlopen(url, timeout=30) as response:
            assert response.headers.get("Deprecation") == "true"
            assert "GET /result" in response.headers.get("X-Repro-Deprecated", "")
            json.loads(response.read())

    def test_list_shape_has_no_deprecation_header(self, served):
        _, client = served
        url = client.base_url + "/results?problem=XENON2&limit=5"
        with urllib.request.urlopen(url, timeout=30) as response:
            assert response.headers.get("Deprecation") is None
            payload = json.loads(response.read())
        assert payload["total"] == 4

    def test_healthz_reports_store_stats(self, served):
        _, client = served
        stats = client.healthz()
        assert stats["results"]["rows"] == 4
        assert stats["results"]["segments"] >= 1
