"""Unit tests for the synthetic pattern generators."""

import numpy as np
import pytest

from repro.sparse import (
    arrow_pattern,
    banded_pattern,
    circuit_pattern,
    fem_block_pattern,
    grid_2d,
    grid_3d,
    normal_equations,
    random_pattern,
)


class TestGrids:
    def test_grid_2d_size_and_symmetry(self):
        g = grid_2d(4, 6)
        assert g.n == 24
        assert g.is_structurally_symmetric()
        assert g.has_diagonal()

    def test_grid_2d_5pt_nnz(self):
        # nnz = n (diagonal) + 2 * number of grid edges
        nx, ny = 5, 7
        g = grid_2d(nx, ny, stencil=5)
        edges = nx * (ny - 1) + ny * (nx - 1)
        assert g.nnz == nx * ny + 2 * edges

    def test_grid_2d_9pt_has_diagonal_neighbours(self):
        g = grid_2d(3, 3, stencil=9)
        # centre vertex (index 4) touches all 8 neighbours plus itself
        assert g.row(4).size == 9

    def test_grid_3d_7pt_interior_degree(self):
        g = grid_3d(4, 4, 4, stencil=7)
        deg = g.degrees()
        assert deg.max() == 6

    def test_grid_3d_27pt_interior_degree(self):
        g = grid_3d(4, 4, 4, stencil=27)
        assert g.degrees().max() == 26

    def test_grid_invalid_args(self):
        with pytest.raises(ValueError):
            grid_2d(0, 3)
        with pytest.raises(ValueError):
            grid_2d(3, 3, stencil=7)
        with pytest.raises(ValueError):
            grid_3d(2, 2, 2, stencil=9)

    def test_grid_unsymmetric_flag(self):
        g = grid_3d(3, 3, 3, symmetric=False)
        assert not g.symmetric
        # the pattern itself is still structurally symmetric (stencil)
        assert g.is_structurally_symmetric()


class TestFemBlock:
    def test_block_expansion_size(self):
        base = grid_2d(3, 3)
        fem = fem_block_pattern(base, 3)
        assert fem.n == base.n * 3
        assert fem.nnz == base.nnz * 9

    def test_block_expansion_identity(self):
        base = grid_2d(3, 3)
        assert fem_block_pattern(base, 1).nnz == base.nnz

    def test_block_expansion_coupling(self):
        base = grid_2d(2, 2)
        fem = fem_block_pattern(base, 2)
        # base edge (0,1) must expand to the full 2x2 block
        assert 2 in fem.row(0) and 3 in fem.row(0) and 2 in fem.row(1) and 3 in fem.row(1)

    def test_block_invalid(self):
        with pytest.raises(ValueError):
            fem_block_pattern(grid_2d(2, 2), 0)


class TestNormalEquations:
    def test_shape_and_symmetry(self):
        p = normal_equations(60, 200, seed=1)
        assert p.n == 60
        assert p.is_structurally_symmetric()
        assert p.has_diagonal()

    def test_dense_rows_increase_density(self):
        sparse = normal_equations(60, 200, seed=1, dense_rows=0)
        dense = normal_equations(60, 200, seed=1, dense_rows=2)
        assert dense.nnz > sparse.nnz

    def test_deterministic(self):
        a = normal_equations(40, 100, seed=7)
        b = normal_equations(40, 100, seed=7)
        assert a == b

    def test_invalid(self):
        with pytest.raises(ValueError):
            normal_equations(0, 10)


class TestCircuit:
    def test_basic_properties(self):
        c = circuit_pattern(300, seed=2)
        assert c.n == 300
        assert not c.symmetric
        assert c.has_diagonal()

    def test_partial_symmetry(self):
        c = circuit_pattern(400, symmetry=0.5, seed=3)
        assert 0.2 < c.structural_symmetry() < 1.0

    def test_dense_rows_present(self):
        c = circuit_pattern(300, n_dense_rows=2, dense_fraction=0.2, seed=4)
        row_sizes = np.diff(c.indptr)
        assert row_sizes.max() >= 0.15 * 300

    def test_deterministic(self):
        assert circuit_pattern(200, seed=9) == circuit_pattern(200, seed=9)

    def test_invalid(self):
        with pytest.raises(ValueError):
            circuit_pattern(1)


class TestRandomArrowBand:
    def test_random_density(self):
        p = random_pattern(100, density=0.05, seed=0)
        assert p.n == 100
        # duplicates shrink the count a little; just sanity-bound it
        assert 0.5 * 0.05 * 100 * 100 < p.nnz <= 0.05 * 100 * 100 + 100

    def test_random_symmetric(self):
        p = random_pattern(80, density=0.05, symmetric=True, seed=1)
        assert p.is_structurally_symmetric()

    def test_random_invalid_density(self):
        with pytest.raises(ValueError):
            random_pattern(10, density=2.0)

    def test_arrow_structure(self):
        p = arrow_pattern(20, bandwidth=1, arrow_width=2)
        # the last two rows are dense
        assert p.row(19).size == 20
        assert p.row(18).size == 20
        assert p.is_structurally_symmetric()

    def test_banded_structure(self):
        p = banded_pattern(12, bandwidth=3)
        assert p.row(0).size == 4  # diagonal + 3 superdiagonals
        assert p.row(6).size == 7

    def test_band_invalid(self):
        with pytest.raises(ValueError):
            banded_pattern(0)
        with pytest.raises(ValueError):
            arrow_pattern(1)
