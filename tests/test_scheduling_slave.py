"""Unit tests for the slave-selection strategies (Algorithm 1, baseline, hybrid)."""

import numpy as np
import pytest

from repro.scheduling import (
    HybridSlaveSelector,
    MemorySlaveSelector,
    SlaveSelectionContext,
    WorkloadSlaveSelector,
    normalize_row_distribution,
)


def make_ctx(
    memory,
    *,
    load=None,
    effective=None,
    npiv=10,
    nfront=110,
    master=0,
    own_load=1e9,
    min_rows=1,
    max_slaves=None,
    candidates=None,
):
    memory = np.asarray(memory, dtype=np.float64)
    nprocs = memory.size
    if load is None:
        load = np.zeros(nprocs)
    if effective is None:
        effective = memory
    if candidates is None:
        candidates = [q for q in range(nprocs) if q != master]
    return SlaveSelectionContext(
        master_proc=master,
        node=0,
        npiv=npiv,
        nfront=nfront,
        ncb=nfront - npiv,
        symmetric=False,
        candidates=candidates,
        memory_view=memory,
        effective_memory_view=np.asarray(effective, dtype=np.float64),
        load_view=np.asarray(load, dtype=np.float64),
        own_load=own_load,
        own_memory=float(memory[master]),
        min_rows_per_slave=min_rows,
        max_slaves=max_slaves if max_slaves is not None else nprocs - 1,
    )


def total_rows(selection):
    return sum(r for _, r in selection)


class TestNormalizeRowDistribution:
    def test_total_preserved(self):
        out = normalize_row_distribution([(1, 5), (2, 3)], 10, [1, 2, 3])
        assert total_rows(out) == 10

    def test_drops_invalid_entries(self):
        out = normalize_row_distribution([(9, 5), (1, -2), (2, 4)], 4, [1, 2])
        assert all(q in (1, 2) for q, _ in out)
        assert total_rows(out) == 4

    def test_clips_excess(self):
        out = normalize_row_distribution([(1, 100)], 10, [1])
        assert out == [(1, 10)]

    def test_empty_assignment_falls_back_to_first_candidate(self):
        out = normalize_row_distribution([], 7, [3, 4])
        assert out == [(3, 7)]

    def test_zero_rows(self):
        assert normalize_row_distribution([(1, 3)], 0, [1]) == []


class TestMemorySlaveSelector:
    def test_covers_all_rows(self):
        ctx = make_ctx([0, 1000, 2000, 3000])
        sel = MemorySlaveSelector(use_predictions=False).select(ctx)
        assert total_rows(sel) == ctx.ncb
        assert all(q != 0 for q, _ in sel)

    def test_prefers_least_loaded_memory(self):
        ctx = make_ctx([0, 50_000, 100, 60_000])
        sel = dict(MemorySlaveSelector(use_predictions=False).select(ctx))
        # processor 2 has by far the least memory: it must receive the most rows
        assert sel.get(2, 0) == max(sel.values())

    def test_levelling_behaviour(self):
        # two candidates with a gap of exactly 20 rows worth of entries
        nfront = 100
        ctx = make_ctx([0, 1000, 1000 + 20 * nfront], npiv=40, nfront=nfront)
        sel = dict(MemorySlaveSelector(use_predictions=False).select(ctx))
        # slave 1 must receive at least the 20-row deficit more than slave 2
        assert sel.get(1, 0) >= sel.get(2, 0) + 10

    def test_does_not_raise_peak_when_possible(self):
        """The chosen set must be the smallest prefix that absorbs the surface."""
        # candidate memories: one is enormous; the surface fits easily in the
        # first two, so the enormous one must not be selected
        ctx = make_ctx([0, 100, 200, 10**9])
        sel = MemorySlaveSelector(use_predictions=False).select(ctx)
        assert all(q != 3 for q, _ in sel)

    def test_respects_max_slaves(self):
        ctx = make_ctx([0, 10, 20, 30, 40], max_slaves=2)
        sel = MemorySlaveSelector(use_predictions=False).select(ctx)
        assert len(sel) <= 2
        assert total_rows(sel) == ctx.ncb

    def test_respects_min_rows_granularity(self):
        ctx = make_ctx([0, 10, 20, 30, 40], min_rows=50)
        sel = MemorySlaveSelector(use_predictions=False).select(ctx)
        # ncb=100, min 50 rows per slave -> at most 2 slaves
        assert len(sel) <= 2

    def test_prediction_metric_changes_choice(self):
        mem = np.array([0.0, 10.0, 5000.0])
        effective = np.array([0.0, 10.0 + 10**7, 5000.0])
        ctx_plain = make_ctx(mem, effective=mem, master=0)
        ctx_pred = make_ctx(mem, effective=effective, master=0)
        plain = dict(MemorySlaveSelector(use_predictions=True).select(ctx_plain))
        pred = dict(MemorySlaveSelector(use_predictions=True).select(ctx_pred))
        # with the prediction, processor 1 (about to start a huge master) gets
        # fewer rows than without it
        assert pred.get(1, 0) < plain.get(1, 0)

    def test_use_predictions_false_ignores_effective_view(self):
        mem = np.array([0.0, 10.0, 5000.0])
        effective = np.array([0.0, 10**9, 5000.0])
        ctx = make_ctx(mem, effective=effective)
        a = MemorySlaveSelector(use_predictions=False).select(ctx)
        b = MemorySlaveSelector(use_predictions=False).select(make_ctx(mem, effective=mem))
        assert a == b

    def test_empty_cases(self):
        ctx = make_ctx([0, 1, 2], nfront=10, npiv=10)  # ncb = 0
        assert MemorySlaveSelector().select(ctx) == []
        ctx2 = make_ctx([0, 1, 2], candidates=[])
        assert MemorySlaveSelector().select(ctx2) == []

    def test_deterministic(self):
        ctx = make_ctx([0, 5, 5, 5])
        a = MemorySlaveSelector(use_predictions=False).select(ctx)
        b = MemorySlaveSelector(use_predictions=False).select(ctx)
        assert a == b


class TestWorkloadSlaveSelector:
    def test_covers_all_rows(self):
        ctx = make_ctx([0, 0, 0, 0], load=[100, 10, 20, 30], own_load=100)
        sel = WorkloadSlaveSelector().select(ctx)
        assert total_rows(sel) == ctx.ncb

    def test_prefers_less_loaded(self):
        ctx = make_ctx([0, 0, 0, 0], load=[100, 1000, 5, 2000], own_load=100)
        sel = dict(WorkloadSlaveSelector().select(ctx))
        assert sel.get(2, 0) > 0
        # processor 3 is more loaded than the master: only selected if needed
        assert sel.get(2, 0) >= sel.get(3, 0)

    def test_all_more_loaded_still_selects(self):
        ctx = make_ctx([0, 0, 0], load=[1, 100, 200], own_load=1)
        sel = WorkloadSlaveSelector().select(ctx)
        assert total_rows(sel) == ctx.ncb

    def test_equal_split_mode(self):
        ctx = make_ctx([0, 0, 0, 0, 0], load=[10, 1, 2, 3, 4], own_load=10)
        sel = WorkloadSlaveSelector(proportional=False).select(ctx)
        rows = [r for _, r in sel]
        assert max(rows) - min(rows) <= 1

    def test_granularity(self):
        ctx = make_ctx([0] * 5, load=[10, 1, 2, 3, 4], own_load=10, min_rows=60)
        sel = WorkloadSlaveSelector().select(ctx)
        # ncb=100 -> at most one slave with min 60 rows
        assert len(sel) == 1

    def test_memory_blind(self):
        """The baseline ignores memory entirely — the paper's starting point."""
        low = make_ctx([0, 10, 10], load=[5, 1, 2], own_load=5)
        high = make_ctx([0, 10**9, 10], load=[5, 1, 2], own_load=5)
        assert WorkloadSlaveSelector().select(low) == WorkloadSlaveSelector().select(high)


class TestHybridSlaveSelector:
    def test_covers_all_rows(self):
        ctx = make_ctx([0, 100, 200, 300], load=[10, 5, 2, 100], own_load=10)
        sel = HybridSlaveSelector(alpha=0.5).select(ctx)
        assert total_rows(sel) == ctx.ncb

    def test_alpha_one_ranks_like_memory(self):
        ctx = make_ctx([0, 10_000, 10, 20_000], load=[1, 1, 1, 1], own_load=1)
        hybrid = dict(HybridSlaveSelector(alpha=1.0).select(ctx))
        assert hybrid.get(2, 0) == max(hybrid.values())

    def test_alpha_zero_ranks_like_workload(self):
        ctx = make_ctx([0, 0, 0, 0], load=[10, 100, 1, 50], own_load=10)
        hybrid = dict(HybridSlaveSelector(alpha=0.0).select(ctx))
        assert hybrid.get(2, 0) == max(hybrid.values())

    def test_invalid_alpha(self):
        with pytest.raises(ValueError):
            HybridSlaveSelector(alpha=1.5)

    def test_empty(self):
        ctx = make_ctx([0, 1], nfront=5, npiv=5)
        assert HybridSlaveSelector().select(ctx) == []
