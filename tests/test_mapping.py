"""Tests for the static mapping (Geist-Ng layer, subtree map, node types)."""

import numpy as np
import pytest

from repro.mapping import NodeType, compute_mapping, geist_ng_layer, map_subtrees_to_processors
from repro.symbolic import AssemblyTree


class TestGeistNgLayer:
    def test_single_processor_keeps_roots(self, medium_tree):
        assert geist_ng_layer(medium_tree, 1) == sorted(medium_tree.roots)

    def test_layer_roots_are_disjoint_subtrees(self, medium_tree):
        layer = geist_ng_layer(medium_tree, 4)
        seen = set()
        for r in layer:
            nodes = set(medium_tree.subtree_nodes(r))
            assert not (nodes & seen)
            seen |= nodes

    def test_enough_subtrees_for_processors(self, medium_tree):
        layer = geist_ng_layer(medium_tree, 4)
        assert len(layer) >= min(4, len(medium_tree.leaves()))

    def test_more_processors_push_layer_down(self, medium_tree):
        small = geist_ng_layer(medium_tree, 2)
        large = geist_ng_layer(medium_tree, 8)
        assert len(large) >= len(small)

    def test_all_leaves_when_tolerance_tight(self, chain_tree):
        # a chain can only be cut at the leaf
        layer = geist_ng_layer(chain_tree, 4)
        assert layer == [0]

    def test_invalid_nprocs(self, medium_tree):
        with pytest.raises(ValueError):
            geist_ng_layer(medium_tree, 0)


class TestSubtreeMapping:
    def test_all_subtrees_assigned(self, medium_tree):
        layer = geist_ng_layer(medium_tree, 4)
        assignment = map_subtrees_to_processors(medium_tree, layer, 4)
        assert set(assignment) == set(layer)
        assert all(0 <= p < 4 for p in assignment.values())

    def test_balances_flops(self, medium_tree):
        layer = geist_ng_layer(medium_tree, 4)
        assignment = map_subtrees_to_processors(medium_tree, layer, 4)
        loads = np.zeros(4)
        for r, p in assignment.items():
            loads[p] += medium_tree.subtree_flops(r)
        # LPT guarantee: max <= 4/3 * optimal <= 4/3 * (total/nproc) + largest item
        largest = max(medium_tree.subtree_flops(r) for r in layer)
        assert loads.max() <= loads.sum() / 4 + largest + 1e-9

    def test_memory_cost_option(self, medium_tree):
        layer = geist_ng_layer(medium_tree, 4)
        assignment = map_subtrees_to_processors(medium_tree, layer, 4, cost="memory")
        assert set(assignment) == set(layer)

    def test_invalid_args(self, medium_tree):
        with pytest.raises(ValueError):
            map_subtrees_to_processors(medium_tree, [], 0)
        with pytest.raises(ValueError):
            map_subtrees_to_processors(medium_tree, [], 2, cost="entropy")


class TestComputeMapping:
    def test_every_node_classified(self, medium_tree, medium_mapping):
        assert len(medium_mapping.node_type) == medium_tree.nnodes
        for t in medium_mapping.node_type:
            assert int(t) in (0, 1, 2, 3)

    def test_subtree_nodes_have_owners(self, medium_tree, medium_mapping):
        for i in range(medium_tree.nnodes):
            if medium_mapping.node_type[i] == int(NodeType.SUBTREE):
                assert 0 <= medium_mapping.owner[i] < 4
                assert medium_mapping.subtree_of[i] >= 0

    def test_upper_nodes_have_owners_except_root(self, medium_tree, medium_mapping):
        for i in range(medium_tree.nnodes):
            kind = int(medium_mapping.node_type[i])
            if kind in (int(NodeType.TYPE1), int(NodeType.TYPE2)):
                assert 0 <= medium_mapping.owner[i] < 4
            if kind == int(NodeType.TYPE3):
                assert medium_mapping.owner[i] == -1

    def test_type2_nodes_respect_thresholds(self, medium_tree, medium_mapping):
        for i in medium_mapping.nodes_of_type(NodeType.TYPE2):
            assert medium_tree.nfront[i] >= 40
            assert medium_tree.cb_order(i) >= 8

    def test_at_most_one_type3(self, medium_mapping):
        assert len(medium_mapping.nodes_of_type(NodeType.TYPE3)) <= 1

    def test_subtree_consistency(self, medium_tree, medium_mapping):
        """Every node of a leaf subtree is owned by the subtree's processor."""
        for r in medium_mapping.subtree_roots:
            owner = medium_mapping.owner[r]
            for j in medium_tree.subtree_nodes(r):
                assert medium_mapping.owner[j] == owner
                assert medium_mapping.subtree_of[j] == r

    def test_single_processor_everything_subtree(self, medium_tree):
        mapping = compute_mapping(medium_tree, 1)
        assert mapping.nodes_of_type(NodeType.TYPE2) == []
        assert mapping.nodes_of_type(NodeType.TYPE3) == []
        assert all(o == 0 for o in mapping.owner)

    def test_candidate_lists_exclude_nobody(self, medium_mapping):
        for node, candidates in medium_mapping.candidates.items():
            assert sorted(candidates) == list(range(4))

    def test_initial_load_positive(self, medium_tree, medium_mapping):
        loads = [medium_mapping.initial_load(medium_tree, p) for p in range(4)]
        assert all(l >= 0 for l in loads)
        assert sum(loads) > 0

    def test_master_memory_balance(self, medium_tree):
        """The static master assignment roughly balances factor memory."""
        mapping = compute_mapping(medium_tree, 4, type2_front_threshold=40, type2_cb_threshold=8)
        bins = np.zeros(4)
        for i in range(medium_tree.nnodes):
            p = int(mapping.owner[i])
            if p >= 0:
                bins[p] += medium_tree.factor_entries(i)
        assert bins.max() <= 3.0 * max(bins.mean(), 1.0)

    def test_summary_keys(self, medium_tree, medium_mapping):
        summary = medium_mapping.summary(medium_tree)
        assert summary["nprocs"] == 4
        assert abs(sum(v for k, v in summary.items() if k.startswith("flops_share")) - 1.0) < 1e-6

    def test_statically_assigned_nodes(self, medium_tree, medium_mapping):
        all_assigned = set()
        for p in range(4):
            nodes = medium_mapping.statically_assigned_nodes(p)
            assert not (set(nodes) & all_assigned)
            all_assigned |= set(nodes)
        type3 = set(medium_mapping.nodes_of_type(NodeType.TYPE3))
        assert all_assigned | type3 == set(range(medium_tree.nnodes))

    def test_invalid_nprocs(self, medium_tree):
        with pytest.raises(ValueError):
            compute_mapping(medium_tree, 0)
