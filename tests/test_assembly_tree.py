"""Tests for the AssemblyTree data structure and its construction."""

import numpy as np
import pytest

from repro.ordering import compute_ordering
from repro.sparse import SparsePattern, grid_2d, random_pattern
from repro.symbolic import AssemblyTree, build_assembly_tree
from repro.symbolic.colcounts import symbolic_fill


class TestAssemblyTreeStructure:
    def test_basic_counts(self, small_tree, small_grid):
        assert small_tree.nvars == small_grid.n
        assert small_tree.npiv.sum() == small_grid.n
        assert small_tree.nnodes == len(small_tree)

    def test_children_parent_consistency(self, small_tree):
        for j in range(small_tree.nnodes):
            for c in small_tree.children(j):
                assert small_tree.parent[c] == j

    def test_roots_and_leaves(self, small_tree):
        roots = small_tree.roots
        assert roots
        for r in roots:
            assert small_tree.parent[r] == -1
        for leaf in small_tree.leaves():
            assert small_tree.children(leaf) == []

    def test_node_view(self, small_tree):
        node = small_tree.node(0)
        assert node.index == 0
        assert node.cb_order == small_tree.cb_order(0)
        assert node.is_leaf == (len(small_tree.children(0)) == 0)

    def test_iteration(self, small_tree):
        nodes = list(small_tree)
        assert len(nodes) == small_tree.nnodes

    def test_subtree_nodes_root_covers_all(self, chain_tree):
        assert sorted(chain_tree.subtree_nodes(3)) == [0, 1, 2, 3]
        assert chain_tree.subtree_nodes(0) == [0]

    def test_depth_and_levels(self, chain_tree, forked_tree):
        assert chain_tree.depth() == 4
        assert forked_tree.depth() == 2
        assert list(forked_tree.levels()) == [1, 1, 0]

    def test_topological_orders(self, small_tree):
        topo = small_tree.topological_order()
        rev = small_tree.reverse_topological_order()
        assert np.array_equal(rev, topo[::-1])

    def test_validate_rejects_bad_trees(self):
        with pytest.raises(ValueError):
            AssemblyTree([1, 1], [2, 2], [1, 1])  # node 1 is its own ancestor
        with pytest.raises(ValueError):
            AssemblyTree([0], [2], [-1])  # npiv < 1
        with pytest.raises(ValueError):
            AssemblyTree([3], [2], [-1])  # nfront < npiv
        with pytest.raises(ValueError):
            AssemblyTree([1, 1], [2, 2], [-1])  # length mismatch is caught earlier

    def test_validate_rejects_variable_overlap(self):
        with pytest.raises(ValueError):
            AssemblyTree([1, 1], [2, 1], [1, -1], nvars=2, variables=[(0,), (0,)])

    def test_copy_is_independent(self, small_tree):
        other = small_tree.copy()
        other.npiv[0] += 0  # no-op, but arrays must not be shared
        assert other.npiv is not small_tree.npiv
        assert other.nnodes == small_tree.nnodes

    def test_render_ascii(self, forked_tree):
        text = forked_tree.render_ascii()
        assert "npiv=2" in text
        assert text.count("[") == 3

    def test_stats_keys(self, small_tree):
        stats = small_tree.stats()
        for key in ("nodes", "depth", "max_front", "factor_entries", "total_flops"):
            assert key in stats


class TestMemoryModels:
    def test_entry_accounting_symmetric(self, forked_tree):
        # node 0: npiv=2, nfront=4 -> factors 2*3/2 + 2*2 = 7, cb 2*3/2 = 3
        assert forked_tree.factor_entries(0) == 7
        assert forked_tree.cb_entries(0) == 3
        assert forked_tree.front_entries(0) == 10
        assert forked_tree.master_entries(0) == 3

    def test_entry_accounting_unsymmetric(self):
        tree = AssemblyTree([2], [5], [-1], symmetric=False, nvars=2)
        assert tree.front_entries(0) == 25
        assert tree.factor_entries(0) == 2 * 5 + 3 * 2
        assert tree.cb_entries(0) == 9
        assert tree.master_entries(0) == 10

    def test_master_plus_slaves_equals_factors(self, medium_tree):
        from repro.analysis.flops import type2_slave_factor_entries

        for i in range(medium_tree.nnodes):
            npiv = int(medium_tree.npiv[i])
            nfront = int(medium_tree.nfront[i])
            ncb = nfront - npiv
            slave_total = type2_slave_factor_entries(npiv, nfront, ncb, medium_tree.symmetric)
            assert medium_tree.master_entries(i) + slave_total == medium_tree.factor_entries(i)

    def test_total_factor_entries_equals_symbolic_fill(self, small_grid):
        """Sum of per-front factor entries equals nnz(L) counted column-wise.

        The symmetric multifrontal factors store the pivot triangle and the
        sub-diagonal block of every front, which together hold exactly the
        nonzeros of L (including the diagonal).
        """
        perm = compute_ordering(small_grid, "amd")
        tree = build_assembly_tree(small_grid, perm, amalgamation_relax=0.0, amalgamation_min_pivots=1)
        fill = symbolic_fill(small_grid.permuted(perm))
        assert tree.total_factor_entries() == pytest.approx(fill["nnz_L"])

    def test_flops_positive_and_monotone(self, medium_tree):
        for i in range(medium_tree.nnodes):
            assert medium_tree.factor_flops(i) > 0
        # a bigger front with the same npiv costs more
        a = AssemblyTree([2], [10], [-1], symmetric=True, nvars=2).factor_flops(0)
        b = AssemblyTree([2], [20], [-1], symmetric=True, nvars=2).factor_flops(0)
        assert b > a

    def test_assembly_flops(self, forked_tree):
        assert forked_tree.assembly_flops(2) == forked_tree.cb_entries(0) + forked_tree.cb_entries(1)
        assert forked_tree.assembly_flops(0) == 0

    def test_subtree_aggregates(self, chain_tree):
        assert chain_tree.subtree_flops(3) == pytest.approx(chain_tree.total_flops())
        assert chain_tree.subtree_factor_entries(3) == chain_tree.total_factor_entries()


class TestBuildAssemblyTree:
    def test_variables_partition(self, small_grid):
        tree = build_assembly_tree(small_grid, compute_ordering(small_grid, "amd"))
        assert tree.variables is not None
        seen = sorted(v for vs in tree.variables for v in vs)
        assert seen == list(range(small_grid.n))

    def test_keep_variables_false(self, small_grid):
        tree = build_assembly_tree(small_grid, keep_variables=False)
        assert tree.variables is None

    def test_unsymmetric_flag_propagates(self, unsym_pattern):
        tree = build_assembly_tree(unsym_pattern, compute_ordering(unsym_pattern, "amd"))
        assert not tree.symmetric

    def test_amalgamation_reduces_node_count(self, small_grid):
        perm = compute_ordering(small_grid, "metis")
        fine = build_assembly_tree(small_grid, perm, amalgamation_relax=0.0, amalgamation_min_pivots=1)
        coarse = build_assembly_tree(small_grid, perm, amalgamation_relax=0.4, amalgamation_min_pivots=8)
        assert coarse.nnodes <= fine.nnodes

    def test_amalgamation_preserves_factor_lower_bound(self, small_grid):
        """Amalgamation can only add explicit zeros, never lose factor entries."""
        perm = compute_ordering(small_grid, "metis")
        fine = build_assembly_tree(small_grid, perm, amalgamation_relax=0.0, amalgamation_min_pivots=1)
        coarse = build_assembly_tree(small_grid, perm, amalgamation_relax=0.3, amalgamation_min_pivots=8)
        assert coarse.total_factor_entries() >= fine.total_factor_entries()

    def test_identity_vs_none_ordering(self, small_grid):
        a = build_assembly_tree(small_grid)
        b = build_assembly_tree(small_grid, np.arange(small_grid.n))
        assert a.nnodes == b.nnodes
        assert a.total_factor_entries() == b.total_factor_entries()

    def test_name_defaults_to_pattern_name(self, small_grid):
        tree = build_assembly_tree(small_grid)
        assert tree.name == small_grid.name


class TestVectorizedGeometry:
    """PR 5: the cached geometry arrays ≡ the scalar per-node methods."""

    def _trees(self, small_grid, unsym_pattern):
        sym_tree = build_assembly_tree(small_grid, compute_ordering(small_grid, "metis"))
        uns_tree = build_assembly_tree(unsym_pattern, compute_ordering(unsym_pattern, "amd"))
        synthetic = AssemblyTree([2, 3, 4], [4, 5, 4], [2, 2, -1], symmetric=True, nvars=9)
        return [sym_tree, uns_tree, synthetic]

    def test_entry_arrays_match_scalar_methods(self, small_grid, unsym_pattern):
        for tree in self._trees(small_grid, unsym_pattern):
            n = tree.nnodes
            assert list(tree.front_entries_all()) == [tree.front_entries(i) for i in range(n)]
            assert list(tree.factor_entries_all()) == [tree.factor_entries(i) for i in range(n)]
            assert list(tree.cb_entries_all()) == [tree.cb_entries(i) for i in range(n)]
            assert list(tree.master_entries_all()) == [tree.master_entries(i) for i in range(n)]

    def test_flop_arrays_match_scalar_methods(self, small_grid, unsym_pattern):
        for tree in self._trees(small_grid, unsym_pattern):
            n = tree.nnodes
            assert list(tree.factor_flops_all()) == [tree.factor_flops(i) for i in range(n)]
            assert list(tree.type2_master_flops_all()) == [
                tree.type2_master_flops(i) for i in range(n)
            ]
            assert list(tree.assembly_flops_all()) == [
                float(sum(tree.cb_entries(c) for c in tree.children(i))) for i in range(n)
            ]

    def test_subtree_accumulations_match_depth_first_sums(self, small_grid, unsym_pattern):
        for tree in self._trees(small_grid, unsym_pattern):
            for root in range(tree.nnodes):
                nodes = tree.subtree_nodes(root)
                assert tree.subtree_flops(root) == float(
                    sum(tree.factor_flops(i) for i in nodes)
                )
                assert tree.subtree_factor_entries(root) == int(
                    sum(tree.factor_entries(i) for i in nodes)
                )

    def test_child_lists_shared_not_copied(self, small_grid):
        tree = build_assembly_tree(small_grid)
        lists = tree.child_lists()
        assert lists is tree.child_lists()
        assert [list(lists[i]) for i in range(tree.nnodes)] == [
            tree.children(i) for i in range(tree.nnodes)
        ]
