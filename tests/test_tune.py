"""Auto-tuning subsystem tests: spaces, searchers, objectives, the Tuner.

The acceptance contract (ISSUE 9): ``repro tune --seed N`` is deterministic
and resumable — two runs with the same seed produce byte-identical
leaderboard artifacts, an interrupted tune resumes recomputing only the
missing evaluations (proven via ``engine.stage_runs``), and successive
halving provably evaluates fewer simulate stages than the exhaustive grid
over the same space.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.session import open_session
from repro.specs import parse_spec
from repro.tune import (
    Choice,
    GridSearcher,
    HalvingSearcher,
    IntRange,
    Leaderboard,
    Range,
    RandomSearcher,
    Rung,
    SearchSpace,
    TuneConfig,
    TuneSpec,
    Tuner,
    bootstrap_ci,
    make_objective,
    make_searcher,
    parse_domain,
    parse_space,
)
from repro.tune.objective import aggregate, mixed_seed

NPROCS = 4
SCALE = 0.1

SPACE = "hybrid(alpha=0.0..1.0)"


def _tune_spec(searcher: str, seed: int = 11) -> TuneSpec:
    return TuneSpec(
        space=parse_space(SPACE),
        problems=["XENON2"],
        searcher=searcher,
        objective="peak-memory",
        seed=seed,
        nprocs=NPROCS,
        scale=SCALE,
    )


# --------------------------------------------------------------------------- #
# search space
# --------------------------------------------------------------------------- #
class TestDomains:
    def test_parse_float_range(self):
        domain = parse_domain("0.0..1.0")
        assert isinstance(domain, Range)
        assert (domain.lo, domain.hi, domain.log) == (0.0, 1.0, False)

    def test_parse_log_range_and_spec_roundtrip(self):
        domain = parse_domain("0.001..1.0:log")
        assert isinstance(domain, Range) and domain.log
        assert parse_domain(domain.spec()) == domain

    def test_parse_int_range(self):
        domain = parse_domain("8..64")
        assert isinstance(domain, IntRange)
        assert (domain.lo, domain.hi) == (8, 64)

    def test_parse_choice(self):
        domain = parse_domain("true|false")
        assert isinstance(domain, Choice)
        assert domain.values == (True, False)

    def test_single_value_is_one_element_choice(self):
        domain = parse_domain("0.25")
        assert isinstance(domain, Choice)
        assert domain.values == (0.25,)

    def test_bad_domains_raise(self):
        with pytest.raises(ValueError):
            parse_domain("1.0..0.0")  # lo >= hi
        with pytest.raises(ValueError):
            parse_domain("0.0..1.0:log")  # log needs lo > 0
        with pytest.raises(ValueError):
            parse_domain("0.0..1.0:exp")  # unknown flag
        with pytest.raises(ValueError):
            parse_domain("a|a")  # duplicate choice

    def test_sampling_is_seed_deterministic(self):
        domain = parse_domain("0.0..1.0")
        a = domain.sample(np.random.default_rng(3))
        b = domain.sample(np.random.default_rng(3))
        assert a == b

    def test_int_range_sampling_stays_in_bounds(self):
        domain = parse_domain("8..16")
        rng = np.random.default_rng(0)
        values = {domain.sample(rng) for _ in range(200)}
        assert values <= set(range(8, 17))
        assert len(values) > 1

    def test_grid_endpoints_and_size(self):
        assert parse_domain("0.0..1.0").grid(3) == (0.0, 0.5, 1.0)
        assert parse_domain("8..64").grid(2) == (8, 64)
        assert parse_domain("a|b").grid(7) == ("a", "b")


class TestSearchSpace:
    def test_unknown_param_rejected(self):
        with pytest.raises(ValueError, match="alpha"):
            parse_space("hybrid(nonsense=0.0..1.0)")

    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError):
            parse_space("no-such-strategy(alpha=0.0..1.0)")

    def test_sampled_config_renders_canonical_spec(self):
        space = parse_space(SPACE)
        config = space.sample(np.random.default_rng(5))
        # the rendered strategy string must be its own canonical form, so
        # store/cache keys collide with hand-written specs
        assert str(parse_spec(config.strategy)) == config.strategy

    def test_sample_is_seed_deterministic(self):
        space = parse_space("hybrid(alpha=0.0..1.0,use_predictions=true|false)")
        a = space.sample(np.random.default_rng(9))
        b = space.sample(np.random.default_rng(9))
        assert a == b and a.key == b.key

    def test_grid_covers_product(self):
        space = parse_space("hybrid(alpha=0.0..1.0,use_predictions=true|false)")
        configs = space.grid(3)
        assert len(configs) == space.grid_size(3) == 6
        assert len({c.key for c in configs}) == 6

    def test_round_trip_dict(self):
        space = parse_space(SPACE, split=(False, True), split_threshold="300|500")
        again = SearchSpace.from_dict(space.to_dict())
        assert again.canonical() == space.canonical()
        assert again.to_dict() == space.to_dict()

    def test_parse_space_idempotent(self):
        space = parse_space(SPACE)
        assert parse_space(space) is space


# --------------------------------------------------------------------------- #
# searchers
# --------------------------------------------------------------------------- #
def _alpha_of(config: TuneConfig) -> float:
    spec = parse_spec(config.strategy)
    return float(dict(spec.params).get("alpha", 0.5))


def _closest_to(target: float):
    def evaluate(configs, rung):
        return [abs(_alpha_of(c) - target) for c in configs]

    return evaluate


class TestSearchers:
    def test_grid_runs_every_point_once(self):
        space = parse_space(SPACE)
        outcome = GridSearcher(resolution=5).run(
            space, np.random.default_rng(0), _closest_to(0.3)
        )
        assert len(outcome.trials) == 5
        assert all(len(t.scores) == 1 for t in outcome.trials)
        assert _alpha_of(outcome.ranked()[0].config) == 0.25

    def test_random_draws_distinct_configs(self):
        space = parse_space(SPACE)
        outcome = RandomSearcher(samples=6).run(
            space, np.random.default_rng(1), _closest_to(0.5)
        )
        keys = [t.config.key for t in outcome.trials]
        assert len(keys) == len(set(keys)) == 6

    def test_halving_ladder_fractions(self):
        rungs = HalvingSearcher(samples=8, eta=2, rungs=3).ladder()
        assert [r.scale_fraction for r in rungs] == [0.25, 0.5, 1.0]
        assert [r.subset_fraction for r in rungs] == [1.0, 1.0, 1.0]
        both = HalvingSearcher(samples=8, eta=2, rungs=2, fidelity="both").ladder()
        assert [(r.scale_fraction, r.subset_fraction) for r in both] == [(0.5, 0.5), (1.0, 1.0)]

    def test_halving_promotes_top_fraction(self):
        space = parse_space(SPACE)
        searcher = HalvingSearcher(samples=8, eta=2, rungs=2)
        outcome = searcher.run(space, np.random.default_rng(2), _closest_to(0.4))
        by_rung = {0: 0, 1: 0}
        for trial in outcome.trials:
            for rung_index, _ in trial.scores:
                by_rung[rung_index] += 1
        assert by_rung == {0: 8, 1: 4}
        # the winner reached the deepest rung
        assert outcome.ranked()[0].last_rung == 1

    def test_halving_plan_counts(self):
        searcher = HalvingSearcher(samples=8, eta=2, rungs=3)
        plan = searcher.plan(parse_space(SPACE))
        assert [count for count, _, _ in plan] == [8, 4, 2]

    def test_make_searcher_rejects_unknown(self):
        with pytest.raises(ValueError):
            make_searcher("no-such-searcher")
        with pytest.raises(ValueError):
            make_searcher("halving(eta=1)")
        with pytest.raises(ValueError):
            make_searcher("halving(bogus=2)")

    def test_deterministic_tie_break_by_key(self):
        space = parse_space(SPACE)
        outcome = GridSearcher(resolution=3).run(
            space, np.random.default_rng(0), lambda cs, r: [1.0] * len(cs)
        )
        ranked = [t.config.key for t in outcome.ranked()]
        assert ranked == sorted(ranked)


# --------------------------------------------------------------------------- #
# objectives
# --------------------------------------------------------------------------- #
class TestObjectives:
    def test_registry_resolution(self):
        for name in ("makespan", "peak-memory", "avg-memory", "weighted"):
            assert make_objective(name) is not None
        with pytest.raises(ValueError):
            make_objective("no-such-objective")

    def test_weighted_validation(self):
        with pytest.raises(ValueError):
            make_objective("weighted(memory=0.0,time=0.0)")
        with pytest.raises(ValueError):
            make_objective("weighted(memory=-1.0)")

    def test_aggregate_mean(self):
        assert aggregate([1.0, 3.0]) == 2.0
        with pytest.raises(ValueError):
            aggregate([])

    def test_bootstrap_ci_deterministic(self):
        scores = [3.0, 1.0, 2.0, 5.0, 4.0]
        a = bootstrap_ci(scores, seed=7)
        b = bootstrap_ci(scores, seed=7)
        assert a == b
        assert a[0] <= a[1]
        assert bootstrap_ci(scores, seed=8) != a

    def test_bootstrap_ci_degenerates_on_single_score(self):
        assert bootstrap_ci([2.5], seed=0) == (2.5, 2.5)

    def test_mixed_seed_stable_and_label_sensitive(self):
        assert mixed_seed(7, "a") == mixed_seed(7, "a")
        assert mixed_seed(7, "a") != mixed_seed(7, "b")


# --------------------------------------------------------------------------- #
# TuneSpec
# --------------------------------------------------------------------------- #
class TestTuneSpec:
    def test_round_trip(self):
        spec = _tune_spec("halving(samples=4,eta=2,rungs=2)")
        again = TuneSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.to_dict() == spec.to_dict()

    def test_canonicalises_searcher_and_objective(self):
        spec = _tune_spec("halving")
        assert spec.searcher == "halving(eta=2,fidelity=scale,rungs=3,samples=8)"
        assert spec.objective == "peak-memory"

    def test_rejects_bool_nprocs(self):
        with pytest.raises(ValueError):
            TuneSpec(space=parse_space(SPACE), problems=["XENON2"], nprocs=True)

    def test_needs_problems(self):
        with pytest.raises(ValueError):
            TuneSpec(space=parse_space(SPACE), problems=[])

    def test_planned_evaluations(self):
        spec = _tune_spec("halving(samples=4,eta=2,rungs=2)")
        assert spec.planned_evaluations() == 6  # 4 at rung 0 + 2 at rung 1
        grid = _tune_spec("grid(resolution=8)")
        assert grid.planned_evaluations() == 8


# --------------------------------------------------------------------------- #
# the Tuner: determinism, resume, racing-beats-grid
# --------------------------------------------------------------------------- #
@pytest.fixture(scope="module")
def reference_board(tmp_path_factory):
    """The uninterrupted halving tune every other run must match byte for byte."""
    store = tmp_path_factory.mktemp("tune-ref") / "store"
    spec = _tune_spec("halving(samples=4,eta=2,rungs=2)")
    with open_session(nprocs=NPROCS, scale=SCALE, cache_dir="") as session:
        board = Tuner(session, spec, store=str(store)).run()
        runs = dict(session.engine.stage_runs)
    return spec, board, runs


class TestTunerDeterminism:
    def test_same_seed_twice_is_byte_identical(self, tmp_path, reference_board):
        spec, board, _ = reference_board
        with open_session(nprocs=NPROCS, scale=SCALE, cache_dir="") as session:
            again = Tuner(session, spec, store=str(tmp_path / "store")).run()
        assert again.to_bytes() == board.to_bytes()

    def test_different_seed_differs(self, tmp_path, reference_board):
        spec, board, _ = reference_board
        other = _tune_spec("halving(samples=4,eta=2,rungs=2)", seed=99)
        with open_session(nprocs=NPROCS, scale=SCALE, cache_dir="") as session:
            again = Tuner(session, other, store=str(tmp_path / "store")).run()
        assert again.to_bytes() != board.to_bytes()

    def test_artifact_save_load_round_trip(self, tmp_path, reference_board):
        _, board, _ = reference_board
        path = board.save(tmp_path / "leaderboard.json")
        loaded = Leaderboard.load(path)
        assert loaded.to_bytes() == board.to_bytes()
        # the on-disk bytes ARE the canonical encoding
        assert path.read_bytes() == board.to_bytes()

    def test_artifact_carries_no_wall_clock(self, reference_board):
        _, board, _ = reference_board
        payload = json.dumps(board.to_dict())
        for forbidden in ("timestamp", "created_at", "elapsed", "computed", "skipped"):
            assert forbidden not in payload

    def test_entries_ranked_and_scored(self, reference_board):
        spec, board, _ = reference_board
        assert [e.rank for e in board.entries] == list(range(1, len(board.entries) + 1))
        assert board.best is board.entries[0]
        assert board.entries[0].rung >= board.entries[-1].rung
        for entry in board.entries:
            assert entry.ci_low <= entry.ci_high
            assert set(entry.per_problem) <= set(spec.problems)
        assert board.evaluations == 6

    def test_evaluations_counted_via_stage_runs(self, reference_board):
        _, board, runs = reference_board
        assert runs["simulate"] == board.evaluations == 6


class TestTunerResume:
    def test_interrupt_then_resume_recomputes_only_missing(self, tmp_path):
        store = tmp_path / "store"
        spec = _tune_spec("grid(resolution=5)")

        class Interrupter:
            def __init__(self, after: int) -> None:
                self.after = after
                self.seen = 0

            def __call__(self, event) -> None:
                self.seen += 1
                if self.seen >= self.after:
                    raise KeyboardInterrupt("simulated interrupt")

        # interrupted run (serial path: every completed case is durable
        # before the interrupt fires)
        with open_session(
            nprocs=NPROCS, scale=SCALE, cache_dir="", progress=Interrupter(after=2)
        ) as session:
            with pytest.raises(KeyboardInterrupt):
                Tuner(session, spec, store=str(store), batch=False).run()
            interrupted_runs = session.engine.stage_runs["simulate"]
        assert 0 < interrupted_runs < 5

        # resumed run recomputes ONLY the missing evaluations
        with open_session(nprocs=NPROCS, scale=SCALE, cache_dir="") as session:
            board = Tuner(session, spec, store=str(store), batch=False).run()
            assert session.engine.stage_runs["simulate"] == 5 - interrupted_runs

        # and the artifact is byte-identical to an uninterrupted fresh run
        with open_session(nprocs=NPROCS, scale=SCALE, cache_dir="") as session:
            fresh = Tuner(session, spec, store=str(tmp_path / "fresh")).run()
        assert board.to_bytes() == fresh.to_bytes()

    def test_rerun_over_complete_store_touches_no_engine(self, tmp_path, reference_board):
        spec, board, _ = reference_board
        store = tmp_path / "store"
        with open_session(nprocs=NPROCS, scale=SCALE, cache_dir="") as session:
            Tuner(session, spec, store=str(store)).run()
        with open_session(nprocs=NPROCS, scale=SCALE, cache_dir="") as session:
            again = Tuner(session, spec, store=str(store)).run()
            assert sum(session.engine.stage_runs.values()) == 0
        assert again.to_bytes() == board.to_bytes()


class TestHalvingBeatsGrid:
    def test_halving_runs_fewer_simulate_stages_than_grid(self, tmp_path, reference_board):
        _, _, halving_runs = reference_board
        grid_spec = _tune_spec("grid(resolution=8)")
        with open_session(nprocs=NPROCS, scale=SCALE, cache_dir="") as session:
            Tuner(session, grid_spec, store=str(tmp_path / "store")).run()
            grid_runs = dict(session.engine.stage_runs)
        assert halving_runs["simulate"] < grid_runs["simulate"]
        assert grid_runs["simulate"] == 8


class TestStoreKeyCollision:
    def test_tuned_keys_collide_with_hand_written_specs(self, tmp_path):
        """A hand-written sweep over the sampled spec hits the tune store."""
        store = tmp_path / "store"
        spec = _tune_spec("random(samples=2)")
        with open_session(nprocs=NPROCS, scale=SCALE, cache_dir="") as session:
            Tuner(session, spec, store=str(store)).run()
        config = spec.space.sample(np.random.default_rng(spec.seed))
        with open_session(nprocs=NPROCS, scale=SCALE, cache_dir="") as session:
            view = session.sweep(
                problems=["XENON2"],
                strategies=[config.strategy],  # the canonical rendering, retyped
                split=[config.split],
                nprocs=[NPROCS],
                scale=[SCALE],
                store=str(store),
            )
            assert view.computed == 0 and view.skipped == 1
            assert sum(session.engine.stage_runs.values()) == 0


class TestRungModel:
    def test_rung_full_property(self):
        assert Rung(index=0).full
        assert not Rung(index=0, scale_fraction=0.5).full
