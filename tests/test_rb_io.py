"""Tests for the pattern text I/O."""

import pytest

from repro.sparse import SparsePattern, grid_2d, load_pattern, save_pattern


def test_rbp_roundtrip(tmp_path):
    g = grid_2d(6, 5)
    path = tmp_path / "grid.rbp"
    save_pattern(g, path)
    back = load_pattern(path)
    assert back.n == g.n
    assert back.nnz == g.nnz
    assert back.symmetric == g.symmetric


def test_rbp_roundtrip_unsymmetric(tmp_path):
    p = SparsePattern.from_coo(4, [0, 1, 3], [2, 3, 0], symmetric=False, name="uns")
    path = tmp_path / "u.rbp"
    save_pattern(p, path)
    back = load_pattern(path)
    assert not back.symmetric
    assert back.nnz == 3
    assert back.name == "uns"


def test_matrixmarket_pattern(tmp_path):
    text = """%%MatrixMarket matrix coordinate pattern symmetric
% comment line
3 3 3
1 1
2 1
3 2
"""
    path = tmp_path / "mm.mtx"
    path.write_text(text)
    p = load_pattern(path)
    assert p.n == 3
    # symmetric storage: (2,1) implies (1,2)
    assert 1 in p.row(0)


def test_matrixmarket_rejects_rectangular(tmp_path):
    path = tmp_path / "bad.mtx"
    path.write_text("%%MatrixMarket matrix coordinate pattern general\n2 3 1\n1 1\n")
    with pytest.raises(ValueError):
        load_pattern(path)


def test_load_rejects_unknown_header(tmp_path):
    path = tmp_path / "junk.txt"
    path.write_text("hello world\n1 1\n")
    with pytest.raises(ValueError):
        load_pattern(path)


def test_load_rejects_empty(tmp_path):
    path = tmp_path / "empty.txt"
    path.write_text("")
    with pytest.raises(ValueError):
        load_pattern(path)
