"""The deterministic fault-injection layer (``repro.faults``).

Covers the spec mini-language (parsing, canonicalisation, validation), the
compiled :class:`FaultPlan` (seeded determinism, speed/penalty semantics),
the replication summary math of :meth:`CaseResult.from_replications`, the
conditional cache keys, and the acceptance criteria end to end: the same
``(faults, seed)`` pair reproduces byte-identical results across a fresh
run, a store-resumed run, the batched path and a process-pool sweep.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.faults import (
    MAX_RETRIES,
    FaultPlan,
    FaultSpec,
    MsgLossModel,
    StragglerModel,
    canonical_faults,
    parse_faults,
    replication_seed,
)
from repro.pipeline.stage import CaseSpec
from repro.results import ResultTable, case_key
from repro.serialize import canonical_json
from repro.session import Session
from repro.specs import SweepSpec

FAULTS = "stragglers(frac=0.3,slowdown=3.0)+msgloss(p=0.1,retry_timeout=5e-4)"


# --------------------------------------------------------------------------- #
# the spec mini-language
# --------------------------------------------------------------------------- #
class TestParsing:
    def test_canonical_binds_defaults_and_sorts_models(self):
        # reordered segments and defaulted parameters canonicalise identically
        a = canonical_faults("msgloss(p=0.02)+stragglers(frac=0.1,slowdown=4.0)")
        b = canonical_faults("stragglers()+msgloss(p=0.02,backoff=2.0,retry_timeout=5e-4)")
        assert a == b
        assert a.startswith("msgloss(")  # alphabetical model order

    def test_parse_round_trips_canonical(self):
        spec = parse_faults(FAULTS)
        assert parse_faults(spec.canonical()) == spec
        assert parse_faults(spec) is spec  # idempotent on FaultSpec

    def test_canonical_faults_of_none_is_empty(self):
        assert canonical_faults(None) == ""
        assert canonical_faults("") == ""

    def test_to_dict_round_trip(self):
        spec = parse_faults(FAULTS)
        assert FaultSpec.from_dict(spec.to_dict()) == spec

    @pytest.mark.parametrize(
        "text,match",
        [
            ("turbulence(p=0.1)", "unknown fault model"),
            ("msgloss(p=0.1)+msgloss(p=0.2)", "duplicate fault model"),
            ("msgloss(q=0.1)", "unknown parameter"),
            ("msgloss(p=1.5)", "p must be in"),
            ("stragglers(frac=2.0)", "frac must be in"),
            ("stragglers(slowdown=0)", "slowdown must be > 0"),
            ("slowdown(n=0)", "n must be >= 1"),
            ("msgloss(backoff=0.5)", "backoff must be >= 1"),
            ("", "cannot parse fault spec"),
            ("msgloss(p=0.1)++stragglers()", "empty fault model segment"),
        ],
    )
    def test_invalid_specs_rejected(self, text, match):
        with pytest.raises(ValueError, match=match):
            parse_faults(text)

    def test_empty_fault_spec_rejected(self):
        with pytest.raises(ValueError, match="at least one fault model"):
            FaultSpec()


# --------------------------------------------------------------------------- #
# the compiled plan
# --------------------------------------------------------------------------- #
class TestFaultPlan:
    def test_same_seed_identical_different_seed_diverges(self):
        a = FaultPlan.compile(FAULTS, nprocs=64, seed=5)
        b = FaultPlan.compile(FAULTS, nprocs=64, seed=5)
        np.testing.assert_array_equal(a.speed_factors, b.speed_factors)
        sa, sb = a.message_stream(), b.message_stream()
        assert [a.message_penalty(sa) for _ in range(50)] == [
            b.message_penalty(sb) for _ in range(50)
        ]
        c = FaultPlan.compile(FAULTS, nprocs=64, seed=6)
        assert not np.array_equal(a.speed_factors, c.speed_factors)

    def test_message_stream_is_fresh_per_call(self):
        plan = FaultPlan.compile("msgloss(p=0.4)", nprocs=2, seed=3)
        draws = [plan.message_penalty(plan.message_stream()) for _ in range(3)]
        assert draws[0] == draws[1] == draws[2]

    def test_no_msgloss_means_no_stream(self):
        plan = FaultPlan.compile("stragglers()", nprocs=2, seed=0)
        assert plan.message_stream() is None
        assert not plan.has_msgloss

    def test_straggler_speed_factors(self):
        plan = FaultPlan.compile("stragglers(frac=1.0,slowdown=4.0)", nprocs=8, seed=0)
        np.testing.assert_array_equal(plan.speed_factors, np.full(8, 4.0))
        none = FaultPlan.compile("stragglers(frac=0.0,slowdown=4.0)", nprocs=8, seed=0)
        np.testing.assert_array_equal(none.speed_factors, np.ones(8))

    def test_slowdown_window_gates_start_time(self):
        plan = FaultPlan.compile(
            "slowdown(n=1,span=1.0,duration=0.25,factor=2.0)", nprocs=4, seed=9
        )
        start = float(plan.window_starts[0, 0])
        assert plan.speed_at(0, start) == 2.0  # inclusive start edge
        assert plan.speed_at(0, start + 0.25) == 1.0  # exclusive end edge
        assert plan.speed_at(0, start - 1e-9) == 1.0

    def test_message_penalty_retry_cap(self):
        plan = FaultPlan.compile("msgloss(p=0.99,retry_timeout=1e-4)", nprocs=2, seed=0)

        class AlwaysLost:
            def random(self):
                return 0.0  # < p forever

        penalty, retries = plan.message_penalty(AlwaysLost())
        assert retries == MAX_RETRIES
        assert penalty > 0.0

    def test_replication_seed_never_base_and_distinct(self):
        seeds = {replication_seed(7, rep) for rep in range(16)}
        assert len(seeds) == 16
        assert 7 not in seeds

    def test_models_validate(self):
        with pytest.raises(ValueError):
            StragglerModel(frac=-0.1)
        with pytest.raises(ValueError):
            MsgLossModel(retry_timeout=0.0)


# --------------------------------------------------------------------------- #
# sweep axis, replication summary and keys
# --------------------------------------------------------------------------- #
class TestSweepSpecFaults:
    def test_faults_axis_expands_innermost(self):
        spec = SweepSpec(
            problems=["XENON2"],
            strategies=["memory-full"],
            faults=[None, "stragglers()"],
            fault_seed=3,
            replications=4,
        )
        assert len(spec) == 2
        clean, faulted = spec.expand()
        assert clean.faults is None
        assert clean.fault_seed == 0 and clean.replications == 1
        assert faulted.faults == canonical_faults("stragglers()")
        assert faulted.fault_seed == 3 and faulted.replications == 4

    def test_bad_faults_axis_rejected_eagerly(self):
        with pytest.raises(ValueError, match="unknown fault model"):
            SweepSpec(problems=["XENON2"], faults=["nonsense()"])
        with pytest.raises(ValueError):
            SweepSpec(problems=["XENON2"], replications=0)
        with pytest.raises(ValueError):
            SweepSpec(problems=["XENON2"], fault_seed=-1)

    def test_to_dict_round_trip(self):
        spec = SweepSpec(
            problems=["XENON2"], faults=["stragglers()"], fault_seed=2, replications=3
        )
        again = SweepSpec.from_dict(spec.to_dict())
        assert again.to_dict() == spec.to_dict()


class TestCaseKeys:
    def test_clean_keys_unchanged_by_fault_fields(self):
        spec = CaseSpec("XENON2", "metis", "memory-full")
        base = case_key(spec, nprocs=4, scale=0.2)
        assert case_key(spec, nprocs=4, scale=0.2, faults=None) == base
        assert case_key(spec, nprocs=4, scale=0.2, faults="") == base

    def test_faulted_keys_distinct_per_seed_and_replications(self):
        spec = CaseSpec("XENON2", "metis", "memory-full")
        base = case_key(spec, nprocs=4, scale=0.2)
        k1 = case_key(spec, nprocs=4, scale=0.2, faults=FAULTS, fault_seed=1, replications=3)
        k2 = case_key(spec, nprocs=4, scale=0.2, faults=FAULTS, fault_seed=2, replications=3)
        k3 = case_key(spec, nprocs=4, scale=0.2, faults=FAULTS, fault_seed=1, replications=5)
        assert len({base, k1, k2, k3}) == 4

    def test_equivalent_fault_spellings_share_a_key(self):
        spec = CaseSpec("XENON2", "metis", "memory-full")
        a = case_key(spec, nprocs=4, scale=0.2, faults="msgloss(p=0.1)+stragglers()")
        b = case_key(
            spec, nprocs=4, scale=0.2,
            faults="stragglers(frac=0.1,slowdown=4.0)+msgloss(p=0.1)",
        )
        assert a == b


# --------------------------------------------------------------------------- #
# end to end: replications, determinism across execution paths
# --------------------------------------------------------------------------- #
def _sweep_payload(session: Session, **kwargs) -> bytes:
    results = session.sweep(
        problems=["XENON2"],
        strategies=["memory-full", "mumps-workload"],
        faults=[FAULTS],
        fault_seed=11,
        replications=3,
        **kwargs,
    )
    return canonical_json([r.to_dict() for r in results])


class TestFaultedSweeps:
    def test_replication_summary_fields(self):
        with Session(nprocs=4, scale=0.2, cache_dir="") as session:
            clean = session.sweep(problems=["XENON2"], strategies=["memory-full"])
            faulted = session.sweep(
                problems=["XENON2"], strategies=["memory-full"],
                faults=["stragglers(frac=1.0,slowdown=4.0)"],
                fault_seed=11, replications=3,
            )
        case = faulted[0]
        assert case.replications == 3
        assert case.faults == canonical_faults("stragglers(frac=1.0,slowdown=4.0)")
        assert case.makespan_p50 <= case.makespan_p95
        # every processor 4x slower: the degradation must actually bite
        assert case.degradation > 1.5
        assert case.degradation == pytest.approx(
            case.makespan_p50 / clean[0].total_time
        )
        # clean results keep the neutral summary defaults
        assert clean[0].faults == "" and clean[0].replications == 1
        assert clean[0].degradation == 1.0
        assert clean[0].makespan_p50 == clean[0].total_time

    def test_fresh_runs_byte_identical(self):
        with Session(nprocs=4, scale=0.2, cache_dir="") as session:
            a = _sweep_payload(session)
            b = _sweep_payload(session)
        assert a == b

    def test_store_resume_byte_identical(self, tmp_path):
        store = tmp_path / "store"
        with Session(nprocs=4, scale=0.2, cache_dir="") as session:
            fresh = _sweep_payload(session, store=store)
        with Session(nprocs=4, scale=0.2, cache_dir="") as session:
            replayed = _sweep_payload(session, store=store)
        assert fresh == replayed

    def test_batched_and_parallel_byte_identical(self):
        with Session(nprocs=4, scale=0.2, cache_dir="") as session:
            serial = _sweep_payload(session)
            batched = _sweep_payload(session, batch=True)
        assert serial == batched
        with Session(nprocs=4, scale=0.2, cache_dir="", jobs=2) as session:
            parallel = _sweep_payload(session)
        assert serial == parallel

    def test_faulted_rows_survive_the_columnar_table(self, tmp_path):
        with Session(nprocs=4, scale=0.2, cache_dir="") as session:
            results = session.sweep(
                problems=["XENON2"], strategies=["memory-full"],
                faults=[None, FAULTS], fault_seed=11, replications=2,
            )
        table = results.table
        path = tmp_path / "t.npz"
        table.save_npz(path)
        loaded = ResultTable.load_npz(path)
        assert loaded.to_dicts() == table.to_dicts()
        faulted_only = loaded.filter(faults=canonical_faults(FAULTS))
        assert len(faulted_only) == 1
        assert loaded.to_dicts()[1]["replications"] == 2


# --------------------------------------------------------------------------- #
# objective and CLI
# --------------------------------------------------------------------------- #
class TestRobustnessObjective:
    def test_metrics_and_fallback(self):
        from repro.tune.objective import make_objective

        class Row:
            total_time = 2.0
            makespan_p50 = 3.0
            makespan_p95 = 4.0
            degradation = 1.5

        class OldRow:
            total_time = 2.0
            makespan_p50 = 0.0
            makespan_p95 = 0.0
            degradation = 1.0

        assert make_objective("robustness").score(Row()) == 4.0
        assert make_objective("robustness(metric=p50)").score(Row()) == 3.0
        assert make_objective("robustness(metric=degradation)").score(Row()) == 1.5
        # rows stored before the fault layer fall back to the plain makespan
        assert make_objective("robustness").score(OldRow()) == 2.0

    def test_unknown_metric_rejected(self):
        from repro.tune.objective import make_objective

        with pytest.raises(ValueError, match="metric must be one of"):
            make_objective("robustness(metric=p99)")


class TestRobustnessCli:
    ARGS = [
        "--problems", "XENON2",
        "--strategies", "memory-full",
        "--faults", "stragglers(frac=0.5,slowdown=3.0)",
        "--seed", "7",
        "--replications", "2",
        "--nprocs", "4",
        "--scale", "0.2",
    ]

    def test_md_output_and_determinism(self, capsys):
        from repro.faults.cli import main

        assert main(self.ARGS) == 0
        first = capsys.readouterr().out
        assert main(self.ARGS) == 0
        second = capsys.readouterr().out
        assert first == second
        assert "| degradation |" in first.splitlines()[2]

    def test_json_output(self, capsys):
        from repro.faults.cli import main

        assert main(self.ARGS + ["--format", "json"]) == 0
        import json

        payload = json.loads(capsys.readouterr().out)
        row = payload["rows"][0]
        assert row["strategy"] == "memory-full"
        assert row["degradation"] > 0.0

    def test_bad_fault_spec_is_a_usage_error(self, capsys):
        from repro.faults.cli import main

        with pytest.raises(SystemExit) as excinfo:
            main(["--problems", "XENON2", "--faults", "nope()"])
        assert excinfo.value.code == 2
        assert "unknown fault model" in capsys.readouterr().err

    def test_top_level_dispatch(self, capsys):
        from repro.cli import main

        assert main(["robustness", *self.ARGS, "--format", "csv"]) == 0
        out = capsys.readouterr().out
        assert out.splitlines()[0].startswith("problem,ordering,strategy")
