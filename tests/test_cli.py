"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_target(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "XENON2" in out
    assert "memory-full" in out
    assert "metis" in out


def test_single_figure(capsys):
    assert main(["figure8"]) == 0
    out = capsys.readouterr().out
    assert "FIGURE8" in out
    assert "Algorithm 2" in out


def test_single_table_small(capsys):
    code = main(
        ["table2", "--nprocs", "4", "--scale", "0.2", "--problems", "XENON2", "--orderings", "metis"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "TABLE2" in out
    assert "XENON2" in out


def test_sweep_target(capsys):
    code = main(
        [
            "sweep",
            "--nprocs", "4",
            "--scale", "0.2",
            "--problems", "XENON2",
            "--orderings", "metis",
            "--strategies", "mumps-workload,memory-full",
            "--no-progress",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "SWEEP (2 cases" in out
    assert "mumps-workload" in out and "memory-full" in out


def test_sweep_target_parallel_jobs(capsys):
    code = main(
        [
            "sweep",
            "--nprocs", "4",
            "--scale", "0.2",
            "--problems", "XENON2",
            "--orderings", "metis,amd",
            "--strategies", "memory-full",
            "--jobs", "2",
            "--no-progress",
        ]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "SWEEP (2 cases" in out


def test_progress_lines_on_stderr(capsys):
    code = main(
        ["sweep", "--nprocs", "4", "--scale", "0.2", "--problems", "XENON2",
         "--orderings", "metis", "--strategies", "memory-full"]
    )
    assert code == 0
    err = capsys.readouterr().err
    assert "[1/1] XENON2/metis/memory-full" in err


def test_unknown_target():
    with pytest.raises(SystemExit):
        main(["table99"])


def test_rejects_bad_jobs():
    with pytest.raises(SystemExit):
        main(["table1", "--jobs", "0"])
    with pytest.raises(SystemExit):
        main(["list", "--jobs", "0"])


def test_rejects_unknown_subset_values(capsys):
    for argv in (
        ["sweep", "--problems", "NOPE"],
        ["sweep", "--strategies", "bogus"],
        ["table2", "--orderings", "bogus"],
    ):
        with pytest.raises(SystemExit):
            main(argv)
        assert "unknown --" in capsys.readouterr().err


def test_parser_defaults():
    args = build_parser().parse_args(["table1"])
    assert args.nprocs == 32
    assert args.scale == 1.0
    assert args.jobs == 1
