"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


def test_list_target(capsys):
    assert main(["list"]) == 0
    out = capsys.readouterr().out
    assert "XENON2" in out
    assert "memory-full" in out
    assert "metis" in out


def test_single_figure(capsys):
    assert main(["figure8"]) == 0
    out = capsys.readouterr().out
    assert "FIGURE8" in out
    assert "Algorithm 2" in out


def test_single_table_small(capsys):
    code = main(
        ["table2", "--nprocs", "4", "--scale", "0.2", "--problems", "XENON2", "--orderings", "metis"]
    )
    assert code == 0
    out = capsys.readouterr().out
    assert "TABLE2" in out
    assert "XENON2" in out


def test_unknown_target():
    with pytest.raises(SystemExit):
        main(["table99"])


def test_parser_defaults():
    args = build_parser().parse_args(["table1"])
    assert args.nprocs == 32
    assert args.scale == 1.0
