"""Tests for the sequential memory trace simulation."""

import numpy as np
import pytest

from repro.analysis import (
    sequential_memory_trace,
    sequential_stack_peak,
    subtree_stack_peaks,
)
from repro.symbolic import AssemblyTree, sequential_peak_of_tree


class TestSequentialTrace:
    def test_final_factors_match(self, medium_tree):
        trace = sequential_memory_trace(medium_tree)
        assert trace.final_factors == pytest.approx(medium_tree.total_factor_entries())

    def test_trace_peak_matches_recursive_model(self, medium_tree, chain_tree, forked_tree):
        for tree in (medium_tree, chain_tree, forked_tree):
            trace_peak = sequential_memory_trace(tree, child_order="liu").peak_working
            model_peak, _ = sequential_peak_of_tree(tree, child_order="liu")
            assert trace_peak == pytest.approx(model_peak)

    def test_stack_never_negative(self, medium_tree):
        trace = sequential_memory_trace(medium_tree)
        assert min(trace.stack) >= -1e-9

    def test_stack_ends_with_root_cbs_only(self, medium_tree):
        trace = sequential_memory_trace(medium_tree)
        expected = sum(medium_tree.cb_entries(r) for r in medium_tree.roots)
        assert trace.stack[-1] == pytest.approx(expected)

    def test_factors_monotone(self, medium_tree):
        trace = sequential_memory_trace(medium_tree)
        factors = np.asarray(trace.factors)
        assert np.all(np.diff(factors) >= -1e-9)

    def test_events_per_node(self, small_tree):
        trace = sequential_memory_trace(small_tree)
        # allocate + assemble + factorize per node
        assert len(trace) == 3 * small_tree.nnodes

    def test_natural_vs_liu_order(self, medium_tree):
        liu = sequential_memory_trace(medium_tree, child_order="liu").peak_working
        nat = sequential_memory_trace(medium_tree, child_order="natural").peak_working
        assert liu <= nat + 1e-9

    def test_as_arrays(self, small_tree):
        arrays = sequential_memory_trace(small_tree).as_arrays()
        assert set(arrays) == {"factors", "stack", "active", "working"}
        assert all(len(v) == 3 * small_tree.nnodes for v in arrays.values())

    def test_empty_trace_defaults(self):
        from repro.analysis.memory import MemoryTrace

        t = MemoryTrace()
        assert t.peak_working == 0.0
        assert t.peak_stack == 0.0
        assert t.final_factors == 0.0


class TestConvenienceWrappers:
    def test_sequential_stack_peak(self, medium_tree):
        assert sequential_stack_peak(medium_tree) == pytest.approx(
            sequential_memory_trace(medium_tree).peak_working
        )

    def test_subtree_peaks_root_dominates(self, medium_tree):
        peaks = subtree_stack_peaks(medium_tree)
        for j in range(medium_tree.nnodes):
            p = int(medium_tree.parent[j])
            if p >= 0:
                # a parent's subtree peak is at least the child's peak
                assert peaks[p] >= peaks[j] - 1e-9

    def test_subtree_peaks_leaf_equals_front(self, medium_tree):
        peaks = subtree_stack_peaks(medium_tree)
        for leaf in medium_tree.leaves():
            assert peaks[leaf] == pytest.approx(medium_tree.front_entries(leaf))
