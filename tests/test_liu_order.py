"""Tests for Liu's child ordering and the sequential stack-peak model."""

import itertools

import numpy as np
import pytest

from repro.symbolic import AssemblyTree, order_children_for_memory, sequential_peak_of_tree
from repro.symbolic.liu_order import node_working_storage, subtree_peaks_given_order


def brute_force_best_peak(tree):
    """Minimum peak over every permutation of every node's children (small trees only)."""
    n = tree.nnodes

    def peak_of(node, orders):
        stacked = 0.0
        peak = 0.0
        for c in orders[node]:
            peak = max(peak, stacked + peak_of(c, orders))
            stacked += tree.cb_entries(c)
        return max(peak, tree.front_entries(node) + stacked)

    best = None
    children = [tree.children(j) for j in range(n)]
    all_orders = [list(itertools.permutations(children[j])) for j in range(n)]
    for combo in itertools.product(*all_orders):
        orders = [list(c) for c in combo]
        total = 0.0
        stacked = 0.0
        for r in tree.roots:
            total = max(total, stacked + peak_of(r, orders))
            stacked += tree.cb_entries(r)
        best = total if best is None else min(best, total)
    return best


@pytest.fixture()
def star_tree():
    """One root with three children of very different peaks and CBs."""
    #     children: (npiv, nfront): peaks/cbs chosen to make ordering matter
    npiv = [2, 1, 4, 3]
    nfront = [8, 10, 5, 12]
    parent = [3, 3, 3, -1]
    return AssemblyTree(npiv, nfront, parent, symmetric=True, nvars=10)


class TestSequentialPeak:
    def test_single_node(self):
        tree = AssemblyTree([3], [3], [-1], symmetric=True, nvars=3)
        peak, per = sequential_peak_of_tree(tree)
        assert peak == tree.front_entries(0)
        assert per[0] == peak

    def test_leaf_peak_is_front(self, star_tree):
        _, per = sequential_peak_of_tree(star_tree)
        for leaf in star_tree.leaves():
            assert per[leaf] == star_tree.front_entries(leaf)

    def test_peak_at_least_working_storage(self, medium_tree):
        peak, per = sequential_peak_of_tree(medium_tree)
        for j in range(medium_tree.nnodes):
            assert per[j] >= node_working_storage(medium_tree, j) - 1e-9
        assert peak >= per.max() - 1e-9

    def test_liu_order_never_worse_than_natural(self, medium_tree, star_tree, chain_tree):
        for tree in (medium_tree, star_tree, chain_tree):
            liu_peak, _ = sequential_peak_of_tree(tree, child_order="liu")
            nat_peak, _ = sequential_peak_of_tree(tree, child_order="natural")
            assert liu_peak <= nat_peak + 1e-9

    def test_liu_order_is_optimal_on_small_trees(self, star_tree, forked_tree, chain_tree):
        for tree in (star_tree, forked_tree, chain_tree):
            liu_peak, _ = sequential_peak_of_tree(tree, child_order="liu")
            assert liu_peak == pytest.approx(brute_force_best_peak(tree))

    def test_explicit_child_order_accepted(self, forked_tree):
        order = [[], [], [1, 0]]
        peak, _ = sequential_peak_of_tree(forked_tree, child_order=order)
        assert peak > 0

    def test_orders_contain_same_children(self, medium_tree):
        orders = order_children_for_memory(medium_tree)
        for j in range(medium_tree.nnodes):
            assert sorted(orders[j]) == sorted(medium_tree.children(j))

    def test_subtree_peaks_given_natural_order(self, chain_tree):
        peaks = subtree_peaks_given_order(chain_tree, None)
        # chain: peak grows towards the root
        assert peaks[-1] >= peaks[0]

    def test_deterministic(self, medium_tree):
        a = order_children_for_memory(medium_tree)
        b = order_children_for_memory(medium_tree)
        assert a == b
