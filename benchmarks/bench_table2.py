"""Benchmark regenerating Table 2.

Percentage decrease of the maximum stack-memory peak obtained by the dynamic
memory-based strategies (Algorithm 1 + Section 5.1 + Algorithm 2) against the
original MUMPS workload-based strategy, without static tree modification,
for the 8 test problems and the 4 orderings.

Expected shape (paper): mostly positive gains, zeros for the symmetric
problems whose peak sits inside a leaf subtree, a few small negative entries.

Thin pytest-benchmark shim over the ``tables`` suite of
:mod:`repro.bench.suites` — the same case ``repro bench run --suite tables``
times without pytest.
"""

from _bench_utils import run_prepared


def test_table2(benchmark, tables_suite):
    prepared = next(c for c in tables_suite.cases if c.case.name == "table2")
    metrics = run_prepared(benchmark, prepared)
    assert metrics["rows"] == 8
    # reproduction of the paper's qualitative claim: the strategy helps on
    # average and never causes a catastrophic regression
    assert metrics["mean_gain"] > -5.0
    assert metrics["max_gain"] > 0.0
