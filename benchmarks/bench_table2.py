"""Benchmark regenerating Table 2.

Percentage decrease of the maximum stack-memory peak obtained by the dynamic
memory-based strategies (Algorithm 1 + Section 5.1 + Algorithm 2) against the
original MUMPS workload-based strategy, without static tree modification,
for the 8 test problems and the 4 orderings.

Expected shape (paper): mostly positive gains, zeros for the symmetric
problems whose peak sits inside a leaf subtree, a few small negative entries.
"""

from _bench_utils import run_once

from repro.experiments import tables


def bench_table2(runner):
    rows = tables.table2(runner)
    print()
    print(
        tables.format_table(
            rows,
            title="TABLE 2 — % decrease of max stack peak (memory strategy vs MUMPS, no splitting)",
        )
    )
    return rows


def test_table2(benchmark, runner):
    rows = run_once(benchmark, bench_table2, runner)
    assert len(rows) == 8
    values = [v for row in rows.values() for v in row.values()]
    # reproduction of the paper's qualitative claim: the strategy helps on
    # average and never causes a catastrophic regression
    assert sum(values) / len(values) > -5.0
    assert max(values) > 0.0
