"""Ablation benchmark: which ingredient of the memory strategy does what.

The paper's final strategy stacks three mechanisms on top of MUMPS'
workload-based scheduling: Algorithm 1 (memory-based slave selection), the
Section 5.1 prediction terms, and Algorithm 2 (memory-aware task selection).
This benchmark runs every intermediate preset on a few representative cases
so their individual contributions can be compared — the ablation DESIGN.md
calls out.
"""

import numpy as np
from _bench_utils import run_once

from repro.experiments.runner import percentage_decrease

CASES = [("XENON2", "metis"), ("XENON2", "amf"), ("ULTRASOUND3", "metis"), ("TWOTONE", "amd")]
PRESETS = ["mumps-workload", "memory-basic", "memory-slave", "memory-task", "memory-full", "hybrid"]


def bench_ablation(runner):
    rows = {}
    for problem, ordering in CASES:
        base = runner.run_case(problem, ordering, "mumps-workload", split=True)
        row = {}
        for preset in PRESETS:
            case = runner.run_case(problem, ordering, preset, split=True)
            row[preset] = round(percentage_decrease(base.max_peak_stack, case.max_peak_stack), 1)
        rows[f"{problem}-{ordering}"] = row
    print()
    print("ABLATION — % decrease of max stack peak vs mumps-workload (split trees)")
    header = f"{'case':24s}" + "".join(f"{p:>15s}" for p in PRESETS)
    print(header)
    for label, row in rows.items():
        print(f"{label:24s}" + "".join(f"{row[p]:15.1f}" for p in PRESETS))
    return rows


def test_ablation_strategies(benchmark, runner):
    rows = run_once(benchmark, bench_ablation, runner)
    # the baseline compared to itself is always exactly zero
    assert all(row["mumps-workload"] == 0.0 for row in rows.values())
    # the full strategy should on average do at least as well as the basic one
    full = np.mean([row["memory-full"] for row in rows.values()])
    assert full > -10.0
