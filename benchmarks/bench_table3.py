"""Benchmark regenerating Table 3.

Same comparison as Table 2 (memory-based dynamic strategies vs. MUMPS
workload strategy) but on assembly trees whose large type-2 masters have been
statically split into chains — both sides of the comparison use the split
tree, as in the paper.  Only the unsymmetric problems are concerned.

Expected shape (paper): gains globally more significant than in Table 2,
because the dynamic strategy is no longer limited by huge master tasks.
"""

import numpy as np
from _bench_utils import run_once

from repro.experiments import tables


def bench_table3(runner):
    rows = tables.table3(runner)
    print()
    print(
        tables.format_table(
            rows,
            title="TABLE 3 — % decrease of max stack peak on split trees (memory strategy vs MUMPS)",
        )
    )
    return rows


def test_table3(benchmark, runner):
    rows = run_once(benchmark, bench_table3, runner)
    assert set(rows) == {"PRE2", "TWOTONE", "ULTRASOUND3", "XENON2"}
    values = [v for row in rows.values() for v in row.values()]
    assert np.mean(values) > -10.0
