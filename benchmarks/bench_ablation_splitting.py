"""Ablation benchmark: sensitivity to the splitting threshold.

The paper uses a fixed threshold of 2·10⁶ entries on the master part and
notes that "the choice of the threshold for splitting may be improved and
should be more matrix-dependent".  This benchmark sweeps the threshold on one
unsymmetric case and reports the resulting peaks, which makes that remark
quantitative for the analogue problems.
"""

from _bench_utils import run_once

from repro.experiments.problems import get_problem
from repro.mapping import compute_mapping
from repro.runtime import FactorizationSimulator, SimulationConfig
from repro.scheduling import get_strategy
from repro.symbolic import split_large_masters


def bench_split_threshold(runner, problem="TWOTONE", ordering="amd"):
    analysis = runner.analysis(problem, ordering, split=False)
    tree = analysis.tree
    biggest = max(tree.master_entries(i) for i in range(tree.nnodes))
    thresholds = [None] + [int(biggest * f) for f in (0.5, 0.25, 0.1, 0.05)]
    results = {}
    for threshold in thresholds:
        if threshold is None:
            work_tree, nodes_split = tree, 0
        else:
            work_tree, report = split_large_masters(tree, max(threshold, 100))
            nodes_split = report.nodes_split
        config = SimulationConfig(**{**runner.config.__dict__})
        mapping = compute_mapping(
            work_tree,
            config.nprocs,
            type2_front_threshold=config.type2_front_threshold,
            type2_cb_threshold=config.type2_cb_threshold,
            type3_front_threshold=config.type3_front_threshold,
        )
        slave, task = get_strategy("memory-full").build()
        result = FactorizationSimulator(
            work_tree, config=config, mapping=mapping, slave_selector=slave, task_selector=task
        ).run()
        label = "no split" if threshold is None else f"{threshold:,} entries"
        results[label] = {
            "max_peak": result.max_peak_stack,
            "nodes_split": nodes_split,
            "nodes": work_tree.nnodes,
        }
    print()
    print(f"SPLIT-THRESHOLD ABLATION — {problem}/{ordering.upper()} (memory-full strategy)")
    for label, row in results.items():
        print(f"  threshold {label:>18s}: max peak {row['max_peak']:12,.0f} entries, "
              f"{row['nodes_split']:3d} nodes split, {row['nodes']:4d} tree nodes")
    return results


def test_ablation_split_threshold(benchmark, runner):
    results = run_once(benchmark, bench_split_threshold, runner)
    peaks = [row["max_peak"] for row in results.values()]
    baseline = peaks[0]
    # splitting must never make the peak dramatically worse, and the sweep
    # must contain at least one configuration at least as good as no-split
    assert min(peaks) <= baseline * 1.02
