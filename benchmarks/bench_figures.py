"""Benchmarks regenerating the paper's illustrative Figures 1-8.

Each figure is an explanatory diagram in the paper; the corresponding
benchmark rebuilds the underlying object with the reproduction's machinery,
prints an ascii rendering and asserts the property the figure illustrates
(e.g. Algorithm 1 levels the memory of the selected slaves, Algorithm 2
delays a large type-2 node while a subtree is in progress).
"""

from _bench_utils import run_once

from repro.experiments import figures


def _show(name, data):
    print()
    print(f"=== {name.upper()} ===")
    print(data["ascii"])
    return data


def test_figure1_assembly_tree(benchmark):
    data = run_once(benchmark, lambda: _show("figure1", figures.figure1()))
    assert data["tree"].nvars == 6
    assert data["nodes"] >= 1


def test_figure2_tree_distribution(benchmark):
    data = run_once(benchmark, lambda: _show("figure2", figures.figure2(nprocs=4)))
    summary = data["summary"]
    assert summary["nprocs"] == 4
    assert summary["count_subtree"] > 0


def test_figure3_type2_blocking(benchmark):
    data = run_once(benchmark, lambda: _show("figure3", figures.figure3()))
    assert sum(data["unsymmetric_rows"]) == sum(data["symmetric_rows"])
    assert data["symmetric_rows"][0] >= data["symmetric_rows"][-1]


def test_figure4_memory_levelling(benchmark):
    data = run_once(benchmark, lambda: _show("figure4", figures.figure4()))
    before = data["memory_before"][1:]
    after = data["memory_after"][1:]
    assert (after.max() - after.min()) <= (before.max() - before.min()) + 1e-9


def test_figure5_stale_views(benchmark):
    data = run_once(benchmark, lambda: _show("figure5", figures.figure5()))
    assert set(data["peaks"]) == {"fresh views", "stale views"}


def test_figure6_master_prediction(benchmark):
    data = run_once(benchmark, lambda: _show("figure6", figures.figure6()))
    assert data["rows_on_p0_with"] < data["rows_on_p0_without"]


def test_figure7_task_pool(benchmark):
    data = run_once(benchmark, lambda: _show("figure7", figures.figure7(nprocs=4)))
    assert len(data["pools"]) == 4


def test_figure8_task_selection(benchmark):
    data = run_once(benchmark, lambda: _show("figure8", figures.figure8()))
    assert data["lifo_choice_node"] == 3
    assert data["memory_choice_node"] != 3
