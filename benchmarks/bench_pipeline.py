"""Benchmark: the pipeline hot path and the parallel sweep executor.

Two complementary measurements, both thin layers over the benchmark
subsystem (:mod:`repro.bench`):

* ``test_pipeline_suite_cases`` times the ``pipeline`` suite's prepared
  cases (simulation kernel on prebuilt analyses + one cold end-to-end
  sweep) under pytest-benchmark — the exact cases ``repro bench run
  --suite pipeline`` and the CI perf gate execute;
* ``test_parallel_sweep_matches_serial`` runs the full Table-2-sized grid
  (8 problems × 4 orderings × 2 strategies = 64 cases) twice from a cold
  start — once serially in-process, once through
  :class:`~repro.pipeline.SweepExecutor` with ``REPRO_BENCH_PIPELINE_JOBS``
  worker processes (default 4) — asserts the two result lists are
  *identical* field by field (the executor's ordering guarantee: parallel is
  a drop-in for serial) and records the wall-clock speedup.

The speedup assertion only arms on machines with at least 4 CPUs — a
process pool cannot beat the serial path on the single-core containers CI
sometimes hands out — and can be disarmed explicitly with
``REPRO_BENCH_NO_SPEEDUP_CHECK=1``.

Both sweep runs deliberately bypass the shared on-disk cache: the point is
to measure the executor, not the cache.
"""

import os
import time

import numpy as np
import pytest

from _bench_utils import ENV, run_once, run_prepared

from repro.bench import build_suite
from repro.experiments import ExperimentRunner
from repro.experiments.problems import PROBLEMS
from repro.experiments.runner import ORDERING_NAMES
from repro.pipeline import CaseSpec

#: the Table-2 grid: every problem × every ordering × {baseline, memory}
GRID = [
    CaseSpec(problem, ordering, strategy)
    for problem in PROBLEMS
    for ordering in ORDERING_NAMES
    for strategy in ("mumps-workload", "memory-full")
]


@pytest.fixture(scope="module")
def pipeline_suite():
    instance = build_suite("pipeline", ENV)
    yield instance
    instance.close()


@pytest.mark.parametrize(
    "name", ["simulate-xenon2-metis", "simulate-twotone-amd", "sweep-serial-cold"]
)
def test_pipeline_suite_cases(benchmark, pipeline_suite, name):
    prepared = next(c for c in pipeline_suite.cases if c.case.name == name)
    metrics = run_prepared(benchmark, prepared)
    assert metrics
    assert all(value >= 0 for value in metrics.values())


def _assert_identical(serial, parallel):
    assert len(serial) == len(parallel) == len(GRID)
    for a, b in zip(serial, parallel):
        assert (a.problem, a.ordering, a.strategy, a.split) == (
            b.problem,
            b.ordering,
            b.strategy,
            b.split,
        )
        assert a.max_peak_stack == b.max_peak_stack
        assert a.avg_peak_stack == b.avg_peak_stack
        assert a.sum_peak_stack == b.sum_peak_stack
        assert a.total_time == b.total_time
        assert a.total_factor_entries == b.total_factor_entries
        assert np.array_equal(a.per_proc_peak_stack, b.per_proc_peak_stack)
        assert (a.nodes, a.nodes_split, a.messages) == (b.nodes, b.nodes_split, b.messages)


def test_parallel_sweep_matches_serial(benchmark):
    # cache_dir="" (not None) pins the disk tier off even when REPRO_CACHE_DIR
    # is exported — both paths must start genuinely cold
    start = time.perf_counter()
    serial = ExperimentRunner(nprocs=ENV.nprocs, scale=ENV.scale, cache_dir="").run_cases(GRID)
    serial_seconds = time.perf_counter() - start

    start = time.perf_counter()
    parallel = run_once(
        benchmark,
        lambda: ExperimentRunner(
            nprocs=ENV.nprocs, scale=ENV.scale, cache_dir="", jobs=ENV.pipeline_jobs
        ).run_cases(GRID),
    )
    parallel_seconds = time.perf_counter() - start

    _assert_identical(serial, parallel)

    speedup = serial_seconds / parallel_seconds if parallel_seconds > 0 else float("inf")
    benchmark.extra_info.update(
        cases=len(GRID),
        jobs=ENV.pipeline_jobs,
        serial_seconds=round(serial_seconds, 2),
        parallel_seconds=round(parallel_seconds, 2),
        speedup=round(speedup, 2),
        cpus=os.cpu_count(),
    )
    print()
    print(
        f"PIPELINE SWEEP — {len(GRID)} cases, nprocs={ENV.nprocs}, scale={ENV.scale}\n"
        f"  serial   : {serial_seconds:8.2f}s\n"
        f"  {ENV.pipeline_jobs} workers: {parallel_seconds:8.2f}s  (speedup {speedup:.2f}x on {os.cpu_count()} CPUs)"
    )

    cpus = os.cpu_count() or 1
    if cpus >= 4 and not ENV.no_speedup_check:
        assert parallel_seconds < serial_seconds, (
            f"parallel sweep ({parallel_seconds:.2f}s with {ENV.pipeline_jobs} workers) "
            f"should beat the serial path ({serial_seconds:.2f}s) on {cpus} CPUs"
        )
