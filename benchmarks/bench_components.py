"""Micro-benchmarks of the substrate components.

These are conventional pytest-benchmark timings (multiple rounds) of the
building blocks — orderings, symbolic analysis, sequential memory analysis
and one parallel simulation — so performance regressions in the substrate are
visible independently of the table regenerations.
"""

import pytest

from repro.analysis import sequential_memory_trace
from repro.mapping import compute_mapping
from repro.ordering import compute_ordering
from repro.runtime import FactorizationSimulator, SimulationConfig
from repro.scheduling import get_strategy
from repro.sparse import grid_3d
from repro.symbolic import build_assembly_tree, column_counts, elimination_tree


@pytest.fixture(scope="module")
def pattern():
    return grid_3d(12, 12, 12)


@pytest.fixture(scope="module")
def tree(pattern):
    return build_assembly_tree(pattern, compute_ordering(pattern, "metis"), keep_variables=False)


def test_bench_ordering_metis(benchmark, pattern):
    perm = benchmark(compute_ordering, pattern, "metis")
    assert perm.shape == (pattern.n,)


def test_bench_ordering_amd(benchmark, pattern):
    perm = benchmark(compute_ordering, pattern, "amd")
    assert perm.shape == (pattern.n,)


def test_bench_elimination_tree(benchmark, pattern):
    parent = benchmark(elimination_tree, pattern)
    assert parent.shape == (pattern.n,)


def test_bench_column_counts(benchmark, pattern):
    counts = benchmark(column_counts, pattern)
    assert counts.min() >= 1


def test_bench_assembly_tree_build(benchmark, pattern):
    result = benchmark(build_assembly_tree, pattern, None, keep_variables=False)
    assert result.nnodes >= 1


def test_bench_sequential_memory_trace(benchmark, tree):
    trace = benchmark(sequential_memory_trace, tree)
    assert trace.peak_working > 0


def test_bench_parallel_simulation(benchmark, tree):
    config = SimulationConfig.paper(nprocs=16)
    mapping = compute_mapping(tree, 16, **config.mapping_params())

    def run():
        slave, task = get_strategy("memory-full").build()
        return FactorizationSimulator(
            tree, config=config, mapping=mapping, slave_selector=slave, task_selector=task
        ).run()

    result = benchmark.pedantic(run, rounds=3, iterations=1, warmup_rounds=0)
    assert result.max_peak_stack > 0
