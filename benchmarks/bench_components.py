"""Micro-benchmarks of the substrate components.

Thin pytest-benchmark shims over the ``components`` suite of
:mod:`repro.bench.suites` (orderings, symbolic analysis, sequential memory
analysis and one parallel simulation), so performance regressions in the
substrate are visible independently of the table regenerations.  The same
cases run without pytest through ``repro bench run --suite components``.
"""

import pytest

from _bench_utils import ENV, run_prepared

from repro.bench import build_suite


@pytest.fixture(scope="module")
def components_suite():
    instance = build_suite("components", ENV)
    yield instance
    instance.close()


def _prepared(suite, name):
    return next(c for c in suite.cases if c.case.name == name)


def test_bench_ordering_metis(benchmark, components_suite):
    metrics = run_prepared(benchmark, _prepared(components_suite, "ordering-metis"))
    assert metrics["n"] > 0


def test_bench_ordering_amd(benchmark, components_suite):
    metrics = run_prepared(benchmark, _prepared(components_suite, "ordering-amd"))
    assert metrics["n"] > 0


def test_bench_elimination_tree(benchmark, components_suite):
    metrics = run_prepared(benchmark, _prepared(components_suite, "elimination-tree"))
    assert metrics["n"] > 0


def test_bench_column_counts(benchmark, components_suite):
    metrics = run_prepared(benchmark, _prepared(components_suite, "column-counts"))
    assert metrics["min"] >= 1


def test_bench_assembly_tree_build(benchmark, components_suite):
    metrics = run_prepared(benchmark, _prepared(components_suite, "assembly-tree-build"))
    assert metrics["nodes"] >= 1


def test_bench_sequential_memory_trace(benchmark, components_suite):
    metrics = run_prepared(benchmark, _prepared(components_suite, "sequential-memory-trace"))
    assert metrics["peak_working"] > 0


def test_bench_parallel_simulation(benchmark, components_suite):
    metrics = run_prepared(benchmark, _prepared(components_suite, "simulate-memory-full"))
    assert metrics["max_peak_stack"] > 0
