"""Ablation benchmark: amalgamation relaxation vs. tree granularity and memory.

The granularity of the assembly tree (controlled by the relaxed-amalgamation
parameter of the analysis) determines how much freedom the dynamic scheduling
has; this ablation quantifies the trade-off on one problem.
"""

from _bench_utils import run_once

from repro.experiments import ExperimentRunner
from repro.experiments.problems import get_problem
from repro.mapping import compute_mapping
from repro.ordering import compute_ordering
from repro.runtime import FactorizationSimulator, SimulationConfig
from repro.scheduling import get_strategy
from repro.symbolic import build_assembly_tree

from _bench_utils import BENCH_NPROCS, BENCH_SCALE


def bench_amalgamation(problem="XENON2", ordering="metis"):
    pattern = get_problem(problem).build(BENCH_SCALE)
    perm = compute_ordering(pattern, ordering)
    results = {}
    for relax in (0.0, 0.1, 0.25, 0.5):
        tree = build_assembly_tree(pattern, perm, amalgamation_relax=relax, keep_variables=False)
        config = SimulationConfig.paper(nprocs=BENCH_NPROCS)
        mapping = compute_mapping(tree, BENCH_NPROCS, **config.mapping_params())
        slave, task = get_strategy("memory-full").build()
        result = FactorizationSimulator(
            tree, config=config, mapping=mapping, slave_selector=slave, task_selector=task
        ).run()
        results[relax] = {
            "nodes": tree.nnodes,
            "factor_entries": tree.total_factor_entries(),
            "max_peak": result.max_peak_stack,
        }
    print()
    print(f"AMALGAMATION ABLATION — {problem}/{ordering.upper()}, memory-full strategy")
    for relax, row in results.items():
        print(
            f"  relax={relax:4.2f}: {row['nodes']:5d} nodes, "
            f"factors {row['factor_entries']:12,.0f} entries, max peak {row['max_peak']:12,.0f}"
        )
    return results


def test_ablation_amalgamation(benchmark):
    results = run_once(benchmark, bench_amalgamation)
    nodes = [row["nodes"] for row in results.values()]
    factors = [row["factor_entries"] for row in results.values()]
    # more relaxation -> coarser trees and at least as many stored entries
    assert nodes == sorted(nodes, reverse=True)
    assert factors == sorted(factors)
