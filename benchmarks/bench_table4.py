"""Benchmark regenerating Table 4.

Absolute maximum stack peaks (millions of entries) for the paper's two
illustrative cases — ULTRASOUND3/METIS and XENON2/AMF — crossing
{no splitting, splitting} × {MUMPS dynamic strategy, memory-based dynamic
strategy}.

Expected shape (paper): both the static splitting and the dynamic
memory-based strategy contribute to decreasing the peak; the combination is
the best or close to it.
"""

from _bench_utils import run_once

from repro.experiments import tables


def bench_table4(runner):
    rows = tables.table4(runner)
    print()
    print(
        tables.format_table(
            rows,
            title="TABLE 4 — max stack peak (millions of entries), two illustrative cases",
        )
    )
    return rows


def test_table4(benchmark, runner):
    rows = run_once(benchmark, bench_table4, runner)
    for label, row in rows.items():
        baseline = row["MUMPS dynamic / no splitting"]
        best = min(row.values())
        # some combination of splitting and/or memory-aware scheduling should
        # not be worse than the plain baseline
        assert best <= baseline * 1.05
