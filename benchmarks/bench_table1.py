"""Benchmark regenerating Table 1: the test problems.

Thin pytest-benchmark shim over the ``tables`` suite of
:mod:`repro.bench.suites` — the same case ``repro bench run --suite tables``
times without pytest.
"""

from _bench_utils import run_prepared


def test_table1(benchmark, tables_suite):
    prepared = next(c for c in tables_suite.cases if c.case.name == "table1")
    metrics = run_prepared(benchmark, prepared)
    assert metrics["rows"] == 8
    assert metrics["min_order"] > 0
