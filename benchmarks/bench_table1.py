"""Benchmark regenerating Table 1: the test problems."""

from _bench_utils import run_once

from repro.experiments import tables


def bench_table1(runner):
    rows = tables.table1(runner)
    print()
    print(tables.format_table(rows, title="TABLE 1 — test problems (analogues, paper sizes for reference)"))
    return rows


def test_table1(benchmark, runner):
    rows = run_once(benchmark, bench_table1, runner)
    assert len(rows) == 8
    assert all(row["Order"] > 0 for row in rows.values())
