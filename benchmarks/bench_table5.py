"""Benchmark regenerating Table 5.

Percentage decrease of the maximum stack peak when BOTH the static splitting
and the dynamic memory-based strategies are applied, compared with the
original MUMPS strategy on the unmodified tree (unsymmetric problems).

Expected shape (paper): the largest gains of the study (up to ~50% for
TWOTONE/AMF in the paper), with possibly a couple of slightly negative
entries caused by Algorithm 2 pathologies the paper itself discusses.
"""

import numpy as np
from _bench_utils import run_once

from repro.experiments import tables


def bench_table5(runner):
    rows = tables.table5(runner)
    print()
    print(
        tables.format_table(
            rows,
            title="TABLE 5 — % decrease of max stack peak, static splitting + dynamic memory vs original MUMPS",
        )
    )
    return rows


def test_table5(benchmark, runner):
    rows = run_once(benchmark, bench_table5, runner)
    values = [v for row in rows.values() for v in row.values()]
    # combining static and dynamic approaches should pay off on average
    assert np.mean(values) > -10.0
