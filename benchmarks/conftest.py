"""Shared configuration of the benchmark harness.

Each ``bench_table*.py`` regenerates one table of the paper and each entry of
``bench_figures.py`` one illustrative figure.  The heavy lifting (analysis of
8 problems × 4 orderings) is shared through a session-scoped
:class:`repro.experiments.ExperimentRunner` with an on-disk cache, so the
whole harness costs one analysis pass regardless of how many tables are
regenerated.

Environment knobs (all optional):

``REPRO_BENCH_NPROCS``
    Number of simulated processors (default 32, like the paper).
``REPRO_BENCH_SCALE``
    Problem scale factor (default 0.6; 1.0 gives the largest analogues).
``REPRO_BENCH_CACHE``
    Analysis cache directory (default ``.repro_cache`` inside the repo).
``REPRO_BENCH_JOBS``
    Worker processes for the table sweeps (default 1 = serial; the pipeline
    engine shares analysis artifacts between workers through the cache).
"""

from __future__ import annotations

import pytest

from _bench_utils import BENCH_CACHE, BENCH_JOBS, BENCH_NPROCS, BENCH_SCALE  # noqa: F401  (re-exported)

from repro.experiments import ExperimentRunner


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """The shared experiment runner used by every table benchmark."""
    return ExperimentRunner(
        nprocs=BENCH_NPROCS, scale=BENCH_SCALE, cache_dir=BENCH_CACHE, jobs=BENCH_JOBS
    )
