"""Shared configuration of the benchmark harness.

Each ``bench_table*.py`` regenerates one table of the paper and each entry of
``bench_figures.py`` one illustrative figure.  The heavy lifting (analysis of
8 problems × 4 orderings) is shared through a session-scoped
:class:`repro.experiments.ExperimentRunner` with an on-disk cache, so the
whole harness costs one analysis pass regardless of how many tables are
regenerated.

The configuration knobs come from :class:`repro.bench.BenchEnv`
(``REPRO_BENCH_NPROCS`` / ``_SCALE`` / ``_CACHE`` / ``_JOBS`` /
``_PIPELINE_JOBS`` / ``_NO_SPEEDUP_CHECK``), validated at import time — see
``docs/benchmarks.md``.  The same suites also run without pytest through
``python -m repro bench run``.
"""

from __future__ import annotations

import pytest

from _bench_utils import ENV, BENCH_CACHE, BENCH_JOBS, BENCH_NPROCS, BENCH_SCALE  # noqa: F401  (re-exported)

from repro.bench.suites import SUITES
from repro.experiments import ExperimentRunner


@pytest.fixture(scope="session")
def runner() -> ExperimentRunner:
    """The shared experiment runner used by every table benchmark."""
    return ExperimentRunner(
        nprocs=BENCH_NPROCS, scale=BENCH_SCALE, cache_dir=BENCH_CACHE, jobs=BENCH_JOBS
    )


@pytest.fixture(scope="session")
def tables_suite(runner):
    """The ``tables`` bench suite, sharing the session runner (and its cache)."""
    instance = SUITES.get("tables")(ENV, runner=runner)
    yield instance
    instance.close()
