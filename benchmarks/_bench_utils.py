"""Helpers shared by the benchmark modules (kept out of conftest.py so that
regular ``import`` statements resolve unambiguously).

The configuration now lives in :class:`repro.bench.BenchEnv`, which validates
every ``REPRO_BENCH_*`` variable up front (``REPRO_BENCH_SCALE=0`` is a clear
error, not 30 empty problems); the historical module-level constants are kept
as views of it so existing imports keep working.
"""

from __future__ import annotations

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

from repro.bench import BenchEnv  # noqa: E402  (needs the sys.path fix above)

#: the validated benchmark environment every bench module shares.
ENV = BenchEnv.from_environ()

#: number of simulated processors used by the table benchmarks (paper: 32)
BENCH_NPROCS = ENV.nprocs
#: problem scale factor (1.0 = largest analogues)
BENCH_SCALE = ENV.scale
#: analysis cache shared by all benchmarks
BENCH_CACHE = ENV.cache
#: worker processes used by the shared runner's sweeps (1 = serial)
BENCH_JOBS = ENV.jobs


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Table regenerations take seconds to minutes; multiple rounds would only
    re-measure the analysis cache, so a single round is both faster and more
    honest.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)


def run_prepared(benchmark, prepared):
    """Time one :class:`repro.bench.PreparedCase` under pytest-benchmark,
    honouring the case's own repeat/warmup protocol, and return its metrics."""
    return benchmark.pedantic(
        prepared.fn,
        rounds=prepared.repeats,
        iterations=1,
        warmup_rounds=prepared.warmup,
    )
