"""Helpers shared by the benchmark modules (kept out of conftest.py so that
regular ``import`` statements resolve unambiguously)."""

from __future__ import annotations

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src")
if _SRC not in sys.path:
    sys.path.insert(0, _SRC)

#: number of simulated processors used by the table benchmarks (paper: 32)
BENCH_NPROCS = int(os.environ.get("REPRO_BENCH_NPROCS", "32"))
#: problem scale factor (1.0 = largest analogues)
BENCH_SCALE = float(os.environ.get("REPRO_BENCH_SCALE", "0.6"))
#: analysis cache shared by all benchmarks
BENCH_CACHE = os.environ.get(
    "REPRO_BENCH_CACHE",
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), ".repro_cache"),
)
#: worker processes used by the shared runner's sweeps (1 = serial)
BENCH_JOBS = int(os.environ.get("REPRO_BENCH_JOBS", "1"))


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing.

    Table regenerations take seconds to minutes; multiple rounds would only
    re-measure the analysis cache, so a single round is both faster and more
    honest.
    """
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1, warmup_rounds=0)
