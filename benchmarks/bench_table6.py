"""Benchmark regenerating Table 6.

Loss of (simulated) factorization time between the original MUMPS strategy
and the memory-optimised configuration (memory-based dynamic strategies plus
static splitting) for three large test problems.

Expected shape (paper): the memory optimisation costs some time, but the
factor stays moderate (the paper reports between -4.5% and 94% with most
entries below 50%).
"""

import numpy as np
from _bench_utils import run_once

from repro.experiments import tables


def bench_table6(runner):
    rows = tables.table6(runner)
    print()
    print(
        tables.format_table(
            rows,
            title="TABLE 6 — loss of factorization time (%) of the memory-optimised strategy",
        )
    )
    return rows


def test_table6(benchmark, runner):
    rows = run_once(benchmark, bench_table6, runner)
    assert set(rows) == {"SHIP_003", "PRE2", "ULTRASOUND3"}
    values = [v for row in rows.values() for v in row.values()]
    # time must not explode: the paper's worst case is roughly a factor 2
    assert max(values) < 400.0
