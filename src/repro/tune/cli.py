"""The ``repro tune`` verb: search the strategy space, emit a leaderboard.

Examples
--------
Race ``hybrid``'s alpha over one problem with successive halving, memoizing
every evaluation in a result store (interrupt it anywhere — the rerun
recomputes only the missing cases and produces a byte-identical artifact)::

    python -m repro tune --space 'hybrid(alpha=0.0..1.0)' --problems XENON2 \\
        --searcher 'halving(samples=8,eta=2,rungs=3)' --seed 7 \\
        --store .repro_tune --scale 0.2

Exhaustive grid over alpha × use_predictions, ranked by a weighted
memory/makespan trade-off::

    python -m repro tune --space 'hybrid(alpha=0.0..1.0,use_predictions=true|false)' \\
        --problems XENON2,PRE2 --searcher 'grid(resolution=5)' \\
        --objective 'weighted(memory=1.0,time=0.25)' --format json

See ``docs/tuning.md`` for the search-space syntax and the rung/fidelity
model.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

import repro
from repro.tune.driver import Tuner, TuneSpec
from repro.tune.leaderboard import DEFAULT_LEADERBOARD_NAME
from repro.tune.objective import OBJECTIVES
from repro.tune.search import SEARCHERS
from repro.tune.space import parse_space

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro tune",
        description="Search the strategy space for the best configuration",
    )
    parser.add_argument(
        "--space", required=True,
        help="search space, e.g. 'hybrid(alpha=0.0..1.0,use_predictions=true|false)'",
    )
    parser.add_argument(
        "--problems", required=True,
        help="comma-separated problem names the objective is aggregated over",
    )
    parser.add_argument(
        "--orderings", default="metis",
        help="comma-separated ordering specs (default: metis)",
    )
    parser.add_argument(
        "--searcher", default="halving",
        help=f"searcher spec; one of {', '.join(sorted(SEARCHERS))} (default: halving)",
    )
    parser.add_argument(
        "--objective", default="peak-memory",
        help=f"objective spec; one of {', '.join(sorted(OBJECTIVES))} (default: peak-memory)",
    )
    parser.add_argument("--seed", type=int, default=0, help="search rng seed (default 0)")
    parser.add_argument("--nprocs", type=int, default=None, help="simulated-processor override")
    parser.add_argument("--scale", type=float, default=None, help="full-fidelity problem scale")
    parser.add_argument("--jobs", type=int, default=None, help="sweep worker processes (serial path)")
    parser.add_argument(
        "--split", default=None,
        help="comma-separated split axis for the space, e.g. 'false,true' (default: false)",
    )
    parser.add_argument(
        "--split-threshold", default=None, metavar="DOMAIN",
        help="split-threshold domain, e.g. '200..800' or '300|500'",
    )
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="ResultStore directory memoizing every evaluation (makes the tune resumable)",
    )
    parser.add_argument(
        "--leaderboard", default=None, metavar="PATH",
        help=f"leaderboard artifact path (default: <store>/{DEFAULT_LEADERBOARD_NAME} when --store is given)",
    )
    parser.add_argument(
        "--no-batch", action="store_true",
        help="run rung sweeps case-by-case instead of per-analysis batches",
    )
    parser.add_argument("--cache", default=None, metavar="DIR", help="artifact cache directory")
    parser.add_argument("--format", choices=("md", "json"), default="md", help="stdout format (default md)")
    parser.add_argument("--quiet", action="store_true", help="disable rung progress lines on stderr")
    return parser


def _parse_split(text: str | None, parser: argparse.ArgumentParser) -> tuple[bool, ...]:
    if text is None:
        return (False,)
    values = []
    for item in text.split(","):
        item = item.strip().lower()
        if item in ("true", "1", "yes"):
            values.append(True)
        elif item in ("false", "0", "no"):
            values.append(False)
        elif item:
            parser.error(f"--split expects comma-separated booleans, got {item!r}")
    if not values:
        parser.error("--split needs at least one value")
    return tuple(dict.fromkeys(values))


def _render_board(board, fmt: str) -> str:
    if fmt == "json":
        return json.dumps(board.to_dict(), indent=2, sort_keys=True)
    lines = [
        "| rank | configuration | rung | score | 90% CI |",
        "| ---- | ------------- | ---- | ----- | ------ |",
    ]
    for e in board.entries:
        config = e.key.replace("|", "\\|")
        lines.append(
            f"| {e.rank} | {config} | {e.rung} | {e.score:.6g} "
            f"| [{e.ci_low:.6g}, {e.ci_high:.6g}] |"
        )
    lines.append("")
    lines.append(f"{board.evaluations} case evaluations across {len(board.rungs)} rung(s)")
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    problems = [p.strip().upper() for p in args.problems.split(",") if p.strip()]
    if not problems:
        parser.error("--problems needs at least one problem")
    orderings = [o.strip() for o in args.orderings.split(",") if o.strip()]

    try:
        space = parse_space(
            args.space,
            split=_parse_split(args.split, parser),
            split_threshold=args.split_threshold,
        )
        spec = TuneSpec(
            space=space,
            problems=problems,
            orderings=orderings,
            searcher=args.searcher,
            objective=args.objective,
            seed=args.seed,
            nprocs=args.nprocs,
            scale=args.scale,
        )
    except (ValueError, KeyError) as exc:
        parser.error(str(exc))

    leaderboard_path = args.leaderboard
    if leaderboard_path is None and args.store is not None:
        leaderboard_path = str(Path(args.store) / DEFAULT_LEADERBOARD_NAME)

    def progress(done: int, total: int) -> None:
        if not args.quiet:
            print(f"[tune] {done}/{total} case evaluations", file=sys.stderr)

    session_kwargs = {}
    if args.nprocs is not None:
        session_kwargs["nprocs"] = args.nprocs
    if args.scale is not None:
        session_kwargs["scale"] = args.scale
    if args.cache is not None:
        session_kwargs["cache_dir"] = args.cache
    if args.jobs is not None:
        session_kwargs["jobs"] = args.jobs

    with repro.open_session(**session_kwargs) as session:
        tuner = Tuner(
            session,
            spec,
            store=args.store,
            batch=not args.no_batch,
            jobs=args.jobs,
            progress=progress,
        )
        board = tuner.run()

    if leaderboard_path is not None:
        saved = board.save(leaderboard_path)
        if not args.quiet:
            print(f"[tune] leaderboard written to {saved}", file=sys.stderr)

    print(_render_board(board, args.format))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
