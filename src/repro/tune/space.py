"""Declarative search spaces over strategy parameters and case knobs.

A :class:`SearchSpace` names one strategy preset and, for each tunable
parameter, a *domain* — a float range (:class:`Range`), an integer range
(:class:`IntRange`) or a categorical set (:class:`Choice`).  On top of the
strategy parameters it carries the two case-level knobs the scheduler
exposes: the ``split`` axis and an optional ``split_threshold`` domain.

Domains have a textual mini-language, composing with the spec grammar of
:mod:`repro.specs`::

    hybrid(alpha=0.0..1.0)                       float range, uniform
    hybrid(alpha=0.001..1.0:log)                 float range, log-uniform
    memory-full()                                no tunable parameters
    hybrid(alpha=0.25|0.5|0.75,use_predictions=true|false)   choices
    metis(leaf_size=8..64)                       integer range (both ends int)

Sampling is *explicit-seed deterministic*: the same ``numpy`` generator
state always draws the same configuration, and every sample renders through
:class:`~repro.specs.ParamSpec` — so a drawn ``alpha`` of
``0.30000000000000004`` canonicalises to the spec string ``hybrid(alpha=0.3)``
and shares cache/store keys with the hand-written spelling.
"""

from __future__ import annotations

import itertools
import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Mapping, Sequence

import numpy as np

from repro.specs import (
    ParamSpec,
    ParamValue,
    _parse_value,
    _split_top_level,
    canonical_float,
    format_value,
    parse_spec,
)

__all__ = [
    "Domain",
    "Range",
    "IntRange",
    "Choice",
    "parse_domain",
    "parse_space",
    "TuneConfig",
    "SearchSpace",
]


# --------------------------------------------------------------------------- #
# domains
# --------------------------------------------------------------------------- #
class Domain(ABC):
    """One parameter's value set: sampleable, grid-enumerable, serializable."""

    @abstractmethod
    def sample(self, rng: np.random.Generator) -> ParamValue:
        """Draw one value (consumes exactly one rng call — order matters)."""

    @abstractmethod
    def grid(self, resolution: int) -> tuple[ParamValue, ...]:
        """``resolution`` representative values for exhaustive search."""

    @abstractmethod
    def spec(self) -> str:
        """Canonical textual form; :func:`parse_domain` round-trips it."""

    def __str__(self) -> str:
        return self.spec()


@dataclass(frozen=True)
class Range(Domain):
    """A continuous float range ``[lo, hi]``, uniform or log-uniform."""

    lo: float
    hi: float
    log: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "lo", float(self.lo))
        object.__setattr__(self, "hi", float(self.hi))
        if not self.lo < self.hi:
            raise ValueError(f"range needs lo < hi, got {self.lo!r}..{self.hi!r}")
        if self.log and self.lo <= 0:
            raise ValueError(f"log range needs lo > 0, got {self.lo!r}")

    def sample(self, rng: np.random.Generator) -> float:
        u = float(rng.uniform())
        if self.log:
            return canonical_float(
                math.exp(math.log(self.lo) + u * (math.log(self.hi) - math.log(self.lo)))
            )
        return canonical_float(self.lo + u * (self.hi - self.lo))

    def grid(self, resolution: int) -> tuple[float, ...]:
        if resolution < 1:
            raise ValueError(f"grid resolution must be >= 1, got {resolution}")
        if resolution == 1:
            mid = math.sqrt(self.lo * self.hi) if self.log else (self.lo + self.hi) / 2.0
            return (canonical_float(mid),)
        points = (
            np.geomspace(self.lo, self.hi, resolution)
            if self.log
            else np.linspace(self.lo, self.hi, resolution)
        )
        return tuple(canonical_float(float(p)) for p in points)

    def spec(self) -> str:
        suffix = ":log" if self.log else ""
        return f"{format_value(self.lo)}..{format_value(self.hi)}{suffix}"


@dataclass(frozen=True)
class IntRange(Domain):
    """An inclusive integer range ``[lo, hi]``, uniform or log-uniform."""

    lo: int
    hi: int
    log: bool = False

    def __post_init__(self) -> None:
        object.__setattr__(self, "lo", int(self.lo))
        object.__setattr__(self, "hi", int(self.hi))
        if not self.lo < self.hi:
            raise ValueError(f"range needs lo < hi, got {self.lo!r}..{self.hi!r}")
        if self.log and self.lo <= 0:
            raise ValueError(f"log range needs lo > 0, got {self.lo!r}")

    def sample(self, rng: np.random.Generator) -> int:
        u = float(rng.uniform())
        if self.log:
            value = int(
                round(
                    math.exp(
                        math.log(self.lo) + u * (math.log(self.hi) - math.log(self.lo))
                    )
                )
            )
            return min(max(value, self.lo), self.hi)
        # uniform over the hi - lo + 1 integers, endpoints included
        return min(self.lo + int(u * (self.hi - self.lo + 1)), self.hi)

    def grid(self, resolution: int) -> tuple[int, ...]:
        if resolution < 1:
            raise ValueError(f"grid resolution must be >= 1, got {resolution}")
        if resolution == 1:
            mid = math.sqrt(self.lo * self.hi) if self.log else (self.lo + self.hi) / 2.0
            return (min(max(int(round(mid)), self.lo), self.hi),)
        points = (
            np.geomspace(self.lo, self.hi, resolution)
            if self.log
            else np.linspace(self.lo, self.hi, resolution)
        )
        values: list[int] = []
        for p in points:
            value = min(max(int(round(float(p))), self.lo), self.hi)
            if value not in values:  # rounding can collapse neighbours
                values.append(value)
        return tuple(values)

    def spec(self) -> str:
        suffix = ":log" if self.log else ""
        return f"{self.lo}..{self.hi}{suffix}"


@dataclass(frozen=True)
class Choice(Domain):
    """An explicit, ordered set of values (categorical; a single value pins it)."""

    values: tuple[ParamValue, ...]

    def __post_init__(self) -> None:
        values = tuple(self.values)
        if not values:
            raise ValueError("a choice domain needs at least one value")
        if len(set(values)) != len(values):
            raise ValueError(f"duplicate values in choice domain {values!r}")
        object.__setattr__(self, "values", values)

    def sample(self, rng: np.random.Generator) -> ParamValue:
        u = float(rng.uniform())
        return self.values[min(int(u * len(self.values)), len(self.values) - 1)]

    def grid(self, resolution: int) -> tuple[ParamValue, ...]:
        return self.values  # categorical: resolution does not subsample

    def spec(self) -> str:
        return "|".join(format_value(v) for v in self.values)


def parse_domain(text: str | Domain) -> Domain:
    """Parse one domain spec (``"0.0..1.0"``, ``"8..64:log"``, ``"a|b"``).

    Idempotent on :class:`Domain` inputs; a single plain value becomes a
    one-element :class:`Choice` (a pinned parameter).
    """
    if isinstance(text, Domain):
        return text
    text = str(text).strip()
    if not text:
        raise ValueError("empty domain")
    parts = [part.strip() for part in _split_top_level(text, sep="|")]
    if len(parts) > 1:
        return Choice(tuple(_parse_value(part) for part in parts))
    body, colon, flag = text.partition(":")
    if colon and flag.strip().lower() != "log":
        raise ValueError(f"unknown domain modifier {flag.strip()!r} in {text!r}; expected 'log'")
    log = bool(colon)
    lo_text, dots, hi_text = body.partition("..")
    if not dots:
        if log:
            raise ValueError(f"':log' only applies to ranges, got {text!r}")
        return Choice((_parse_value(body),))
    lo, hi = _parse_value(lo_text), _parse_value(hi_text)
    for bound in (lo, hi):
        if isinstance(bound, bool) or not isinstance(bound, (int, float)):
            raise ValueError(f"range bounds must be numbers, got {bound!r} in {text!r}")
    if isinstance(lo, int) and isinstance(hi, int):
        return IntRange(lo, hi, log=log)
    return Range(float(lo), float(hi), log=log)


# --------------------------------------------------------------------------- #
# configurations: one sampled/enumerated point of the space
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class TuneConfig:
    """One concrete configuration: a canonical strategy spec plus case knobs.

    ``strategy`` is already the canonical mini-language string (rendered
    through :class:`~repro.specs.ParamSpec`, so sampled float noise is gone)
    — it can go straight into a :class:`~repro.specs.SweepSpec` axis and
    collides with hand-written spellings of the same point.
    """

    strategy: str
    split: bool = False
    split_threshold: int | None = None

    @property
    def key(self) -> str:
        """Stable identity used for dedup, promotion tie-breaks and reports."""
        parts = [self.strategy, f"split={format_value(self.split)}"]
        if self.split_threshold is not None:
            parts.append(f"split_threshold={self.split_threshold}")
        return "|".join(parts)

    def to_dict(self) -> dict[str, object]:
        return {
            "strategy": self.strategy,
            "split": self.split,
            "split_threshold": self.split_threshold,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TuneConfig":
        return cls(
            strategy=str(parse_spec(str(data["strategy"]))),
            split=bool(data.get("split", False)),
            split_threshold=(
                None
                if data.get("split_threshold") is None
                else int(data["split_threshold"])  # type: ignore[arg-type]
            ),
        )


# --------------------------------------------------------------------------- #
# the search space
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class SearchSpace:
    """A strategy preset with tunable parameter domains and case knobs.

    ``strategy`` must name a registered preset and every parameter key must
    be one the preset declares (validated against
    :data:`repro.scheduling.STRATEGIES`, so ``hybrid(aplha=...)`` fails at
    construction, not mid-search).  ``split`` is always enumerated — it is a
    two-point axis at most — while ``split_threshold``, when given, is a
    sampled/gridded domain like any strategy parameter.
    """

    strategy: str
    params: tuple[tuple[str, Domain], ...] = ()
    split: tuple[bool, ...] = (False,)
    split_threshold: Domain | None = field(default=None)

    def __post_init__(self) -> None:
        from repro.scheduling import STRATEGIES
        from repro.registry import validate_params

        entry = STRATEGIES.entry(str(self.strategy))  # did-you-mean on a miss
        object.__setattr__(self, "strategy", entry.name)
        params = tuple(sorted((str(k), parse_domain(v)) for k, v in self.params))
        validate_params("strategy", entry.name, entry.params, dict(params))
        object.__setattr__(self, "params", params)
        split = tuple(self.split) if not isinstance(self.split, bool) else (self.split,)
        if not split or any(not isinstance(s, bool) for s in split):
            raise ValueError(f"split axis must be non-empty booleans, got {self.split!r}")
        if len(set(split)) != len(split):
            raise ValueError(f"duplicate split values {split!r}")
        object.__setattr__(self, "split", split)
        if self.split_threshold is not None:
            object.__setattr__(self, "split_threshold", parse_domain(self.split_threshold))

    # ------------------------------------------------------------------ #
    def canonical(self) -> str:
        """Canonical space string (the strategy part only; knobs are fields)."""
        if not self.params:
            return self.strategy
        inner = ",".join(f"{k}={domain.spec()}" for k, domain in self.params)
        return f"{self.strategy}({inner})"

    def __str__(self) -> str:
        return self.canonical()

    def _render(self, values: Mapping[str, ParamValue]) -> str:
        """A sampled parameter dict as the canonical strategy spec string."""
        return ParamSpec(self.strategy, tuple(values.items())).canonical()

    def sample(self, rng: np.random.Generator) -> TuneConfig:
        """Draw one configuration (domains consumed in sorted-key order)."""
        values = {key: domain.sample(rng) for key, domain in self.params}
        split = self.split[0]
        if len(self.split) > 1:
            split = Choice(self.split).sample(rng)
        threshold = None
        if self.split_threshold is not None:
            threshold = int(self.split_threshold.sample(rng))
        return TuneConfig(
            strategy=self._render(values), split=bool(split), split_threshold=threshold
        )

    def grid(self, resolution: int = 3) -> list[TuneConfig]:
        """The exhaustive cartesian grid at ``resolution`` points per range."""
        axes: list[tuple[ParamValue, ...]] = [
            domain.grid(resolution) for _, domain in self.params
        ]
        keys = [key for key, _ in self.params]
        threshold_axis: tuple[int | None, ...] = (None,)
        if self.split_threshold is not None:
            threshold_axis = tuple(int(v) for v in self.split_threshold.grid(resolution))
        configs = []
        for combo in itertools.product(*axes):
            strategy = self._render(dict(zip(keys, combo)))
            for split in self.split:
                for threshold in threshold_axis:
                    configs.append(
                        TuneConfig(strategy=strategy, split=split, split_threshold=threshold)
                    )
        return configs

    def grid_size(self, resolution: int = 3) -> int:
        size = len(self.split)
        for _, domain in self.params:
            size *= len(domain.grid(resolution))
        if self.split_threshold is not None:
            size *= len(self.split_threshold.grid(resolution))
        return size

    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, object]:
        return {
            "strategy": self.strategy,
            "params": {key: domain.spec() for key, domain in self.params},
            "split": list(self.split),
            "split_threshold": (
                None if self.split_threshold is None else self.split_threshold.spec()
            ),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SearchSpace":
        params = data.get("params") or {}
        if not isinstance(params, Mapping):
            raise ValueError(f"SearchSpace params must be a mapping, got {params!r}")
        split = data.get("split", [False])
        if not isinstance(split, Sequence) or isinstance(split, (str, bytes)):
            raise ValueError(f"SearchSpace split must be a list of booleans, got {split!r}")
        threshold = data.get("split_threshold")
        return cls(
            strategy=str(data["strategy"]),
            params=tuple((str(k), parse_domain(str(v))) for k, v in params.items()),
            split=tuple(bool(s) for s in split),
            split_threshold=None if threshold is None else parse_domain(str(threshold)),
        )


def parse_space(
    text: str | SearchSpace,
    *,
    split: Sequence[bool] | bool = (False,),
    split_threshold: str | Domain | None = None,
) -> SearchSpace:
    """Parse ``"name(param=domain, ...)"`` into a :class:`SearchSpace`.

    The strategy-spec grammar of :func:`repro.specs.parse_spec` with domain
    values — ``parse_space("hybrid(alpha=0.0..1.0,use_predictions=true|false)")``.
    Idempotent on :class:`SearchSpace` inputs (the knob arguments are then
    ignored).  The ``split``/``split_threshold`` knobs arrive as keywords
    because they are case-level axes, not strategy parameters.
    """
    if isinstance(text, SearchSpace):
        return text
    from repro.specs import _SPEC_RE, _KEY_RE  # reuse the one grammar

    match = _SPEC_RE.match(str(text))
    if match is None:
        raise ValueError(
            f"cannot parse search space {text!r}; expected 'name' or 'name(key=domain, ...)'"
        )
    name = match.group("name")
    raw = match.group("params")
    params: dict[str, Domain] = {}
    for item in _split_top_level(raw) if raw else ():
        item = item.strip()
        if not item:
            continue
        key, eq, value = item.partition("=")
        key = key.strip()
        if not eq:
            raise ValueError(f"parameter {item!r} in space {text!r} must be 'key=domain'")
        if not _KEY_RE.match(key):
            raise ValueError(f"bad parameter name {key!r} in space {text!r}")
        if key in params:
            raise ValueError(f"duplicate parameter {key!r} in space {text!r}")
        params[key] = parse_domain(value)
    return SearchSpace(
        strategy=name,
        params=tuple(params.items()),
        split=(split,) if isinstance(split, bool) else tuple(split),
        split_threshold=None if split_threshold is None else parse_domain(split_threshold),
    )
