"""The leaderboard artifact: ranked configurations, persisted byte-stably.

A :class:`Leaderboard` is the durable output of one tune run — the ranked
configurations with their per-problem scores and bootstrap CIs, plus enough
header (the full :class:`TuneSpec` dict, the rung ladder) to re-run the
search that produced it.  It is schema-versioned through
:mod:`repro.serialize` (kind ``"leaderboard"``) and encoded with
:func:`canonical_json`, and it deliberately carries **no wall-clock fields
and no computed/skipped counters**: a fresh run and an interrupted-and-
resumed run of the same seed must produce byte-identical files (that
identity is asserted by tests and by the CI ``tune-smoke`` job).
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional, Sequence

from repro.serialize import canonical_json, decode_fields, with_schema

__all__ = ["LeaderboardEntry", "Leaderboard", "DEFAULT_LEADERBOARD_NAME"]

#: conventional file name next to the tune result store.
DEFAULT_LEADERBOARD_NAME = "leaderboard.json"


@dataclass(frozen=True)
class LeaderboardEntry:
    """One ranked configuration and its scores."""

    rank: int
    key: str
    strategy: str
    split: bool
    split_threshold: Optional[int]
    #: deepest fidelity rung this config was evaluated at.
    rung: int
    #: aggregated objective score at that rung (lower is better).
    score: float
    #: percentile-bootstrap CI over the per-problem scores.
    ci_low: float
    ci_high: float
    #: per-problem scores at the deepest rung (problem → score).
    per_problem: Mapping[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        return {
            "rank": int(self.rank),
            "key": self.key,
            "strategy": self.strategy,
            "split": bool(self.split),
            "split_threshold": self.split_threshold,
            "rung": int(self.rung),
            "score": float(self.score),
            "ci_low": float(self.ci_low),
            "ci_high": float(self.ci_high),
            "per_problem": {k: float(v) for k, v in sorted(self.per_problem.items())},
        }

    _FIELDS = (
        "rank",
        "key",
        "strategy",
        "split",
        "split_threshold",
        "rung",
        "score",
        "ci_low",
        "ci_high",
        "per_problem",
    )

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "LeaderboardEntry":
        payload = decode_fields("leaderboard", dict(data), cls._FIELDS, label="LeaderboardEntry")
        payload.pop("schema", None)
        return cls(**payload)  # type: ignore[arg-type]


@dataclass(frozen=True)
class Leaderboard:
    """A full tune outcome: spec header, rung ladder, ranked entries."""

    #: the :class:`~repro.tune.driver.TuneSpec` dict that produced this board.
    spec: Mapping[str, object]
    #: rung ladder: ``{"index", "scale_fraction", "subset_fraction"}`` dicts.
    rungs: Sequence[Mapping[str, object]]
    entries: Sequence[LeaderboardEntry]
    #: total logical case evaluations (identical for fresh and resumed runs).
    evaluations: int

    @property
    def best(self) -> Optional[LeaderboardEntry]:
        return self.entries[0] if self.entries else None

    def to_dict(self) -> dict[str, object]:
        return with_schema(
            "leaderboard",
            {
                "spec": dict(self.spec),
                "rungs": [dict(r) for r in self.rungs],
                "entries": [e.to_dict() for e in self.entries],
                "evaluations": int(self.evaluations),
            },
        )

    def to_bytes(self) -> bytes:
        """The canonical byte encoding (what :meth:`save` writes)."""
        return canonical_json(self.to_dict())

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Leaderboard":
        payload = decode_fields(
            "leaderboard",
            dict(data),
            ("spec", "rungs", "entries", "evaluations"),
            label="Leaderboard",
        )
        return cls(
            spec=dict(payload.get("spec", {})),  # type: ignore[arg-type]
            rungs=[dict(r) for r in payload.get("rungs", ())],  # type: ignore[union-attr]
            entries=[
                LeaderboardEntry.from_dict(e)  # type: ignore[arg-type]
                for e in payload.get("entries", ())  # type: ignore[union-attr]
            ],
            evaluations=int(payload.get("evaluations", 0)),  # type: ignore[arg-type]
        )

    def save(self, path: "str | os.PathLike") -> Path:
        """Atomically write the canonical encoding (write + rename)."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(path.name + ".tmp")
        tmp.write_bytes(self.to_bytes())
        os.replace(tmp, path)
        return path

    @classmethod
    def load(cls, path: "str | os.PathLike") -> "Leaderboard":
        data = json.loads(Path(path).read_text())
        if not isinstance(data, dict):
            raise ValueError(f"leaderboard file {path} does not hold a JSON object")
        return cls.from_dict(data)
