"""Objectives: what "better" means when ranking tuned configurations.

An objective maps one :class:`CaseResult` to a scalar score (lower is
better), and the tuner aggregates per-case scores into a per-problem and an
overall score.  Objectives resolve through the same spec mini-language as
strategies and searchers (``"weighted(memory=1.0,time=0.25)"``), so a
leaderboard records exactly which trade-off it ranked by.

Uncertainty is reported as a deterministic bootstrap confidence interval
over the per-problem scores: the resampling rng is seeded from the caller's
tune seed mixed (via CRC-32, never the randomized builtin ``hash``) with a
stable label, so the same tune run always reports the same CI bounds —
a requirement for byte-identical leaderboard artifacts.
"""

from __future__ import annotations

import math
import zlib
from abc import ABC, abstractmethod
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.registry import Registry
from repro.specs import canonical_float

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pipeline.stage import CaseResult

__all__ = [
    "Objective",
    "MakespanObjective",
    "PeakMemoryObjective",
    "AvgMemoryObjective",
    "WeightedObjective",
    "RobustnessObjective",
    "OBJECTIVES",
    "make_objective",
    "aggregate",
    "bootstrap_ci",
    "mixed_seed",
]


class Objective(ABC):
    """Scores one case result; lower is better."""

    name: str = ""

    @abstractmethod
    def score(self, result: "CaseResult") -> float:
        """The scalar score of one case (lower is better)."""


class MakespanObjective(Objective):
    """Simulated makespan (``total_time``)."""

    name = "makespan"

    def score(self, result: "CaseResult") -> float:
        return float(result.total_time)


class PeakMemoryObjective(Objective):
    """Worst per-process stack peak (``max_peak_stack``)."""

    name = "peak-memory"

    def score(self, result: "CaseResult") -> float:
        return float(result.max_peak_stack)


class AvgMemoryObjective(Objective):
    """Mean per-process stack peak (``avg_peak_stack``)."""

    name = "avg-memory"

    def score(self, result: "CaseResult") -> float:
        return float(result.avg_peak_stack)


class WeightedObjective(Objective):
    """Weighted geometric combination of memory and makespan.

    The score is ``memory*log(max_peak_stack) + time*log(total_time)`` —
    combining in log space keeps the trade-off scale-free, so a problem
    whose absolute memory numbers dwarf its makespan does not drown out
    the time term (and vice versa).
    """

    name = "weighted"

    def __init__(self, memory: float = 1.0, time: float = 1.0) -> None:
        memory = float(memory)
        time = float(time)
        if memory < 0 or time < 0 or memory + time <= 0:
            raise ValueError(
                f"weighted objective needs non-negative weights with a positive "
                f"sum, got memory={memory}, time={time}"
            )
        self.memory = memory
        self.time = time

    def score(self, result: "CaseResult") -> float:
        score = 0.0
        if self.memory:
            score += self.memory * math.log(max(float(result.max_peak_stack), 1e-300))
        if self.time:
            score += self.time * math.log(max(float(result.total_time), 1e-300))
        return score


class RobustnessObjective(Objective):
    """Degradation under injected faults (see :mod:`repro.faults`).

    Scores the fault-summary fields of a replicated faulted case: ``p95``
    (default) and ``p50`` rank by the tail / median makespan across
    replications, ``degradation`` by the p50 makespan relative to the
    unperturbed baseline.  Clean results fall back to ``total_time`` (for
    the makespan metrics) or the neutral 1.0 degradation, so a mixed
    leaderboard stays well-ordered.
    """

    name = "robustness"

    _METRICS = ("p95", "p50", "degradation")

    def __init__(self, metric: str = "p95") -> None:
        metric = str(metric)
        if metric not in self._METRICS:
            raise ValueError(
                f"robustness metric must be one of {self._METRICS}, got {metric!r}"
            )
        self.metric = metric

    def score(self, result: "CaseResult") -> float:
        if self.metric == "degradation":
            return float(getattr(result, "degradation", 1.0))
        value = float(getattr(result, f"makespan_{self.metric}", 0.0))
        # results stored before the fault layer carry 0.0 here — fall back
        # to the plain makespan so old rows still rank sensibly
        return value if value > 0.0 else float(result.total_time)


OBJECTIVES: Registry = Registry("objective")
OBJECTIVES.add(
    "makespan",
    MakespanObjective,
    description="simulated makespan (total_time)",
)
OBJECTIVES.add(
    "peak-memory",
    PeakMemoryObjective,
    description="worst per-process stack peak (max_peak_stack)",
)
OBJECTIVES.add(
    "avg-memory",
    AvgMemoryObjective,
    description="mean per-process stack peak (avg_peak_stack)",
)
OBJECTIVES.add(
    "weighted",
    WeightedObjective,
    description="weighted log-space combination of peak memory and makespan",
    params={"memory": 1.0, "time": 1.0},
)
OBJECTIVES.add(
    "robustness",
    RobustnessObjective,
    description="faulted makespan tail (p95/p50) or degradation vs clean",
    params={"metric": "p95"},
)


def make_objective(spec: str) -> Objective:
    """Build an objective from a mini-language spec (``"weighted(time=0.5)"``)."""
    entry, params = OBJECTIVES.resolve(spec)
    return entry.value(**params)  # type: ignore[operator]


def aggregate(scores: Sequence[float]) -> float:
    """Fold per-problem scores into one comparable scalar (the mean)."""
    if not scores:
        raise ValueError("cannot aggregate an empty score list")
    return canonical_float(float(np.mean(np.asarray(scores, dtype=np.float64))))


def mixed_seed(seed: int, label: str) -> int:
    """A per-label derived seed: ``seed`` mixed with CRC-32 of ``label``.

    ``hash()`` is randomized per interpreter run, so it can never feed a
    reproducible artifact; CRC-32 is stable across runs and platforms.
    """
    return (int(seed) & 0xFFFFFFFF) ^ zlib.crc32(label.encode("utf-8"))


def bootstrap_ci(
    scores: Sequence[float],
    *,
    seed: int,
    n_boot: int = 200,
    alpha: float = 0.1,
) -> tuple[float, float]:
    """Deterministic percentile-bootstrap CI over per-problem scores.

    Resamples the score vector ``n_boot`` times with replacement and returns
    the ``(alpha/2, 1-alpha/2)`` percentiles of the resampled means.  With a
    single score the interval degenerates to that score.
    """
    values = np.asarray(list(scores), dtype=np.float64)
    if values.size == 0:
        raise ValueError("cannot bootstrap an empty score list")
    if not 0.0 < alpha < 1.0:
        raise ValueError(f"alpha must be in (0, 1), got {alpha}")
    if values.size == 1:
        point = canonical_float(float(values[0]))
        return point, point
    rng = np.random.default_rng(seed)
    draws = rng.integers(0, values.size, size=(int(n_boot), values.size))
    means = values[draws].mean(axis=1)
    lo, hi = np.percentile(means, [50.0 * alpha, 100.0 - 50.0 * alpha])
    return canonical_float(float(lo)), canonical_float(float(hi))
