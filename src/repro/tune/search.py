"""Pluggable searchers: exhaustive grid, seeded random, successive halving.

A searcher decides *which* configurations are evaluated *at which fidelity*;
it never touches the engine.  The driver hands it an ``evaluate`` callback —
``evaluate(configs, rung) -> list[float]`` (aggregated objective scores,
lower is better) — and receives a :class:`SearchOutcome` recording every
trial.  The three built-ins, resolvable through the spec mini-language
(``"halving(samples=8,eta=2,rungs=3)"``):

``grid``
    Every point of :meth:`SearchSpace.grid` at full fidelity.  The
    reference: exact, exhaustive, and the baseline the racing searchers are
    proven cheaper than (via ``engine.stage_runs``).
``random``
    ``samples`` distinct seeded draws at full fidelity.
``halving``
    Successive halving: ``samples`` seeded draws race through ``rungs``
    fidelity levels (the ladder ``eta**-(rungs-1) … 1.0``); after each rung
    only the top ``1/eta`` fraction is promoted, so dominated
    configurations are early-stopped at cheap fidelities and only the
    survivors pay the full-fidelity price.  ``fidelity`` chooses what a
    rung scales down: the problem ``scale``, the problem *subset*, or both.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass, field
from typing import Callable, Sequence

import numpy as np

from repro.registry import Registry
from repro.tune.space import SearchSpace, TuneConfig

__all__ = [
    "Rung",
    "Trial",
    "SearchOutcome",
    "Searcher",
    "GridSearcher",
    "RandomSearcher",
    "HalvingSearcher",
    "SEARCHERS",
    "make_searcher",
]

#: what a halving rung reduces: the problem scale, the problem subset, or both.
FIDELITY_MODES = ("scale", "subset", "both")


@dataclass(frozen=True)
class Rung:
    """One fidelity level: scale multiplier and problem-subset fraction."""

    index: int
    #: multiplies the tuner's base problem scale (1.0 = full fidelity).
    scale_fraction: float = 1.0
    #: fraction of the problem set evaluated (1.0 = every problem).
    subset_fraction: float = 1.0

    @property
    def full(self) -> bool:
        return self.scale_fraction >= 1.0 and self.subset_fraction >= 1.0


@dataclass
class Trial:
    """One configuration's path through the rungs (evaluation order)."""

    config: TuneConfig
    #: ``(rung index, aggregated score)`` per evaluation, in rung order.
    scores: list[tuple[int, float]] = field(default_factory=list)

    @property
    def last_rung(self) -> int:
        return self.scores[-1][0] if self.scores else -1

    @property
    def last_score(self) -> float:
        return self.scores[-1][1] if self.scores else float("inf")


@dataclass
class SearchOutcome:
    """Everything a search did: the rung ladder and every trial's scores."""

    rungs: list[Rung]
    trials: list[Trial]

    @property
    def final_rung(self) -> int:
        return self.rungs[-1].index if self.rungs else -1

    def ranked(self) -> list[Trial]:
        """Trials best-first: deepest rung, then score, then config key.

        The config key tie-break keeps the ranking total and deterministic,
        which is what makes the leaderboard artifact byte-stable.
        """
        return sorted(
            self.trials, key=lambda t: (-t.last_rung, t.last_score, t.config.key)
        )


#: the driver-provided callback: aggregated scores, index-aligned with configs.
Evaluate = Callable[[Sequence[TuneConfig], Rung], "list[float]"]


class Searcher(ABC):
    """Strategy-search policy; subclasses drive the rung/evaluation loop."""

    name: str = ""

    @abstractmethod
    def run(self, space: SearchSpace, rng: np.random.Generator, evaluate: Evaluate) -> SearchOutcome:
        """Execute the search, calling ``evaluate`` once per rung."""

    @abstractmethod
    def plan(self, space: SearchSpace) -> list[tuple[int, float, float]]:
        """``(configs, scale_fraction, subset_fraction)`` per rung (an upper
        bound, without sampling — used for job progress totals)."""


def _distinct_samples(
    space: SearchSpace, rng: np.random.Generator, samples: int
) -> list[TuneConfig]:
    """``samples`` distinct draws (by config key); a small space may yield fewer.

    The rng consumption depends only on the seed and the space, so the same
    seed always produces the same configuration list.
    """
    configs: list[TuneConfig] = []
    seen: set[str] = set()
    for _ in range(samples * 20):
        if len(configs) >= samples:
            break
        config = space.sample(rng)
        if config.key not in seen:
            seen.add(config.key)
            configs.append(config)
    return configs


def _evaluated(configs: Sequence[TuneConfig], rung: Rung, evaluate: Evaluate) -> list[float]:
    scores = list(evaluate(configs, rung))
    if len(scores) != len(configs):
        raise ValueError(
            f"evaluate returned {len(scores)} scores for {len(configs)} configs"
        )
    return scores


@dataclass(frozen=True)
class GridSearcher(Searcher):
    """Exhaustive grid at full fidelity (``resolution`` points per range)."""

    resolution: int = 3
    name: str = "grid"

    def __post_init__(self) -> None:
        if self.resolution < 1:
            raise ValueError(f"resolution must be >= 1, got {self.resolution}")

    def run(self, space: SearchSpace, rng: np.random.Generator, evaluate: Evaluate) -> SearchOutcome:
        configs = space.grid(self.resolution)
        rung = Rung(index=0)
        scores = _evaluated(configs, rung, evaluate)
        trials = [
            Trial(config=c, scores=[(0, s)]) for c, s in zip(configs, scores)
        ]
        return SearchOutcome(rungs=[rung], trials=trials)

    def plan(self, space: SearchSpace) -> list[tuple[int, float, float]]:
        return [(space.grid_size(self.resolution), 1.0, 1.0)]


@dataclass(frozen=True)
class RandomSearcher(Searcher):
    """``samples`` distinct seeded draws, all at full fidelity."""

    samples: int = 8
    name: str = "random"

    def __post_init__(self) -> None:
        if self.samples < 1:
            raise ValueError(f"samples must be >= 1, got {self.samples}")

    def run(self, space: SearchSpace, rng: np.random.Generator, evaluate: Evaluate) -> SearchOutcome:
        configs = _distinct_samples(space, rng, self.samples)
        rung = Rung(index=0)
        scores = _evaluated(configs, rung, evaluate)
        trials = [Trial(config=c, scores=[(0, s)]) for c, s in zip(configs, scores)]
        return SearchOutcome(rungs=[rung], trials=trials)

    def plan(self, space: SearchSpace) -> list[tuple[int, float, float]]:
        return [(self.samples, 1.0, 1.0)]


@dataclass(frozen=True)
class HalvingSearcher(Searcher):
    """Successive halving / racing over a geometric fidelity ladder."""

    samples: int = 8
    eta: int = 2
    rungs: int = 3
    fidelity: str = "scale"
    name: str = "halving"

    def __post_init__(self) -> None:
        if self.samples < 1:
            raise ValueError(f"samples must be >= 1, got {self.samples}")
        if self.eta < 2:
            raise ValueError(f"eta must be >= 2, got {self.eta}")
        if self.rungs < 1:
            raise ValueError(f"rungs must be >= 1, got {self.rungs}")
        if self.fidelity not in FIDELITY_MODES:
            raise ValueError(
                f"fidelity must be one of {FIDELITY_MODES}, got {self.fidelity!r}"
            )

    def ladder(self) -> list[Rung]:
        """The rung ladder: fractions ``eta**-(rungs-1) … 1.0``."""
        out = []
        for k in range(self.rungs):
            fraction = float(self.eta) ** (k - (self.rungs - 1))
            out.append(
                Rung(
                    index=k,
                    scale_fraction=fraction if self.fidelity in ("scale", "both") else 1.0,
                    subset_fraction=fraction if self.fidelity in ("subset", "both") else 1.0,
                )
            )
        return out

    def _survivors(self, count: int) -> int:
        return max(1, math.ceil(count / self.eta))

    def run(self, space: SearchSpace, rng: np.random.Generator, evaluate: Evaluate) -> SearchOutcome:
        configs = _distinct_samples(space, rng, self.samples)
        trials = {config.key: Trial(config=config) for config in configs}
        active = configs
        rungs = self.ladder()
        for rung in rungs:
            scores = _evaluated(active, rung, evaluate)
            for config, score in zip(active, scores):
                trials[config.key].scores.append((rung.index, score))
            if rung.index == rungs[-1].index:
                break
            # promote the top 1/eta fraction; ties broken by config key so
            # the racing path is as deterministic as the exhaustive one
            ranked = sorted(zip(active, scores), key=lambda cs: (cs[1], cs[0].key))
            active = [config for config, _ in ranked[: self._survivors(len(active))]]
        return SearchOutcome(rungs=rungs, trials=[trials[c.key] for c in configs])

    def plan(self, space: SearchSpace) -> list[tuple[int, float, float]]:
        out = []
        count = self.samples
        for rung in self.ladder():
            out.append((count, rung.scale_fraction, rung.subset_fraction))
            count = self._survivors(count)
        return out


SEARCHERS: Registry = Registry("searcher")
SEARCHERS.add(
    "grid",
    GridSearcher,
    description="exhaustive cartesian grid at full fidelity",
    params={"resolution": 3},
)
SEARCHERS.add(
    "random",
    RandomSearcher,
    description="seeded random draws at full fidelity",
    params={"samples": 8},
)
SEARCHERS.add(
    "halving",
    HalvingSearcher,
    description="successive halving over a geometric fidelity ladder",
    params={"samples": 8, "eta": 2, "rungs": 3, "fidelity": "scale"},
)


def make_searcher(spec: str) -> Searcher:
    """Build a searcher from a mini-language spec (``"halving(eta=3)"``)."""
    entry, params = SEARCHERS.resolve(spec)
    return entry.value(**params)  # type: ignore[operator]


def canonical_searcher(spec: str) -> str:
    """The spec with defaults bound (mirrors ``canonical_strategy``)."""
    from repro.specs import ParamSpec

    entry, params = SEARCHERS.resolve(spec)
    return ParamSpec(entry.name, tuple(params.items())).with_defaults(entry.params).canonical()
