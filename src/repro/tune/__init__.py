"""Strategy auto-tuning: search spaces, racing searchers, leaderboards.

The subsystem the paper stops short of: instead of comparing a handful of
hand-picked strategies, ``repro.tune`` searches the parametric strategy
space (``hybrid(alpha=…)``, split thresholds, …) for the best configuration
under an explicit objective, with every evaluation memoized in a
:class:`~repro.results.ResultStore` so interrupted searches resume cheaply.

* :mod:`repro.tune.space` — declarative :class:`SearchSpace` over
  :class:`~repro.specs.ParamSpec` parameters, deterministic seeded sampling;
* :mod:`repro.tune.search` — grid / random / successive-halving searchers;
* :mod:`repro.tune.objective` — objectives over :class:`CaseResult` with
  deterministic bootstrap CIs;
* :mod:`repro.tune.driver` — the :class:`Tuner` evaluating rungs through
  ``Session.sweep(batch=True, store=…)``;
* :mod:`repro.tune.leaderboard` — the byte-stable ranked artifact.
"""

from repro.tune.driver import Tuner, TuneSpec, tune
from repro.tune.leaderboard import Leaderboard, LeaderboardEntry
from repro.tune.objective import OBJECTIVES, Objective, bootstrap_ci, make_objective
from repro.tune.search import (
    SEARCHERS,
    GridSearcher,
    HalvingSearcher,
    RandomSearcher,
    Rung,
    Searcher,
    SearchOutcome,
    Trial,
    make_searcher,
)
from repro.tune.space import (
    Choice,
    Domain,
    IntRange,
    Range,
    SearchSpace,
    TuneConfig,
    parse_domain,
    parse_space,
)

__all__ = [
    "Tuner",
    "TuneSpec",
    "tune",
    "Leaderboard",
    "LeaderboardEntry",
    "Objective",
    "OBJECTIVES",
    "make_objective",
    "bootstrap_ci",
    "Searcher",
    "SEARCHERS",
    "make_searcher",
    "GridSearcher",
    "RandomSearcher",
    "HalvingSearcher",
    "Rung",
    "Trial",
    "SearchOutcome",
    "SearchSpace",
    "TuneConfig",
    "Domain",
    "Range",
    "IntRange",
    "Choice",
    "parse_domain",
    "parse_space",
]
