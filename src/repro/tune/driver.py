"""The :class:`Tuner`: runs a search through ``Session.sweep`` memoized rungs.

The tuner is the piece that turns an abstract search (space + searcher +
objective) into engine work.  Each rung becomes one or more
:class:`~repro.specs.SweepSpec` grids — configurations sharing the same
``split``/``split_threshold`` knobs are grouped into a single grid so the
batched pipeline reuses one analysis per problem — and every grid runs
through :meth:`Session.sweep(batch=True, store=...)`.  Because each sampled
configuration renders to the *canonical* spec string, its store keys collide
with hand-written specs and with its own earlier evaluations: an interrupted
``repro tune`` re-run recomputes only the cases the store is missing (the
resume tests prove this via ``engine.stage_runs``).

Determinism contract: with the same :class:`TuneSpec` (including seed) the
tuner produces a byte-identical :class:`Leaderboard` artifact, fresh or
resumed — nothing downstream of the seeded rng and the deterministic engine
feeds the artifact (no wall-clock, no cache-hit counters).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Mapping, Optional, Sequence

import numpy as np

from repro.serialize import decode_fields, with_schema
from repro.specs import canonical_float
from repro.tune.leaderboard import Leaderboard, LeaderboardEntry
from repro.tune.objective import (
    Objective,
    aggregate,
    bootstrap_ci,
    make_objective,
    mixed_seed,
)
from repro.tune.search import Rung, Searcher, canonical_searcher, make_searcher
from repro.tune.space import SearchSpace, TuneConfig

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.results import ResultStore
    from repro.session import Session

__all__ = ["TuneSpec", "Tuner", "tune"]

#: progress hook: ``(evaluations_done, evaluations_total)`` after each rung.
ProgressHook = Callable[[int, int], None]


@dataclass(frozen=True)
class TuneSpec:
    """Everything that defines one tune run (and hence its leaderboard)."""

    space: SearchSpace
    problems: Sequence[str]
    orderings: Sequence[str] = ("metis",)
    searcher: str = "halving"
    objective: str = "peak-memory"
    seed: int = 0
    nprocs: Optional[int] = None
    scale: Optional[float] = None

    def __post_init__(self) -> None:
        if isinstance(self.space, str):
            from repro.tune.space import parse_space

            object.__setattr__(self, "space", parse_space(self.space))
        problems = tuple(str(p).upper() for p in _tuple_axis(self.problems, "problems"))
        orderings = tuple(_tuple_axis(self.orderings, "orderings"))
        object.__setattr__(self, "problems", problems)
        object.__setattr__(self, "orderings", orderings)
        # canonicalise the searcher/objective specs so equal tunes always
        # serialize identically (and typos fail here, not mid-run)
        object.__setattr__(self, "searcher", canonical_searcher(self.searcher))
        object.__setattr__(self, "objective", _canonical_objective(self.objective))
        object.__setattr__(self, "seed", int(self.seed))
        if self.nprocs is not None:
            if isinstance(self.nprocs, bool) or not isinstance(self.nprocs, int):
                raise ValueError(f"nprocs must be an int or None, got {self.nprocs!r}")
        if self.scale is not None:
            if isinstance(self.scale, bool) or not isinstance(self.scale, (int, float)):
                raise ValueError(f"scale must be a number or None, got {self.scale!r}")
            object.__setattr__(self, "scale", canonical_float(float(self.scale)))

    def make_searcher(self) -> Searcher:
        return make_searcher(self.searcher)

    def make_objective(self) -> Objective:
        return make_objective(self.objective)

    def planned_evaluations(self) -> int:
        """Upper bound on logical case evaluations (for job progress totals)."""
        total = 0
        for configs, _, subset in self.make_searcher().plan(self.space):
            problems = _subset_count(len(self.problems), subset)
            total += configs * problems * len(self.orderings)
        return total

    def to_dict(self) -> dict[str, object]:
        return with_schema(
            "tune_spec",
            {
                "space": self.space.to_dict(),
                "problems": list(self.problems),
                "orderings": list(self.orderings),
                "searcher": self.searcher,
                "objective": self.objective,
                "seed": self.seed,
                "nprocs": self.nprocs,
                "scale": self.scale,
            },
        )

    _FIELDS = (
        "space",
        "problems",
        "orderings",
        "searcher",
        "objective",
        "seed",
        "nprocs",
        "scale",
    )

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TuneSpec":
        payload = decode_fields("tune_spec", dict(data), cls._FIELDS, label="TuneSpec", strict=True)
        space = payload.pop("space", None)
        if not isinstance(space, Mapping):
            raise ValueError("TuneSpec dict needs a 'space' mapping")
        return cls(space=SearchSpace.from_dict(space), **payload)  # type: ignore[arg-type]


def _tuple_axis(values: object, name: str) -> tuple[str, ...]:
    if isinstance(values, str):
        values = (values,)
    out = tuple(str(v) for v in values)  # type: ignore[union-attr]
    if not out:
        raise ValueError(f"TuneSpec needs at least one entry in {name!r}")
    return out


def _canonical_objective(spec: str) -> str:
    from repro.specs import ParamSpec
    from repro.tune.objective import OBJECTIVES

    entry, params = OBJECTIVES.resolve(spec)
    return ParamSpec(entry.name, tuple(params.items())).with_defaults(entry.params).canonical()


def _subset_count(total: int, fraction: float) -> int:
    return max(1, min(total, math.ceil(total * fraction)))


class Tuner:
    """Executes one :class:`TuneSpec` against a session, producing a board.

    ``store`` makes the run resumable (every rung evaluation is keyed and
    memoized there); ``progress`` is called with
    ``(evaluations_done, evaluations_total)`` after each rung, which is how
    the service daemon reports tune-job progress.
    """

    def __init__(
        self,
        session: "Session",
        spec: TuneSpec,
        *,
        store: "ResultStore | str | None" = None,
        batch: bool = True,
        jobs: Optional[int] = None,
        progress: Optional[ProgressHook] = None,
    ) -> None:
        self.session = session
        self.spec = spec
        self.store = store
        self.batch = batch
        self.jobs = jobs
        self.progress = progress
        self._objective = spec.make_objective()
        self._per_problem: dict[str, dict[str, float]] = {}
        self._done = 0
        self._total = spec.planned_evaluations()

    # ------------------------------------------------------------------ #
    # rung evaluation
    # ------------------------------------------------------------------ #
    def _rung_problems(self, rung: Rung) -> tuple[str, ...]:
        """The problem-subset prefix this rung evaluates."""
        count = _subset_count(len(self.spec.problems), rung.subset_fraction)
        return tuple(self.spec.problems[:count])

    def _rung_scale(self, rung: Rung) -> float:
        base = self.spec.scale if self.spec.scale is not None else self.session.scale
        return canonical_float(float(base) * rung.scale_fraction)

    def _evaluate(self, configs: Sequence[TuneConfig], rung: Rung) -> list[float]:
        """Aggregated objective scores for ``configs`` at ``rung`` fidelity.

        Configurations sharing ``split``/``split_threshold`` are grouped into
        one :class:`SweepSpec` so the batched engine path reuses a single
        analysis per problem across all of a group's strategies.
        """
        problems = self._rung_problems(rung)
        orderings = self.spec.orderings
        scale = self._rung_scale(rung)
        groups: dict[tuple[bool, Optional[int]], list[TuneConfig]] = {}
        for config in configs:
            groups.setdefault((config.split, config.split_threshold), []).append(config)

        from repro.session import Session
        from repro.specs import SweepSpec

        scores: dict[str, float] = {}
        for (split, threshold), group in sorted(groups.items(), key=lambda kv: str(kv[0])):
            strategies = [config.strategy for config in group]
            grid = SweepSpec(
                problems=list(problems),
                orderings=list(orderings),
                strategies=strategies,
                split=[split],
                nprocs=[self.spec.nprocs],
                scale=[scale],
                split_threshold=[threshold],
            )
            # call the declarative Session.sweep explicitly: the historical
            # ExperimentRunner subclass shadows it with the legacy
            # (problems, orderings, strategies) signature
            view = Session.sweep(
                self.session, grid, batch=self.batch, jobs=self.jobs, store=self.store
            )
            # grid order is problem-major: problems × orderings × strategies
            for s_idx, config in enumerate(group):
                per_problem: dict[str, float] = {}
                for p_idx, problem in enumerate(problems):
                    per_ordering = []
                    for o_idx in range(len(orderings)):
                        index = (p_idx * len(orderings) + o_idx) * len(strategies) + s_idx
                        per_ordering.append(self._objective.score(view[index]))
                    per_problem[problem] = aggregate(per_ordering)
                # keep the deepest-rung per-problem scores for the board
                self._per_problem[config.key] = per_problem
                scores[config.key] = aggregate(list(per_problem.values()))
        self._done += len(configs) * len(problems) * len(orderings)
        if self.progress is not None:
            self.progress(self._done, self._total)
        return [scores[config.key] for config in configs]

    # ------------------------------------------------------------------ #
    # the run
    # ------------------------------------------------------------------ #
    def run(self) -> Leaderboard:
        """Execute the search and return the (deterministic) leaderboard."""
        searcher = self.spec.make_searcher()
        rng = np.random.default_rng(self.spec.seed)
        outcome = searcher.run(self.spec.space, rng, self._evaluate)
        entries = []
        for rank, trial in enumerate(outcome.ranked(), start=1):
            config = trial.config
            per_problem = self._per_problem.get(config.key, {})
            ci_low, ci_high = bootstrap_ci(
                list(per_problem.values()) or [trial.last_score],
                seed=mixed_seed(self.spec.seed, config.key),
            )
            entries.append(
                LeaderboardEntry(
                    rank=rank,
                    key=config.key,
                    strategy=config.strategy,
                    split=config.split,
                    split_threshold=config.split_threshold,
                    rung=trial.last_rung,
                    score=trial.last_score,
                    ci_low=ci_low,
                    ci_high=ci_high,
                    per_problem=per_problem,
                )
            )
        rungs = [
            {
                "index": rung.index,
                "scale_fraction": canonical_float(rung.scale_fraction),
                "subset_fraction": canonical_float(rung.subset_fraction),
            }
            for rung in outcome.rungs
        ]
        evaluations = sum(
            len(self._rung_problems(rung)) * len(self.spec.orderings) * count
            for rung, count in self._rung_counts(outcome)
        )
        return Leaderboard(
            spec=self.spec.to_dict(),
            rungs=rungs,
            entries=entries,
            evaluations=evaluations,
        )

    @staticmethod
    def _rung_counts(outcome) -> list[tuple[Rung, int]]:
        """How many configs were actually evaluated at each rung."""
        counts: dict[int, int] = {}
        for trial in outcome.trials:
            for rung_index, _ in trial.scores:
                counts[rung_index] = counts.get(rung_index, 0) + 1
        return [(rung, counts.get(rung.index, 0)) for rung in outcome.rungs]


def tune(
    session: "Session",
    spec: TuneSpec,
    *,
    store: "ResultStore | str | None" = None,
    batch: bool = True,
    jobs: Optional[int] = None,
    progress: Optional[ProgressHook] = None,
) -> Leaderboard:
    """Convenience wrapper: build a :class:`Tuner` and run it."""
    return Tuner(
        session, spec, store=store, batch=batch, jobs=jobs, progress=progress
    ).run()
