"""One generic plugin registry behind every pluggable family of the package.

Problems, orderings, scheduling strategies, tables and figures used to live in
five hand-maintained dicts with five slightly different lookup helpers.  A
:class:`Registry` unifies them:

* **Mapping view** — a registry behaves like the dict it replaces
  (``"XENON2" in PROBLEMS``, ``list(ORDERINGS)``, ``STRATEGIES.items()``),
  iterating display names in registration order, so historical callers keep
  working unchanged;
* **case-insensitive lookup** — :meth:`get` normalises the name (problems
  upper-case, everything else lower-case) and raises a ``ValueError`` with a
  *did-you-mean* suggestion on a miss;
* **declared parameters** — every entry may carry the keyword parameters its
  value accepts (name → default), which is what the spec mini-language
  (:mod:`repro.specs`) validates against and ``repro list --format json``
  reports;
* **registration** — :meth:`add` for direct values, :meth:`register` as a
  decorator for callables.

>>> orderings = Registry("ordering")
>>> @orderings.register("amd", description="approximate minimum degree",
...                     params={"seed": 0})
... def amd(pattern, *, seed=0): ...
>>> orderings.get("AMD") is amd
True
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass, field
from typing import Callable, Iterator, Mapping, Optional, TypeVar

__all__ = ["Registry", "RegistryEntry", "validate_params"]

T = TypeVar("T")


def validate_params(
    kind: str, name: str, declared: Mapping[str, object], given: Mapping[str, object]
) -> None:
    """Reject keyword parameters outside an entry's declared set."""
    unknown = set(given) - set(declared)
    if unknown:
        accepted = sorted(declared) if declared else "none"
        raise ValueError(
            f"{kind} {name!r} does not accept parameter(s) "
            f"{sorted(unknown)}; accepted: {accepted}"
        )


@dataclass(frozen=True)
class RegistryEntry:
    """One registered value plus its metadata."""

    name: str
    value: object
    description: str = ""
    #: keyword parameters the value accepts when built/called (name → default).
    params: Mapping[str, object] = field(default_factory=dict)

    def describe(self) -> dict[str, object]:
        """JSON-ready metadata (what ``repro list --format json`` emits)."""
        return {
            "name": self.name,
            "description": self.description,
            "params": dict(self.params),
        }


class Registry(Mapping[str, T]):
    """A named, case-insensitive mapping of pluggable components.

    Parameters
    ----------
    kind:
        Singular noun used in error messages ("strategy", "ordering", …).
    normalize:
        Name normalisation applied on every lookup and registration
        (default: lower-case; the problem registry uses upper-case to match
        the paper's matrix names).
    """

    def __init__(self, kind: str, *, normalize: Callable[[str], str] = str.lower) -> None:
        self.kind = kind
        self.normalize = normalize
        self._entries: dict[str, RegistryEntry] = {}

    # ------------------------------------------------------------------ #
    # registration
    # ------------------------------------------------------------------ #
    def add(
        self,
        name: str,
        value: T,
        *,
        description: str = "",
        params: Mapping[str, object] | None = None,
    ) -> T:
        """Register ``value`` under ``name`` (replacing any previous entry)."""
        entry = RegistryEntry(
            name=name, value=value, description=description, params=dict(params or {})
        )
        self._entries[self.normalize(name)] = entry
        return value

    def register(
        self,
        name: str | None = None,
        *,
        description: str = "",
        params: Mapping[str, object] | None = None,
    ) -> Callable[[T], T]:
        """Decorator form of :meth:`add` (name defaults to ``__name__``)."""

        def decorator(value: T) -> T:
            entry_name = name if name is not None else getattr(value, "__name__", str(value))
            if not description and getattr(value, "__doc__", None):
                summary = (value.__doc__ or "").strip().splitlines()[0]
            else:
                summary = description
            return self.add(entry_name, value, description=summary, params=params)

        return decorator

    # ------------------------------------------------------------------ #
    # lookup
    # ------------------------------------------------------------------ #
    def entry(self, name: str) -> RegistryEntry:
        """Entry (value + metadata) for ``name``; did-you-mean ``ValueError`` on a miss."""
        key = self.normalize(name)
        try:
            return self._entries[key]
        except KeyError:
            raise ValueError(self._unknown_message(name)) from None

    def get(self, name: str, default: object = ...) -> T:  # type: ignore[override]
        """Value for ``name`` (case-insensitive); did-you-mean error on a miss."""
        try:
            return self.entry(name).value  # type: ignore[return-value]
        except ValueError:
            if default is not ...:
                return default  # type: ignore[return-value]
            raise

    def resolve(self, spec: object) -> tuple[RegistryEntry, dict[str, object]]:
        """Parse a mini-language spec against this registry.

        Returns the entry plus the explicitly given parameters, validated
        against the entry's declared set — ``registry.resolve("hybrid(alpha=0.3)")``
        is the one lookup path behind every spec-accepting API.
        """
        from repro.specs import parse_spec  # deferred: specs is registry-free

        parsed = parse_spec(spec)  # type: ignore[arg-type]
        entry = self.entry(parsed.name)
        validate_params(self.kind, entry.name, entry.params, parsed.kwargs)
        return entry, parsed.kwargs

    def params_of(self, name: str) -> dict[str, object]:
        """Declared keyword parameters (name → default) of one entry."""
        return dict(self.entry(name).params)

    def describe(self) -> list[dict[str, object]]:
        """Metadata of every entry, in registration order (JSON-ready)."""
        return [entry.describe() for entry in self._entries.values()]

    def suggest(self, name: str) -> Optional[str]:
        """Closest registered name to ``name``, if any is close enough."""
        matches = difflib.get_close_matches(self.normalize(name), list(self._entries), n=1)
        return self._entries[matches[0]].name if matches else None

    def _unknown_message(self, name: str) -> str:
        message = f"unknown {self.kind} {name!r}; expected one of {sorted(self._entries)}"
        suggestion = self.suggest(name)
        if suggestion is not None:
            message += f" (did you mean {suggestion!r}?)"
        return message

    # ------------------------------------------------------------------ #
    # Mapping interface (the thin dict view the historical names keep)
    # ------------------------------------------------------------------ #
    def __getitem__(self, name: str) -> T:
        key = self.normalize(name)
        if key not in self._entries:
            raise KeyError(name)
        return self._entries[key].value  # type: ignore[return-value]

    def __contains__(self, name: object) -> bool:
        return isinstance(name, str) and self.normalize(name) in self._entries

    def __iter__(self) -> Iterator[str]:
        return (entry.name for entry in self._entries.values())

    def __len__(self) -> int:
        return len(self._entries)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Registry({self.kind!r}, {list(self)})"
