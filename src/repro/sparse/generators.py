"""Synthetic sparse-pattern generators.

The paper evaluates on eight matrices taken from the Rutherford-Boeing,
University of Florida and PARASOL collections.  Those files are not available
offline, so :mod:`repro.experiments.problems` builds *structural analogues*
with the generators below.  Each generator is chosen so that the analogue
lands in the same structural regime as the original matrix (3-D FEM, shell
structure, normal equations of an LP matrix, circuit/harmonic-balance,
3-D wave propagation), because the regime — not the exact entries — is what
drives the assembly-tree topology and hence the memory behaviour studied in
the paper.

All generators are deterministic given their ``seed``.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.sparse.pattern import SparsePattern

__all__ = [
    "grid_2d",
    "grid_3d",
    "fem_block_pattern",
    "normal_equations",
    "circuit_pattern",
    "random_pattern",
    "arrow_pattern",
    "banded_pattern",
]


def _grid_offsets(stencil: int, dims: int) -> list[tuple[int, ...]]:
    """Neighbour offsets for the requested stencil."""
    if dims == 2:
        if stencil == 5:
            return [(-1, 0), (1, 0), (0, -1), (0, 1)]
        if stencil == 9:
            return [(di, dj) for di in (-1, 0, 1) for dj in (-1, 0, 1) if (di, dj) != (0, 0)]
        raise ValueError("2-D stencil must be 5 or 9")
    if dims == 3:
        if stencil == 7:
            return [
                (-1, 0, 0), (1, 0, 0),
                (0, -1, 0), (0, 1, 0),
                (0, 0, -1), (0, 0, 1),
            ]
        if stencil == 27:
            return [
                (di, dj, dk)
                for di in (-1, 0, 1)
                for dj in (-1, 0, 1)
                for dk in (-1, 0, 1)
                if (di, dj, dk) != (0, 0, 0)
            ]
        raise ValueError("3-D stencil must be 7 or 27")
    raise ValueError("dims must be 2 or 3")


def grid_2d(nx: int, ny: int, *, stencil: int = 5, symmetric: bool = True, name: str = "") -> SparsePattern:
    """Pattern of a 2-D ``nx × ny`` grid operator (5- or 9-point stencil)."""
    if nx < 1 or ny < 1:
        raise ValueError("grid dimensions must be positive")
    n = nx * ny
    idx = np.arange(n, dtype=np.int64).reshape(nx, ny)
    rows = [np.arange(n, dtype=np.int64)]
    cols = [np.arange(n, dtype=np.int64)]
    for di, dj in _grid_offsets(stencil, 2):
        src = idx[max(0, -di):nx - max(0, di), max(0, -dj):ny - max(0, dj)]
        dst = idx[max(0, di):nx - max(0, -di), max(0, dj):ny - max(0, -dj)]
        rows.append(src.ravel())
        cols.append(dst.ravel())
    return SparsePattern.from_coo(
        n, np.concatenate(rows), np.concatenate(cols), symmetric=symmetric, name=name or f"grid2d-{nx}x{ny}-s{stencil}"
    )


def grid_3d(
    nx: int,
    ny: int,
    nz: int,
    *,
    stencil: int = 7,
    symmetric: bool = True,
    name: str = "",
) -> SparsePattern:
    """Pattern of a 3-D ``nx × ny × nz`` grid operator (7- or 27-point stencil)."""
    if nx < 1 or ny < 1 or nz < 1:
        raise ValueError("grid dimensions must be positive")
    n = nx * ny * nz
    idx = np.arange(n, dtype=np.int64).reshape(nx, ny, nz)
    rows = [np.arange(n, dtype=np.int64)]
    cols = [np.arange(n, dtype=np.int64)]
    for di, dj, dk in _grid_offsets(stencil, 3):
        src = idx[
            max(0, -di):nx - max(0, di),
            max(0, -dj):ny - max(0, dj),
            max(0, -dk):nz - max(0, dk),
        ]
        dst = idx[
            max(0, di):nx - max(0, -di),
            max(0, dj):ny - max(0, -dj),
            max(0, dk):nz - max(0, -dk),
        ]
        rows.append(src.ravel())
        cols.append(dst.ravel())
    return SparsePattern.from_coo(
        n,
        np.concatenate(rows),
        np.concatenate(cols),
        symmetric=symmetric,
        name=name or f"grid3d-{nx}x{ny}x{nz}-s{stencil}",
    )


def fem_block_pattern(base: SparsePattern, dofs_per_node: int, *, name: str = "") -> SparsePattern:
    """Expand every node of ``base`` into ``dofs_per_node`` coupled unknowns.

    This mimics vector finite-element problems (elasticity has 3 displacement
    components per mesh node, shells up to 6), which is what makes matrices
    such as BMWCRA_1 or SHIP_003 denser per node than scalar Laplacians.
    """
    if dofs_per_node < 1:
        raise ValueError("dofs_per_node must be >= 1")
    d = dofs_per_node
    rows = np.repeat(np.arange(base.n, dtype=np.int64), np.diff(base.indptr))
    cols = base.indices
    block = np.arange(d, dtype=np.int64)
    # Kronecker expansion: (i, j) -> {(i*d + a, j*d + b) : a, b in [0, d)}
    rr = np.repeat(rows, d * d) * d + np.tile(np.repeat(block, d), rows.size)
    cc = np.repeat(cols, d * d) * d + np.tile(np.tile(block, d), cols.size)
    return SparsePattern.from_coo(
        base.n * d, rr, cc, symmetric=base.symmetric, name=name or f"{base.name}-dof{d}"
    )


def normal_equations(
    m: int,
    n: int,
    *,
    nnz_per_row: int = 6,
    seed: int = 0,
    dense_rows: int = 0,
    name: str = "",
) -> SparsePattern:
    """Pattern of ``A·Aᵀ`` for a random ``m × n`` sparse matrix ``A``.

    Linear-programming interior-point methods factorize the normal equations
    ``A·Aᵀ``; GUPTA3 in the paper is such a matrix.  A few optional
    ``dense_rows`` of ``A`` (columns touching many rows) reproduce the very
    dense rows of ``A·Aᵀ`` typical of these problems, which lead to huge
    fronts near the root of the assembly tree.
    """
    if m < 1 or n < 1:
        raise ValueError("dimensions must be positive")
    rng = np.random.default_rng(seed)
    rows_a = np.repeat(np.arange(m, dtype=np.int64), nnz_per_row)
    cols_a = rng.integers(0, n, size=m * nnz_per_row, dtype=np.int64)
    if dense_rows:
        # dense columns of A: a handful of columns shared by many rows
        dense_cols = rng.choice(n, size=dense_rows, replace=False)
        extra_rows = np.repeat(
            rng.choice(m, size=max(2, m // 3), replace=False).astype(np.int64), dense_rows
        )
        extra_cols = np.tile(dense_cols.astype(np.int64), max(2, m // 3))
        rows_a = np.concatenate([rows_a, extra_rows])
        cols_a = np.concatenate([cols_a, extra_cols])

    # build column -> rows lists, then emit the clique of rows per column
    order = np.argsort(cols_a, kind="stable")
    cols_sorted = cols_a[order]
    rows_sorted = rows_a[order]
    rr: list[np.ndarray] = [np.arange(m, dtype=np.int64)]
    cc: list[np.ndarray] = [np.arange(m, dtype=np.int64)]
    start = 0
    while start < cols_sorted.size:
        end = start
        c = cols_sorted[start]
        while end < cols_sorted.size and cols_sorted[end] == c:
            end += 1
        members = np.unique(rows_sorted[start:end])
        if members.size > 1:
            # clique over the members
            a = np.repeat(members, members.size)
            b = np.tile(members, members.size)
            rr.append(a)
            cc.append(b)
        start = end
    return SparsePattern.from_coo(
        m, np.concatenate(rr), np.concatenate(cc), symmetric=True, name=name or f"normal-eqs-{m}x{n}"
    )


def circuit_pattern(
    n: int,
    *,
    avg_degree: float = 4.0,
    n_dense_rows: int = 4,
    dense_fraction: float = 0.3,
    symmetry: float = 0.5,
    seed: int = 0,
    name: str = "",
) -> SparsePattern:
    """Unsymmetric circuit-simulation-like pattern.

    Harmonic-balance matrices such as PRE2 and TWOTONE combine a mostly
    local, banded-ish coupling with a few nearly dense rows/columns (supply
    nets) and only partial structural symmetry.  The generator reproduces
    those three traits.
    """
    if n < 2:
        raise ValueError("n must be >= 2")
    rng = np.random.default_rng(seed)
    nnz_target = int(avg_degree * n)
    # local couplings: mostly short-range (geometric offsets), like the chains
    # of devices along a net in a flattened circuit netlist
    offsets = np.minimum(rng.geometric(0.35, size=nnz_target), max(2, n // 200)).astype(np.int64)
    rows = rng.integers(0, n, size=nnz_target, dtype=np.int64)
    cols = np.clip(rows + rng.choice([-1, 1], size=nnz_target) * offsets, 0, n - 1)
    # a sprinkling of random long-range couplings (cross-net devices); kept
    # small because too many of them would turn the graph into an expander
    # with no small separators, which circuit matrices are not
    n_long = max(1, nnz_target // 12)
    rows_l = rng.integers(0, n, size=n_long, dtype=np.int64)
    cols_l = rng.integers(0, n, size=n_long, dtype=np.int64)
    rows = np.concatenate([rows, rows_l])
    cols = np.concatenate([cols, cols_l])
    # dense rows / columns
    if n_dense_rows > 0:
        dense_ids = rng.choice(n, size=n_dense_rows, replace=False).astype(np.int64)
        touched = rng.choice(n, size=max(1, int(dense_fraction * n)), replace=False).astype(np.int64)
        for d in dense_ids:
            rows = np.concatenate([rows, np.full(touched.size, d, dtype=np.int64)])
            cols = np.concatenate([cols, touched])
            # partial transpose coupling of the dense net
            half = touched[: touched.size // 2]
            rows = np.concatenate([rows, half])
            cols = np.concatenate([cols, np.full(half.size, d, dtype=np.int64)])
    # impose partial symmetry: mirror a fraction of the entries
    mirror = rng.random(rows.size) < symmetry
    rows = np.concatenate([rows, cols[mirror]])
    cols = np.concatenate([cols, rows[: mirror.size][mirror]])
    diag = np.arange(n, dtype=np.int64)
    rows = np.concatenate([rows, diag])
    cols = np.concatenate([cols, diag])
    return SparsePattern.from_coo(n, rows, cols, symmetric=False, name=name or f"circuit-{n}")


def random_pattern(
    n: int,
    *,
    density: float = 1e-3,
    symmetric: bool = False,
    seed: int = 0,
    with_diagonal: bool = True,
    name: str = "",
) -> SparsePattern:
    """Uniformly random pattern of the requested density."""
    if not 0 <= density <= 1:
        raise ValueError("density must be in [0, 1]")
    rng = np.random.default_rng(seed)
    nnz = int(density * n * n)
    rows = rng.integers(0, n, size=nnz, dtype=np.int64)
    cols = rng.integers(0, n, size=nnz, dtype=np.int64)
    if with_diagonal:
        diag = np.arange(n, dtype=np.int64)
        rows = np.concatenate([rows, diag])
        cols = np.concatenate([cols, diag])
    return SparsePattern.from_coo(
        n, rows, cols, symmetric=symmetric, symmetrize_pattern=symmetric, name=name or f"random-{n}"
    )


def arrow_pattern(n: int, *, bandwidth: int = 2, arrow_width: int = 1, name: str = "") -> SparsePattern:
    """Arrowhead pattern: banded matrix plus ``arrow_width`` dense last rows/cols.

    A textbook worst case for orderings and a useful stress test: the dense
    rows force a large root front whatever the ordering.
    """
    if n < 2:
        raise ValueError("n must be >= 2")
    rows: list[np.ndarray] = []
    cols: list[np.ndarray] = []
    diag = np.arange(n, dtype=np.int64)
    rows.append(diag)
    cols.append(diag)
    for off in range(1, bandwidth + 1):
        i = np.arange(n - off, dtype=np.int64)
        rows.extend([i, i + off])
        cols.extend([i + off, i])
    for k in range(arrow_width):
        j = n - 1 - k
        i = np.arange(n, dtype=np.int64)
        rows.extend([np.full(n, j, dtype=np.int64), i])
        cols.extend([i, np.full(n, j, dtype=np.int64)])
    return SparsePattern.from_coo(
        n, np.concatenate(rows), np.concatenate(cols), symmetric=True, name=name or f"arrow-{n}"
    )


def banded_pattern(n: int, *, bandwidth: int = 3, symmetric: bool = True, name: str = "") -> SparsePattern:
    """Simple banded pattern (used in unit tests: its etree is a path)."""
    if n < 1:
        raise ValueError("n must be >= 1")
    rows: list[np.ndarray] = [np.arange(n, dtype=np.int64)]
    cols: list[np.ndarray] = [np.arange(n, dtype=np.int64)]
    for off in range(1, bandwidth + 1):
        i = np.arange(n - off, dtype=np.int64)
        rows.extend([i, i + off])
        cols.extend([i + off, i])
    return SparsePattern.from_coo(
        n, np.concatenate(rows), np.concatenate(cols), symmetric=symmetric, name=name or f"band-{n}-{bandwidth}"
    )
