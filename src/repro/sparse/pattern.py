"""Structural sparse-matrix container.

Only the *pattern* (positions of the nonzeros) is stored, because everything
in the reproduction — orderings, elimination trees, symbolic factorization,
the memory/flops models and the scheduling simulation — is determined by the
structure alone.  The container is a CSR-like layout over numpy arrays so the
hot loops of the symbolic algorithms can index it cheaply.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["SparsePattern"]


def _dedupe_sorted_rows(n: int, rows: np.ndarray, cols: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Sort (row, col) pairs row-major and drop duplicates."""
    order = np.lexsort((cols, rows))
    rows = rows[order]
    cols = cols[order]
    if rows.size:
        keep = np.empty(rows.size, dtype=bool)
        keep[0] = True
        keep[1:] = (rows[1:] != rows[:-1]) | (cols[1:] != cols[:-1])
        rows = rows[keep]
        cols = cols[keep]
    return rows, cols


@dataclass(frozen=True)
class SparsePattern:
    """An ``n × n`` sparse pattern in CSR form.

    Attributes
    ----------
    n:
        Matrix order.
    indptr:
        Row pointer array of length ``n + 1``.
    indices:
        Column indices, sorted within each row, without duplicates.
    symmetric:
        ``True`` when the pattern is declared structurally symmetric.  The
        full pattern (both triangles) is always stored; the flag records the
        *matrix type* (SYM vs UNS in the paper's Table 1), which changes the
        flop and memory models of a front.
    name:
        Optional human-readable problem name.
    """

    n: int
    indptr: np.ndarray
    indices: np.ndarray
    symmetric: bool = False
    name: str = ""

    # ------------------------------------------------------------------ #
    # constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_coo(
        cls,
        n: int,
        rows: Iterable[int],
        cols: Iterable[int],
        *,
        symmetric: bool = False,
        symmetrize_pattern: bool = False,
        name: str = "",
    ) -> "SparsePattern":
        """Build a pattern from coordinate lists.

        Parameters
        ----------
        n:
            Matrix order.
        rows, cols:
            Nonzero coordinates (duplicates are merged).
        symmetric:
            Declare the matrix symmetric (matrix *type*).
        symmetrize_pattern:
            Additionally store the pattern of ``A + Aᵀ``.
        """
        rows = np.asarray(list(rows) if not isinstance(rows, np.ndarray) else rows, dtype=np.int64)
        cols = np.asarray(list(cols) if not isinstance(cols, np.ndarray) else cols, dtype=np.int64)
        if rows.shape != cols.shape:
            raise ValueError("rows and cols must have the same length")
        if rows.size and (rows.min() < 0 or rows.max() >= n or cols.min() < 0 or cols.max() >= n):
            raise ValueError("coordinate out of range")
        if symmetrize_pattern or symmetric:
            rows, cols = np.concatenate([rows, cols]), np.concatenate([cols, rows])
        rows, cols = _dedupe_sorted_rows(n, rows, cols)
        counts = np.bincount(rows, minlength=n)
        indptr = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return cls(n=n, indptr=indptr, indices=cols.astype(np.int64), symmetric=symmetric, name=name)

    @classmethod
    def from_dense(cls, dense: np.ndarray, *, symmetric: bool = False, name: str = "") -> "SparsePattern":
        """Build a pattern from the nonzeros of a dense array."""
        dense = np.asarray(dense)
        if dense.ndim != 2 or dense.shape[0] != dense.shape[1]:
            raise ValueError("dense must be a square 2-D array")
        rows, cols = np.nonzero(dense)
        return cls.from_coo(dense.shape[0], rows, cols, symmetric=symmetric, name=name)

    @classmethod
    def from_scipy(cls, mat, *, symmetric: bool = False, name: str = "") -> "SparsePattern":
        """Build a pattern from any scipy sparse matrix."""
        coo = mat.tocoo()
        if coo.shape[0] != coo.shape[1]:
            raise ValueError("matrix must be square")
        return cls.from_coo(coo.shape[0], coo.row, coo.col, symmetric=symmetric, name=name)

    @classmethod
    def from_rows(cls, rows: Sequence[Sequence[int]], *, symmetric: bool = False, name: str = "") -> "SparsePattern":
        """Build a pattern from an adjacency-list style row description."""
        n = len(rows)
        rr: list[int] = []
        cc: list[int] = []
        for i, row in enumerate(rows):
            for j in row:
                rr.append(i)
                cc.append(j)
        return cls.from_coo(n, rr, cc, symmetric=symmetric, name=name)

    # ------------------------------------------------------------------ #
    # basic queries
    # ------------------------------------------------------------------ #
    @property
    def nnz(self) -> int:
        """Number of stored nonzeros (full pattern, both triangles)."""
        return int(self.indices.size)

    def row(self, i: int) -> np.ndarray:
        """Column indices of row ``i`` (sorted)."""
        return self.indices[self.indptr[i]:self.indptr[i + 1]]

    def degrees(self) -> np.ndarray:
        """Off-diagonal degree of every row in the symmetrized pattern."""
        indptr, _indices = self.adjacency()
        return np.diff(indptr).astype(np.int64)

    def has_diagonal(self) -> bool:
        """Whether every diagonal entry is present.

        Column indices are unique within a row, so each row contributes at
        most one ``row == col`` entry; the diagonal is complete exactly when
        there are ``n`` such entries — one vectorized pass, no per-row loop.
        """
        rows = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.indptr))
        return int(np.count_nonzero(rows == self.indices)) == self.n

    def is_structurally_symmetric(self) -> bool:
        """Check whether the stored pattern equals its transpose."""
        t = self.transpose()
        return (
            np.array_equal(self.indptr, t.indptr)
            and np.array_equal(self.indices, t.indices)
        )

    def structural_symmetry(self) -> float:
        """Fraction of off-diagonal entries whose transpose entry is present."""
        rows = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.indptr))
        cols = self.indices
        off = rows != cols
        rows, cols = rows[off], cols[off]
        if rows.size == 0:
            return 1.0
        key = rows * self.n + cols
        tkey = cols * self.n + rows
        present = np.isin(tkey, key, assume_unique=False)
        return float(np.count_nonzero(present)) / float(rows.size)

    # ------------------------------------------------------------------ #
    # transforms
    # ------------------------------------------------------------------ #
    def transpose(self) -> "SparsePattern":
        """Pattern of the transpose."""
        rows = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.indptr))
        return SparsePattern.from_coo(self.n, self.indices, rows, symmetric=self.symmetric, name=self.name)

    def symmetrized(self) -> "SparsePattern":
        """Pattern of ``A + Aᵀ`` (used for orderings and the elimination tree)."""
        if self.symmetric or self.is_structurally_symmetric():
            return self
        rows = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.indptr))
        return SparsePattern.from_coo(
            self.n,
            np.concatenate([rows, self.indices]),
            np.concatenate([self.indices, rows]),
            symmetric=self.symmetric,
            name=self.name,
        )

    def with_diagonal(self) -> "SparsePattern":
        """Pattern with every diagonal entry added."""
        rows = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.indptr))
        diag = np.arange(self.n, dtype=np.int64)
        return SparsePattern.from_coo(
            self.n,
            np.concatenate([rows, diag]),
            np.concatenate([self.indices, diag]),
            symmetric=self.symmetric,
            name=self.name,
        )

    def permuted(self, perm: np.ndarray) -> "SparsePattern":
        """Symmetric permutation ``P A Pᵀ``.

        ``perm[k]`` is the original index placed at position ``k`` (i.e. the
        *ordering*: column ``perm[0]`` is eliminated first).
        """
        perm = np.asarray(perm, dtype=np.int64)
        if perm.shape != (self.n,) or not np.array_equal(np.sort(perm), np.arange(self.n)):
            raise ValueError("perm must be a permutation of range(n)")
        inv = np.empty(self.n, dtype=np.int64)
        inv[perm] = np.arange(self.n, dtype=np.int64)
        rows = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.indptr))
        return SparsePattern.from_coo(
            self.n, inv[rows], inv[self.indices], symmetric=self.symmetric, name=self.name
        )

    def submatrix(self, keep: np.ndarray) -> "SparsePattern":
        """Principal submatrix on the (sorted) index set ``keep``."""
        keep = np.asarray(sorted(set(int(k) for k in np.asarray(keep).ravel())), dtype=np.int64)
        pos = -np.ones(self.n, dtype=np.int64)
        pos[keep] = np.arange(keep.size, dtype=np.int64)
        rows = np.repeat(np.arange(self.n, dtype=np.int64), np.diff(self.indptr))
        cols = self.indices
        mask = (pos[rows] >= 0) & (pos[cols] >= 0)
        return SparsePattern.from_coo(
            int(keep.size), pos[rows[mask]], pos[cols[mask]], symmetric=self.symmetric, name=self.name
        )

    def to_scipy(self):
        """Convert to a ``scipy.sparse.csr_matrix`` of ones."""
        from scipy import sparse

        data = np.ones(self.nnz, dtype=np.float64)
        return sparse.csr_matrix((data, self.indices.copy(), self.indptr.copy()), shape=(self.n, self.n))

    def to_networkx(self):
        """Adjacency graph (undirected, no self loops) as a networkx Graph."""
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.n))
        sym = self.symmetrized()
        rows = np.repeat(np.arange(sym.n, dtype=np.int64), np.diff(sym.indptr))
        cols = sym.indices
        mask = rows < cols
        g.add_edges_from(zip(rows[mask].tolist(), cols[mask].tolist()))
        return g

    # ------------------------------------------------------------------ #
    # adjacency helpers used by orderings
    # ------------------------------------------------------------------ #
    def adjacency(self) -> tuple[np.ndarray, np.ndarray]:
        """Symmetrized, diagonal-free adjacency as (indptr, indices)."""
        sym = self.symmetrized()
        rows = np.repeat(np.arange(sym.n, dtype=np.int64), np.diff(sym.indptr))
        cols = sym.indices
        mask = rows != cols
        rows, cols = rows[mask], cols[mask]
        counts = np.bincount(rows, minlength=sym.n)
        indptr = np.zeros(sym.n + 1, dtype=np.int64)
        np.cumsum(counts, out=indptr[1:])
        return indptr, cols

    # ------------------------------------------------------------------ #
    # dunder
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        kind = "SYM" if self.symmetric else "UNS"
        label = f" {self.name!r}" if self.name else ""
        return f"SparsePattern(n={self.n}, nnz={self.nnz}, {kind}{label})"

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparsePattern):
            return NotImplemented
        return (
            self.n == other.n
            and self.symmetric == other.symmetric
            and np.array_equal(self.indptr, other.indptr)
            and np.array_equal(self.indices, other.indices)
        )

    def __hash__(self) -> int:
        # structure only, like __eq__ — the name is a label, not identity;
        # cheap on purpose (hashing indices would cost O(nnz) per lookup)
        return hash((self.n, self.nnz, self.symmetric))
