"""Sparse-pattern substrate.

The multifrontal analysis in this package is purely *structural*: the
algorithms (orderings, elimination trees, symbolic factorization, memory
simulation) only need the nonzero pattern of the matrix, never its values.
:class:`~repro.sparse.pattern.SparsePattern` is the pattern container used
throughout; :mod:`repro.sparse.generators` builds the synthetic analogues of
the paper's test problems; :mod:`repro.sparse.rb_io` provides a small
text-based exchange format so problems can be saved and reloaded.
"""

from repro.sparse.pattern import SparsePattern
from repro.sparse.generators import (
    grid_2d,
    grid_3d,
    fem_block_pattern,
    normal_equations,
    circuit_pattern,
    random_pattern,
    arrow_pattern,
    banded_pattern,
)
from repro.sparse.rb_io import save_pattern, load_pattern

__all__ = [
    "SparsePattern",
    "grid_2d",
    "grid_3d",
    "fem_block_pattern",
    "normal_equations",
    "circuit_pattern",
    "random_pattern",
    "arrow_pattern",
    "banded_pattern",
    "save_pattern",
    "load_pattern",
]
