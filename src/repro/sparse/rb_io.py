"""Tiny text-based exchange format for sparse patterns.

The paper's matrices come from the Rutherford-Boeing collection; the real
files are not available offline, but the reproduction still provides a small
pattern exchange format ("RBP", Rutherford-Boeing-pattern-lite) so generated
problems can be saved, inspected and reloaded, and so users with access to
real matrices can feed them in after a trivial conversion.

Format (plain text)::

    %%RBP <name> <SYM|UNS>
    <n> <nnz>
    <row> <col>            # one entry per line, 0-based

MatrixMarket ``pattern`` files are also accepted by :func:`load_pattern`.
"""

from __future__ import annotations

import os
from typing import Union

import numpy as np

from repro.sparse.pattern import SparsePattern

__all__ = ["save_pattern", "load_pattern"]


def save_pattern(pattern: SparsePattern, path: Union[str, os.PathLike]) -> None:
    """Write ``pattern`` to ``path`` in the RBP text format."""
    rows = np.repeat(np.arange(pattern.n, dtype=np.int64), np.diff(pattern.indptr))
    cols = pattern.indices
    kind = "SYM" if pattern.symmetric else "UNS"
    name = pattern.name or "pattern"
    with open(path, "w", encoding="utf-8") as fh:
        fh.write(f"%%RBP {name} {kind}\n")
        fh.write(f"{pattern.n} {pattern.nnz}\n")
        for r, c in zip(rows.tolist(), cols.tolist()):
            fh.write(f"{r} {c}\n")


def _load_rbp(lines: list[str]) -> SparsePattern:
    header = lines[0].split()
    name = header[1] if len(header) > 1 else "pattern"
    symmetric = len(header) > 2 and header[2].upper() == "SYM"
    n, nnz = (int(x) for x in lines[1].split()[:2])
    rows = np.empty(nnz, dtype=np.int64)
    cols = np.empty(nnz, dtype=np.int64)
    for k, line in enumerate(lines[2:2 + nnz]):
        parts = line.split()
        rows[k] = int(parts[0])
        cols[k] = int(parts[1])
    return SparsePattern.from_coo(n, rows, cols, symmetric=symmetric, name=name)


def _load_matrixmarket(lines: list[str]) -> SparsePattern:
    header = lines[0].lower()
    symmetric = "symmetric" in header
    body = [ln for ln in lines[1:] if ln.strip() and not ln.lstrip().startswith("%")]
    nrows, ncols, nnz = (int(x) for x in body[0].split()[:3])
    if nrows != ncols:
        raise ValueError("only square MatrixMarket matrices are supported")
    rows = np.empty(nnz, dtype=np.int64)
    cols = np.empty(nnz, dtype=np.int64)
    for k, line in enumerate(body[1:1 + nnz]):
        parts = line.split()
        rows[k] = int(parts[0]) - 1
        cols[k] = int(parts[1]) - 1
    return SparsePattern.from_coo(
        nrows, rows, cols, symmetric=symmetric, symmetrize_pattern=symmetric, name="matrixmarket"
    )


def load_pattern(path: Union[str, os.PathLike]) -> SparsePattern:
    """Load a pattern from an RBP or MatrixMarket ``pattern`` file."""
    with open(path, "r", encoding="utf-8") as fh:
        lines = fh.read().splitlines()
    if not lines:
        raise ValueError(f"{path}: empty file")
    head = lines[0]
    if head.startswith("%%RBP"):
        return _load_rbp(lines)
    if head.startswith("%%MatrixMarket"):
        return _load_matrixmarket(lines)
    raise ValueError(f"{path}: unrecognised header {head[:40]!r}")
