"""Command-line interface: regenerate the paper's tables and figures.

Examples
--------
Regenerate Table 2 on 8 simulated processors at reduced scale::

    python -m repro table2 --nprocs 8 --scale 0.4

Regenerate every table and figure (the full evaluation), four analysis
workers in parallel with per-case progress on stderr::

    python -m repro all --nprocs 32 --scale 1.0 --cache .repro_cache --jobs 4

Run an explicit sweep — a declarative grid whose strategies may carry
parameters and whose processor counts are an axis — and emit the results as
JSON::

    python -m repro sweep --problems XENON2,PRE2 --orderings metis,amd \\
        --strategies 'mumps-workload,hybrid(alpha=0.25)' \\
        --nprocs 8,16,32 --jobs 4 --format json

Make a sweep resumable — completed cases stream into a columnar result
store and a rerun recomputes only what is missing (see ``docs/results.md``)::

    python -m repro sweep --problems XENON2 --strategies memory-full \\
        --nprocs 8,16 --store .repro_results --format json

List the available problems, orderings and strategies (``--format json``
emits the registry metadata machine-readably, including the parameters each
strategy/ordering accepts)::

    python -m repro list
    python -m repro list --format json

Run the continuous-performance harness (suites, machine-readable results,
baseline comparison — see ``docs/benchmarks.md``)::

    python -m repro bench run --suite pipeline --scale 0.2 --save /tmp/b.json
    python -m repro bench compare /tmp/b.json benchmarks/baselines/ci-ubuntu.json

Search the strategy space for the best configuration (seeded, resumable —
see ``docs/tuning.md``)::

    python -m repro tune --space 'hybrid(alpha=0.0..1.0)' --problems XENON2 \\
        --searcher 'halving(samples=8,eta=2,rungs=3)' --seed 7 --store .repro_tune

Run the sweep service (job queue daemon + cached HTTP/JSON query API — see
``docs/service.md``), submit a job and query a cached result::

    python -m repro serve --port 8023 --scale 0.5
    python -m repro submit --url http://127.0.0.1:8023 --problems XENON2 --wait
    python -m repro query --url http://127.0.0.1:8023 --problem XENON2
"""

from __future__ import annotations

import argparse
import csv
import io
import json
import sys
import time

from repro.experiments import ExperimentRunner, PROBLEMS
from repro.experiments import figures as figures_mod
from repro.experiments import tables as tables_mod
from repro.experiments.runner import ORDERING_NAMES
from repro.ordering import ORDERINGS, resolve_ordering
from repro.pipeline import ProgressEvent
from repro.scheduling import STRATEGIES, resolve_strategy
from repro.specs import SweepSpec, split_spec_list

__all__ = ["main", "build_parser"]

#: flags that configure the experiment engine; figure generators declare in
#: their registry entry (``ALL_FIGURES``) which of the mapped keywords they
#: accept, everything else is rejected for figure targets instead of being
#: silently ignored.
_ENGINE_FLAGS = {
    "--nprocs": "nprocs",
    "--scale": "scale",
    "--cache": "cache_dir",
    "--jobs": "jobs",
    "-j": "jobs",
}

#: kwarg → preferred (long) flag spelling, for error messages.
_FLAG_OF = {kwarg: flag for flag, kwarg in _ENGINE_FLAGS.items() if flag.startswith("--")}


def _nprocs_list(text: str) -> object:
    """``"8"`` → 8, ``"8,16,32"`` → [8, 16, 32] (single values stay ints)."""
    try:
        values = [int(part) for part in text.split(",") if part.strip()]
    except ValueError:
        raise argparse.ArgumentTypeError(f"--nprocs expects integers, got {text!r}") from None
    if not values:
        raise argparse.ArgumentTypeError("--nprocs expects at least one integer")
    return values[0] if len(values) == 1 else values


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Memory-based scheduling for a parallel multifrontal solver'",
        # no prefix abbreviations: the figure targets decide flag support by
        # inspecting argv, which must see the same spelling argparse accepts
        allow_abbrev=False,
    )
    parser.add_argument(
        "target",
        help="table1..table6, figure1..figure8, 'all', 'tables', 'figures', 'sweep', 'list', "
        "'bench' (the performance harness; see 'repro bench --help'), "
        "'tune' (strategy auto-tuning; see 'repro tune --help'), "
        "'robustness' (fault-injection sweeps; see 'repro robustness --help') or "
        "'serve'/'submit'/'query' (the sweep service; see 'repro serve --help')",
    )
    parser.add_argument(
        "--nprocs", type=_nprocs_list, default=32,
        help="simulated processors (paper: 32); 'sweep' accepts a comma-separated axis, e.g. 8,16,32",
    )
    parser.add_argument("--scale", type=float, default=1.0, help="problem scale factor (1.0 = full analogue size)")
    parser.add_argument("--cache", default="", help="directory for the artifact cache (optional)")
    parser.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="worker processes for sweeps/tables (1 = serial; cases sharing an analysis are grouped per worker)",
    )
    parser.add_argument(
        "--problems", default="", help="comma-separated subset of problems (default: the table's own set)"
    )
    parser.add_argument(
        "--orderings", default="",
        help="comma-separated ordering specs (default: metis,pord,amd,amf); params allowed: 'metis(leaf_size=32)'",
    )
    parser.add_argument(
        "--strategies", default="",
        help="comma-separated strategy specs for the 'sweep' target "
        "(default: mumps-workload,memory-full); params allowed: 'hybrid(alpha=0.25)'",
    )
    parser.add_argument(
        "--split", action="store_true", help="apply static splitting of large masters ('sweep' target)"
    )
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="columnar result-store directory for the 'sweep' target: completed cases stream "
        "into it and a rerun over the same directory skips them (resumable sweeps)",
    )
    parser.add_argument(
        "--format", choices=("text", "json", "csv"), default="text",
        help="output format for the 'sweep' and 'list' targets (default: text)",
    )
    parser.add_argument(
        "--no-progress", action="store_true", help="disable the per-case progress lines on stderr"
    )
    return parser


# --------------------------------------------------------------------------- #
# listing
# --------------------------------------------------------------------------- #
def _print_listing(fmt: str) -> None:
    if fmt == "json":
        payload = {
            "problems": [
                {**entry, "symmetric": PROBLEMS[str(entry["name"])].symmetric}
                for entry in PROBLEMS.describe()
            ],
            "orderings": ORDERINGS.describe(),
            "strategies": STRATEGIES.describe(),
            "tables": tables_mod.ALL_TABLES.describe(),
            "figures": figures_mod.ALL_FIGURES.describe(),
        }
        print(json.dumps(payload, indent=2))
        return
    print("problems:")
    for name, spec in PROBLEMS.items():
        print(f"  {name:12s} {'SYM' if spec.symmetric else 'UNS'}  {spec.description}")
    print("orderings:", ", ".join(sorted(ORDERINGS)))
    print("strategies:")
    for entry in STRATEGIES.describe():
        params = entry["params"]
        suffix = f"  [params: {', '.join(sorted(params))}]" if params else ""
        print(f"  {entry['name']:15s} {entry['description']}{suffix}")


def _progress_printer(event: ProgressEvent) -> None:
    print(
        f"  [{event.done}/{event.total}] {event.spec.label()} ({event.seconds:.2f}s)",
        file=sys.stderr,
        flush=True,
    )


# --------------------------------------------------------------------------- #
# tables
# --------------------------------------------------------------------------- #
def _run_tables(runner: ExperimentRunner, names: list[str], problems, orderings) -> None:
    for name in names:
        entry = tables_mod.ALL_TABLES.entry(name)
        start = time.time()
        kwargs = {}
        if problems and "problems" in entry.params:
            kwargs["problems"] = problems
        if orderings and "orderings" in entry.params:
            kwargs["orderings"] = orderings
        rows = entry.value(runner, **kwargs)
        print()
        print(tables_mod.format_table(rows, title=f"=== {name.upper()} (regenerated in {time.time() - start:.1f}s) ==="))


# --------------------------------------------------------------------------- #
# figures
# --------------------------------------------------------------------------- #
def _figure_kwargs(
    parser: argparse.ArgumentParser, names: list[str], overrides: dict[str, object]
) -> dict[str, dict[str, object]]:
    """Per-figure kwargs from the explicitly given engine flags.

    A flag must be consumable by at least one requested figure; otherwise the
    old behaviour was to ignore it silently, which is now an error.
    """
    per_figure: dict[str, dict[str, object]] = {name: {} for name in names}
    for key, value in overrides.items():
        takers = [name for name in names if key in figures_mod.ALL_FIGURES.entry(name).params]
        if not takers:
            flag = _FLAG_OF[key]
            parser.error(
                f"{flag} is not supported by figure target(s) {', '.join(names)}; "
                "it configures the experiment engine (tables/sweeps)"
            )
        for name in takers:
            per_figure[name][key] = value
    return per_figure


def _run_figures(names: list[str], kwargs_by_figure: dict[str, dict[str, object]]) -> None:
    for name in names:
        fn = figures_mod.ALL_FIGURES[name]
        data = fn(**kwargs_by_figure.get(name, {}))
        print()
        print(f"=== {name.upper()} ===")
        print(data.get("ascii", repr(data)))


# --------------------------------------------------------------------------- #
# sweeps
# --------------------------------------------------------------------------- #
def _emit_sweep(results, fmt: str, seconds: float) -> None:
    if fmt == "json":
        print(json.dumps([case.to_dict() for case in results], indent=2))
        return
    columns = [
        "problem", "ordering", "strategy", "split", "nprocs",
        "max_peak_stack", "avg_peak_stack", "total_time", "messages",
    ]
    if fmt == "csv":
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(columns)
        for case in results:
            data = case.to_dict()
            writer.writerow([data[c] for c in columns])
        print(buffer.getvalue(), end="")
        return
    print()
    print(f"=== SWEEP ({len(results)} cases in {seconds:.1f}s) ===")
    header = (
        f"{'problem':12s} {'ordering':8s} {'strategy':22s} {'split':5s} {'np':>3s} "
        f"{'max peak':>12s} {'time':>10s} {'messages':>9s}"
    )
    print(header)
    print("-" * len(header))
    for case in results:
        print(
            f"{case.problem:12s} {case.ordering:8s} {case.strategy:22s} "
            f"{'yes' if case.split else 'no':5s} {case.nprocs:3d} {case.max_peak_stack:12,.0f} "
            f"{case.total_time:10.4f} {case.messages:9d}"
        )


def _run_sweep(
    runner: ExperimentRunner, problems, orderings, strategies, nprocs_axis,
    *, split: bool, fmt: str, store: str | None = None,
) -> None:
    sweep = SweepSpec(
        problems=problems or list(PROBLEMS),
        orderings=orderings or list(ORDERING_NAMES),
        strategies=strategies or ["mumps-workload", "memory-full"],
        split=[split],
        nprocs=nprocs_axis,
    )
    start = time.time()
    if store is not None:
        # the Session-level grid sweep (ExperimentRunner.sweep is the
        # historical positional-axes API and knows nothing about stores)
        from repro.session import Session

        results = Session.sweep(runner, sweep, store=store)
        print(
            f"store {store}: {results.skipped} case(s) already present, "
            f"{results.computed} computed",
            file=sys.stderr,
            flush=True,
        )
    else:
        results = runner.run_cases(sweep.expand())
    _emit_sweep(results, fmt, time.time() - start)


# --------------------------------------------------------------------------- #
# entry point
# --------------------------------------------------------------------------- #
def _validate_subsets(parser, problems, orderings, strategies) -> None:
    for name in problems or []:
        if name not in PROBLEMS:
            parser.error(
                f"unknown --problems value {name!r}; expected one of {', '.join(sorted(PROBLEMS))}"
            )
    for flag, values, resolver in (
        ("--orderings", orderings, resolve_ordering),
        ("--strategies", strategies, resolve_strategy),
    ):
        for name in values or []:
            try:
                resolver(name)
            except ValueError as exc:
                prefix = "unknown" if "unknown" in str(exc) else "invalid"
                parser.error(f"{prefix} {flag} value {name!r}: {exc}")


def main(argv: list[str] | None = None) -> int:
    raw_argv = list(sys.argv[1:] if argv is None else argv)
    if raw_argv and raw_argv[0].lower() == "bench":
        # the performance harness has its own subcommand grammar (run /
        # compare / list) and flag set; hand the rest of argv straight over
        from repro.bench.cli import main as bench_main

        return bench_main(raw_argv[1:])
    if raw_argv and raw_argv[0].lower() == "tune":
        # the auto-tuning verb owns its flag grammar too (see
        # repro/tune/cli.py)
        from repro.tune.cli import main as tune_main

        return tune_main(raw_argv[1:])
    if raw_argv and raw_argv[0].lower() == "robustness":
        # the fault-injection verb owns its flag grammar (see
        # repro/faults/cli.py)
        from repro.faults.cli import main as robustness_main

        return robustness_main(raw_argv[1:])
    if raw_argv and raw_argv[0].lower() in ("serve", "submit", "query"):
        # the service verbs likewise own their flag grammar (see
        # repro/service/cli.py); the verb itself selects the subcommand
        from repro.service.cli import main as service_main

        return service_main(raw_argv)
    parser = build_parser()
    args = parser.parse_args(raw_argv)
    target = args.target.lower()

    if target == "bench":
        # flags before the verb are ambiguous (--nprocs etc. belong to the
        # bench subcommands); require the verb-first spelling explicitly
        parser.error("'bench' must come first: repro bench {run,compare,list} ...")

    if target in ("serve", "submit", "query", "tune", "robustness"):
        parser.error(f"'{target}' must come first: repro {target} [flags] ...")

    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    if target == "list":
        if args.format == "csv":
            parser.error("the 'list' target supports --format text or json, not csv")
        _print_listing(args.format)
        return 0

    problems = [p.strip().upper() for p in args.problems.split(",") if p.strip()] or None
    orderings = [o.strip() for o in split_spec_list(args.orderings)] or None
    strategies = [s.strip() for s in split_spec_list(args.strategies)] or None
    _validate_subsets(parser, problems, orderings, strategies)

    table_names = list(tables_mod.ALL_TABLES)
    figure_names = list(figures_mod.ALL_FIGURES)

    wanted_tables: list[str] = []
    wanted_figures: list[str] = []
    wanted_sweep = False
    figures_only = False
    if target == "all":
        wanted_tables = table_names
        wanted_figures = figure_names
    elif target == "tables":
        wanted_tables = table_names
    elif target == "figures":
        wanted_figures = figure_names
        figures_only = True
    elif target == "sweep":
        wanted_sweep = True
    elif target in tables_mod.ALL_TABLES:
        wanted_tables = [target]
    elif target in figures_mod.ALL_FIGURES:
        wanted_figures = [target]
        figures_only = True
    else:
        parser.error(f"unknown target {args.target!r}")

    nprocs_axis = args.nprocs if isinstance(args.nprocs, list) else [args.nprocs]
    if len(nprocs_axis) > 1 and not wanted_sweep:
        parser.error("a multi-valued --nprocs axis is only supported by the 'sweep' target")
    if args.store is not None and not wanted_sweep:
        parser.error("--store is only supported by the 'sweep' target")
    engine_nprocs = nprocs_axis[0]

    # engine flags the user actually typed (vs. parser defaults); short
    # options may be condensed ("-j4"), long options may use "--flag=value"
    def _typed(flag: str) -> bool:
        if flag.startswith("--"):
            return any(arg == flag or arg.startswith(flag + "=") for arg in raw_argv)
        return any(arg.startswith(flag) and not arg.startswith("--") for arg in raw_argv)

    explicit = {kwarg for flag, kwarg in _ENGINE_FLAGS.items() if _typed(flag)}

    if wanted_figures:
        overrides: dict[str, object] = {}
        if "nprocs" in explicit:
            overrides["nprocs"] = engine_nprocs
        if "cache_dir" in explicit and args.cache:
            overrides["cache_dir"] = args.cache
        if figures_only:
            # flags that no figure can consume are an error rather than a no-op
            for kwarg in ("scale", "jobs"):
                if kwarg in explicit:
                    parser.error(f"{_FLAG_OF[kwarg]} is not supported by figure targets")
            figure_kwargs = _figure_kwargs(parser, wanted_figures, overrides)
        else:
            # 'all': thread what each figure supports, the rest configures the tables
            figure_kwargs = {
                name: {
                    key: value
                    for key, value in overrides.items()
                    if key in figures_mod.ALL_FIGURES.entry(name).params
                }
                for name in wanted_figures
            }

    if wanted_tables or wanted_sweep:
        runner = ExperimentRunner(
            nprocs=engine_nprocs,
            scale=args.scale,
            cache_dir=args.cache or None,
            jobs=args.jobs,
            progress=None if args.no_progress else _progress_printer,
        )
        try:
            if wanted_tables:
                _run_tables(runner, wanted_tables, problems, orderings)
            if wanted_sweep:
                axis = args.nprocs if isinstance(args.nprocs, list) else [None]
                _run_sweep(
                    runner, problems, orderings, strategies, axis,
                    split=args.split, fmt=args.format, store=args.store,
                )
        finally:
            runner.close()
    if wanted_figures:
        _run_figures(wanted_figures, figure_kwargs)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
