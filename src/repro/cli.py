"""Command-line interface: regenerate the paper's tables and figures.

Examples
--------
Regenerate Table 2 on 8 simulated processors at reduced scale::

    python -m repro table2 --nprocs 8 --scale 0.4

Regenerate every table and figure (the full evaluation)::

    python -m repro all --nprocs 32 --scale 1.0 --cache .repro_cache

List the available problems, orderings and strategies::

    python -m repro list
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import ExperimentRunner, PROBLEMS
from repro.experiments import figures as figures_mod
from repro.experiments import tables as tables_mod
from repro.ordering import ORDERINGS
from repro.scheduling import STRATEGIES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Memory-based scheduling for a parallel multifrontal solver'",
    )
    parser.add_argument("target", help="table1..table6, figure1..figure8, 'all', 'tables', 'figures' or 'list'")
    parser.add_argument("--nprocs", type=int, default=32, help="number of simulated processors (paper: 32)")
    parser.add_argument("--scale", type=float, default=1.0, help="problem scale factor (1.0 = full analogue size)")
    parser.add_argument("--cache", default="", help="directory for the analysis cache (optional)")
    parser.add_argument(
        "--problems", default="", help="comma-separated subset of problems (default: the table's own set)"
    )
    parser.add_argument(
        "--orderings", default="", help="comma-separated subset of orderings (default: metis,pord,amd,amf)"
    )
    return parser


def _print_listing() -> None:
    print("problems:")
    for name, spec in PROBLEMS.items():
        print(f"  {name:12s} {'SYM' if spec.symmetric else 'UNS'}  {spec.description}")
    print("orderings:", ", ".join(sorted(ORDERINGS)))
    print("strategies:")
    for name, strategy in STRATEGIES.items():
        print(f"  {name:15s} {strategy.description}")


def _run_tables(runner: ExperimentRunner, names: list[str], problems, orderings) -> None:
    for name in names:
        fn = tables_mod.ALL_TABLES[name]
        start = time.time()
        kwargs = {}
        if problems and name != "table4":
            kwargs["problems"] = problems
        if orderings and name not in ("table1", "table4"):
            kwargs["orderings"] = orderings
        rows = fn(runner, **kwargs)
        print()
        print(tables_mod.format_table(rows, title=f"=== {name.upper()} (regenerated in {time.time() - start:.1f}s) ==="))


def _run_figures(names: list[str]) -> None:
    for name in names:
        fn = figures_mod.ALL_FIGURES[name]
        data = fn()
        print()
        print(f"=== {name.upper()} ===")
        print(data.get("ascii", repr(data)))


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    target = args.target.lower()

    if target == "list":
        _print_listing()
        return 0

    problems = [p.strip().upper() for p in args.problems.split(",") if p.strip()] or None
    orderings = [o.strip().lower() for o in args.orderings.split(",") if o.strip()] or None

    table_names = [t for t in tables_mod.ALL_TABLES]
    figure_names = [f for f in figures_mod.ALL_FIGURES]

    wanted_tables: list[str] = []
    wanted_figures: list[str] = []
    if target == "all":
        wanted_tables = table_names
        wanted_figures = figure_names
    elif target == "tables":
        wanted_tables = table_names
    elif target == "figures":
        wanted_figures = figure_names
    elif target in tables_mod.ALL_TABLES:
        wanted_tables = [target]
    elif target in figures_mod.ALL_FIGURES:
        wanted_figures = [target]
    else:
        parser.error(f"unknown target {args.target!r}")

    if wanted_tables:
        runner = ExperimentRunner(nprocs=args.nprocs, scale=args.scale, cache_dir=args.cache or None)
        _run_tables(runner, wanted_tables, problems, orderings)
    if wanted_figures:
        _run_figures(wanted_figures)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
