"""Command-line interface: regenerate the paper's tables and figures.

Examples
--------
Regenerate Table 2 on 8 simulated processors at reduced scale::

    python -m repro table2 --nprocs 8 --scale 0.4

Regenerate every table and figure (the full evaluation), four analysis
workers in parallel with per-case progress on stderr::

    python -m repro all --nprocs 32 --scale 1.0 --cache .repro_cache --jobs 4

Run an explicit sweep (cartesian product of problems × orderings ×
strategies) and print one row per case::

    python -m repro sweep --problems XENON2,PRE2 --orderings metis,amd \\
        --strategies mumps-workload,memory-full --jobs 4

List the available problems, orderings and strategies::

    python -m repro list
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments import ExperimentRunner, PROBLEMS
from repro.experiments import figures as figures_mod
from repro.experiments import tables as tables_mod
from repro.experiments.runner import ORDERING_NAMES
from repro.ordering import ORDERINGS
from repro.pipeline import ProgressEvent
from repro.scheduling import STRATEGIES

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Memory-based scheduling for a parallel multifrontal solver'",
    )
    parser.add_argument(
        "target",
        help="table1..table6, figure1..figure8, 'all', 'tables', 'figures', 'sweep' or 'list'",
    )
    parser.add_argument("--nprocs", type=int, default=32, help="number of simulated processors (paper: 32)")
    parser.add_argument("--scale", type=float, default=1.0, help="problem scale factor (1.0 = full analogue size)")
    parser.add_argument("--cache", default="", help="directory for the artifact cache (optional)")
    parser.add_argument(
        "--jobs", "-j", type=int, default=1,
        help="worker processes for sweeps/tables (1 = serial; cases sharing an analysis are grouped per worker)",
    )
    parser.add_argument(
        "--problems", default="", help="comma-separated subset of problems (default: the table's own set)"
    )
    parser.add_argument(
        "--orderings", default="", help="comma-separated subset of orderings (default: metis,pord,amd,amf)"
    )
    parser.add_argument(
        "--strategies", default="",
        help="comma-separated strategies for the 'sweep' target (default: mumps-workload,memory-full)",
    )
    parser.add_argument(
        "--split", action="store_true", help="apply static splitting of large masters ('sweep' target)"
    )
    parser.add_argument(
        "--no-progress", action="store_true", help="disable the per-case progress lines on stderr"
    )
    return parser


def _print_listing() -> None:
    print("problems:")
    for name, spec in PROBLEMS.items():
        print(f"  {name:12s} {'SYM' if spec.symmetric else 'UNS'}  {spec.description}")
    print("orderings:", ", ".join(sorted(ORDERINGS)))
    print("strategies:")
    for name, strategy in STRATEGIES.items():
        print(f"  {name:15s} {strategy.description}")


def _progress_printer(event: ProgressEvent) -> None:
    print(
        f"  [{event.done}/{event.total}] {event.spec.label()} ({event.seconds:.2f}s)",
        file=sys.stderr,
        flush=True,
    )


def _run_tables(runner: ExperimentRunner, names: list[str], problems, orderings) -> None:
    for name in names:
        fn = tables_mod.ALL_TABLES[name]
        start = time.time()
        kwargs = {}
        if problems and name != "table4":
            kwargs["problems"] = problems
        if orderings and name not in ("table1", "table4"):
            kwargs["orderings"] = orderings
        rows = fn(runner, **kwargs)
        print()
        print(tables_mod.format_table(rows, title=f"=== {name.upper()} (regenerated in {time.time() - start:.1f}s) ==="))


def _run_figures(names: list[str]) -> None:
    for name in names:
        fn = figures_mod.ALL_FIGURES[name]
        data = fn()
        print()
        print(f"=== {name.upper()} ===")
        print(data.get("ascii", repr(data)))


def _run_sweep(runner: ExperimentRunner, problems, orderings, strategies, *, split: bool) -> None:
    problems = problems or list(PROBLEMS)
    orderings = orderings or list(ORDERING_NAMES)
    strategies = strategies or ["mumps-workload", "memory-full"]
    start = time.time()
    results = runner.sweep(problems, orderings, strategies, split=split)
    print()
    print(f"=== SWEEP ({len(results)} cases in {time.time() - start:.1f}s) ===")
    header = f"{'problem':12s} {'ordering':8s} {'strategy':15s} {'split':5s} {'max peak':>12s} {'time':>10s} {'messages':>9s}"
    print(header)
    print("-" * len(header))
    for case in results:
        print(
            f"{case.problem:12s} {case.ordering:8s} {case.strategy:15s} "
            f"{'yes' if case.split else 'no':5s} {case.max_peak_stack:12,.0f} "
            f"{case.total_time:10.4f} {case.messages:9d}"
        )


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    target = args.target.lower()

    if args.jobs < 1:
        parser.error("--jobs must be >= 1")

    if target == "list":
        _print_listing()
        return 0

    problems = [p.strip().upper() for p in args.problems.split(",") if p.strip()] or None
    orderings = [o.strip().lower() for o in args.orderings.split(",") if o.strip()] or None
    strategies = [s.strip().lower() for s in args.strategies.split(",") if s.strip()] or None
    for value, known, flag in (
        (problems, PROBLEMS, "--problems"),
        (orderings, ORDERINGS, "--orderings"),
        (strategies, STRATEGIES, "--strategies"),
    ):
        for name in value or []:
            if name not in known:
                parser.error(f"unknown {flag} value {name!r}; expected one of {', '.join(sorted(known))}")

    table_names = [t for t in tables_mod.ALL_TABLES]
    figure_names = [f for f in figures_mod.ALL_FIGURES]

    wanted_tables: list[str] = []
    wanted_figures: list[str] = []
    wanted_sweep = False
    if target == "all":
        wanted_tables = table_names
        wanted_figures = figure_names
    elif target == "tables":
        wanted_tables = table_names
    elif target == "figures":
        wanted_figures = figure_names
    elif target == "sweep":
        wanted_sweep = True
    elif target in tables_mod.ALL_TABLES:
        wanted_tables = [target]
    elif target in figures_mod.ALL_FIGURES:
        wanted_figures = [target]
    else:
        parser.error(f"unknown target {args.target!r}")

    if wanted_tables or wanted_sweep:
        runner = ExperimentRunner(
            nprocs=args.nprocs,
            scale=args.scale,
            cache_dir=args.cache or None,
            jobs=args.jobs,
            progress=None if args.no_progress else _progress_printer,
        )
        if wanted_tables:
            _run_tables(runner, wanted_tables, problems, orderings)
        if wanted_sweep:
            _run_sweep(runner, problems, orderings, strategies, split=args.split)
    if wanted_figures:
        _run_figures(wanted_figures)
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
