"""Evaluation harness: the paper's test problems, tables and figures.

* :mod:`repro.experiments.problems` — synthetic analogues of the eight
  matrices of Table 1 (the real collections are not redistributable and not
  available offline), with the same symmetric/unsymmetric split and the same
  structural regimes;
* :mod:`repro.experiments.runner` — façade over the staged pipeline engine
  (:mod:`repro.pipeline`): runs (problem × ordering × splitting × strategy)
  cases with content-addressed caching of the analysis phase and optional
  multi-process sweeps (``jobs > 1``);
* :mod:`repro.experiments.tables` — regenerates Tables 1–6;
* :mod:`repro.experiments.figures` — regenerates the illustrative Figures 1–8
  as ascii/structured data.
"""

from repro.experiments.problems import ProblemSpec, PROBLEMS, get_problem, SYMMETRIC_PROBLEMS, UNSYMMETRIC_PROBLEMS
from repro.experiments.runner import ExperimentRunner, CaseResult, CaseSpec, ORDERING_NAMES
from repro.experiments import tables
from repro.experiments import figures

__all__ = [
    "ProblemSpec",
    "PROBLEMS",
    "get_problem",
    "SYMMETRIC_PROBLEMS",
    "UNSYMMETRIC_PROBLEMS",
    "ExperimentRunner",
    "CaseResult",
    "CaseSpec",
    "ORDERING_NAMES",
    "tables",
    "figures",
]
