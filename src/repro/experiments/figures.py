"""Regeneration of the paper's illustrative Figures 1-8.

The figures of the paper are explanatory diagrams rather than measurement
plots; each function below reconstructs the underlying object with the
reproduction's own machinery and returns it as structured data plus an ascii
rendering, so the figure benchmarks can check that the mechanisms behave as
the figures describe (e.g. Algorithm 1 levels the memory of the selected
slaves, Algorithm 2 delays a large type-2 task while inside a subtree).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.mapping import NodeType, compute_mapping
from repro.ordering import compute_ordering
from repro.pipeline import AnalysisPipeline
from repro.registry import Registry
from repro.runtime import FactorizationSimulator, SimulationConfig
from repro.scheduling import (
    LifoTaskSelector,
    MemoryAwareTaskSelector,
    MemorySlaveSelector,
    SlaveSelectionContext,
    TaskSelectionContext,
    get_strategy,
)
from repro.runtime.tasks import Task, TaskKind
from repro.sparse import SparsePattern, grid_2d
from repro.symbolic import build_assembly_tree
from repro.analysis.memory import sequential_memory_trace

__all__ = [
    "figure1",
    "figure2",
    "figure3",
    "figure4",
    "figure5",
    "figure6",
    "figure7",
    "figure8",
    "ALL_FIGURES",
]


# --------------------------------------------------------------------------- #
# Figure 1: a matrix and the associated assembly tree
# --------------------------------------------------------------------------- #
def figure1() -> dict[str, object]:
    """The 6×6 example of Section 2: matrix pattern and its assembly tree."""
    # the matrix of Figure 1: variables {1,2}, {3,4} are two independent 2x2
    # blocks coupled through {5,6}
    rows = [
        [0, 1, 4],
        [0, 1, 5],
        [2, 3, 4],
        [2, 3, 5],
        [0, 2, 4, 5],
        [1, 3, 4, 5],
    ]
    pattern = SparsePattern.from_rows(rows, symmetric=True, name="figure1-example")
    tree = build_assembly_tree(pattern, amalgamation_min_pivots=2, amalgamation_relax=0.0)
    return {
        "pattern": pattern,
        "tree": tree,
        "ascii": tree.render_ascii(),
        "nodes": tree.nnodes,
    }


# --------------------------------------------------------------------------- #
# Figure 2: distribution of an assembly tree over four processors
# --------------------------------------------------------------------------- #
def figure2(nprocs: int = 4) -> dict[str, object]:
    """Types and owners of every node of a small tree mapped on ``nprocs`` processors."""
    pattern = grid_2d(24, 24)
    tree = build_assembly_tree(pattern, compute_ordering(pattern, "metis"))
    mapping = compute_mapping(tree, nprocs, type2_front_threshold=40, type2_cb_threshold=8, type3_front_threshold=60)

    def annotate(i: int) -> str:
        kind = NodeType(int(mapping.node_type[i])).name
        owner = int(mapping.owner[i])
        return f"{kind} P{owner}" if owner >= 0 else f"{kind} (all)"

    return {
        "tree": tree,
        "mapping": mapping,
        "summary": mapping.summary(tree),
        "ascii": tree.render_ascii(annotate=annotate, max_nodes=80),
    }


# --------------------------------------------------------------------------- #
# Figure 3: 1-D blocking of type-2 nodes (symmetric vs unsymmetric)
# --------------------------------------------------------------------------- #
def figure3(npiv: int = 40, nfront: int = 200, nslaves: int = 3) -> dict[str, object]:
    """Default (workload-balanced) row blocking of a type-2 front.

    Unsymmetric fronts are cut in equal row blocks; symmetric fronts use
    irregular blocks so that every slave receives the same number of entries
    of the lower trapezoid (later rows are longer).
    """
    ncb = nfront - npiv
    # unsymmetric: regular blocking
    base = ncb // nslaves
    unsym = [base + (1 if i < ncb % nslaves else 0) for i in range(nslaves)]
    # symmetric: choose block boundaries that equalise entries; row i of the CB
    # (1-based) has npiv + i entries in the lower trapezoid
    lengths = npiv + np.arange(1, ncb + 1, dtype=np.float64)
    cumulative = np.cumsum(lengths)
    total = cumulative[-1]
    boundaries = [0]
    for k in range(1, nslaves):
        target = total * k / nslaves
        boundaries.append(int(np.searchsorted(cumulative, target)))
    boundaries.append(ncb)
    sym = [boundaries[k + 1] - boundaries[k] for k in range(nslaves)]
    return {
        "npiv": npiv,
        "nfront": nfront,
        "nslaves": nslaves,
        "unsymmetric_rows": unsym,
        "symmetric_rows": sym,
        "ascii": (
            f"type-2 front npiv={npiv} nfront={nfront}, {nslaves} slaves\n"
            f"  unsymmetric (regular)  blocking: {unsym}\n"
            f"  symmetric  (irregular) blocking: {sym}"
        ),
    }


# --------------------------------------------------------------------------- #
# Figure 4: memory-based slave selection levels the memory
# --------------------------------------------------------------------------- #
def figure4(
    memory_levels: tuple[float, ...] = (1000.0, 6000.0, 2500.0, 4000.0),
    npiv: int = 30,
    nfront: int = 150,
) -> dict[str, object]:
    """Algorithm 1 on a four-processor snapshot (the situation of Figure 4)."""
    nprocs = len(memory_levels)
    mem = np.asarray(memory_levels, dtype=np.float64)
    ctx = SlaveSelectionContext(
        master_proc=0,
        node=0,
        npiv=npiv,
        nfront=nfront,
        ncb=nfront - npiv,
        symmetric=False,
        candidates=list(range(1, nprocs)),
        memory_view=mem,
        effective_memory_view=mem,
        load_view=np.zeros(nprocs),
        own_load=0.0,
        own_memory=float(mem[0]),
        min_rows_per_slave=1,
        max_slaves=nprocs - 1,
    )
    selection = MemorySlaveSelector(use_predictions=False).select(ctx)
    after = mem.copy()
    for proc, rows in selection:
        after[proc] += rows * nfront
    lines = ["proc  before     rows given   after"]
    given = dict(selection)
    for q in range(nprocs):
        tag = "(master)" if q == 0 else ""
        lines.append(f"P{q}    {mem[q]:8.0f}   {given.get(q, 0):10d}   {after[q]:8.0f} {tag}")
    return {
        "memory_before": mem,
        "selection": selection,
        "memory_after": after,
        "ascii": "\n".join(lines),
    }


# --------------------------------------------------------------------------- #
# Figure 5: staleness of the memory information
# --------------------------------------------------------------------------- #
def figure5(latency: float = 5e-4, cache_dir: str | None = None) -> dict[str, object]:
    """Quantify the divergence between a processor's memory and the others' view of it.

    A small problem is simulated twice, with negligible and with large
    bookkeeping latency; the figure's point is that decisions taken from a
    stale view can mis-place slave tasks, which shows up as a (slightly)
    different peak.

    The pattern → ordering → tree chain goes through the pipeline engine;
    with ``REPRO_CACHE_DIR`` set, repeated regenerations reload the persisted
    ordering/analysis artifacts instead of re-running the symbolic phase.
    (The figure's engine parameters differ from the tables' — scale 0.35,
    default amalgamation — so it does not share artifacts with them.)
    """
    engine = AnalysisPipeline(
        nprocs=8, scale=0.35, amalgamation_relax=0.25, amalgamation_min_pivots=8,
        cache_dir=cache_dir,
    )
    tree = engine.tree("XENON2", "metis")
    peaks = {}
    for label, lat in (("fresh views", 1e-9), ("stale views", latency)):
        config = SimulationConfig.paper(8, memory_message_latency=lat, latency=lat)
        strategy = get_strategy("memory-basic")
        slave, task = strategy.build()
        result = FactorizationSimulator(
            tree, config=config, slave_selector=slave, task_selector=task
        ).run()
        peaks[label] = result.max_peak_stack
    return {
        "peaks": peaks,
        "latency": latency,
        "ascii": "\n".join(f"{k:12s}: max stack peak = {v:,.0f} entries" for k, v in peaks.items()),
    }


# --------------------------------------------------------------------------- #
# Figure 6: predicting the activation of incoming master tasks
# --------------------------------------------------------------------------- #
def figure6() -> dict[str, object]:
    """Effect of the Section 5.1 prediction on the slave choice.

    Processor P0 is about to activate a large master task (predicted cost
    added to its effective metric); without predictions Algorithm 1 picks P0
    as the least loaded slave, with predictions it avoids it.
    """
    mem = np.array([500.0, 3000.0, 2600.0], dtype=np.float64)
    predicted = np.array([9000.0, 0.0, 0.0], dtype=np.float64)
    effective = mem + predicted
    common = dict(
        master_proc=1,
        node=0,
        npiv=20,
        nfront=120,
        ncb=100,
        symmetric=False,
        candidates=[0, 2],
        load_view=np.zeros(3),
        own_load=0.0,
        own_memory=float(mem[1]),
        min_rows_per_slave=1,
        max_slaves=2,
    )
    ctx_plain = SlaveSelectionContext(memory_view=mem, effective_memory_view=mem, **common)
    ctx_pred = SlaveSelectionContext(memory_view=mem, effective_memory_view=effective, **common)
    without = MemorySlaveSelector(use_predictions=False).select(ctx_plain)
    with_pred = MemorySlaveSelector(use_predictions=True).select(ctx_pred)
    rows_on_p0_without = dict(without).get(0, 0)
    rows_on_p0_with = dict(with_pred).get(0, 0)
    return {
        "memory": mem,
        "predicted_master": predicted,
        "selection_without_prediction": without,
        "selection_with_prediction": with_pred,
        "rows_on_p0_without": rows_on_p0_without,
        "rows_on_p0_with": rows_on_p0_with,
        "ascii": (
            f"P0 instantaneous memory {mem[0]:.0f}, incoming master task {predicted[0]:.0f}\n"
            f"  without prediction: {without}  (P0 receives {rows_on_p0_without} rows)\n"
            f"  with prediction:    {with_pred}  (P0 receives {rows_on_p0_with} rows)"
        ),
    }


# --------------------------------------------------------------------------- #
# Figure 7: the pool of ready tasks
# --------------------------------------------------------------------------- #
def figure7(nprocs: int = 4) -> dict[str, object]:
    """Initial content of the local pools (leaves grouped per subtree)."""
    pattern = grid_2d(20, 20)
    tree = build_assembly_tree(pattern, compute_ordering(pattern, "metis"))
    config = SimulationConfig(nprocs=nprocs, type2_front_threshold=48, type2_cb_threshold=8, type3_front_threshold=80)
    strategy = get_strategy("mumps-workload")
    slave, task = strategy.build()
    sim = FactorizationSimulator(tree, config=config, slave_selector=slave, task_selector=task)
    pools = {p: sim._initial_pool_order(p) for p in range(nprocs)}
    subtree_of = sim.mapping.subtree_of
    lines = []
    for p, order in pools.items():
        tags = [f"{n}(S{int(subtree_of[n])})" for n in order]
        lines.append(f"P{p}: " + " ".join(tags) if tags else f"P{p}: (empty)")
    return {
        "pools": pools,
        "mapping": sim.mapping,
        "ascii": "\n".join(lines),
    }


# --------------------------------------------------------------------------- #
# Figure 8: critical situation for the task selection
# --------------------------------------------------------------------------- #
def figure8() -> dict[str, object]:
    """Algorithm 2 delays a large type-2 master while a subtree is in progress."""
    def make_task(node: int, kind: TaskKind, memory_cost: float, in_subtree: int) -> Task:
        return Task(kind=kind, node=node, proc=0, flops=1.0, memory_cost=memory_cost, in_subtree=in_subtree)

    pool = [
        make_task(1, TaskKind.TYPE1, 500.0, in_subtree=7),    # bottom of the stack
        make_task(2, TaskKind.TYPE1, 400.0, in_subtree=7),
        make_task(3, TaskKind.TYPE2_MASTER, 50_000.0, in_subtree=-1),  # large ready type-2 node (task A)
    ]
    ctx = TaskSelectionContext(
        proc=0,
        pool=pool,
        current_memory=8_000.0,
        current_subtree=7,
        current_subtree_peak=6_000.0,
        observed_peak=20_000.0,
    )
    lifo_choice = LifoTaskSelector().select(ctx)
    memory_choice = MemoryAwareTaskSelector().select(ctx)
    return {
        "pool": pool,
        "lifo_choice_node": pool[lifo_choice].node,
        "memory_choice_node": pool[memory_choice].node,
        "ascii": (
            "pool (bottom→top): "
            + ", ".join(f"node {t.node} ({t.memory_cost:.0f} entries)" for t in pool)
            + f"\n  LIFO (original MUMPS) activates node {pool[lifo_choice].node}"
            + f"\n  Algorithm 2 activates node {pool[memory_choice].node} (delays the large type-2 node)"
        ),
    }


#: Registry of the figure generators (a Mapping: ``ALL_FIGURES["figure5"]``).
#: ``params`` records the keyword arguments each generator accepts; the CLI
#: threads its ``--nprocs`` / ``--cache`` flags through them (and rejects
#: flags no requested figure supports, instead of silently ignoring them).
ALL_FIGURES: Registry = Registry("figure")
ALL_FIGURES.add("figure1", figure1,
                description="The 6x6 example matrix and its assembly tree (Section 2)")
ALL_FIGURES.add("figure2", figure2,
                description="Distribution of an assembly tree over the processors",
                params={"nprocs": 4})
ALL_FIGURES.add("figure3", figure3,
                description="1-D blocking of type-2 nodes (symmetric vs unsymmetric)",
                params={"npiv": 40, "nfront": 200, "nslaves": 3})
ALL_FIGURES.add("figure4", figure4,
                description="Algorithm 1 levels the memory of the selected slaves")
ALL_FIGURES.add("figure5", figure5,
                description="Staleness of the memory information (bookkeeping latency)",
                params={"latency": 5e-4, "cache_dir": None})
ALL_FIGURES.add("figure6", figure6,
                description="Predicting the activation of incoming master tasks (Section 5.1)")
ALL_FIGURES.add("figure7", figure7,
                description="Initial content of the local task pools",
                params={"nprocs": 4})
ALL_FIGURES.add("figure8", figure8,
                description="Algorithm 2 delays a large type-2 master inside a subtree")
