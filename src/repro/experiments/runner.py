"""Experiment runner: (problem × ordering × splitting × strategy) → metrics.

This module is a thin, backwards-compatible façade over the staged pipeline
engine (:mod:`repro.pipeline`).  The engine owns the stage chain and the
content-addressed artifact store; the runner translates the historical
call-style (``run_case("XENON2", "metis", "memory-full")``) into
:class:`~repro.pipeline.CaseSpec` values and adds the sweep entry points the
tables and the CLI are built on, including parallel execution via
:class:`~repro.pipeline.SweepExecutor` (``jobs > 1``).
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Iterable, Optional, Sequence

import numpy as np

from repro.pipeline import (
    AnalysisPipeline,
    AnalysisProducts,
    CaseResult,
    CaseSpec,
    ProgressEvent,
    SweepExecutor,
)
from repro.runtime import SimulationConfig

__all__ = [
    "ExperimentRunner",
    "CaseResult",
    "CaseSpec",
    "AnalysisProducts",
    "ORDERING_NAMES",
    "percentage_decrease",
]

#: The four reordering techniques of the paper's tables, in column order.
ORDERING_NAMES = ["metis", "pord", "amd", "amf"]


def percentage_decrease(baseline: float, improved: float) -> float:
    """Percentage decrease of ``improved`` with respect to ``baseline``.

    Positive values mean the improved strategy uses *less* memory, matching
    the sign convention of Tables 2, 3 and 5 of the paper.
    """
    if baseline <= 0:
        return 0.0
    return 100.0 * (baseline - improved) / baseline


class ExperimentRunner:
    """Run and cache the evaluation cases.

    Parameters
    ----------
    nprocs:
        Number of simulated processors (the paper uses 32).
    scale:
        Problem scale factor forwarded to the problem builders; the unit
        tests use small values, the benchmarks use 1.0.
    config:
        Base :class:`SimulationConfig`; ``nprocs`` is overridden by the
        runner's value.
    cache_dir:
        Directory for the on-disk artifact store (``None`` disables it).  The
        default honours the ``REPRO_CACHE_DIR`` environment variable.
    jobs:
        Default number of worker processes for :meth:`sweep` /
        :meth:`run_cases` (1 = serial, in-process).
    progress:
        Optional per-case progress callback (receives a
        :class:`~repro.pipeline.ProgressEvent`).
    """

    def __init__(
        self,
        *,
        nprocs: int = 32,
        scale: float = 1.0,
        config: SimulationConfig | None = None,
        cache_dir: str | os.PathLike | None = None,
        amalgamation_relax: float = 0.15,
        amalgamation_min_pivots: int = 4,
        jobs: int = 1,
        progress: Optional[Callable[[ProgressEvent], None]] = None,
    ) -> None:
        self.engine = AnalysisPipeline(
            nprocs=nprocs,
            scale=scale,
            config=config,
            cache_dir=cache_dir,
            amalgamation_relax=amalgamation_relax,
            amalgamation_min_pivots=amalgamation_min_pivots,
        )
        self.jobs = int(jobs)
        self.progress = progress
        self._executor: Optional[SweepExecutor] = None

    # -- engine attribute passthroughs (kept for callers of the old API) -- #
    @property
    def config(self) -> SimulationConfig:
        return self.engine.config

    @property
    def nprocs(self) -> int:
        return self.engine.nprocs

    @property
    def scale(self) -> float:
        return self.engine.scale

    @property
    def cache_dir(self) -> Optional[Path]:
        return Path(self.engine.cache_dir) if self.engine.cache_dir else None

    @property
    def amalgamation_relax(self) -> float:
        return self.engine.amalgamation_relax

    @property
    def amalgamation_min_pivots(self) -> int:
        return self.engine.amalgamation_min_pivots

    # ------------------------------------------------------------------ #
    # cached pipeline stages
    # ------------------------------------------------------------------ #
    def pattern(self, problem: str):
        return self.engine.pattern(problem)

    def ordering(self, problem: str, ordering: str) -> np.ndarray:
        return self.engine.ordering(problem, ordering)

    def analysis(self, problem: str, ordering: str, *, split: bool) -> AnalysisProducts:
        """Pattern → ordering → assembly tree → (splitting) → static mapping."""
        return self.engine.analysis(problem, ordering, split=split)

    # ------------------------------------------------------------------ #
    # simulation
    # ------------------------------------------------------------------ #
    def run_case(
        self,
        problem: str,
        ordering: str,
        strategy: str,
        *,
        split: bool = False,
        track_traces: bool = False,
    ) -> CaseResult:
        """Run one full case and return its metrics."""
        return self.engine.run_case(
            CaseSpec(
                problem=problem,
                ordering=ordering,
                strategy=strategy,
                split=split,
                track_traces=track_traces,
            )
        )

    def compare(
        self,
        problem: str,
        ordering: str,
        *,
        baseline: str = "mumps-workload",
        candidate: str = "memory-full",
        split_baseline: bool = False,
        split_candidate: bool = False,
    ) -> dict[str, float]:
        """Percentage decrease of the max stack peak of ``candidate`` vs ``baseline``."""
        base = self.run_case(problem, ordering, baseline, split=split_baseline)
        cand = self.run_case(problem, ordering, candidate, split=split_candidate)
        return {
            "baseline_peak": base.max_peak_stack,
            "candidate_peak": cand.max_peak_stack,
            "gain_percent": percentage_decrease(base.max_peak_stack, cand.max_peak_stack),
            "baseline_time": base.total_time,
            "candidate_time": cand.total_time,
            "time_loss_percent": (
                100.0 * (cand.total_time - base.total_time) / base.total_time
                if base.total_time > 0
                else 0.0
            ),
        }

    # ------------------------------------------------------------------ #
    # sweeps
    # ------------------------------------------------------------------ #
    def run_cases(self, specs: Sequence[CaseSpec], *, jobs: int | None = None) -> list[CaseResult]:
        """Run explicit cases (serially or across a process pool, see ``jobs``).

        Runs at the runner's own job count share one long-lived executor, so
        consecutive sweeps (e.g. the tables of ``repro all``) reuse the same
        worker processes and the artifacts they hold; an explicit ``jobs``
        override gets a transient executor that is torn down afterwards.
        """
        jobs = self.jobs if jobs is None else int(jobs)
        if jobs == self.jobs:
            if self._executor is None:
                self._executor = SweepExecutor(self.engine, jobs=jobs, progress=self.progress)
            return self._executor.run(specs)
        with SweepExecutor(self.engine, jobs=jobs, progress=self.progress) as executor:
            return executor.run(specs)

    def close(self) -> None:
        """Shut down the sweep worker pool, if one was started."""
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    def sweep(
        self,
        problems: Iterable[str],
        orderings: Iterable[str],
        strategies: Iterable[str],
        *,
        split: bool = False,
        jobs: int | None = None,
    ) -> list[CaseResult]:
        """Run the cartesian product of cases and return all results.

        Results come back in cartesian-product order (problem-major) whatever
        the execution order was, so the parallel path is a drop-in for the
        serial one.
        """
        specs = [
            CaseSpec(problem=problem, ordering=ordering, strategy=strategy, split=split)
            for problem in problems
            for ordering in orderings
            for strategy in strategies
        ]
        return self.run_cases(specs, jobs=jobs)
