"""Experiment runner: (problem × ordering × splitting × strategy) → metrics.

The analysis phase (generation, ordering, symbolic factorization, splitting,
static mapping) is by far the most expensive part of a case, and it is shared
by every strategy being compared, so the runner caches it aggressively — in
memory and optionally on disk — keyed by the parameters that influence it.
The simulation phase is cheap and is re-run for every strategy.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, Optional

import numpy as np

from repro.experiments.problems import PROBLEMS, ProblemSpec, get_problem
from repro.mapping import StaticMapping, compute_mapping
from repro.ordering import compute_ordering
from repro.runtime import FactorizationSimulator, SimulationConfig, SimulationResult
from repro.scheduling import get_strategy
from repro.symbolic import AssemblyTree, build_assembly_tree, split_large_masters

__all__ = ["ExperimentRunner", "CaseResult", "AnalysisProducts", "ORDERING_NAMES"]

#: The four reordering techniques of the paper's tables, in column order.
ORDERING_NAMES = ["metis", "pord", "amd", "amf"]


@dataclass
class AnalysisProducts:
    """Everything produced by the (cached) analysis phase of one case."""

    problem: str
    ordering: str
    scale: float
    split: bool
    split_threshold: int
    tree: AssemblyTree
    mapping: StaticMapping
    nodes_split: int = 0


@dataclass
class CaseResult:
    """Outcome of one simulated case."""

    problem: str
    ordering: str
    strategy: str
    split: bool
    nprocs: int
    max_peak_stack: float
    avg_peak_stack: float
    sum_peak_stack: float
    total_time: float
    total_factor_entries: float
    per_proc_peak_stack: np.ndarray
    nodes: int
    nodes_split: int
    messages: int

    @classmethod
    def from_simulation(cls, analysis: AnalysisProducts, strategy: str, result: SimulationResult) -> "CaseResult":
        return cls(
            problem=analysis.problem,
            ordering=analysis.ordering,
            strategy=strategy,
            split=analysis.split,
            nprocs=result.nprocs,
            max_peak_stack=result.max_peak_stack,
            avg_peak_stack=result.avg_peak_stack,
            sum_peak_stack=result.sum_peak_stack,
            total_time=result.total_time,
            total_factor_entries=result.total_factor_entries,
            per_proc_peak_stack=result.per_proc_peak_stack,
            nodes=result.nodes,
            nodes_split=analysis.nodes_split,
            messages=int(sum(result.message_counts.values())),
        )


def percentage_decrease(baseline: float, improved: float) -> float:
    """Percentage decrease of ``improved`` with respect to ``baseline``.

    Positive values mean the improved strategy uses *less* memory, matching
    the sign convention of Tables 2, 3 and 5 of the paper.
    """
    if baseline <= 0:
        return 0.0
    return 100.0 * (baseline - improved) / baseline


class ExperimentRunner:
    """Run and cache the evaluation cases.

    Parameters
    ----------
    nprocs:
        Number of simulated processors (the paper uses 32).
    scale:
        Problem scale factor forwarded to the problem builders; the unit
        tests use small values, the benchmarks use 1.0.
    config:
        Base :class:`SimulationConfig`; ``nprocs`` is overridden by the
        runner's value.
    cache_dir:
        Directory for the on-disk analysis cache (``None`` disables it).  The
        default honours the ``REPRO_CACHE_DIR`` environment variable.
    """

    def __init__(
        self,
        *,
        nprocs: int = 32,
        scale: float = 1.0,
        config: SimulationConfig | None = None,
        cache_dir: str | os.PathLike | None = None,
        amalgamation_relax: float = 0.15,
        amalgamation_min_pivots: int = 4,
    ) -> None:
        if config is None:
            config = SimulationConfig(
                nprocs=nprocs,
                type2_front_threshold=96,
                type2_cb_threshold=24,
                type3_front_threshold=256,
            )
        else:
            config = SimulationConfig(**{**config.__dict__, "nprocs": nprocs})
        self.config = config
        self.nprocs = nprocs
        self.scale = float(scale)
        self.amalgamation_relax = amalgamation_relax
        self.amalgamation_min_pivots = amalgamation_min_pivots
        if cache_dir is None:
            cache_dir = os.environ.get("REPRO_CACHE_DIR", "")
        self.cache_dir: Optional[Path] = Path(cache_dir) if cache_dir else None
        if self.cache_dir is not None:
            self.cache_dir.mkdir(parents=True, exist_ok=True)
        self._analysis_cache: dict[tuple, AnalysisProducts] = {}
        self._ordering_cache: dict[tuple, np.ndarray] = {}
        self._pattern_cache: dict[str, object] = {}

    # ------------------------------------------------------------------ #
    # cached pipeline stages
    # ------------------------------------------------------------------ #
    def pattern(self, problem: str):
        spec = get_problem(problem)
        key = spec.name
        if key not in self._pattern_cache:
            self._pattern_cache[key] = spec.build(self.scale)
        return self._pattern_cache[key]

    def _disk_key(self, parts: tuple) -> Optional[Path]:
        if self.cache_dir is None:
            return None
        digest = hashlib.sha256(repr(parts).encode()).hexdigest()[:24]
        return self.cache_dir / f"analysis-{digest}.pkl"

    def ordering(self, problem: str, ordering: str) -> np.ndarray:
        key = (problem, ordering, self.scale)
        if key not in self._ordering_cache:
            self._ordering_cache[key] = compute_ordering(self.pattern(problem), ordering)
        return self._ordering_cache[key]

    def analysis(self, problem: str, ordering: str, *, split: bool) -> AnalysisProducts:
        """Pattern → ordering → assembly tree → (splitting) → static mapping."""
        spec = get_problem(problem)
        key = (
            spec.name,
            ordering,
            self.scale,
            bool(split),
            spec.split_threshold,
            self.nprocs,
            self.amalgamation_relax,
            self.amalgamation_min_pivots,
            self.config.type2_front_threshold,
            self.config.type2_cb_threshold,
            self.config.type3_front_threshold,
            self.config.imbalance_tolerance,
            self.config.min_subtrees_per_proc,
            self.config.subtree_cost,
        )
        if key in self._analysis_cache:
            return self._analysis_cache[key]
        disk = self._disk_key(key)
        if disk is not None and disk.exists():
            with open(disk, "rb") as fh:
                products: AnalysisProducts = pickle.load(fh)
            self._analysis_cache[key] = products
            return products

        pattern = self.pattern(problem)
        perm = self.ordering(problem, ordering)
        tree = build_assembly_tree(
            pattern,
            perm,
            amalgamation_min_pivots=self.amalgamation_min_pivots,
            amalgamation_relax=self.amalgamation_relax,
            keep_variables=False,
            name=f"{spec.name}-{ordering}",
        )
        nodes_split = 0
        if split:
            threshold = max(int(spec.split_threshold * self.scale), 1_000)
            tree, report = split_large_masters(tree, threshold)
            nodes_split = report.nodes_split
        mapping = compute_mapping(
            tree,
            self.nprocs,
            type2_front_threshold=self.config.type2_front_threshold,
            type2_cb_threshold=self.config.type2_cb_threshold,
            type3_front_threshold=self.config.type3_front_threshold,
            imbalance_tolerance=self.config.imbalance_tolerance,
            min_subtrees_per_proc=self.config.min_subtrees_per_proc,
            subtree_cost=self.config.subtree_cost,
        )
        products = AnalysisProducts(
            problem=spec.name,
            ordering=ordering,
            scale=self.scale,
            split=bool(split),
            split_threshold=spec.split_threshold,
            tree=tree,
            mapping=mapping,
            nodes_split=nodes_split,
        )
        self._analysis_cache[key] = products
        if disk is not None:
            with open(disk, "wb") as fh:
                pickle.dump(products, fh)
        return products

    # ------------------------------------------------------------------ #
    # simulation
    # ------------------------------------------------------------------ #
    def run_case(
        self,
        problem: str,
        ordering: str,
        strategy: str,
        *,
        split: bool = False,
        track_traces: bool = False,
    ) -> CaseResult:
        """Run one full case and return its metrics."""
        analysis = self.analysis(problem, ordering, split=split)
        preset = get_strategy(strategy)
        slave_selector, task_selector = preset.build()
        config = SimulationConfig(**{**self.config.__dict__, "track_traces": track_traces})
        sim = FactorizationSimulator(
            analysis.tree,
            config=config,
            mapping=analysis.mapping,
            slave_selector=slave_selector,
            task_selector=task_selector,
            strategy_name=strategy,
        )
        result = sim.run()
        return CaseResult.from_simulation(analysis, strategy, result)

    def compare(
        self,
        problem: str,
        ordering: str,
        *,
        baseline: str = "mumps-workload",
        candidate: str = "memory-full",
        split_baseline: bool = False,
        split_candidate: bool = False,
    ) -> dict[str, float]:
        """Percentage decrease of the max stack peak of ``candidate`` vs ``baseline``."""
        base = self.run_case(problem, ordering, baseline, split=split_baseline)
        cand = self.run_case(problem, ordering, candidate, split=split_candidate)
        return {
            "baseline_peak": base.max_peak_stack,
            "candidate_peak": cand.max_peak_stack,
            "gain_percent": percentage_decrease(base.max_peak_stack, cand.max_peak_stack),
            "baseline_time": base.total_time,
            "candidate_time": cand.total_time,
            "time_loss_percent": (
                100.0 * (cand.total_time - base.total_time) / base.total_time
                if base.total_time > 0
                else 0.0
            ),
        }

    def sweep(
        self,
        problems: Iterable[str],
        orderings: Iterable[str],
        strategies: Iterable[str],
        *,
        split: bool = False,
    ) -> list[CaseResult]:
        """Run the cartesian product of cases and return all results."""
        out: list[CaseResult] = []
        for problem in problems:
            for ordering in orderings:
                for strategy in strategies:
                    out.append(self.run_case(problem, ordering, strategy, split=split))
        return out
