"""Experiment runner: (problem × ordering × splitting × strategy) → metrics.

This module is the backwards-compatible shim kept for the historical
call-style (``run_case("XENON2", "metis", "memory-full")``,
``sweep(problems, orderings, strategies)``).  All the machinery lives in
:class:`repro.session.Session` (engine + executor + declarative sweeps);
:class:`ExperimentRunner` subclasses it and translates positional arguments
into :class:`~repro.pipeline.CaseSpec` values.  New code should use
:func:`repro.open_session` — see ``docs/api.md`` for the migration notes.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Callable, Iterable, Optional

from repro.pipeline import AnalysisProducts, CaseResult, CaseSpec, ProgressEvent
from repro.runtime import SimulationConfig
from repro.session import Session, percentage_decrease

__all__ = [
    "ExperimentRunner",
    "CaseResult",
    "CaseSpec",
    "AnalysisProducts",
    "ORDERING_NAMES",
    "percentage_decrease",
]

#: The four reordering techniques of the paper's tables, in column order.
ORDERING_NAMES = ["metis", "pord", "amd", "amf"]


class ExperimentRunner(Session):
    """Run and cache the evaluation cases (historical façade).

    Parameters
    ----------
    nprocs:
        Number of simulated processors (the paper uses 32).
    scale:
        Problem scale factor forwarded to the problem builders; the unit
        tests use small values, the benchmarks use 1.0.
    config:
        Base :class:`SimulationConfig`; ``nprocs`` is overridden by the
        runner's value.
    cache_dir:
        Directory for the on-disk artifact store (``None`` disables it).  The
        default honours the ``REPRO_CACHE_DIR`` environment variable.
    jobs:
        Default number of worker processes for :meth:`sweep` /
        :meth:`run_cases` (1 = serial, in-process).
    progress:
        Optional per-case progress callback (receives a
        :class:`~repro.pipeline.ProgressEvent`).
    """

    def __init__(
        self,
        *,
        nprocs: int = 32,
        scale: float = 1.0,
        config: SimulationConfig | None = None,
        cache_dir: str | os.PathLike | None = None,
        amalgamation_relax: float = 0.15,
        amalgamation_min_pivots: int = 4,
        jobs: int = 1,
        progress: Optional[Callable[[ProgressEvent], None]] = None,
    ) -> None:
        super().__init__(
            nprocs=nprocs,
            scale=scale,
            config=config,
            cache_dir=cache_dir,
            amalgamation_relax=amalgamation_relax,
            amalgamation_min_pivots=amalgamation_min_pivots,
            jobs=jobs,
            progress=progress,
        )

    # -- engine attribute passthroughs (kept for callers of the old API) -- #
    @property
    def cache_dir(self) -> Optional[Path]:
        return Path(self.engine.cache_dir) if self.engine.cache_dir else None

    @property
    def amalgamation_relax(self) -> float:
        return self.engine.amalgamation_relax

    @property
    def amalgamation_min_pivots(self) -> int:
        return self.engine.amalgamation_min_pivots

    # ------------------------------------------------------------------ #
    # simulation (historical call-style)
    # ------------------------------------------------------------------ #
    def run_case(
        self,
        problem: str,
        ordering: str,
        strategy: str,
        *,
        split: bool = False,
        track_traces: bool = False,
    ) -> CaseResult:
        """Run one full case and return its metrics."""
        return self.run(
            CaseSpec(
                problem=problem,
                ordering=ordering,
                strategy=strategy,
                split=split,
                track_traces=track_traces,
            )
        )

    def sweep(
        self,
        problems: Iterable[str],
        orderings: Iterable[str],
        strategies: Iterable[str],
        *,
        split: bool = False,
        jobs: int | None = None,
    ) -> list[CaseResult]:
        """Run the cartesian product of cases and return all results.

        Results come back in cartesian-product order (problem-major) whatever
        the execution order was, so the parallel path is a drop-in for the
        serial one.  (:meth:`Session.sweep` accepts the richer declarative
        :class:`~repro.specs.SweepSpec` grids; this signature is the
        historical one.)
        """
        specs = [
            CaseSpec(problem=problem, ordering=ordering, strategy=strategy, split=split)
            for problem in problems
            for ordering in orderings
            for strategy in strategies
        ]
        return self.run_cases(specs, jobs=jobs)
