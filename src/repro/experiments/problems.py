"""Synthetic analogues of the paper's eight test problems (Table 1).

The original matrices come from the Rutherford-Boeing, University of Florida
and PARASOL collections and cannot be shipped or downloaded offline.  Each
analogue below is generated to land in the same structural regime as the
original — which is what determines the assembly-tree topology and therefore
the memory behaviour the paper studies — while being 10–50× smaller so the
whole evaluation runs on a laptop in minutes:

===============  ======  =========================  =============================
paper matrix     type    structural regime          analogue
===============  ======  =========================  =============================
BMWCRA_1         SYM     3-D automotive FEM,        27-point 3-D grid expanded to
                         3 dofs/node                3 dofs per node
GUPTA3           SYM     LP normal equations A·Aᵀ   random sparse A, A·Aᵀ pattern
MSDOOR           SYM     medium-size shell/door     9-point 2-D grid, 3 dofs/node
SHIP_003         SYM     ship structure, shells     anisotropic 3-D grid, 3 dofs
PRE2             UNS     harmonic balance circuit   circuit pattern + dense nets
TWOTONE          UNS     harmonic balance circuit   circuit pattern, milder nets
ULTRASOUND3      UNS     3-D wave propagation       27-point 3-D grid, unsym
XENON2           UNS     crystal structure          7-point 3-D grid, unsym
===============  ======  =========================  =============================

Problem construction is deterministic (fixed seeds).  ``scale`` multiplies
the base dimensions of every analogue, so the same registry serves the fast
unit tests (``scale < 1``) and the benchmark harness (``scale = 1``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.registry import Registry
from repro.sparse import (
    SparsePattern,
    circuit_pattern,
    fem_block_pattern,
    grid_2d,
    grid_3d,
    normal_equations,
)

__all__ = [
    "ProblemSpec",
    "PROBLEMS",
    "SYMMETRIC_PROBLEMS",
    "UNSYMMETRIC_PROBLEMS",
    "get_problem",
]


@dataclass(frozen=True)
class ProblemSpec:
    """One test problem of the evaluation.

    Attributes
    ----------
    name:
        Name of the original matrix in the paper (kept as the identifier so
        the regenerated tables read like the paper's).
    symmetric:
        Matrix type in Table 1 (SYM / UNS).
    description:
        Description column of Table 1.
    paper_order, paper_nnz:
        Order and nonzero count of the *original* matrix (reported in the
        regenerated Table 1 next to the analogue's numbers).
    builder:
        Callable ``scale -> SparsePattern`` generating the analogue.
    split_threshold:
        Master-part splitting threshold used for this problem by the
        Table 3/5 experiments (the paper uses 2·10⁶ entries on the full-size
        matrices; the analogue thresholds are scaled accordingly).
    """

    name: str
    symmetric: bool
    description: str
    paper_order: int
    paper_nnz: int
    builder: Callable[[float], SparsePattern]
    split_threshold: int = 60_000

    def build(self, scale: float = 1.0) -> SparsePattern:
        """Generate the analogue pattern at the requested scale."""
        if scale <= 0:
            raise ValueError("scale must be positive")
        pattern = self.builder(scale)
        return SparsePattern(
            n=pattern.n,
            indptr=pattern.indptr,
            indices=pattern.indices,
            symmetric=self.symmetric,
            name=self.name,
        )


def _dim(base: int, scale: float, minimum: int = 3) -> int:
    return max(minimum, int(round(base * scale ** (1.0 / 3.0))))


def _dim2(base: int, scale: float, minimum: int = 4) -> int:
    return max(minimum, int(round(base * scale ** 0.5)))


def _bmwcra_like(scale: float) -> SparsePattern:
    d = _dim(12, scale)
    return fem_block_pattern(grid_3d(d, d, d, stencil=7), 3, name="BMWCRA_1")


def _gupta3_like(scale: float) -> SparsePattern:
    m = max(200, int(1800 * scale))
    n = 3 * m
    return normal_equations(m, n, nnz_per_row=3, seed=11, dense_rows=1, name="GUPTA3")


def _msdoor_like(scale: float) -> SparsePattern:
    d = _dim2(30, scale)
    return fem_block_pattern(grid_2d(d, int(1.6 * d), stencil=9), 3, name="MSDOOR")


def _ship003_like(scale: float) -> SparsePattern:
    # a ship hull is a shell structure: a long, thin, almost two-dimensional
    # mesh with several dofs per node
    d = _dim2(15, scale)
    return fem_block_pattern(grid_3d(2 * d, d, 2, stencil=27), 3, name="SHIP_003")


def _pre2_like(scale: float) -> SparsePattern:
    n = max(400, int(4200 * scale))
    return circuit_pattern(
        n, avg_degree=4.5, n_dense_rows=3, dense_fraction=0.010, symmetry=0.4, seed=21, name="PRE2"
    )


def _twotone_like(scale: float) -> SparsePattern:
    n = max(400, int(3600 * scale))
    return circuit_pattern(
        n, avg_degree=4.0, n_dense_rows=2, dense_fraction=0.007, symmetry=0.25, seed=22, name="TWOTONE"
    )


def _ultrasound3_like(scale: float) -> SparsePattern:
    d = _dim(16, scale)
    return grid_3d(d, d, d, stencil=27, symmetric=False, name="ULTRASOUND3")


def _xenon2_like(scale: float) -> SparsePattern:
    d = _dim(17, scale)
    return grid_3d(d, d, max(3, d - 2), stencil=7, symmetric=False, name="XENON2")


#: The problem registry (a case-insensitive Mapping; names are the paper's
#: matrix names, upper-case).  ``PROBLEMS["xenon2"]`` and ``"XENON2" in
#: PROBLEMS`` both work; new workloads are added with ``PROBLEMS.add``.
PROBLEMS: Registry[ProblemSpec] = Registry("problem", normalize=str.upper)

for _spec in {
    "BMWCRA_1": ProblemSpec(
        name="BMWCRA_1",
        symmetric=True,
        description="Automotive crankshaft model (3-D FEM, 3 dofs/node analogue)",
        paper_order=148_770,
        paper_nnz=5_396_386,
        builder=_bmwcra_like,
        split_threshold=80_000,
    ),
    "GUPTA3": ProblemSpec(
        name="GUPTA3",
        symmetric=True,
        description="Linear programming matrix A·Aᵀ (normal-equations analogue)",
        paper_order=16_783,
        paper_nnz=4_670_105,
        builder=_gupta3_like,
        split_threshold=80_000,
    ),
    "MSDOOR": ProblemSpec(
        name="MSDOOR",
        symmetric=True,
        description="Medium-size door (2-D shell FEM analogue, 3 dofs/node)",
        paper_order=415_863,
        paper_nnz=10_328_399,
        builder=_msdoor_like,
        split_threshold=60_000,
    ),
    "SHIP_003": ProblemSpec(
        name="SHIP_003",
        symmetric=True,
        description="Ship structure (anisotropic 3-D shell FEM analogue)",
        paper_order=121_728,
        paper_nnz=4_103_881,
        builder=_ship003_like,
        split_threshold=80_000,
    ),
    "PRE2": ProblemSpec(
        name="PRE2",
        symmetric=False,
        description="AT&T harmonic balance method (circuit analogue, dense nets)",
        paper_order=659_033,
        paper_nnz=5_959_282,
        builder=_pre2_like,
        split_threshold=60_000,
    ),
    "TWOTONE": ProblemSpec(
        name="TWOTONE",
        symmetric=False,
        description="AT&T harmonic balance method (circuit analogue, milder nets)",
        paper_order=120_750,
        paper_nnz=1_224_224,
        builder=_twotone_like,
        split_threshold=60_000,
    ),
    "ULTRASOUND3": ProblemSpec(
        name="ULTRASOUND3",
        symmetric=False,
        description="Propagation of 3-D ultrasound waves (27-point stencil analogue)",
        paper_order=185_193,
        paper_nnz=11_390_625,
        builder=_ultrasound3_like,
        split_threshold=80_000,
    ),
    "XENON2": ProblemSpec(
        name="XENON2",
        symmetric=False,
        description="Complex zeolite / sodalite crystals (3-D stencil analogue)",
        paper_order=157_464,
        paper_nnz=3_866_688,
        builder=_xenon2_like,
        split_threshold=60_000,
    ),
}.values():
    PROBLEMS.add(_spec.name, _spec, description=_spec.description)

SYMMETRIC_PROBLEMS = [name for name, spec in PROBLEMS.items() if spec.symmetric]
UNSYMMETRIC_PROBLEMS = [name for name, spec in PROBLEMS.items() if not spec.symmetric]


def get_problem(name: str) -> ProblemSpec:
    """Look up a problem by its (paper) name, case-insensitively.

    Unknown names raise ``ValueError`` with a did-you-mean suggestion.
    """
    return PROBLEMS.get(name)
