"""Regeneration of the paper's Tables 1-6.

Every function returns the table as structured data (a dict of dicts keyed
like the paper's rows and columns) and can also render it as plain text with
:func:`format_table`.  The comparisons follow the paper exactly:

* **Table 1** — the test problems (analogue order/nnz next to the paper's);
* **Table 2** — % decrease of the maximum stack peak, dynamic memory strategy
  vs. MUMPS workload strategy, no splitting, 8 matrices × 4 orderings;
* **Table 3** — same comparison on trees whose large type-2 masters have been
  split (unsymmetric matrices, as in the paper);
* **Table 4** — absolute peaks (millions of entries) for two illustrative
  cases, crossing {no splitting, splitting} × {workload, memory};
* **Table 5** — % decrease of memory strategy *plus* splitting vs. the
  original MUMPS strategy without splitting (unsymmetric matrices);
* **Table 6** — factorization-time loss (%) of the memory-optimised strategy
  for three large problems.

Every table funnels its cases through :meth:`ExperimentRunner.run_cases`, so
one table is one sweep: with ``jobs > 1`` on the runner the cases spread over
a process pool (sharing the analysis artifacts per the pipeline engine's
content-addressed store) and the rows are assembled from the results in
order — serial and parallel regeneration produce identical tables.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.experiments.problems import PROBLEMS, UNSYMMETRIC_PROBLEMS, get_problem
from repro.experiments.runner import ORDERING_NAMES, ExperimentRunner, percentage_decrease
from repro.pipeline import CaseResult, CaseSpec
from repro.registry import Registry

__all__ = [
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "format_table",
    "ALL_TABLES",
]

BASELINE = "mumps-workload"
MEMORY = "memory-full"

#: (problem, ordering) pairs of Table 4 — the paper's two illustrative cases.
TABLE4_CASES = [("ULTRASOUND3", "metis"), ("XENON2", "amf")]

#: problems of Table 6 (three large test problems).
TABLE6_PROBLEMS = ["SHIP_003", "PRE2", "ULTRASOUND3"]


def table1(runner: ExperimentRunner, problems: Iterable[str] | None = None) -> dict[str, dict[str, object]]:
    """Table 1: the test problems (analogue sizes next to the paper's)."""
    rows: dict[str, dict[str, object]] = {}
    for name in problems if problems is not None else PROBLEMS:
        spec = get_problem(name)
        pattern = runner.pattern(name)
        rows[spec.name] = {
            "Order": pattern.n,
            "NZ": pattern.nnz,
            "Type": "SYM" if spec.symmetric else "UNS",
            "Paper order": spec.paper_order,
            "Paper NZ": spec.paper_nnz,
            "Description": spec.description,
        }
    return rows


def _paired_cases(
    runner: ExperimentRunner,
    problems: Sequence[str],
    orderings: Sequence[str],
    *,
    split_baseline: bool,
    split_candidate: bool,
) -> dict[tuple[str, str], tuple[CaseResult, CaseResult]]:
    """(baseline, candidate) results for every (problem, ordering) cell, one sweep."""
    specs: list[CaseSpec] = []
    for problem in problems:
        for ordering in orderings:
            specs.append(CaseSpec(problem, ordering, BASELINE, split=split_baseline))
            specs.append(CaseSpec(problem, ordering, MEMORY, split=split_candidate))
    results = runner.run_cases(specs)
    pairs: dict[tuple[str, str], tuple[CaseResult, CaseResult]] = {}
    it = iter(results)
    for problem in problems:
        for ordering in orderings:
            pairs[(problem, ordering)] = (next(it), next(it))
    return pairs


def _gain_table(
    runner: ExperimentRunner,
    problems: Sequence[str],
    orderings: Sequence[str],
    *,
    split_baseline: bool,
    split_candidate: bool,
) -> dict[str, dict[str, float]]:
    pairs = _paired_cases(
        runner, problems, orderings, split_baseline=split_baseline, split_candidate=split_candidate
    )
    rows: dict[str, dict[str, float]] = {}
    for problem in problems:
        row: dict[str, float] = {}
        for ordering in orderings:
            base, cand = pairs[(problem, ordering)]
            row[ordering.upper()] = round(
                percentage_decrease(base.max_peak_stack, cand.max_peak_stack), 1
            )
        rows[problem] = row
    return rows


def table2(
    runner: ExperimentRunner,
    problems: Sequence[str] | None = None,
    orderings: Sequence[str] = tuple(ORDERING_NAMES),
) -> dict[str, dict[str, float]]:
    """Table 2: % decrease of the max stack peak, memory vs. workload, no splitting."""
    if problems is None:
        problems = list(PROBLEMS)
    return _gain_table(runner, list(problems), list(orderings), split_baseline=False, split_candidate=False)


def table3(
    runner: ExperimentRunner,
    problems: Sequence[str] | None = None,
    orderings: Sequence[str] = tuple(ORDERING_NAMES),
) -> dict[str, dict[str, float]]:
    """Table 3: same comparison on statically split trees (unsymmetric matrices)."""
    if problems is None:
        problems = list(UNSYMMETRIC_PROBLEMS)
    return _gain_table(runner, list(problems), list(orderings), split_baseline=True, split_candidate=True)


def table4(runner: ExperimentRunner, cases: Sequence[tuple[str, str]] = tuple(TABLE4_CASES)) -> dict[str, dict[str, float]]:
    """Table 4: absolute max stack peaks (millions of entries) for two cases."""
    combos = [
        (strategy, strategy_label, split, split_label)
        for strategy, strategy_label in ((BASELINE, "MUMPS dynamic"), (MEMORY, "memory-based dynamic"))
        for split, split_label in ((False, "no splitting"), (True, "splitting"))
    ]
    specs = [
        CaseSpec(problem, ordering, strategy, split=split)
        for problem, ordering in cases
        for strategy, _, split, _ in combos
    ]
    results = iter(runner.run_cases(specs))
    rows: dict[str, dict[str, float]] = {}
    for problem, ordering in cases:
        row: dict[str, float] = {}
        for _, strategy_label, _, split_label in combos:
            row[f"{strategy_label} / {split_label}"] = round(next(results).max_peak_stack / 1e6, 3)
        rows[f"{problem} - {ordering.upper()}"] = row
    return rows


def table5(
    runner: ExperimentRunner,
    problems: Sequence[str] | None = None,
    orderings: Sequence[str] = tuple(ORDERING_NAMES),
) -> dict[str, dict[str, float]]:
    """Table 5: memory strategy + splitting vs. original MUMPS (no splitting)."""
    if problems is None:
        problems = list(UNSYMMETRIC_PROBLEMS)
    return _gain_table(runner, list(problems), list(orderings), split_baseline=False, split_candidate=True)


def table6(
    runner: ExperimentRunner,
    problems: Sequence[str] | None = None,
    orderings: Sequence[str] = tuple(ORDERING_NAMES),
) -> dict[str, dict[str, float]]:
    """Table 6: factorization-time loss (%) of the memory-optimised strategy."""
    if problems is None:
        problems = list(TABLE6_PROBLEMS)
    pairs = _paired_cases(
        runner, list(problems), list(orderings), split_baseline=False, split_candidate=True
    )
    rows: dict[str, dict[str, float]] = {}
    for problem in problems:
        row: dict[str, float] = {}
        for ordering in orderings:
            base, cand = pairs[(problem, ordering)]
            loss = (
                100.0 * (cand.total_time - base.total_time) / base.total_time
                if base.total_time > 0
                else 0.0
            )
            row[ordering.upper()] = round(loss, 1)
        rows[problem] = row
    return rows


#: Registry of the table generators (a Mapping: ``ALL_TABLES["table2"]``).
#: ``params`` records which subset keywords each generator accepts — the CLI
#: uses it to thread ``--problems`` / ``--orderings`` only where supported.
ALL_TABLES: Registry = Registry("table")
ALL_TABLES.add("table1", table1, description="The test problems (analogue sizes vs. the paper's)",
               params={"problems": None})
ALL_TABLES.add("table2", table2, description="% decrease of max stack peak, memory vs. workload",
               params={"problems": None, "orderings": None})
ALL_TABLES.add("table3", table3, description="Same comparison on statically split trees",
               params={"problems": None, "orderings": None})
ALL_TABLES.add("table4", table4, description="Absolute peaks for two illustrative cases",
               params={"cases": None})
ALL_TABLES.add("table5", table5, description="Memory strategy + splitting vs. original MUMPS",
               params={"problems": None, "orderings": None})
ALL_TABLES.add("table6", table6, description="Factorization-time loss of the memory strategy",
               params={"problems": None, "orderings": None})


def format_table(rows: Mapping[str, Mapping[str, object]], *, title: str = "") -> str:
    """Render a table (dict of rows, each a dict of columns) as aligned text."""
    if not rows:
        return title
    columns = list(next(iter(rows.values())).keys())
    row_width = max(len(str(r)) for r in rows) + 2
    col_widths = [max(len(str(c)), max(len(str(row.get(c, ""))) for row in rows.values())) + 2 for c in columns]
    lines = []
    if title:
        lines.append(title)
    header = " " * row_width + "".join(str(c).rjust(w) for c, w in zip(columns, col_widths))
    lines.append(header)
    lines.append("-" * len(header))
    for name, row in rows.items():
        lines.append(
            str(name).ljust(row_width)
            + "".join(str(row.get(c, "")).rjust(w) for c, w in zip(columns, col_widths))
        )
    return "\n".join(lines)
