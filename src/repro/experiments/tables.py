"""Regeneration of the paper's Tables 1-6.

Every function returns the table as structured data (a dict of dicts keyed
like the paper's rows and columns) and can also render it as plain text with
:func:`format_table`.  The comparisons follow the paper exactly:

* **Table 1** — the test problems (analogue order/nnz next to the paper's);
* **Table 2** — % decrease of the maximum stack peak, dynamic memory strategy
  vs. MUMPS workload strategy, no splitting, 8 matrices × 4 orderings;
* **Table 3** — same comparison on trees whose large type-2 masters have been
  split (unsymmetric matrices, as in the paper);
* **Table 4** — absolute peaks (millions of entries) for two illustrative
  cases, crossing {no splitting, splitting} × {workload, memory};
* **Table 5** — % decrease of memory strategy *plus* splitting vs. the
  original MUMPS strategy without splitting (unsymmetric matrices);
* **Table 6** — factorization-time loss (%) of the memory-optimised strategy
  for three large problems.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.experiments.problems import PROBLEMS, SYMMETRIC_PROBLEMS, UNSYMMETRIC_PROBLEMS, get_problem
from repro.experiments.runner import ORDERING_NAMES, ExperimentRunner, percentage_decrease

__all__ = [
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "table6",
    "format_table",
    "ALL_TABLES",
]

BASELINE = "mumps-workload"
MEMORY = "memory-full"

#: (problem, ordering) pairs of Table 4 — the paper's two illustrative cases.
TABLE4_CASES = [("ULTRASOUND3", "metis"), ("XENON2", "amf")]

#: problems of Table 6 (three large test problems).
TABLE6_PROBLEMS = ["SHIP_003", "PRE2", "ULTRASOUND3"]


def table1(runner: ExperimentRunner, problems: Iterable[str] | None = None) -> dict[str, dict[str, object]]:
    """Table 1: the test problems (analogue sizes next to the paper's)."""
    rows: dict[str, dict[str, object]] = {}
    for name in problems if problems is not None else PROBLEMS:
        spec = get_problem(name)
        pattern = runner.pattern(name)
        rows[spec.name] = {
            "Order": pattern.n,
            "NZ": pattern.nnz,
            "Type": "SYM" if spec.symmetric else "UNS",
            "Paper order": spec.paper_order,
            "Paper NZ": spec.paper_nnz,
            "Description": spec.description,
        }
    return rows


def _gain_table(
    runner: ExperimentRunner,
    problems: Sequence[str],
    orderings: Sequence[str],
    *,
    split_baseline: bool,
    split_candidate: bool,
) -> dict[str, dict[str, float]]:
    rows: dict[str, dict[str, float]] = {}
    for problem in problems:
        row: dict[str, float] = {}
        for ordering in orderings:
            cmp = runner.compare(
                problem,
                ordering,
                baseline=BASELINE,
                candidate=MEMORY,
                split_baseline=split_baseline,
                split_candidate=split_candidate,
            )
            row[ordering.upper()] = round(cmp["gain_percent"], 1)
        rows[problem] = row
    return rows


def table2(
    runner: ExperimentRunner,
    problems: Sequence[str] | None = None,
    orderings: Sequence[str] = tuple(ORDERING_NAMES),
) -> dict[str, dict[str, float]]:
    """Table 2: % decrease of the max stack peak, memory vs. workload, no splitting."""
    if problems is None:
        problems = list(PROBLEMS)
    return _gain_table(runner, list(problems), list(orderings), split_baseline=False, split_candidate=False)


def table3(
    runner: ExperimentRunner,
    problems: Sequence[str] | None = None,
    orderings: Sequence[str] = tuple(ORDERING_NAMES),
) -> dict[str, dict[str, float]]:
    """Table 3: same comparison on statically split trees (unsymmetric matrices)."""
    if problems is None:
        problems = list(UNSYMMETRIC_PROBLEMS)
    return _gain_table(runner, list(problems), list(orderings), split_baseline=True, split_candidate=True)


def table4(runner: ExperimentRunner, cases: Sequence[tuple[str, str]] = tuple(TABLE4_CASES)) -> dict[str, dict[str, float]]:
    """Table 4: absolute max stack peaks (millions of entries) for two cases."""
    rows: dict[str, dict[str, float]] = {}
    for problem, ordering in cases:
        label = f"{problem} - {ordering.upper()}"
        row: dict[str, float] = {}
        for strategy, strategy_label in ((BASELINE, "MUMPS dynamic"), (MEMORY, "memory-based dynamic")):
            for split, split_label in ((False, "no splitting"), (True, "splitting")):
                case = runner.run_case(problem, ordering, strategy, split=split)
                row[f"{strategy_label} / {split_label}"] = round(case.max_peak_stack / 1e6, 3)
        rows[label] = row
    return rows


def table5(
    runner: ExperimentRunner,
    problems: Sequence[str] | None = None,
    orderings: Sequence[str] = tuple(ORDERING_NAMES),
) -> dict[str, dict[str, float]]:
    """Table 5: memory strategy + splitting vs. original MUMPS (no splitting)."""
    if problems is None:
        problems = list(UNSYMMETRIC_PROBLEMS)
    return _gain_table(runner, list(problems), list(orderings), split_baseline=False, split_candidate=True)


def table6(
    runner: ExperimentRunner,
    problems: Sequence[str] | None = None,
    orderings: Sequence[str] = tuple(ORDERING_NAMES),
) -> dict[str, dict[str, float]]:
    """Table 6: factorization-time loss (%) of the memory-optimised strategy."""
    if problems is None:
        problems = list(TABLE6_PROBLEMS)
    rows: dict[str, dict[str, float]] = {}
    for problem in problems:
        row: dict[str, float] = {}
        for ordering in orderings:
            base = runner.run_case(problem, ordering, BASELINE, split=False)
            cand = runner.run_case(problem, ordering, MEMORY, split=True)
            loss = (
                100.0 * (cand.total_time - base.total_time) / base.total_time
                if base.total_time > 0
                else 0.0
            )
            row[ordering.upper()] = round(loss, 1)
        rows[problem] = row
    return rows


ALL_TABLES = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "table6": table6,
}


def format_table(rows: Mapping[str, Mapping[str, object]], *, title: str = "") -> str:
    """Render a table (dict of rows, each a dict of columns) as aligned text."""
    if not rows:
        return title
    columns = list(next(iter(rows.values())).keys())
    row_width = max(len(str(r)) for r in rows) + 2
    col_widths = [max(len(str(c)), max(len(str(row.get(c, ""))) for row in rows.values())) + 2 for c in columns]
    lines = []
    if title:
        lines.append(title)
    header = " " * row_width + "".join(str(c).rjust(w) for c, w in zip(columns, col_widths))
    lines.append(header)
    lines.append("-" * len(header))
    for name, row in rows.items():
        lines.append(
            str(name).ljust(row_width)
            + "".join(str(row.get(c, "")).rjust(w) for c, w in zip(columns, col_widths))
        )
    return "\n".join(lines)
