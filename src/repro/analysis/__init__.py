"""Sequential analysis models: frontal-matrix flops/entries and stack memory."""

from repro.analysis.flops import (
    front_entries,
    factor_entries,
    cb_entries,
    partial_factorization_flops,
    assembly_flops,
    type2_master_flops,
    type2_slave_flops,
)
from repro.analysis.memory import (
    MemoryTrace,
    sequential_memory_trace,
    sequential_stack_peak,
    subtree_stack_peaks,
)

__all__ = [
    "front_entries",
    "factor_entries",
    "cb_entries",
    "partial_factorization_flops",
    "assembly_flops",
    "type2_master_flops",
    "type2_slave_flops",
    "MemoryTrace",
    "sequential_memory_trace",
    "sequential_stack_peak",
    "subtree_stack_peaks",
]
