"""Entry counts and flop models of a frontal matrix.

The paper measures memory in *entries* (floating-point values) and uses the
number of floating-point operations of the elimination as the workload metric
of MUMPS' default dynamic scheduling ("the number of floating-point
operations still to be done, where only the operations corresponding to the
elimination process are taken into account", Section 3).  The formulas below
provide exactly those two currencies for both the symmetric (LDLᵀ, lower
triangle stored) and unsymmetric (LU, full front stored) cases.

Conventions
-----------
``npiv``
    Number of fully summed variables of the front.
``nfront``
    Order of the frontal matrix; ``ncb = nfront - npiv`` is the order of the
    contribution block.
"""

from __future__ import annotations

from typing import Iterable

__all__ = [
    "front_entries",
    "factor_entries",
    "cb_entries",
    "partial_factorization_flops",
    "assembly_flops",
    "type2_master_flops",
    "type2_slave_flops",
    "type2_slave_block_entries",
    "type2_slave_factor_entries",
]


def _check(npiv: int, nfront: int) -> None:
    if npiv < 0 or nfront < 0 or npiv > nfront:
        raise ValueError(f"invalid front geometry npiv={npiv}, nfront={nfront}")


def _sum_range(lo: int, hi: int) -> int:
    """``sum(r for r in range(lo, hi + 1))`` for ``lo <= hi`` (else 0)."""
    if hi < lo:
        return 0
    return (hi * (hi + 1)) // 2 - ((lo - 1) * lo) // 2


def _sum_sq_range(lo: int, hi: int) -> int:
    """``sum(r*r for r in range(lo, hi + 1))`` for ``lo <= hi`` (else 0)."""
    if hi < lo:
        return 0

    def s2(m: int) -> int:
        return m * (m + 1) * (2 * m + 1) // 6

    return s2(hi) - s2(lo - 1)


def front_entries(nfront: int, symmetric: bool) -> int:
    """Entries of the full frontal matrix."""
    if nfront < 0:
        raise ValueError("nfront must be >= 0")
    if symmetric:
        return nfront * (nfront + 1) // 2
    return nfront * nfront


def factor_entries(npiv: int, nfront: int, symmetric: bool) -> int:
    """Entries of the factors produced by the partial factorization.

    Symmetric case: the ``npiv × npiv`` pivot triangle plus the
    ``ncb × npiv`` off-diagonal block of ``L``.
    Unsymmetric case: the ``npiv`` rows of ``U`` (length ``nfront`` each) and
    the ``ncb × npiv`` block of ``L`` below the pivot block.
    """
    _check(npiv, nfront)
    ncb = nfront - npiv
    if symmetric:
        return npiv * (npiv + 1) // 2 + ncb * npiv
    return npiv * nfront + ncb * npiv


def cb_entries(npiv: int, nfront: int, symmetric: bool) -> int:
    """Entries of the contribution block stacked after the partial factorization."""
    _check(npiv, nfront)
    ncb = nfront - npiv
    if symmetric:
        return ncb * (ncb + 1) // 2
    return ncb * ncb


def partial_factorization_flops(npiv: int, nfront: int, symmetric: bool) -> float:
    """Flops of eliminating ``npiv`` pivots from a front of order ``nfront``.

    At elimination step ``k`` (1-based) the trailing submatrix has order
    ``r = nfront - k``.  The unsymmetric model counts one division per entry
    of the pivot column plus a rank-1 update of the trailing ``r × r`` block
    (2 flops per entry); the symmetric model updates only the lower triangle.
    """
    _check(npiv, nfront)
    ncb = nfront - npiv
    lo, hi = ncb, nfront - 1  # r ranges over [ncb, nfront-1]
    s1 = _sum_range(lo, hi)
    s2 = _sum_sq_range(lo, hi)
    if symmetric:
        # divisions: r per step; update of the lower triangle: r*(r+1) flops
        return float(s1 + s2 + s1)
    # divisions: r per step; rank-1 update: 2*r*r flops
    return float(s1 + 2 * s2)


def assembly_flops(children_cb_entries: Iterable[int]) -> float:
    """Flops (one addition per entry) of assembling the children CBs."""
    return float(sum(int(x) for x in children_cb_entries))


def type2_master_flops(npiv: int, nfront: int, symmetric: bool) -> float:
    """Flops performed by the *master* of a type-2 node.

    The master eliminates the fully summed pivot block and computes the
    factor rows it owns; the update of the contribution rows is delegated to
    the slaves.  At step ``k`` the master works on a panel of
    ``npiv - k`` remaining pivot rows of length ``nfront - k``.
    """
    _check(npiv, nfront)
    total = 0.0
    # closed-form of sum_{k=1..npiv} [ (npiv-k) + c*(npiv-k)*(nfront-k) ]
    # computed term-by-term via the helper sums to stay exact.
    # Let a = npiv - k (ranges npiv-1 .. 0) and b = nfront - k = a + ncb.
    ncb = nfront - npiv
    # sum a = npiv*(npiv-1)/2 ; sum a*b = sum a^2 + ncb * sum a
    sum_a = npiv * (npiv - 1) // 2
    sum_a2 = _sum_sq_range(0, npiv - 1)
    sum_ab = sum_a2 + ncb * sum_a
    if symmetric:
        total = float(sum_a + sum_ab)
    else:
        total = float(sum_a + 2 * sum_ab)
    return total


def type2_slave_flops(npiv: int, nfront: int, nrows: int, symmetric: bool) -> float:
    """Flops performed by one slave of a type-2 node owning ``nrows`` CB rows.

    Each of the slave's rows is updated by the ``npiv`` eliminations: at step
    ``k`` the row receives a scaled pivot-row of length ``nfront - k``
    (2 flops per entry in the unsymmetric model).  The symmetric model only
    touches the part of the row within the lower triangle, which averages to
    roughly half of the unsymmetric work.
    """
    _check(npiv, nfront)
    if nrows < 0 or nrows > nfront - npiv:
        raise ValueError("nrows must be between 0 and ncb")
    row_work = _sum_range(nfront - npiv, nfront - 1)  # sum_{k=1..npiv} (nfront - k)
    if symmetric:
        return float(nrows * row_work)
    return float(2 * nrows * row_work)


def type2_slave_block_entries(npiv: int, nfront: int, nrows: int, symmetric: bool) -> int:
    """Entries of the row block held by a slave owning ``nrows`` CB rows.

    Unsymmetric fronts store full rows (``nrows × nfront``); in the symmetric
    case a CB row of global index ``i`` only spans ``npiv + i`` columns of the
    lower triangle, which averages to ``npiv + (ncb + 1) / 2`` per row.
    """
    _check(npiv, nfront)
    ncb = nfront - npiv
    if nrows < 0 or nrows > ncb:
        raise ValueError("nrows must be between 0 and ncb")
    if symmetric:
        return nrows * npiv + (nrows * (ncb + 1)) // 2
    return nrows * nfront


def type2_slave_factor_entries(npiv: int, nfront: int, nrows: int, symmetric: bool) -> int:
    """Factor entries produced by a slave block (the ``L`` part of its rows)."""
    _check(npiv, nfront)
    ncb = nfront - npiv
    if nrows < 0 or nrows > ncb:
        raise ValueError("nrows must be between 0 and ncb")
    return nrows * npiv
