"""Sequential memory simulation of the multifrontal factorization.

Section 2 of the paper recalls that the multifrontal method uses three areas
of storage: the factors (monotonically growing), the stack of contribution
blocks, and the current frontal matrix.  This module replays a sequential
postorder traversal of an assembly tree and records the evolution of the
three areas, producing both the peak values and a full trace (used by the
figure benchmarks and by the examples to visualise the stack evolution that
motivates the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.symbolic.liu_order import (
    order_children_for_memory,
    subtree_peaks_given_order,
)

__all__ = [
    "MemoryTrace",
    "sequential_memory_trace",
    "sequential_stack_peak",
    "subtree_stack_peaks",
]


@dataclass
class MemoryTrace:
    """Time series of the three memory areas during a factorization replay.

    One sample is recorded after every memory-changing event.  All values are
    in entries.
    """

    events: list[str] = field(default_factory=list)
    nodes: list[int] = field(default_factory=list)
    factors: list[float] = field(default_factory=list)
    stack: list[float] = field(default_factory=list)
    active: list[float] = field(default_factory=list)

    def record(self, event: str, node: int, factors: float, stack: float, active: float) -> None:
        self.events.append(event)
        self.nodes.append(node)
        self.factors.append(factors)
        self.stack.append(stack)
        self.active.append(active)

    @property
    def working(self) -> np.ndarray:
        """Stack plus active front — the paper's "stack memory" metric."""
        return np.asarray(self.stack, dtype=np.float64) + np.asarray(self.active, dtype=np.float64)

    @property
    def peak_working(self) -> float:
        return float(self.working.max()) if self.events else 0.0

    @property
    def peak_stack(self) -> float:
        return float(max(self.stack)) if self.stack else 0.0

    @property
    def final_factors(self) -> float:
        return float(self.factors[-1]) if self.factors else 0.0

    def as_arrays(self) -> dict[str, np.ndarray]:
        return {
            "factors": np.asarray(self.factors, dtype=np.float64),
            "stack": np.asarray(self.stack, dtype=np.float64),
            "active": np.asarray(self.active, dtype=np.float64),
            "working": self.working,
        }

    def __len__(self) -> int:
        return len(self.events)


def sequential_memory_trace(
    tree,
    *,
    child_order: list[list[int]] | str | None = "liu",
) -> MemoryTrace:
    """Replay a sequential factorization and record the memory evolution.

    The replay is a depth-first postorder traversal of the tree.  For every
    node: the frontal matrix is allocated (active area), the children CBs are
    assembled and freed from the stack, the partial factorization moves the
    factor part to the factor area, and the node's CB is pushed on the stack.
    """
    if child_order == "liu":
        order = order_children_for_memory(tree)
    elif child_order == "natural" or child_order is None:
        order = [tree.children(j) for j in range(tree.nnodes)]
    else:
        order = child_order

    trace = MemoryTrace()
    factors = 0.0
    stack = 0.0

    # iterative depth-first traversal to survive very deep AMD/AMF trees
    for root in tree.roots:
        stack_frames: list[tuple[int, int]] = [(root, 0)]
        while stack_frames:
            node, child_idx = stack_frames.pop()
            children = order[node]
            if child_idx < len(children):
                stack_frames.append((node, child_idx + 1))
                stack_frames.append((children[child_idx], 0))
                continue
            # post-visit of `node`
            active = float(tree.front_entries(node))
            trace.record("allocate", node, factors, stack, active)
            for c in children:
                stack -= tree.cb_entries(c)
            trace.record("assemble", node, factors, stack, active)
            factors += tree.factor_entries(node)
            stack += tree.cb_entries(node)
            trace.record("factorize", node, factors, stack, 0.0)
    return trace


def sequential_stack_peak(
    tree,
    *,
    child_order: list[list[int]] | str | None = "liu",
) -> float:
    """Peak of the working storage (stack + active front) of a sequential run."""
    return sequential_memory_trace(tree, child_order=child_order).peak_working


def subtree_stack_peaks(tree, *, optimal_order: bool = True) -> np.ndarray:
    """Stack peak of every subtree (entries), used for subtree-cost broadcasts.

    This is the quantity a processor sends to the others when it starts a
    leaf subtree in the Section 5.1 mechanism.
    """
    order = order_children_for_memory(tree) if optimal_order else None
    return subtree_peaks_given_order(tree, order)
