"""Symbolic analysis: elimination tree, column counts, supernodes, assembly tree.

This package turns a sparse pattern plus an ordering into the *assembly tree*
used by the multifrontal method (Section 2 of the paper): each node carries a
frontal matrix with ``npiv`` fully-summed variables and a contribution block
of order ``nfront - npiv``.  Everything downstream (sequential memory
analysis, static mapping, the parallel scheduling simulation) works on this
tree.
"""

from repro.symbolic.etree import elimination_tree, postorder, tree_levels, tree_depth, children_lists
from repro.symbolic.colcounts import column_counts, column_counts_naive, symbolic_fill
from repro.symbolic.supernodes import fundamental_supernodes, amalgamate
from repro.symbolic.assembly_tree import AssemblyTree, FrontNode, build_assembly_tree
from repro.symbolic.splitting import split_large_masters, SplitReport
from repro.symbolic.liu_order import order_children_for_memory, sequential_peak_of_tree

__all__ = [
    "elimination_tree",
    "postorder",
    "tree_levels",
    "tree_depth",
    "children_lists",
    "column_counts",
    "column_counts_naive",
    "symbolic_fill",
    "fundamental_supernodes",
    "amalgamate",
    "AssemblyTree",
    "FrontNode",
    "build_assembly_tree",
    "split_large_masters",
    "SplitReport",
    "order_children_for_memory",
    "sequential_peak_of_tree",
]
