"""Child-ordering for minimal sequential stack memory (Liu's algorithm).

In the sequential multifrontal method, the order in which the children of a
node are processed changes the peak of the contribution-block stack.  Liu
(TOMS 1986, reference [15] of the paper) showed that processing children in
decreasing order of ``peak(child) - cb(child)`` minimises the peak.  MUMPS
sorts the leaves of each subtree with a variant of this algorithm, and the
paper's task pool is initialised accordingly (Section 5.2), so the
reproduction needs the same machinery both to set up realistic pools and to
compute the subtree peaks broadcast by the Section 5.1 mechanism.

The memory model is the classic one: when node ``j`` is processed, the
contribution blocks of its already-processed children sit on the stack while
the frontal matrix of ``j`` is allocated and assembled; the children CBs are
then freed and the CB of ``j`` is stacked.
"""

from __future__ import annotations

import numpy as np

__all__ = [
    "node_working_storage",
    "subtree_peaks_given_order",
    "order_children_for_memory",
    "sequential_peak_of_tree",
]


def _cb_front_arrays(tree) -> tuple[np.ndarray, np.ndarray]:
    """Per-node CB/front entry arrays (cached on :class:`AssemblyTree`).

    Falls back to per-node method calls for tree-like objects that do not
    expose the vectorized accessors; the values are identical either way.
    """
    if hasattr(tree, "cb_entries_all"):
        return tree.cb_entries_all(), tree.front_entries_all()
    n = tree.nnodes
    cb = np.array([tree.cb_entries(j) for j in range(n)], dtype=np.int64)
    front = np.array([tree.front_entries(j) for j in range(n)], dtype=np.int64)
    return cb, front


def node_working_storage(tree, j: int) -> int:
    """Working storage of node ``j`` alone: its front plus its children CBs."""
    return tree.front_entries(j) + sum(tree.cb_entries(c) for c in tree.children(j))


def subtree_peaks_given_order(tree, child_order: list[list[int]] | None = None) -> np.ndarray:
    """Stack peak of every subtree, children processed in the given order.

    ``child_order[j]`` lists the children of ``j`` in processing order; when
    ``None`` the natural (increasing index) order is used.

    The recursion is::

        peak(j) = max(  max_i ( sum_{k<i} cb(c_k) + peak(c_i) ),
                        front(j) + sum_k cb(c_k) )

    which accounts for both the deepest child excursion and the assembly step
    where the parent front coexists with all children CBs.
    """
    n = tree.nnodes
    cb, front = _cb_front_arrays(tree)
    peaks = np.zeros(n, dtype=np.float64)
    for j in range(n):  # children before parents (tree is postordered)
        children = child_order[j] if child_order is not None else tree.children(j)
        stacked = 0.0
        peak = 0.0
        for c in children:
            peak = max(peak, stacked + peaks[c])
            stacked += cb[c]
        peak = max(peak, front[j] + stacked)
        peaks[j] = peak
    return peaks


def order_children_for_memory(tree) -> list[list[int]]:
    """Liu-optimal processing order of the children of every node.

    Children are sorted in decreasing ``peak(child) - cb(child)``; ties are
    broken by node index to keep the result deterministic.
    """
    n = tree.nnodes
    cb, front = _cb_front_arrays(tree)
    order: list[list[int]] = [[] for _ in range(n)]
    peaks = np.zeros(n, dtype=np.float64)
    for j in range(n):
        children = tree.children(j)
        scored = sorted(
            children,
            key=lambda c: (-(peaks[c] - cb[c]), c),
        )
        order[j] = scored
        stacked = 0.0
        peak = 0.0
        for c in scored:
            peak = max(peak, stacked + peaks[c])
            stacked += cb[c]
        peak = max(peak, front[j] + stacked)
        peaks[j] = peak
    return order


def sequential_peak_of_tree(
    tree,
    *,
    child_order: list[list[int]] | str | None = "liu",
) -> tuple[float, np.ndarray]:
    """Peak of the sequential stack for the whole tree.

    Parameters
    ----------
    child_order:
        ``"liu"`` (default) uses the optimal order, ``"natural"`` / ``None``
        uses increasing node index, or an explicit per-node order list.

    Returns
    -------
    peak:
        Stack peak over the whole factorization, in entries.  When the tree
        is a forest, the roots are processed one after the other and the CBs
        of the roots (empty for true roots) do not accumulate.
    per_node:
        Peak of each subtree (same units).
    """
    if child_order == "liu":
        order = order_children_for_memory(tree)
    elif child_order == "natural" or child_order is None:
        order = None
    else:
        order = child_order  # explicit list
    peaks = subtree_peaks_given_order(tree, order)
    roots = tree.roots
    if not roots:
        return 0.0, peaks
    # roots are independent: processing them one after the other, the stack
    # carries the CBs of the finished roots (zero for genuine roots whose
    # cb_order is 0, positive if the forest was cut artificially).
    stacked = 0.0
    peak = 0.0
    for r in roots:
        peak = max(peak, stacked + peaks[r])
        stacked += tree.cb_entries(r)
    return float(peak), peaks
