"""Fundamental supernodes and relaxed amalgamation.

A *fundamental supernode* is a maximal set of consecutive columns (in a
postordered matrix) sharing the same factor structure below the diagonal;
grouping columns into supernodes is what turns the scalar elimination tree
into the assembly tree of frontal matrices.  Real multifrontal codes (MUMPS
included) additionally perform *relaxed amalgamation*: small children are
merged into their parents even though this introduces a few explicit zeros,
because larger fronts give better BLAS-3 efficiency and a coarser task graph.
The amalgamation parameters directly control the granularity of the tree that
the scheduling experiments run on.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

__all__ = ["fundamental_supernodes", "amalgamate", "Supernode"]


@dataclass
class Supernode:
    """A supernode over a postordered scalar elimination tree.

    Attributes
    ----------
    columns:
        Postordered column indices grouped in this supernode (the fully
        summed variables of the front).
    nfront:
        Order of the frontal matrix (``len(columns)`` pivots plus the
        contribution-block order).
    parent:
        Index of the parent supernode, or ``-1`` for a root.
    """

    columns: list[int]
    nfront: int
    parent: int = -1

    @property
    def npiv(self) -> int:
        return len(self.columns)

    @property
    def cb_order(self) -> int:
        return self.nfront - self.npiv


def fundamental_supernodes(
    parent: np.ndarray,
    colcount: np.ndarray,
) -> tuple[np.ndarray, list[Supernode]]:
    """Detect fundamental supernodes of a *postordered* elimination tree.

    Parameters
    ----------
    parent:
        Postordered etree (``parent[j] > j`` for every non-root).
    colcount:
        Column counts of ``L`` (diagonal included).

    Returns
    -------
    membership:
        ``membership[j]`` is the supernode index of column ``j``.
    supernodes:
        List of :class:`Supernode`, ordered by their first column (hence in
        postorder of the supernodal tree).
    """
    n = len(parent)
    if n == 0:
        return np.empty(0, dtype=np.int64), []
    nchildren = np.zeros(n, dtype=np.int64)
    for j in range(n):
        p = int(parent[j])
        if p >= 0:
            if p <= j:
                raise ValueError("parent array must be postordered (parent[j] > j)")
            nchildren[p] += 1

    membership = np.empty(n, dtype=np.int64)
    supernodes: list[Supernode] = []
    for j in range(n):
        extend = (
            j > 0
            and int(parent[j - 1]) == j
            and nchildren[j] == 1
            and colcount[j] == colcount[j - 1] - 1
        )
        if extend:
            sn = supernodes[-1]
            sn.columns.append(j)
            membership[j] = len(supernodes) - 1
        else:
            supernodes.append(Supernode(columns=[j], nfront=int(colcount[j])))
            membership[j] = len(supernodes) - 1

    # supernodal tree: parent supernode = supernode of the etree parent of the
    # last column of this supernode
    for s, sn in enumerate(supernodes):
        last = sn.columns[-1]
        p = int(parent[last])
        sn.parent = int(membership[p]) if p >= 0 else -1
    return membership, supernodes


def _merge_child_into_parent(supernodes: list[Supernode], child: int, parent: int) -> None:
    """Merge supernode ``child`` into ``parent`` in place.

    The contribution block of a child is contained in the frontal matrix of
    its parent, so the merged front has order
    ``npiv(child) + nfront(parent)`` exactly (no approximation involved).
    """
    c = supernodes[child]
    p = supernodes[parent]
    p.nfront = p.nfront + c.npiv
    # pivots of the child are eliminated first inside the merged front
    p.columns = c.columns + p.columns
    c.columns = []
    c.parent = parent  # keep pointing at the absorber for membership rebuild


def amalgamate(
    supernodes: list[Supernode],
    *,
    min_pivots: int = 4,
    relax: float = 0.15,
    max_front: int | None = None,
    symmetric: bool = True,
) -> tuple[list[Supernode], np.ndarray]:
    """Relaxed amalgamation of a supernodal tree.

    A child is merged into its parent when either its pivot count is below
    ``min_pivots`` (tiny tasks are never worth keeping) or the *cumulative*
    fraction of explicit zeros in the merged front — zeros inherited from
    earlier merges of both sides plus the zeros introduced by this merge —
    stays below ``relax``.  Tracking cumulative zeros (as CHOLMOD's relaxed
    supernodes do) is what prevents long chains from collapsing into one
    giant dense front: each extra merge keeps paying for the zeros of all the
    previous ones.  ``max_front`` optionally forbids merges that would create
    a front larger than the given order.

    The parameters follow the spirit of MUMPS' amalgamation control; the
    paper's trees come from MUMPS' analysis, so the reproduction exposes the
    same lever (see the amalgamation ablation benchmark).

    Returns
    -------
    merged:
        New list of supernodes (postordered by construction).
    old_to_new:
        Mapping from input supernode index to output index.
    """
    if min_pivots < 1:
        raise ValueError("min_pivots must be >= 1")
    if relax < 0:
        raise ValueError("relax must be >= 0")
    nsn = len(supernodes)
    work = [Supernode(columns=list(s.columns), nfront=s.nfront, parent=s.parent) for s in supernodes]
    absorbed_into = np.full(nsn, -1, dtype=np.int64)
    zeros_acc = np.zeros(nsn, dtype=np.float64)  # explicit zeros accumulated in each live front

    def find_live_parent(idx: int) -> int:
        p = work[idx].parent
        while p != -1 and absorbed_into[p] != -1:
            p = int(absorbed_into[p])
        return p

    # children-before-parents: supernodes are already in postorder (by first
    # column), so a simple left-to-right sweep visits children first.
    for s in range(nsn):
        if absorbed_into[s] != -1:
            continue
        p = find_live_parent(s)
        if p == -1:
            continue
        child = work[s]
        par = work[p]
        # zeros introduced by the merge: every pivot column of the child is
        # extended from its own front to the merged front.
        merged_front = par.nfront + child.npiv
        if max_front is not None and merged_front > max_front:
            continue
        extra_rows_per_col = merged_front - child.nfront
        new_zeros = child.npiv * extra_rows_per_col
        if symmetric:
            merged_entries = merged_front * (merged_front + 1) // 2
        else:
            new_zeros *= 2
            merged_entries = merged_front * merged_front
        total_zeros = zeros_acc[s] + zeros_acc[p] + new_zeros
        relative_fill = total_zeros / max(merged_entries, 1)
        tiny = child.npiv < min_pivots and extra_rows_per_col <= max(4 * min_pivots, 32)
        if tiny or relative_fill <= relax:
            _merge_child_into_parent(work, s, p)
            absorbed_into[s] = p
            zeros_acc[p] = total_zeros

    # compact the surviving supernodes, keeping postorder
    old_to_new = np.full(nsn, -1, dtype=np.int64)
    merged: list[Supernode] = []
    for s in range(nsn):
        if absorbed_into[s] != -1:
            continue
        old_to_new[s] = len(merged)
        merged.append(work[s])
    # map absorbed supernodes to their absorber's new index
    for s in range(nsn):
        if absorbed_into[s] != -1:
            a = int(absorbed_into[s])
            while absorbed_into[a] != -1:
                a = int(absorbed_into[a])
            old_to_new[s] = old_to_new[a]
    # fix parents
    for s in range(nsn):
        if absorbed_into[s] != -1:
            continue
        p = find_live_parent(s)
        merged[int(old_to_new[s])].parent = int(old_to_new[p]) if p != -1 else -1
    return merged, old_to_new
