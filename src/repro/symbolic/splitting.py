"""Static splitting of nodes with large master parts (Section 6 of the paper).

The paper observes that when the *master part* of a type-2 node is very large
(e.g. 3.6 million entries for PRE2/AMF while the whole stack peak was 5.4
million), no dynamic strategy can help: the master task alone dominates the
peak of the processor it is mapped on.  The fix is static: such nodes are
split into a *chain* of smaller nodes (as in MUMPS, reference [3]), bounded
by a threshold on the master-part entries (2·10⁶ in the paper).

Splitting a node with ``npiv`` pivots and front order ``nfront`` into a chain
of ``k`` pieces with pivot counts ``p_1, …, p_k`` produces, bottom to top::

    piece 1: npiv = p_1, nfront = nfront            (keeps the original children)
    piece 2: npiv = p_2, nfront = nfront - p_1
    ...
    piece k: npiv = p_k, nfront = nfront - p_1 - … - p_{k-1}   (keeps the original parent)

Each piece's contribution block is exactly the frontal matrix of the next
piece, so the factor entries and the eliminations performed are unchanged —
only the task granularity (and therefore the scheduling freedom) changes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.symbolic.assembly_tree import AssemblyTree

__all__ = ["SplitReport", "split_large_masters", "chain_pivot_counts"]


@dataclass
class SplitReport:
    """Summary of a splitting pass."""

    threshold_entries: int
    nodes_before: int = 0
    nodes_after: int = 0
    nodes_split: int = 0
    pieces_created: int = 0
    largest_master_before: int = 0
    largest_master_after: int = 0
    split_nodes: list[int] = field(default_factory=list)

    @property
    def any_split(self) -> bool:
        return self.nodes_split > 0


def chain_pivot_counts(npiv: int, nfront: int, threshold_entries: int, symmetric: bool) -> list[int]:
    """Pivot counts of the chain pieces for one node.

    Pieces are sized so that each piece's master part stays below the
    threshold.  The search is greedy bottom-up: each piece takes as many
    pivots as possible while respecting the threshold for the *current* front
    order (which shrinks as pivots are consumed by lower pieces).
    """
    if threshold_entries <= 0:
        raise ValueError("threshold_entries must be positive")
    if npiv < 1 or nfront < npiv:
        raise ValueError("invalid front geometry")

    def master_entries(p: int, nf: int) -> int:
        # must stay consistent with AssemblyTree.master_entries
        if symmetric:
            return p * (p + 1) // 2
        return p * nf

    counts: list[int] = []
    remaining = npiv
    nf = nfront
    while remaining > 0:
        # largest p <= remaining with master_entries(p, nf) <= threshold
        p = remaining
        if master_entries(p, nf) > threshold_entries:
            lo, hi = 1, remaining
            while lo < hi:
                mid = (lo + hi + 1) // 2
                if master_entries(mid, nf) <= threshold_entries:
                    lo = mid
                else:
                    hi = mid - 1
            p = max(1, lo)
        counts.append(p)
        remaining -= p
        nf -= p
    return counts


def split_large_masters(
    tree: AssemblyTree,
    threshold_entries: int,
    *,
    only_candidates: set[int] | None = None,
) -> tuple[AssemblyTree, SplitReport]:
    """Split every node whose master part exceeds ``threshold_entries``.

    Parameters
    ----------
    tree:
        Input assembly tree (not modified).
    threshold_entries:
        Maximum allowed master-part entries (the paper uses 2·10⁶ on the full
        size problems; the experiment harness scales it with the problem).
    only_candidates:
        When given, restrict splitting to this set of node indices (e.g. the
        nodes that the static mapping would make type 2).

    Returns
    -------
    (new_tree, report)
        The new tree is re-postordered; the report records what was split.
    """
    report = SplitReport(threshold_entries=threshold_entries, nodes_before=tree.nnodes)
    masters = [tree.master_entries(i) for i in range(tree.nnodes)]
    report.largest_master_before = int(max(masters)) if masters else 0

    # Build an intermediate node list: (npiv, nfront, old_parent, first_piece_of_old_parent?)
    # We materialise pieces per original node, chain them, then re-link.
    npiv_new: list[int] = []
    nfront_new: list[int] = []
    # parent reference uses (old_node, piece_index) addressing, resolved later
    piece_index_of_old: list[list[int]] = []  # old node -> list of new indices (bottom..top)
    vars_new: list[tuple[int, ...]] | None = [] if tree.variables is not None else None

    for i in range(tree.nnodes):
        npiv = int(tree.npiv[i])
        nfront = int(tree.nfront[i])
        do_split = masters[i] > threshold_entries and npiv > 1
        if only_candidates is not None and i not in only_candidates:
            do_split = False
        if do_split:
            counts = chain_pivot_counts(npiv, nfront, threshold_entries, tree.symmetric)
        else:
            counts = [npiv]
        if len(counts) > 1:
            report.nodes_split += 1
            report.pieces_created += len(counts) - 1
            report.split_nodes.append(i)
        pieces: list[int] = []
        nf = nfront
        consumed = 0
        for p in counts:
            pieces.append(len(npiv_new))
            npiv_new.append(p)
            nfront_new.append(nf)
            if vars_new is not None:
                vs = tree.variables[i][consumed:consumed + p]
                vars_new.append(tuple(vs))
            consumed += p
            nf -= p
        piece_index_of_old.append(pieces)

    # Parents: bottom piece inherits the original children (handled through the
    # parent pointers of the children); upper pieces chain onto each other; the
    # top piece points to the bottom piece of the original parent.
    parent_new = np.full(len(npiv_new), -1, dtype=np.int64)
    for i in range(tree.nnodes):
        pieces = piece_index_of_old[i]
        for a, b in zip(pieces[:-1], pieces[1:]):
            parent_new[a] = b
        old_parent = int(tree.parent[i])
        if old_parent >= 0:
            parent_new[pieces[-1]] = piece_index_of_old[old_parent][0]

    # The interleaved construction keeps children before parents only within a
    # chain; re-postorder globally to restore the AssemblyTree invariant.
    order = _postorder_nodes(parent_new)
    rank = np.empty(len(order), dtype=np.int64)
    rank[order] = np.arange(len(order), dtype=np.int64)
    npiv_arr = np.asarray(npiv_new, dtype=np.int64)[order]
    nfront_arr = np.asarray(nfront_new, dtype=np.int64)[order]
    parent_arr = np.array(
        [rank[parent_new[j]] if parent_new[j] >= 0 else -1 for j in order], dtype=np.int64
    )
    vars_arr = None
    if vars_new is not None:
        vars_arr = [vars_new[j] for j in order]

    new_tree = AssemblyTree(
        npiv_arr,
        nfront_arr,
        parent_arr,
        symmetric=tree.symmetric,
        nvars=tree.nvars,
        variables=vars_arr,
        name=tree.name,
    )
    report.nodes_after = new_tree.nnodes
    report.largest_master_after = int(
        max(new_tree.master_entries(i) for i in range(new_tree.nnodes))
    )
    return new_tree, report


def _postorder_nodes(parent: np.ndarray) -> np.ndarray:
    """Postorder of an arbitrary forest given by ``parent`` pointers."""
    n = len(parent)
    children: list[list[int]] = [[] for _ in range(n)]
    roots: list[int] = []
    for j in range(n):
        p = int(parent[j])
        if p < 0:
            roots.append(j)
        else:
            children[p].append(j)
    post = np.empty(n, dtype=np.int64)
    k = 0
    for root in roots:
        stack = [(root, 0)]
        while stack:
            node, idx = stack.pop()
            if idx < len(children[node]):
                stack.append((node, idx + 1))
                stack.append((children[node][idx], 0))
            else:
                post[k] = node
                k += 1
    if k != n:
        raise ValueError("cycle detected while re-postordering the split tree")
    return post
