"""Elimination tree and tree utilities.

The elimination tree (etree) of a symmetric pattern is the transitive
reduction of the filled graph: ``parent[j]`` is the smallest row index
``i > j`` such that ``L[i, j] != 0``.  It is the skeleton of the assembly
tree: the multifrontal method performs a postorder traversal of it
(Section 2 of the paper).

The implementation follows Liu's algorithm with path compression
(J. W. H. Liu, "The role of elimination trees in sparse factorization",
SIMAX 1990), which runs in nearly ``O(nnz)``.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.pattern import SparsePattern

__all__ = [
    "elimination_tree",
    "postorder",
    "children_lists",
    "tree_levels",
    "tree_depth",
    "subtree_sizes",
    "is_postordered",
]


def elimination_tree(pattern: SparsePattern) -> np.ndarray:
    """Elimination tree of the (symmetrized) pattern.

    Returns
    -------
    parent:
        Array of length ``n``; ``parent[j]`` is the etree parent of column
        ``j`` or ``-1`` when ``j`` is a root.
    """
    sym = pattern.symmetrized()
    n = sym.n
    parent = np.full(n, -1, dtype=np.int64)
    ancestor = np.full(n, -1, dtype=np.int64)
    indptr = sym.indptr
    indices = sym.indices
    for i in range(n):
        for p in range(indptr[i], indptr[i + 1]):
            j = int(indices[p])
            if j >= i:
                continue
            # walk from j to the root of its current subtree, compressing
            r = j
            while True:
                a = int(ancestor[r])
                if a == -1 or a == i:
                    break
                ancestor[r] = i
                r = a
            if ancestor[r] == -1:
                ancestor[r] = i
                parent[r] = i
    return parent


def children_lists(parent: np.ndarray) -> list[list[int]]:
    """Children of every node, ordered by increasing child index."""
    n = len(parent)
    children: list[list[int]] = [[] for _ in range(n)]
    for j in range(n):
        p = int(parent[j])
        if p >= 0:
            children[p].append(j)
    return children


def postorder(parent: np.ndarray) -> np.ndarray:
    """Postordering of the forest described by ``parent``.

    Returns ``post`` such that ``post[k]`` is the node visited at step ``k``
    of a depth-first postorder traversal (children before parents, children
    visited in increasing index order).
    """
    n = len(parent)
    children = children_lists(parent)
    roots = [j for j in range(n) if parent[j] < 0]
    post = np.empty(n, dtype=np.int64)
    k = 0
    # iterative DFS to avoid recursion limits on deep trees (AMD/AMF trees
    # can have depth comparable to n)
    for root in roots:
        stack: list[tuple[int, int]] = [(root, 0)]
        while stack:
            node, child_idx = stack.pop()
            if child_idx < len(children[node]):
                stack.append((node, child_idx + 1))
                stack.append((children[node][child_idx], 0))
            else:
                post[k] = node
                k += 1
    if k != n:
        raise ValueError("parent array does not describe a forest (cycle detected)")
    return post


def is_postordered(parent: np.ndarray) -> bool:
    """True when every node has an index smaller than its parent."""
    n = len(parent)
    for j in range(n):
        p = int(parent[j])
        if p >= 0 and p <= j:
            return False
    return True


def subtree_sizes(parent: np.ndarray) -> np.ndarray:
    """Number of nodes of the subtree rooted at each node."""
    n = len(parent)
    size = np.ones(n, dtype=np.int64)
    for j in postorder(parent):
        p = int(parent[j])
        if p >= 0:
            size[p] += size[j]
    return size


def tree_levels(parent: np.ndarray) -> np.ndarray:
    """Depth of every node (roots have depth 0)."""
    n = len(parent)
    level = np.full(n, -1, dtype=np.int64)
    order = postorder(parent)[::-1]  # parents before children
    for j in order:
        p = int(parent[j])
        level[j] = 0 if p < 0 else level[p] + 1
    return level


def tree_depth(parent: np.ndarray) -> int:
    """Maximum depth of the forest (1 for a single-node tree, 0 if empty)."""
    if len(parent) == 0:
        return 0
    return int(tree_levels(parent).max()) + 1
