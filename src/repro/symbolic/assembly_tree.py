"""The assembly tree of the multifrontal method.

Each node of the assembly tree owns a *frontal matrix* of order ``nfront``
whose first ``npiv`` variables are fully summed (eliminated at this node) and
whose trailing ``nfront - npiv`` variables form the *contribution block* (CB)
passed to the parent (Section 2 of the paper).  The tree, together with the
symmetric/unsymmetric storage convention, completely determines the factor
sizes, the contribution-block sizes and the elimination flop counts — which
is all the scheduling simulation needs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

import numpy as np

from repro.analysis.flops import (
    cb_entries,
    factor_entries,
    front_entries,
    partial_factorization_flops,
    type2_master_flops,
    type2_slave_flops,
)
from repro.sparse.pattern import SparsePattern
from repro.symbolic.colcounts import column_counts
from repro.symbolic.etree import elimination_tree, postorder
from repro.symbolic.supernodes import Supernode, amalgamate, fundamental_supernodes

__all__ = ["FrontNode", "AssemblyTree", "build_assembly_tree"]


@dataclass(frozen=True)
class FrontNode:
    """Read-only view of one assembly-tree node."""

    index: int
    npiv: int
    nfront: int
    parent: int
    children: tuple[int, ...]
    variables: tuple[int, ...] = field(default=(), repr=False)

    @property
    def cb_order(self) -> int:
        """Order of the contribution block."""
        return self.nfront - self.npiv

    @property
    def is_leaf(self) -> bool:
        return len(self.children) == 0

    @property
    def is_root(self) -> bool:
        return self.parent < 0


class AssemblyTree:
    """Assembly tree with per-node frontal-matrix geometry.

    The tree is stored as parallel arrays (structure-of-arrays) so that the
    analysis passes can stay vectorised; :meth:`node` provides a convenient
    object view of a single node.

    Invariants (checked by :meth:`validate`):

    * nodes are numbered in a valid topological order — every child index is
      smaller than its parent index (postorder of the construction);
    * ``1 <= npiv[i] <= nfront[i]`` for every node;
    * the pivots of all nodes partition ``range(nvars)`` when the tree was
      built from a matrix (trees built synthetically may skip the variable
      lists).
    """

    def __init__(
        self,
        npiv: Sequence[int],
        nfront: Sequence[int],
        parent: Sequence[int],
        *,
        symmetric: bool = True,
        nvars: int | None = None,
        variables: Sequence[Sequence[int]] | None = None,
        name: str = "",
    ) -> None:
        self.npiv = np.asarray(npiv, dtype=np.int64).copy()
        self.nfront = np.asarray(nfront, dtype=np.int64).copy()
        self.parent = np.asarray(parent, dtype=np.int64).copy()
        if not (self.npiv.shape == self.nfront.shape == self.parent.shape):
            raise ValueError("npiv, nfront and parent must have the same length")
        self.symmetric = bool(symmetric)
        self.name = name
        self.nvars = int(nvars) if nvars is not None else int(self.npiv.sum())
        self.variables: list[tuple[int, ...]] | None = None
        if variables is not None:
            if len(variables) != self.nnodes:
                raise ValueError("variables must have one entry per node")
            self.variables = [tuple(int(v) for v in vs) for vs in variables]
        self._children: list[list[int]] = [[] for _ in range(self.nnodes)]
        for j in range(self.nnodes):
            p = int(self.parent[j])
            if p >= 0:
                self._children[p].append(j)
        #: lazy cache of the vectorized geometry arrays (the tree is immutable
        #: after construction, so the cache never needs invalidation)
        self._geometry_cache: dict[str, np.ndarray] = {}
        self.validate()

    # ------------------------------------------------------------------ #
    # structure queries
    # ------------------------------------------------------------------ #
    @property
    def nnodes(self) -> int:
        return int(self.npiv.size)

    @property
    def roots(self) -> list[int]:
        return [j for j in range(self.nnodes) if self.parent[j] < 0]

    def children(self, i: int) -> list[int]:
        return list(self._children[i])

    def node(self, i: int) -> FrontNode:
        return FrontNode(
            index=i,
            npiv=int(self.npiv[i]),
            nfront=int(self.nfront[i]),
            parent=int(self.parent[i]),
            children=tuple(self._children[i]),
            variables=tuple(self.variables[i]) if self.variables is not None else (),
        )

    def __iter__(self) -> Iterator[FrontNode]:
        return (self.node(i) for i in range(self.nnodes))

    def __len__(self) -> int:
        return self.nnodes

    def cb_order(self, i: int) -> int:
        return int(self.nfront[i] - self.npiv[i])

    def leaves(self) -> list[int]:
        return [j for j in range(self.nnodes) if not self._children[j]]

    def topological_order(self) -> np.ndarray:
        """Children-before-parents order (node indices already satisfy it)."""
        return np.arange(self.nnodes, dtype=np.int64)

    def reverse_topological_order(self) -> np.ndarray:
        return np.arange(self.nnodes - 1, -1, -1, dtype=np.int64)

    def subtree_nodes(self, root: int) -> list[int]:
        """All nodes of the subtree rooted at ``root`` (root included)."""
        out: list[int] = []
        stack = [root]
        while stack:
            j = stack.pop()
            out.append(j)
            stack.extend(self._children[j])
        return out

    def depth(self) -> int:
        """Number of levels of the tree (1 for a single node)."""
        if self.nnodes == 0:
            return 0
        level = np.zeros(self.nnodes, dtype=np.int64)
        for j in range(self.nnodes - 1, -1, -1):
            p = int(self.parent[j])
            level[j] = 0 if p < 0 else level[p] + 1
        return int(level.max()) + 1

    def levels(self) -> np.ndarray:
        """Depth of every node (roots at level 0)."""
        level = np.zeros(self.nnodes, dtype=np.int64)
        for j in range(self.nnodes - 1, -1, -1):
            p = int(self.parent[j])
            level[j] = 0 if p < 0 else level[p] + 1
        return level

    def child_lists(self) -> list[list[int]]:
        """The children of every node, as one list of lists (no copies).

        The returned structure is shared with the tree — treat it as
        read-only.  :meth:`children` returns a defensive copy of one entry;
        the simulator's hot path iterates all nodes' children thousands of
        times per run, which this accessor serves without per-call copies.
        """
        return self._children

    # ------------------------------------------------------------------ #
    # vectorized geometry (cached; exact equivalents of the scalar methods)
    # ------------------------------------------------------------------ #
    def _cached(self, key: str, builder) -> np.ndarray:
        # getattr guard: trees unpickled from artifact stores written by
        # older versions have no cache attribute yet
        cache = getattr(self, "_geometry_cache", None)
        if cache is None:
            cache = self._geometry_cache = {}
        arr = cache.get(key)
        if arr is None:
            arr = cache[key] = builder()
        return arr

    @staticmethod
    def _sum_range_vec(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Vectorized ``analysis.flops._sum_range`` (int64, exact)."""
        out = (hi * (hi + 1)) // 2 - ((lo - 1) * lo) // 2
        return np.where(hi < lo, 0, out)

    @staticmethod
    def _sum_sq_range_vec(lo: np.ndarray, hi: np.ndarray) -> np.ndarray:
        """Vectorized ``analysis.flops._sum_sq_range`` (int64, exact)."""

        def s2(m: np.ndarray) -> np.ndarray:
            return m * (m + 1) * (2 * m + 1) // 6

        return np.where(hi < lo, 0, s2(hi) - s2(lo - 1))

    def front_entries_all(self) -> np.ndarray:
        """``front_entries(i)`` for every node, as one int64 array."""

        def build() -> np.ndarray:
            nf = self.nfront
            if self.symmetric:
                return nf * (nf + 1) // 2
            return nf * nf

        return self._cached("front_entries", build)

    def factor_entries_all(self) -> np.ndarray:
        """``factor_entries(i)`` for every node, as one int64 array."""

        def build() -> np.ndarray:
            npiv, nf = self.npiv, self.nfront
            ncb = nf - npiv
            if self.symmetric:
                return npiv * (npiv + 1) // 2 + ncb * npiv
            return npiv * nf + ncb * npiv

        return self._cached("factor_entries", build)

    def cb_entries_all(self) -> np.ndarray:
        """``cb_entries(i)`` for every node, as one int64 array."""

        def build() -> np.ndarray:
            ncb = self.nfront - self.npiv
            if self.symmetric:
                return ncb * (ncb + 1) // 2
            return ncb * ncb

        return self._cached("cb_entries", build)

    def master_entries_all(self) -> np.ndarray:
        """``master_entries(i)`` for every node, as one int64 array."""

        def build() -> np.ndarray:
            npiv = self.npiv
            if self.symmetric:
                return npiv * (npiv + 1) // 2
            return npiv * self.nfront

        return self._cached("master_entries", build)

    def factor_flops_all(self) -> np.ndarray:
        """``factor_flops(i)`` for every node, as one float64 array.

        All flop counts are integral and far below 2**53, so the int64
        intermediate arithmetic converts to float64 without rounding — the
        values are bit-identical to the scalar method's.
        """

        def build() -> np.ndarray:
            npiv, nf = self.npiv, self.nfront
            ncb = nf - npiv
            lo, hi = ncb, nf - 1
            s1 = self._sum_range_vec(lo, hi)
            s2 = self._sum_sq_range_vec(lo, hi)
            if self.symmetric:
                return (s1 + s2 + s1).astype(np.float64)
            return (s1 + 2 * s2).astype(np.float64)

        return self._cached("factor_flops", build)

    def type2_master_flops_all(self) -> np.ndarray:
        """``type2_master_flops(i)`` for every node, as one float64 array."""

        def build() -> np.ndarray:
            npiv = self.npiv
            ncb = self.nfront - npiv
            sum_a = npiv * (npiv - 1) // 2
            sum_a2 = self._sum_sq_range_vec(np.zeros_like(npiv), npiv - 1)
            sum_ab = sum_a2 + ncb * sum_a
            if self.symmetric:
                return (sum_a + sum_ab).astype(np.float64)
            return (sum_a + 2 * sum_ab).astype(np.float64)

        return self._cached("type2_master_flops", build)

    def assembly_flops_all(self) -> np.ndarray:
        """``assembly_flops(i)`` for every node, as one float64 array.

        Vectorized per-node accumulation: every node's CB entries are added
        to its parent's total in one ``np.add.at`` scatter instead of a
        per-node Python loop over the children.
        """

        def build() -> np.ndarray:
            total = np.zeros(self.nnodes, dtype=np.int64)
            has_parent = self.parent >= 0
            np.add.at(total, self.parent[has_parent], self.cb_entries_all()[has_parent])
            return total.astype(np.float64)

        return self._cached("assembly_flops", build)

    def subtree_flops_all(self) -> np.ndarray:
        """``subtree_flops(root)`` for every node, as one float64 array.

        The per-subtree accumulation runs level by level from the deepest
        nodes up (each node's parent sits exactly one level above it), so one
        ``np.add.at`` per tree level replaces the per-root depth-first sums.
        Flop counts are integral and the totals stay far below 2**53, so the
        accumulation order cannot change the float results.
        """

        def build() -> np.ndarray:
            acc = self.factor_flops_all().copy()
            levels = self.levels()
            for lev in range(int(levels.max(initial=0)), 0, -1):
                at = np.nonzero(levels == lev)[0]
                np.add.at(acc, self.parent[at], acc[at])
            return acc

        return self._cached("subtree_flops", build)

    def subtree_factor_entries_all(self) -> np.ndarray:
        """``subtree_factor_entries(root)`` for every node (int64, exact)."""

        def build() -> np.ndarray:
            acc = self.factor_entries_all().copy()
            levels = self.levels()
            for lev in range(int(levels.max(initial=0)), 0, -1):
                at = np.nonzero(levels == lev)[0]
                np.add.at(acc, self.parent[at], acc[at])
            return acc

        return self._cached("subtree_factor_entries", build)

    # ------------------------------------------------------------------ #
    # memory / flops models (delegated to repro.analysis.flops)
    # ------------------------------------------------------------------ #
    def front_entries(self, i: int) -> int:
        """Entries of the full frontal matrix of node ``i``."""
        return front_entries(int(self.nfront[i]), self.symmetric)

    def factor_entries(self, i: int) -> int:
        """Entries of the factors produced by node ``i``."""
        return factor_entries(int(self.npiv[i]), int(self.nfront[i]), self.symmetric)

    def cb_entries(self, i: int) -> int:
        """Entries of the contribution block produced by node ``i``."""
        return cb_entries(int(self.npiv[i]), int(self.nfront[i]), self.symmetric)

    def factor_flops(self, i: int) -> float:
        """Flops of the partial factorization performed at node ``i``."""
        return partial_factorization_flops(int(self.npiv[i]), int(self.nfront[i]), self.symmetric)

    def assembly_flops(self, i: int) -> float:
        """Flops (entry additions) of assembling the children CBs into ``i``."""
        return float(self.assembly_flops_all()[i])

    def master_entries(self, i: int) -> int:
        """Entries of the *master part* of node ``i`` when treated as type 2.

        The master holds the fully summed rows of the front: ``npiv × nfront``
        entries in the unsymmetric case (the ``U`` rows), and the pivot
        triangle in the symmetric case (the rows below belong to the slaves'
        blocks, Figure 3 of the paper).  This is the quantity the paper's
        splitting threshold (2·10⁶ entries) applies to, and it is also what
        the master's factors amount to, so that master + slave factor pieces
        always sum to :meth:`factor_entries`.
        """
        npiv = int(self.npiv[i])
        nfront = int(self.nfront[i])
        if self.symmetric:
            return npiv * (npiv + 1) // 2
        return npiv * nfront

    def type2_master_flops(self, i: int) -> float:
        return type2_master_flops(int(self.npiv[i]), int(self.nfront[i]), self.symmetric)

    def type2_slave_flops(self, i: int, nrows: int) -> float:
        return type2_slave_flops(int(self.npiv[i]), int(self.nfront[i]), nrows, self.symmetric)

    def total_factor_entries(self) -> int:
        return int(self.factor_entries_all().sum())

    def total_flops(self) -> float:
        # per-node flop counts are integral floats well below 2**53, so the
        # vectorized sum is exact (no order-dependent rounding)
        return float(self.factor_flops_all().sum())

    def subtree_flops(self, root: int) -> float:
        return float(self.subtree_flops_all()[root])

    def subtree_factor_entries(self, root: int) -> int:
        return int(self.subtree_factor_entries_all()[root])

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #
    def validate(self) -> None:
        """Check the structural invariants; raise ``ValueError`` on failure."""
        n = self.nnodes
        for j in range(n):
            p = int(self.parent[j])
            if p >= n:
                raise ValueError(f"node {j}: parent {p} out of range")
            if 0 <= p <= j:
                raise ValueError(f"node {j}: parent {p} does not follow it (tree not postordered)")
            if self.npiv[j] < 1:
                raise ValueError(f"node {j}: npiv must be >= 1")
            if self.nfront[j] < self.npiv[j]:
                raise ValueError(f"node {j}: nfront < npiv")
        if self.variables is not None:
            seen: set[int] = set()
            for j, vs in enumerate(self.variables):
                if len(vs) != int(self.npiv[j]):
                    raise ValueError(f"node {j}: variable list length != npiv")
                overlap = seen.intersection(vs)
                if overlap:
                    raise ValueError(f"node {j}: variables {sorted(overlap)[:5]} appear twice")
                seen.update(vs)
            if len(seen) != self.nvars:
                raise ValueError("variable lists do not cover all matrix columns")

    def stats(self) -> dict[str, float]:
        """Summary statistics (used by the Table 1 harness and examples)."""
        cb = self.cb_entries_all().astype(np.float64)
        return {
            "nodes": float(self.nnodes),
            "nvars": float(self.nvars),
            "depth": float(self.depth()),
            "leaves": float(len(self.leaves())),
            "max_front": float(self.nfront.max()) if self.nnodes else 0.0,
            "mean_front": float(self.nfront.mean()) if self.nnodes else 0.0,
            "max_npiv": float(self.npiv.max()) if self.nnodes else 0.0,
            "factor_entries": float(self.total_factor_entries()),
            "total_flops": float(self.total_flops()),
            "max_cb_entries": float(cb.max()) if self.nnodes else 0.0,
        }

    # ------------------------------------------------------------------ #
    # rendering (Figure 1 / Figure 2 style ascii output)
    # ------------------------------------------------------------------ #
    def render_ascii(self, *, annotate=None, max_nodes: int = 200) -> str:
        """Indented ascii rendering of the tree (roots first).

        ``annotate`` is an optional callable ``node_index -> str`` appended
        to each line; rendering stops after ``max_nodes`` nodes.
        """
        lines: list[str] = []
        count = 0
        for root in sorted(self.roots, reverse=True):
            stack: list[tuple[int, int]] = [(root, 0)]
            while stack and count < max_nodes:
                j, depth = stack.pop()
                extra = f"  {annotate(j)}" if annotate is not None else ""
                lines.append(
                    "  " * depth
                    + f"[{j}] npiv={int(self.npiv[j])} nfront={int(self.nfront[j])}"
                    + extra
                )
                count += 1
                for c in sorted(self._children[j]):
                    stack.append((c, depth + 1))
        if count >= max_nodes:
            lines.append(f"... ({self.nnodes - max_nodes} more nodes)")
        return "\n".join(lines)

    def copy(self) -> "AssemblyTree":
        return AssemblyTree(
            self.npiv.copy(),
            self.nfront.copy(),
            self.parent.copy(),
            symmetric=self.symmetric,
            nvars=self.nvars,
            variables=self.variables,
            name=self.name,
        )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"AssemblyTree(nodes={self.nnodes}, nvars={self.nvars}, "
            f"{'SYM' if self.symmetric else 'UNS'}, max_front={int(self.nfront.max()) if self.nnodes else 0})"
        )


def build_assembly_tree(
    pattern: SparsePattern,
    ordering: np.ndarray | None = None,
    *,
    amalgamation_min_pivots: int = 8,
    amalgamation_relax: float = 0.25,
    amalgamation_max_front: int | None = None,
    keep_variables: bool = True,
    name: str | None = None,
) -> AssemblyTree:
    """Full symbolic analysis: pattern + ordering → assembly tree.

    Pipeline (mirrors the analysis phase of a multifrontal solver):

    1. apply the fill-reducing ``ordering`` (identity when ``None``);
    2. symmetrize the pattern and compute the elimination tree;
    3. postorder the tree and relabel the matrix accordingly;
    4. compute the column counts of ``L``;
    5. detect fundamental supernodes;
    6. relaxed amalgamation;
    7. emit the :class:`AssemblyTree`.

    The ``ordering`` follows the :meth:`SparsePattern.permuted` convention:
    ``ordering[k]`` is the original variable eliminated at step ``k``.
    """
    work = pattern
    perm_total = np.arange(pattern.n, dtype=np.int64)
    if ordering is not None:
        ordering = np.asarray(ordering, dtype=np.int64)
        work = work.permuted(ordering)
        perm_total = ordering.copy()

    sym = work.symmetrized().with_diagonal()
    parent = elimination_tree(sym)
    post = postorder(parent)
    # relabel so that columns appear in postorder; the resulting etree is
    # monotone (parent > child), which the supernode detection requires
    sym_post = sym.permuted(post)
    perm_total = perm_total[post]
    parent_post = elimination_tree(sym_post)
    counts = column_counts(sym_post, parent_post)

    membership, supernodes = fundamental_supernodes(parent_post, counts)
    merged, _ = amalgamate(
        supernodes,
        min_pivots=amalgamation_min_pivots,
        relax=amalgamation_relax,
        max_front=amalgamation_max_front,
        symmetric=pattern.symmetric,
    )

    npiv = [sn.npiv for sn in merged]
    nfront = [sn.nfront for sn in merged]
    parent_sn = [sn.parent for sn in merged]
    variables = None
    if keep_variables:
        variables = [tuple(int(perm_total[c]) for c in sn.columns) for sn in merged]
    return AssemblyTree(
        npiv,
        nfront,
        parent_sn,
        symmetric=pattern.symmetric,
        nvars=pattern.n,
        variables=variables,
        name=name if name is not None else pattern.name,
    )
