"""Column counts of the Cholesky factor.

``colcount[j]`` is the number of nonzeros of column ``j`` of ``L`` (diagonal
included) for the symmetrized pattern.  The column count of the first column
of a fundamental supernode is exactly the order of that supernode's frontal
matrix, which is why these counts drive all the memory and flop models of the
reproduction.

Two implementations are provided:

* :func:`column_counts` — the Gilbert–Ng–Peyton skeleton/least-common-ancestor
  algorithm (as in CSparse ``cs_counts``), running in nearly ``O(nnz(A))``;
* :func:`column_counts_naive` — an ``O(nnz(L))`` row-subtree traversal used as
  an oracle in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.pattern import SparsePattern
from repro.symbolic.etree import elimination_tree, postorder

__all__ = ["column_counts", "column_counts_naive", "symbolic_fill"]


def _leaf(
    i: int,
    j: int,
    first: np.ndarray,
    maxfirst: np.ndarray,
    prevleaf: np.ndarray,
    ancestor: np.ndarray,
) -> tuple[int, int]:
    """Skeleton test of Gilbert–Ng–Peyton.

    Determines whether column ``j`` is a leaf of the row subtree of row ``i``
    and, when it is a *subsequent* leaf, returns the least common ancestor of
    ``j`` and the previous leaf (the node whose count must be decremented to
    avoid double counting).

    Returns ``(q, jleaf)`` where ``jleaf`` is 0 (not a leaf), 1 (first leaf)
    or 2 (subsequent leaf), and ``q`` is the node to update (or -1).
    """
    if i <= j or first[j] <= maxfirst[i]:
        return -1, 0
    maxfirst[i] = first[j]
    jprev = int(prevleaf[i])
    prevleaf[i] = j
    if jprev == -1:
        return i, 1
    # find the root of jprev's current set == LCA(jprev, j)
    q = jprev
    while q != ancestor[q]:
        q = int(ancestor[q])
    # path compression
    s = jprev
    while s != q:
        sparent = int(ancestor[s])
        ancestor[s] = q
        s = sparent
    return q, 2


def column_counts(
    pattern: SparsePattern,
    parent: np.ndarray | None = None,
    post: np.ndarray | None = None,
) -> np.ndarray:
    """Column counts of ``L`` (diagonal included) for the symmetrized pattern."""
    sym = pattern.symmetrized().with_diagonal()
    n = sym.n
    if parent is None:
        parent = elimination_tree(sym)
    if post is None:
        post = postorder(parent)

    delta = np.zeros(n, dtype=np.int64)
    first = np.full(n, -1, dtype=np.int64)
    maxfirst = np.full(n, -1, dtype=np.int64)
    prevleaf = np.full(n, -1, dtype=np.int64)
    ancestor = np.arange(n, dtype=np.int64)

    # first[j]: postorder index of the first descendant of j; a node is a leaf
    # of the etree iff it is its own first descendant.
    for k in range(n):
        j = int(post[k])
        delta[j] = 1 if first[j] == -1 else 0
        while j != -1 and first[j] == -1:
            first[j] = k
            j = int(parent[j])

    indptr = sym.indptr
    indices = sym.indices
    for k in range(n):
        j = int(post[k])
        pj = int(parent[j])
        if pj != -1:
            delta[pj] -= 1
        for p in range(indptr[j], indptr[j + 1]):
            i = int(indices[p])
            q, jleaf = _leaf(i, j, first, maxfirst, prevleaf, ancestor)
            if jleaf >= 1:
                delta[j] += 1
            if jleaf == 2:
                delta[q] -= 1
        if pj != -1:
            ancestor[j] = pj

    colcount = delta.copy()
    for k in range(n):
        j = int(post[k])
        pj = int(parent[j])
        if pj != -1:
            colcount[pj] += colcount[j]
    return colcount


def column_counts_naive(
    pattern: SparsePattern,
    parent: np.ndarray | None = None,
) -> np.ndarray:
    """Reference column counts via explicit row-subtree traversals (slow)."""
    sym = pattern.symmetrized().with_diagonal()
    n = sym.n
    if parent is None:
        parent = elimination_tree(sym)
    colcount = np.ones(n, dtype=np.int64)
    mark = np.full(n, -1, dtype=np.int64)
    indptr = sym.indptr
    indices = sym.indices
    for i in range(n):
        mark[i] = i
        for p in range(indptr[i], indptr[i + 1]):
            j = int(indices[p])
            if j >= i:
                continue
            while mark[j] != i:
                colcount[j] += 1
                mark[j] = i
                j = int(parent[j])
    return colcount


def symbolic_fill(pattern: SparsePattern) -> dict[str, float]:
    """Summary statistics of the symbolic factorization of ``pattern``.

    Returns the number of nonzeros of ``L`` (``nnz_L``), the fill ratio with
    respect to the lower triangle of ``A`` and the factorization flop count
    for the symmetric (LDLᵀ) model — a convenient one-stop query used by the
    ordering quality tests and the ordering-comparison example.
    """
    sym = pattern.symmetrized().with_diagonal()
    parent = elimination_tree(sym)
    post = postorder(parent)
    counts = column_counts(sym, parent, post)
    nnz_l = int(counts.sum())
    # lower triangle of A including the diagonal
    rows = np.repeat(np.arange(sym.n, dtype=np.int64), np.diff(sym.indptr))
    nnz_lower_a = int(np.count_nonzero(rows >= sym.indices))
    flops = float(np.sum(counts.astype(np.float64) ** 2))
    return {
        "nnz_L": float(nnz_l),
        "fill_ratio": float(nnz_l) / float(max(nnz_lower_a, 1)),
        "flops": flops,
    }
