"""Column counts of the Cholesky factor.

``colcount[j]`` is the number of nonzeros of column ``j`` of ``L`` (diagonal
included) for the symmetrized pattern.  The column count of the first column
of a fundamental supernode is exactly the order of that supernode's frontal
matrix, which is why these counts drive all the memory and flop models of the
reproduction.

Three implementations are provided:

* :func:`column_counts` — the Gilbert–Ng–Peyton skeleton/least-common-ancestor
  algorithm (as in CSparse ``cs_counts``), running in nearly ``O(nnz(A))``.
  The default path batches the per-nonzero skeleton test, the first-descendant
  computation and the final subtree accumulation into numpy array operations
  (the analysis phase grows with the matrix, so this is a hot path of every
  sweep); ``vectorized=False`` keeps the historical per-nonzero Python loop
  as an executable reference — the two are exactly equivalent (integer
  arithmetic only) and the test suite asserts it over random patterns;
* :func:`column_counts_naive` — an ``O(nnz(L))`` row-subtree traversal used as
  an oracle in the test suite.
"""

from __future__ import annotations

import numpy as np

from repro.sparse.pattern import SparsePattern
from repro.symbolic.etree import elimination_tree, postorder

__all__ = ["column_counts", "column_counts_naive", "symbolic_fill"]


def _leaf(
    i: int,
    j: int,
    first: np.ndarray,
    maxfirst: np.ndarray,
    prevleaf: np.ndarray,
    ancestor: np.ndarray,
) -> tuple[int, int]:
    """Skeleton test of Gilbert–Ng–Peyton.

    Determines whether column ``j`` is a leaf of the row subtree of row ``i``
    and, when it is a *subsequent* leaf, returns the least common ancestor of
    ``j`` and the previous leaf (the node whose count must be decremented to
    avoid double counting).

    Returns ``(q, jleaf)`` where ``jleaf`` is 0 (not a leaf), 1 (first leaf)
    or 2 (subsequent leaf), and ``q`` is the node to update (or -1).
    """
    if i <= j or first[j] <= maxfirst[i]:
        return -1, 0
    maxfirst[i] = first[j]
    jprev = int(prevleaf[i])
    prevleaf[i] = j
    if jprev == -1:
        return i, 1
    # find the root of jprev's current set == LCA(jprev, j)
    q = jprev
    while q != ancestor[q]:
        q = int(ancestor[q])
    # path compression
    s = jprev
    while s != q:
        sparent = int(ancestor[s])
        ancestor[s] = q
        s = sparent
    return q, 2


def column_counts(
    pattern: SparsePattern,
    parent: np.ndarray | None = None,
    post: np.ndarray | None = None,
    *,
    vectorized: bool = True,
) -> np.ndarray:
    """Column counts of ``L`` (diagonal included) for the symmetrized pattern.

    ``vectorized=False`` selects the historical per-nonzero scalar loop (the
    executable reference); both paths return identical int64 arrays.
    """
    sym = pattern.symmetrized().with_diagonal()
    n = sym.n
    if parent is None:
        parent = elimination_tree(sym)
    if post is None:
        post = postorder(parent)
    if vectorized:
        return _column_counts_vectorized(sym, parent, post)
    return _column_counts_scalar(sym, parent, post)


def _first_descendants(parent: np.ndarray, post: np.ndarray) -> np.ndarray:
    """Postorder index of the first descendant of every node.

    The same amortized-O(n) climb the scalar algorithm uses; kept scalar
    because each node is visited exactly once across all climbs.
    """
    n = parent.size
    first = [-1] * n
    parent_list = parent.tolist()
    post_list = post.tolist()
    for k in range(n):
        j = post_list[k]
        while j != -1 and first[j] == -1:
            first[j] = k
            j = parent_list[j]
    return np.asarray(first, dtype=np.int64)


def _column_counts_vectorized(sym: SparsePattern, parent: np.ndarray, post: np.ndarray) -> np.ndarray:
    """Numpy-batched Gilbert–Ng–Peyton column counts.

    The scalar algorithm walks the nonzeros one by one, maintaining a
    per-row ``maxfirst`` running maximum (the skeleton test) and a union-find
    over processed columns (the LCA of consecutive skeleton leaves).  Both
    collapse into batched passes:

    * the skeleton test is a *segmented running maximum*: group the strict
      lower-triangle nonzeros by row, order each group by column postorder,
      and an entry is a skeleton leaf exactly when its ``first`` value
      exceeds the running maximum of its predecessors in the row — one
      ``np.maximum.accumulate`` over all nonzeros at once;
    * the ``delta[q] -= 1`` corrections at the least common ancestor of
      consecutive leaves are replayed as an offline (Tarjan) LCA pass: the
      union-find links columns lazily in postorder, so the Python loop does
      O(n + #leaf pairs) trivial steps instead of running per nonzero;
    * the final subtree accumulation exploits that a subtree occupies the
      contiguous postorder range ``[first[j], ipost[j]]``: the per-node
      parent additions become one prefix sum plus a range-difference gather.

    Integer arithmetic throughout — the result is identical to the scalar
    reference, element for element.
    """
    n = sym.n
    ipost = np.empty(n, dtype=np.int64)
    ipost[post] = np.arange(n, dtype=np.int64)
    first = _first_descendants(parent, post)

    delta = (first == ipost).astype(np.int64)  # a leaf is its own first descendant
    has_parent = parent >= 0
    np.subtract.at(delta, parent[has_parent], 1)  # every child discounts its parent

    # strict lower triangle (the scalar loop skips i <= j), grouped by row
    # with each group ordered by column postorder position — the order the
    # scalar loop reaches them
    row_of = np.repeat(np.arange(n, dtype=np.int64), np.diff(sym.indptr))
    lower = row_of > sym.indices
    i_arr = row_of[lower]
    j_arr = sym.indices[lower]
    if i_arr.size:
        k_arr = ipost[j_arr]
        order = np.lexsort((k_arr, i_arr))
        i_sorted = i_arr[order]
        j_sorted = j_arr[order]
        k_sorted = k_arr[order]
        f_sorted = first[j_sorted]

        # segmented running max of `first` per row: the per-row offset i*n
        # makes segments monotone across rows, so one global accumulate works
        seg = i_sorted * np.int64(n) + f_sorted
        prev_max = np.empty_like(seg)
        prev_max[0] = np.iinfo(np.int64).min
        np.maximum.accumulate(seg[:-1], out=prev_max[1:])
        leaf = seg > prev_max

        leaf_j = j_sorted[leaf]
        delta += np.bincount(leaf_j, minlength=n)  # each skeleton leaf counts in its column

        # consecutive leaves of one row: the second of each pair needs the
        # delta[LCA] -= 1 correction
        leaf_i = i_sorted[leaf]
        leaf_k = k_sorted[leaf]
        subsequent = np.empty(leaf_i.shape, dtype=bool)
        if leaf_i.size:
            subsequent[0] = False
            subsequent[1:] = leaf_i[1:] == leaf_i[:-1]
        pairs = np.nonzero(subsequent)[0]
        if pairs.size:
            # replay in column (postorder) processing order: exactly the
            # union-find state the scalar loop would have at each event
            ev_order = np.argsort(leaf_k[pairs], kind="stable")
            ev_k = leaf_k[pairs][ev_order].tolist()
            ev_jprev = leaf_j[pairs - 1][ev_order].tolist()
            ancestor = list(range(n))
            post_list = post.tolist()
            parent_list = parent.tolist()
            ptr = 0
            for k, jprev in zip(ev_k, ev_jprev):
                while ptr < k:  # lazily link the columns processed before k
                    node = post_list[ptr]
                    pn = parent_list[node]
                    if pn != -1:
                        ancestor[node] = pn
                    ptr += 1
                root = jprev
                while ancestor[root] != root:
                    root = ancestor[root]
                q = jprev  # path compression
                while q != root:
                    q, ancestor[q] = ancestor[q], root
                delta[root] -= 1  # avoid double counting below the LCA

    # subtree sums via the postorder prefix sum: descendants of j occupy the
    # contiguous postorder range [first[j], ipost[j]]
    csum = np.zeros(n + 1, dtype=np.int64)
    np.cumsum(delta[post], out=csum[1:])
    return csum[ipost + 1] - csum[first]


def _column_counts_scalar(sym: SparsePattern, parent: np.ndarray, post: np.ndarray) -> np.ndarray:
    """The historical per-nonzero loop (executable reference)."""
    n = sym.n
    delta = np.zeros(n, dtype=np.int64)
    first = np.full(n, -1, dtype=np.int64)
    maxfirst = np.full(n, -1, dtype=np.int64)
    prevleaf = np.full(n, -1, dtype=np.int64)
    ancestor = np.arange(n, dtype=np.int64)

    # first[j]: postorder index of the first descendant of j; a node is a leaf
    # of the etree iff it is its own first descendant.
    for k in range(n):
        j = int(post[k])
        delta[j] = 1 if first[j] == -1 else 0
        while j != -1 and first[j] == -1:
            first[j] = k
            j = int(parent[j])

    indptr = sym.indptr
    indices = sym.indices
    for k in range(n):
        j = int(post[k])
        pj = int(parent[j])
        if pj != -1:
            delta[pj] -= 1
        for p in range(indptr[j], indptr[j + 1]):
            i = int(indices[p])
            q, jleaf = _leaf(i, j, first, maxfirst, prevleaf, ancestor)
            if jleaf >= 1:
                delta[j] += 1
            if jleaf == 2:
                delta[q] -= 1
        if pj != -1:
            ancestor[j] = pj

    colcount = delta.copy()
    for k in range(n):
        j = int(post[k])
        pj = int(parent[j])
        if pj != -1:
            colcount[pj] += colcount[j]
    return colcount


def column_counts_naive(
    pattern: SparsePattern,
    parent: np.ndarray | None = None,
) -> np.ndarray:
    """Reference column counts via explicit row-subtree traversals (slow)."""
    sym = pattern.symmetrized().with_diagonal()
    n = sym.n
    if parent is None:
        parent = elimination_tree(sym)
    colcount = np.ones(n, dtype=np.int64)
    mark = np.full(n, -1, dtype=np.int64)
    indptr = sym.indptr
    indices = sym.indices
    for i in range(n):
        mark[i] = i
        for p in range(indptr[i], indptr[i + 1]):
            j = int(indices[p])
            if j >= i:
                continue
            while mark[j] != i:
                colcount[j] += 1
                mark[j] = i
                j = int(parent[j])
    return colcount


def symbolic_fill(pattern: SparsePattern) -> dict[str, float]:
    """Summary statistics of the symbolic factorization of ``pattern``.

    Returns the number of nonzeros of ``L`` (``nnz_L``), the fill ratio with
    respect to the lower triangle of ``A`` and the factorization flop count
    for the symmetric (LDLᵀ) model — a convenient one-stop query used by the
    ordering quality tests and the ordering-comparison example.
    """
    sym = pattern.symmetrized().with_diagonal()
    parent = elimination_tree(sym)
    post = postorder(parent)
    counts = column_counts(sym, parent, post)
    nnz_l = int(counts.sum())
    # lower triangle of A including the diagonal
    rows = np.repeat(np.arange(sym.n, dtype=np.int64), np.diff(sym.indptr))
    nnz_lower_a = int(np.count_nonzero(rows >= sym.indices))
    flops = float(np.sum(counts.astype(np.float64) ** 2))
    return {
        "nnz_L": float(nnz_l),
        "fill_ratio": float(nnz_l) / float(max(nnz_lower_a, 1)),
        "flops": flops,
    }
