"""Reverse Cuthill-McKee ordering.

Not used in the paper's tables, but a useful extra baseline: RCM produces
band-like factors and path-like assembly trees, the opposite extreme of
nested dissection, which makes it handy in tests and in the ordering-impact
example (the paper stresses that the tree topology is driven by the
ordering).
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.sparse.pattern import SparsePattern

__all__ = ["rcm_ordering", "pseudo_peripheral_node", "bfs_levels"]


def bfs_levels(indptr: np.ndarray, indices: np.ndarray, start: int, mask: np.ndarray) -> tuple[np.ndarray, list[int]]:
    """BFS level of every reachable vertex (−1 for unreachable), plus the order."""
    n = len(indptr) - 1
    level = np.full(n, -1, dtype=np.int64)
    level[start] = 0
    order = [start]
    queue = deque([start])
    while queue:
        u = queue.popleft()
        for p in range(indptr[u], indptr[u + 1]):
            v = int(indices[p])
            if mask[v] and level[v] < 0:
                level[v] = level[u] + 1
                order.append(v)
                queue.append(v)
    return level, order


def pseudo_peripheral_node(indptr: np.ndarray, indices: np.ndarray, start: int, mask: np.ndarray) -> int:
    """Vertex far away from ``start`` (George-Liu pseudo-peripheral heuristic)."""
    current = start
    last_ecc = -1
    for _ in range(8):  # converges in a handful of sweeps
        level, order = bfs_levels(indptr, indices, current, mask)
        ecc = int(level[order[-1]])
        if ecc <= last_ecc:
            break
        last_ecc = ecc
        # restart from a minimum-degree vertex of the last level
        last_level = [v for v in order if level[v] == ecc]
        degs = [indptr[v + 1] - indptr[v] for v in last_level]
        current = last_level[int(np.argmin(degs))]
    return current


def rcm_ordering(pattern: SparsePattern) -> np.ndarray:
    """Reverse Cuthill-McKee ordering of the symmetrized pattern."""
    indptr, indices = pattern.adjacency()
    n = pattern.n
    visited = np.zeros(n, dtype=bool)
    mask = np.ones(n, dtype=bool)
    order: list[int] = []
    degrees = np.diff(indptr)
    for comp_start in np.argsort(degrees):
        comp_start = int(comp_start)
        if visited[comp_start]:
            continue
        start = pseudo_peripheral_node(indptr, indices, comp_start, mask & ~visited)
        # Cuthill-McKee from the peripheral node
        visited[start] = True
        order.append(start)
        queue = deque([start])
        while queue:
            u = queue.popleft()
            neigh = [int(indices[p]) for p in range(indptr[u], indptr[u + 1]) if not visited[int(indices[p])]]
            neigh.sort(key=lambda v: (degrees[v], v))
            for v in neigh:
                visited[v] = True
                order.append(v)
                queue.append(v)
    return np.asarray(order[::-1], dtype=np.int64)
