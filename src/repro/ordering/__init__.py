"""Fill-reducing orderings: the four reordering techniques of the paper.

The paper studies the scheduling strategies on trees produced by METIS, PORD,
AMD and AMF, because the assembly-tree topology is dictated by the ordering.
This package provides from-scratch substitutes for all four (plus RCM as an
extra baseline) behind a single registry:

>>> from repro.ordering import compute_ordering
>>> perm = compute_ordering(pattern, "metis")

Registry names follow the paper's column labels: ``"metis"``, ``"pord"``,
``"amd"``, ``"amf"`` (and ``"rcm"``, ``"natural"``).  Orderings accept
keyword parameters, either directly or through the spec mini-language::

    compute_ordering(pattern, "metis", leaf_size=32)
    compute_ordering(pattern, "metis(leaf_size=32)")   # equivalent
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.ordering.amd import amd_ordering
from repro.ordering.amf import amf_ordering
from repro.ordering.nested_dissection import nested_dissection_ordering
from repro.ordering.pord import pord_ordering
from repro.ordering.quotient_graph import greedy_ordering, EliminationGraph
from repro.ordering.rcm import rcm_ordering
from repro.registry import Registry
from repro.sparse.pattern import SparsePattern
from repro.specs import ParamSpec

__all__ = [
    "amd_ordering",
    "amf_ordering",
    "nested_dissection_ordering",
    "pord_ordering",
    "rcm_ordering",
    "greedy_ordering",
    "EliminationGraph",
    "ORDERINGS",
    "compute_ordering",
    "resolve_ordering",
    "canonical_ordering",
    "is_permutation",
]


def _natural(pattern: SparsePattern, **_kwargs) -> np.ndarray:
    return np.arange(pattern.n, dtype=np.int64)


ORDERINGS: Registry[Callable[..., np.ndarray]] = Registry("ordering")
ORDERINGS.add(
    "metis",
    nested_dissection_ordering,
    description="Recursive nested dissection (METIS analogue)",
    params={"leaf_size": 64, "balance": 0.5, "leaf_method": "degree", "seed": 0, "handle_hubs": True},
)
ORDERINGS.add(
    "pord",
    pord_ordering,
    description="Hybrid multisection (PORD analogue)",
    params={"nd_levels": 4, "leaf_size": 48, "balance": 0.45, "seed": 0},
)
ORDERINGS.add(
    "amd",
    amd_ordering,
    description="Approximate minimum degree",
    params={"seed": 0},
)
ORDERINGS.add(
    "amf",
    amf_ordering,
    description="Approximate minimum fill",
    params={"seed": 0},
)
ORDERINGS.add("rcm", rcm_ordering, description="Reverse Cuthill-McKee (extra baseline)")
ORDERINGS.add("natural", _natural, description="Identity permutation (no reordering)")


def resolve_ordering(spec: str | ParamSpec) -> tuple[str, dict[str, object]]:
    """Parse an ordering spec into (registry name, bound parameters).

    Validates parameter names against the registry's declared ``params`` so a
    typo fails before any analysis runs.
    """
    entry, params = ORDERINGS.resolve(spec)
    return entry.name, params


def canonical_ordering(spec: str | ParamSpec) -> str:
    """Canonical spec string of an ordering, with the declared defaults bound.

    ``"metis"`` and ``"METIS(leaf_size=64)"`` canonicalise identically, so
    equivalent spellings share pipeline cache keys while any genuinely
    different parameterisation gets its own.
    """
    name, params = resolve_ordering(spec)
    declared = ORDERINGS.entry(name).params
    return ParamSpec(name, tuple(params.items())).with_defaults(declared).canonical()


def compute_ordering(pattern: SparsePattern, method: str, **kwargs) -> np.ndarray:
    """Compute the ordering ``method`` for ``pattern``.

    ``method`` is one of the registry names (case-insensitive), optionally
    carrying mini-language parameters (``"metis(leaf_size=32)"``).  Extra
    keyword arguments are merged in (explicit kwargs win) and forwarded to
    the underlying algorithm.
    """
    name, params = resolve_ordering(method)
    fn = ORDERINGS[name]
    return fn(pattern, **{**params, **kwargs})


def is_permutation(perm: np.ndarray, n: int) -> bool:
    """True when ``perm`` is a permutation of ``range(n)``."""
    perm = np.asarray(perm)
    return perm.shape == (n,) and np.array_equal(np.sort(perm), np.arange(n))
