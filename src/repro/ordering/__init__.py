"""Fill-reducing orderings: the four reordering techniques of the paper.

The paper studies the scheduling strategies on trees produced by METIS, PORD,
AMD and AMF, because the assembly-tree topology is dictated by the ordering.
This package provides from-scratch substitutes for all four (plus RCM as an
extra baseline) behind a single registry:

>>> from repro.ordering import compute_ordering
>>> perm = compute_ordering(pattern, "metis")

Registry names follow the paper's column labels: ``"metis"``, ``"pord"``,
``"amd"``, ``"amf"`` (and ``"rcm"``, ``"natural"``).
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.ordering.amd import amd_ordering
from repro.ordering.amf import amf_ordering
from repro.ordering.nested_dissection import nested_dissection_ordering
from repro.ordering.pord import pord_ordering
from repro.ordering.quotient_graph import greedy_ordering, EliminationGraph
from repro.ordering.rcm import rcm_ordering
from repro.sparse.pattern import SparsePattern

__all__ = [
    "amd_ordering",
    "amf_ordering",
    "nested_dissection_ordering",
    "pord_ordering",
    "rcm_ordering",
    "greedy_ordering",
    "EliminationGraph",
    "ORDERINGS",
    "compute_ordering",
    "is_permutation",
]


def _natural(pattern: SparsePattern, **_kwargs) -> np.ndarray:
    return np.arange(pattern.n, dtype=np.int64)


ORDERINGS: Dict[str, Callable[..., np.ndarray]] = {
    "metis": nested_dissection_ordering,
    "pord": pord_ordering,
    "amd": amd_ordering,
    "amf": amf_ordering,
    "rcm": rcm_ordering,
    "natural": _natural,
}


def compute_ordering(pattern: SparsePattern, method: str, **kwargs) -> np.ndarray:
    """Compute the ordering ``method`` for ``pattern``.

    ``method`` is one of the registry names (case-insensitive).  Extra
    keyword arguments are forwarded to the underlying algorithm.
    """
    key = method.lower()
    if key not in ORDERINGS:
        raise ValueError(f"unknown ordering {method!r}; expected one of {sorted(ORDERINGS)}")
    return ORDERINGS[key](pattern, **kwargs)


def is_permutation(perm: np.ndarray, n: int) -> bool:
    """True when ``perm`` is a permutation of ``range(n)``."""
    perm = np.asarray(perm)
    return perm.shape == (n,) and np.array_equal(np.sort(perm), np.arange(n))
