"""Recursive nested-dissection ordering (METIS substitute).

METIS is not available offline, so the reproduction ships a home-grown
recursive nested-dissection ordering.  What the paper needs from "METIS" is
the characteristic *tree topology* it induces — wide, balanced assembly trees
whose large fronts sit near the root — and that property comes from the
recursive-bisection structure, not from the quality of the separator
heuristic.  The separators here are level-set based (George-Liu): a BFS from
a pseudo-peripheral vertex splits the vertices in two halves, and the
boundary of the smaller half is taken as the separator, optionally shrunk by
a greedy minimal-cover pass.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.ordering.quotient_graph import greedy_ordering
from repro.ordering.rcm import bfs_levels, pseudo_peripheral_node
from repro.sparse.pattern import SparsePattern

__all__ = ["nested_dissection_ordering", "find_separator"]


def _connected_components(indptr: np.ndarray, indices: np.ndarray, vertices: np.ndarray) -> list[np.ndarray]:
    """Connected components of the subgraph induced by ``vertices``."""
    inset = np.zeros(len(indptr) - 1, dtype=bool)
    inset[vertices] = True
    seen = np.zeros(len(indptr) - 1, dtype=bool)
    comps: list[np.ndarray] = []
    for v in vertices:
        v = int(v)
        if seen[v]:
            continue
        comp = [v]
        seen[v] = True
        queue = deque([v])
        while queue:
            u = queue.popleft()
            for p in range(indptr[u], indptr[u + 1]):
                w = int(indices[p])
                if inset[w] and not seen[w]:
                    seen[w] = True
                    comp.append(w)
                    queue.append(w)
        comps.append(np.asarray(comp, dtype=np.int64))
    return comps


def find_separator(
    pattern_indptr: np.ndarray,
    pattern_indices: np.ndarray,
    vertices: np.ndarray,
    *,
    balance: float = 0.5,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Split ``vertices`` into (part_a, part_b, separator).

    A BFS level structure from a pseudo-peripheral vertex is cut at the level
    where roughly ``balance`` of the vertices have been visited; the vertices
    of the heavier side adjacent to the lighter side form the separator.
    """
    vertices = np.asarray(vertices, dtype=np.int64)
    mask = np.zeros(len(pattern_indptr) - 1, dtype=bool)
    mask[vertices] = True
    start = pseudo_peripheral_node(pattern_indptr, pattern_indices, int(vertices[0]), mask)
    level, order = bfs_levels(pattern_indptr, pattern_indices, start, mask)
    order = np.asarray(order, dtype=np.int64)
    # order only contains reachable vertices of this component
    target = max(1, int(balance * order.size))
    cut_level = int(level[order[min(target, order.size - 1)]])
    in_a = np.zeros(len(mask), dtype=bool)
    a_vertices = order[np.asarray([level[v] < cut_level for v in order])]
    if a_vertices.size == 0 or a_vertices.size == order.size:
        # degenerate level structure (e.g. a clique): split by BFS order
        half = max(1, order.size // 2)
        a_vertices = order[:half]
    in_a[a_vertices] = True
    in_comp = np.zeros(len(mask), dtype=bool)
    in_comp[order] = True
    # separator: vertices of B adjacent to A
    sep = []
    b_list = []
    for v in order:
        v = int(v)
        if in_a[v]:
            continue
        touches_a = any(
            in_a[int(pattern_indices[p])]
            for p in range(pattern_indptr[v], pattern_indptr[v + 1])
        )
        if touches_a:
            sep.append(v)
        else:
            b_list.append(v)
    part_a = a_vertices
    part_b = np.asarray(b_list, dtype=np.int64)
    separator = np.asarray(sep, dtype=np.int64)
    return part_a, part_b, separator


def extract_hubs(indptr: np.ndarray, indices: np.ndarray, *, factor: float = 8.0, min_degree: int = 24) -> np.ndarray:
    """Vertices so well connected that no small separator can avoid them.

    Circuit matrices (PRE2, TWOTONE in the paper) contain a few nearly dense
    rows; level-set separators degrade badly on such *hub* vertices, so —
    like practical ND codes that compress or defer dense rows — they are
    pulled out before the dissection and ordered last (they would end up in
    the top separators anyway).
    """
    degrees = np.diff(indptr)
    n = len(degrees)
    if n == 0:
        return np.empty(0, dtype=np.int64)
    threshold = max(float(min_degree), factor * float(np.mean(degrees)))
    hubs = np.nonzero(degrees >= threshold)[0].astype(np.int64)
    # never classify more than 2% of the vertices as hubs
    if hubs.size > max(1, n // 50):
        order = np.argsort(-degrees[hubs], kind="stable")
        hubs = hubs[order[: max(1, n // 50)]]
    return np.sort(hubs)


def nested_dissection_ordering(
    pattern: SparsePattern,
    *,
    leaf_size: int = 64,
    balance: float = 0.5,
    leaf_method: str = "degree",
    seed: int = 0,
    handle_hubs: bool = True,
) -> np.ndarray:
    """Recursive nested dissection ordering.

    Parameters
    ----------
    leaf_size:
        Subgraphs at most this large are ordered with the greedy
        minimum-degree engine instead of being dissected further.
    balance:
        Target fraction of vertices in the first part of each bisection.
    leaf_method:
        Score used for the leaf ordering (``"degree"`` or ``"fill"``).
    handle_hubs:
        Pull nearly dense rows out of the graph and order them last (see
        :func:`extract_hubs`).

    Returns ``perm`` with ``perm[k]`` = original variable eliminated at step
    ``k``; separators are ordered after the parts they separate, which places
    them near the root of the assembly tree.
    """
    sym = pattern.symmetrized()
    indptr, indices = sym.adjacency()
    n = sym.n
    position = np.empty(n, dtype=np.int64)
    next_pos = 0

    hubs = extract_hubs(indptr, indices) if handle_hubs else np.empty(0, dtype=np.int64)
    non_hubs = np.setdiff1d(np.arange(n, dtype=np.int64), hubs, assume_unique=False)

    def order_leaf(vertices: np.ndarray) -> np.ndarray:
        if vertices.size <= 1:
            return vertices
        sub = sym.submatrix(vertices)
        local = greedy_ordering(sub, leaf_method, seed=seed)
        # submatrix() keeps the sorted order of `vertices`, so local indices
        # map back through the sorted vertex array
        sorted_vertices = np.sort(vertices)
        return sorted_vertices[local]

    def assign(vertices_in_order: np.ndarray) -> None:
        nonlocal next_pos
        for v in vertices_in_order:
            position[next_pos] = v
            next_pos += 1

    # Explicit recursion emulation: "dissect" frames split a vertex set,
    # "emit" frames assign a separator once both of its parts are done.
    # Hub vertices go last (they are pushed first so they are emitted last).
    pending: list[tuple[str, np.ndarray]] = []
    if hubs.size:
        pending.append(("emit", hubs))
    pending.append(("dissect", non_hubs))
    while pending:
        kind, verts = pending.pop()
        if kind == "emit":
            assign(verts)
            continue
        if verts.size == 0:
            continue
        if verts.size <= leaf_size:
            assign(order_leaf(verts))
            continue
        comps = _connected_components(indptr, indices, verts)
        if len(comps) > 1:
            for comp in comps:
                pending.append(("dissect", comp))
            continue
        part_a, part_b, separator = find_separator(indptr, indices, verts, balance=balance)
        if separator.size == 0 or part_a.size == 0 or part_b.size == 0:
            # could not split (dense or tiny component): order directly
            assign(order_leaf(verts))
            continue
        # order: part_a, part_b, then separator — pushed in reverse
        pending.append(("emit", separator))
        pending.append(("dissect", part_b))
        pending.append(("dissect", part_a))

    if next_pos != n:
        raise RuntimeError("nested dissection failed to order every vertex")
    return position
