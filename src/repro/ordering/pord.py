"""Hybrid top-down/bottom-up ordering (PORD substitute).

PORD (Schulze, BIT 2001) couples bottom-up (minimum-degree-like) and top-down
(separator-based) ordering.  The substitute implemented here captures that
hybrid character without the original's sophisticated separator refinement:

1. the top ``nd_levels`` levels of a recursive bisection provide separators
   (as in nested dissection);
2. the interior *domains* left at the bottom are ordered with the greedy
   minimum-**fill** engine (bottom-up ingredient);
3. each separator is itself ordered with the minimum-degree engine on the
   subgraph it induces, instead of being kept in BFS order.

The resulting assembly trees sit between the METIS-substitute (wide,
balanced) and AMD/AMF (deep) topologies, which is the role PORD plays in the
paper's ordering comparison.
"""

from __future__ import annotations

import numpy as np

from repro.ordering.nested_dissection import _connected_components, extract_hubs, find_separator
from repro.ordering.quotient_graph import greedy_ordering
from repro.sparse.pattern import SparsePattern

__all__ = ["pord_ordering"]


def pord_ordering(
    pattern: SparsePattern,
    *,
    nd_levels: int = 4,
    leaf_size: int = 48,
    balance: float = 0.45,
    seed: int = 0,
) -> np.ndarray:
    """Hybrid multisection ordering (PORD substitute).

    Parameters
    ----------
    nd_levels:
        Number of recursive-bisection levels applied before switching to the
        bottom-up engine for the remaining domains.
    leaf_size:
        Domains at most this large are always ordered bottom-up, regardless
        of the level.
    balance:
        Bisection balance target (slightly off 0.5 on purpose: PORD's
        separators are not perfectly balanced either, and the asymmetry
        produces the intermediate tree shapes we are after).
    """
    sym = pattern.symmetrized()
    indptr, indices = sym.adjacency()
    n = sym.n
    position = np.empty(n, dtype=np.int64)
    next_pos = 0

    def order_with(vertices: np.ndarray, score: str) -> np.ndarray:
        if vertices.size <= 1:
            return vertices
        sub = sym.submatrix(vertices)
        local = greedy_ordering(sub, score, seed=seed)
        return np.sort(vertices)[local]

    def assign(vertices_in_order: np.ndarray) -> None:
        nonlocal next_pos
        for v in vertices_in_order:
            position[next_pos] = v
            next_pos += 1

    hubs = extract_hubs(indptr, indices)
    non_hubs = np.setdiff1d(np.arange(n, dtype=np.int64), hubs, assume_unique=False)
    pending: list[tuple[str, np.ndarray, int]] = []
    if hubs.size:
        pending.append(("emit", hubs, 0))
    pending.append(("dissect", non_hubs, 0))
    while pending:
        kind, verts, level = pending.pop()
        if kind == "emit":
            # separators are ordered bottom-up (minimum degree) on their own subgraph
            assign(order_with(verts, "degree"))
            continue
        if verts.size == 0:
            continue
        if verts.size <= leaf_size or level >= nd_levels:
            assign(order_with(verts, "fill"))
            continue
        comps = _connected_components(indptr, indices, verts)
        if len(comps) > 1:
            for comp in comps:
                pending.append(("dissect", comp, level))
            continue
        part_a, part_b, separator = find_separator(indptr, indices, verts, balance=balance)
        if separator.size == 0 or part_a.size == 0 or part_b.size == 0:
            assign(order_with(verts, "fill"))
            continue
        pending.append(("emit", separator, level))
        pending.append(("dissect", part_b, level + 1))
        pending.append(("dissect", part_a, level + 1))

    if next_pos != n:
        raise RuntimeError("pord ordering failed to order every vertex")
    return position
