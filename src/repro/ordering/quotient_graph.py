"""Quotient-graph elimination engine for minimum-degree-like orderings.

AMD (approximate minimum degree) and AMF (approximate minimum fill) — two of
the four reordering techniques used in the paper's experiments — are both
greedy bottom-up orderings driven by the *elimination graph*.  Maintaining
that graph explicitly is quadratic, so practical implementations use the
quotient-graph representation (Amestoy, Davis, Duff, SIMAX 1996): eliminated
pivots become *elements* whose adjacency is a clique, variables keep a list
of adjacent variables plus a list of adjacent elements, and degrees are
*approximated* by summing element sizes instead of forming the exact union.

The engine below implements the quotient graph with:

* approximate external degrees (the ``|Le \\ Lp|`` trick of AMD, computed in
  one pass over the freshly formed element);
* element absorption (elements entirely contained in the new one disappear);
* supervariable detection by adjacency hashing (mass elimination), which is
  what keeps FEM-style matrices with several dofs per node tractable;
* a pluggable score function so that the same machinery serves AMD
  (score = approximate degree) and AMF (score = approximate deficiency).
"""

from __future__ import annotations

import heapq
from typing import Callable

import numpy as np

from repro.sparse.pattern import SparsePattern

__all__ = ["EliminationGraph", "greedy_ordering"]


class EliminationGraph:
    """Quotient-graph state for greedy bottom-up orderings.

    Variables are indexed ``0..n-1``.  A *supervariable* is represented by its
    principal variable; non-principal variables record the principal they were
    merged into through ``merged_into`` and are emitted right after it in the
    final ordering.
    """

    def __init__(self, pattern: SparsePattern):
        indptr, indices = pattern.adjacency()
        self.n = pattern.n
        # variable -> set of adjacent variables (both principal and not, cleaned lazily)
        self.adj: list[set[int]] = [set(indices[indptr[i]:indptr[i + 1]].tolist()) for i in range(self.n)]
        # variable -> set of adjacent element ids
        self.elems: list[set[int]] = [set() for _ in range(self.n)]
        # element id -> set of principal variables of the element
        self.element_vars: dict[int, set[int]] = {}
        # element id -> total supervariable weight of its members.  The total
        # weight is conserved by supervariable merges (the absorbed weight
        # moves into the principal that stays/enters the element), so the
        # value recorded at creation time remains exact.
        self.element_size: dict[int, int] = {}
        self.next_element = 0
        # supervariable bookkeeping
        self.weight = np.ones(self.n, dtype=np.int64)  # #variables represented by this principal
        self.merged_into = np.full(self.n, -1, dtype=np.int64)
        self.absorbed_children: list[list[int]] = [[] for _ in range(self.n)]
        self.eliminated = np.zeros(self.n, dtype=bool)
        # approximate external degree (in variables, counting supervariable weights)
        self.degree = np.zeros(self.n, dtype=np.int64)
        for i in range(self.n):
            self.degree[i] = len(self.adj[i])

    # ------------------------------------------------------------------ #
    def is_principal(self, i: int) -> bool:
        return self.merged_into[i] < 0 and not self.eliminated[i]

    def live_neighbors(self, i: int) -> set[int]:
        """Principal, uneliminated variable neighbours of ``i`` (cleaned)."""
        out = {v for v in self.adj[i] if self.merged_into[v] < 0 and not self.eliminated[v]}
        self.adj[i] = out
        return out

    def reachable_set(self, i: int) -> set[int]:
        """Exact elimination-graph adjacency of ``i`` (principal variables)."""
        reach = set(self.live_neighbors(i))
        for e in self.elems[i]:
            reach.update(self.element_vars[e])
        reach.discard(i)
        return {v for v in reach if self.merged_into[v] < 0 and not self.eliminated[v]}

    # ------------------------------------------------------------------ #
    def eliminate(self, p: int) -> set[int]:
        """Eliminate principal variable ``p``; return the new element's variables.

        Updates the approximate degrees of the variables of the new element,
        absorbs covered elements and merges indistinguishable variables.
        """
        if not self.is_principal(p):
            raise ValueError(f"variable {p} is not a principal live variable")
        lp = self.reachable_set(p)

        # create the element
        e_new = self.next_element
        self.next_element += 1
        self.element_vars[e_new] = set(lp)
        lp_weight = int(sum(int(self.weight[v]) for v in lp))
        self.element_size[e_new] = lp_weight
        self.eliminated[p] = True

        # elements adjacent to p are absorbed into the new one
        absorbed = set(self.elems[p])
        for e in absorbed:
            self.element_vars.pop(e, None)
            self.element_size.pop(e, None)
        self.elems[p] = set()
        self.adj[p] = set()

        # |Le ∩ Lp| for every element e touching Lp, in one pass
        overlap: dict[int, int] = {}
        for v in lp:
            # drop references to absorbed elements, count overlaps of the rest
            self.elems[v] = {e for e in self.elems[v] if e in self.element_vars}
            for e in self.elems[v]:
                overlap[e] = overlap.get(e, 0) + int(self.weight[v])
            self.elems[v].add(e_new)
            # p leaves the variable adjacency; variables of Lp that were
            # direct neighbours of v are now covered by the element
            self.adj[v].discard(p)

        # aggressive element absorption: an old element fully inside Lp is gone
        for e, ov in list(overlap.items()):
            if e == e_new:
                continue
            if e in self.element_vars and self.element_size.get(e, 0) == ov:
                # every variable of e is in Lp -> absorb
                for u in self.element_vars[e]:
                    self.elems[u].discard(e)
                self.element_vars.pop(e, None)
                self.element_size.pop(e, None)

        # approximate degree update for the variables of the new element
        for v in lp:
            adj_live = self.live_neighbors(v) - lp
            deg = sum(int(self.weight[u]) for u in adj_live)
            deg += lp_weight - int(self.weight[v])
            for e in self.elems[v]:
                if e == e_new:
                    continue
                if e not in self.element_vars:
                    continue
                deg += max(self.element_size.get(e, 0) - overlap.get(e, 0), 0)
            self.degree[v] = max(deg, 0)

        # supervariable detection (mass elimination): variables of Lp with the
        # same quotient-graph adjacency are indistinguishable
        buckets: dict[tuple, list[int]] = {}
        for v in lp:
            key = (
                frozenset(self.live_neighbors(v) - lp),
                frozenset(self.elems[v]),
            )
            buckets.setdefault(key, []).append(v)
        for group in buckets.values():
            if len(group) < 2:
                continue
            group.sort()
            keep = group[0]
            for other in group[1:]:
                self._merge_variables(keep, other)

        return lp

    def _merge_variables(self, keep: int, other: int) -> None:
        """Merge supervariable ``other`` into ``keep``."""
        self.weight[keep] += self.weight[other]
        self.weight[other] = 0
        self.merged_into[other] = keep
        self.absorbed_children[keep].append(other)
        # other disappears from the graph
        for e in self.elems[other]:
            vars_e = self.element_vars.get(e)
            if vars_e is not None:
                vars_e.discard(other)
                vars_e.add(keep)
        self.elems[other] = set()
        self.adj[other] = set()

    # ------------------------------------------------------------------ #
    def expand_supervariable(self, principal: int) -> list[int]:
        """All original variables represented by ``principal`` (principal first)."""
        out = [principal]
        stack = list(self.absorbed_children[principal])
        while stack:
            v = stack.pop()
            out.append(v)
            stack.extend(self.absorbed_children[v])
        return out


def _score_degree(graph: EliminationGraph, v: int) -> float:
    """AMD score: the approximate external degree."""
    return float(graph.degree[v])


def _score_fill(graph: EliminationGraph, v: int) -> float:
    """AMF score: approximate deficiency.

    The fill caused by eliminating ``v`` is at most ``d(d-1)/2``; edges already
    covered by adjacent elements (cliques) cause no fill, so each adjacent
    element ``e`` discounts ``|Le \\ v| (|Le \\ v| - 1) / 2``.
    """
    d = float(graph.degree[v])
    score = d * (d - 1.0) / 2.0
    w_v = int(graph.weight[v])
    for e in graph.elems[v]:
        if e not in graph.element_vars:
            continue
        size_e = graph.element_size.get(e, 0)
        if v in graph.element_vars[e]:
            size_e -= w_v
        score -= size_e * (size_e - 1.0) / 2.0
    return max(score, 0.0)


_SCORES: dict[str, Callable[[EliminationGraph, int], float]] = {
    "degree": _score_degree,
    "fill": _score_fill,
}


def greedy_ordering(
    pattern: SparsePattern,
    score: str = "degree",
    *,
    seed: int = 0,
) -> np.ndarray:
    """Greedy bottom-up ordering driven by the requested score.

    Parameters
    ----------
    pattern:
        Sparse pattern (symmetrized internally).
    score:
        ``"degree"`` for AMD-style, ``"fill"`` for AMF-style.
    seed:
        Tie-breaking seed: among equal scores the engine prefers lower
        variable indices, but the initial ordering of the heap is perturbed
        deterministically by the seed so that distinct seeds can be used for
        sensitivity studies.

    Returns
    -------
    perm:
        ``perm[k]`` is the original variable eliminated at step ``k``.
    """
    if score not in _SCORES:
        raise ValueError(f"unknown score {score!r}; expected one of {sorted(_SCORES)}")
    score_fn = _SCORES[score]
    sym = pattern.symmetrized()
    graph = EliminationGraph(sym)
    n = graph.n
    rng = np.random.default_rng(seed)
    jitter = rng.random(n) * 1e-9

    heap: list[tuple[float, float, int]] = []
    for v in range(n):
        heapq.heappush(heap, (score_fn(graph, v), jitter[v], v))

    perm: list[int] = []
    stale = np.zeros(n, dtype=bool)
    while heap and len(perm) < n:
        s, _, v = heapq.heappop(heap)
        if graph.eliminated[v] or graph.merged_into[v] >= 0:
            continue
        current = score_fn(graph, v)
        if current > s + 1e-12:
            # stale entry: reinsert with the refreshed score
            heapq.heappush(heap, (current, jitter[v], v))
            continue
        lp = graph.eliminate(v)
        for original in graph.expand_supervariable(v):
            perm.append(original)
        # refresh the scores of the element's variables lazily
        for u in lp:
            if graph.is_principal(u):
                heapq.heappush(heap, (score_fn(graph, u), jitter[u], u))
        stale[v] = True

    if len(perm) != n:
        # isolated variables or exhausted heap (should not happen): append the rest
        remaining = [v for v in range(n) if v not in set(perm)]
        perm.extend(remaining)
    return np.asarray(perm, dtype=np.int64)
