"""Approximate minimum degree ordering (AMD).

Thin wrapper over the quotient-graph engine with the degree score.  This is
the reproduction's stand-in for the AMD ordering of Amestoy, Davis & Duff
used in the paper's experiments: greedy bottom-up, producing deep and rather
unbalanced assembly trees whose subtrees carry most of the memory.
"""

from __future__ import annotations

import numpy as np

from repro.ordering.quotient_graph import greedy_ordering
from repro.sparse.pattern import SparsePattern

__all__ = ["amd_ordering"]


def amd_ordering(pattern: SparsePattern, *, seed: int = 0) -> np.ndarray:
    """Approximate minimum degree ordering of the symmetrized pattern."""
    return greedy_ordering(pattern, "degree", seed=seed)
