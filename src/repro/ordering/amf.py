"""Approximate minimum fill ordering (AMF).

Thin wrapper over the quotient-graph engine with the deficiency score, the
reproduction's stand-in for the AMF ordering implemented inside MUMPS.  AMF
trees tend to be even deeper and more irregular than AMD trees, which is why
several of the paper's largest gains (e.g. TWOTONE/AMF, +50%) appear in that
column.
"""

from __future__ import annotations

import numpy as np

from repro.ordering.quotient_graph import greedy_ordering
from repro.sparse.pattern import SparsePattern

__all__ = ["amf_ordering"]


def amf_ordering(pattern: SparsePattern, *, seed: int = 0) -> np.ndarray:
    """Approximate minimum fill ordering of the symmetrized pattern."""
    return greedy_ordering(pattern, "fill", seed=seed)
