"""The append-only :class:`ResultStore`: durable, resumable, shareable.

Layout of a store directory::

    store/
      manifest.jsonl          # one JSON line per sealed segment (append-only)
      seg-<writer>-000000.npz # immutable columnar segments (ResultTable)
      seg-<writer>-000001.npz
      traces/trace-<key>.npz  # optional delta-encoded SimulationTraces

The durability discipline is the journal idiom of
:class:`repro.service.jobs.JobJournal`: a segment is written to a temp
sibling, (optionally) fsync-ed and ``os.replace``-d into place *before* its
manifest line is appended (flushed + fsync-ed under a lock) — so a manifest
line implies a complete segment, a torn trailing line is skipped on replay,
and a segment file that never got its line (crash between the two steps) is
*adopted* on the next open.  Nothing is ever rewritten in place; a crash at
any point loses at most the rows still buffered in a writer.

One :class:`ResultWriter` per producer (sweep driver, service shard): each
writer seals its own uniquely named segments, so concurrent writers — even
in different processes sharing the directory — never collide; siblings'
segments appear on :meth:`ResultStore.refresh`.

Reads are indexed: the store keeps ``key → (segment, row)`` with last-write
wins, so :meth:`get`/``in`` are O(1) and :meth:`table` deduplicates by key.
"""

from __future__ import annotations

import json
import os
import threading
import uuid
from pathlib import Path
from typing import TYPE_CHECKING, Iterator, Optional

import numpy as np

from repro.pipeline.stage import CaseResult
from repro.results.table import ResultTable, ResultTableBuilder
from repro.results.traces import decode_trace, encode_trace
from repro.serialize import canonical_json

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.runtime.trace import SimulationTrace

__all__ = ["ResultStore", "ResultWriter"]

_MANIFEST = "manifest.jsonl"
_SEGMENT_PREFIX = "seg-"
_SEGMENT_SUFFIX = ".npz"


class ResultStore:
    """A directory of immutable columnar segments plus a replayable manifest.

    Parameters
    ----------
    directory:
        The store directory (created if missing).
    fsync:
        ``True`` (default) makes each sealed segment and manifest line
        durable before it is acknowledged; ``False`` trades the power-loss
        guarantee for speed (tests, CI, benchmarks).
    """

    def __init__(self, directory: str | os.PathLike, *, fsync: bool = True) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.fsync = bool(fsync)
        self._lock = threading.RLock()
        self._writer_tag = uuid.uuid4().hex[:8]
        self._writer_seq = 0
        self._segments: dict[str, ResultTable] = {}  # filename → table, manifest order
        self._index: dict[str, tuple[str, int]] = {}  # key → (filename, row)
        self._default_writer: Optional[ResultWriter] = None
        self.replay_skipped = 0  # unloadable segments seen during replay
        self._replay()

    # ------------------------------------------------------------------ #
    # replay and refresh
    # ------------------------------------------------------------------ #
    @property
    def manifest_path(self) -> Path:
        return self.directory / _MANIFEST

    def _manifest_files(self) -> list[str]:
        """Segment filenames named by the manifest, torn trailing line skipped."""
        files: list[str] = []
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as fh:
                lines = fh.readlines()
        except FileNotFoundError:
            return files
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                # torn trailing line from a crash mid-append: the segment it
                # described will be adopted as an orphan if it is complete
                continue
            if event.get("op") == "segment" and isinstance(event.get("file"), str):
                files.append(event["file"])
        return files

    def _append_manifest(self, filename: str, rows: int) -> None:
        # caller holds self._lock
        line = canonical_json({"op": "segment", "file": filename, "rows": rows})
        with open(self.manifest_path, "ab") as fh:
            fh.write(line)
            fh.flush()
            if self.fsync:
                os.fsync(fh.fileno())

    def _load_segment(self, filename: str) -> Optional[ResultTable]:
        try:
            return ResultTable.load_npz(self.directory / filename)
        except (OSError, ValueError, KeyError, EOFError):
            # a torn or foreign file must never poison replay — skip it; the
            # rows it would have held are simply recomputed by the next sweep
            self.replay_skipped += 1
            return None

    def _adopt(self, filename: str) -> Optional[ResultTable]:
        """Register one segment file: load, index, ensure a manifest line."""
        table = self._load_segment(filename)
        if table is None:
            return None
        self._segments[filename] = table
        for row, key in enumerate(table.keys):
            key = str(key)
            if key:
                self._index[key] = (filename, row)
        return table

    def _replay(self) -> int:
        """(Re)scan manifest + directory; returns the number of new segments."""
        with self._lock:
            known = set(self._segments)
            new = 0
            for filename in self._manifest_files():
                if filename in known or not (self.directory / filename).exists():
                    continue
                if self._adopt(filename) is not None:
                    known.add(filename)
                    new += 1
            # orphan adoption: complete segments whose manifest line was lost
            # to a crash between replace and append get re-manifested here
            for path in sorted(self.directory.glob(f"{_SEGMENT_PREFIX}*{_SEGMENT_SUFFIX}")):
                if path.name in known:
                    continue
                table = self._adopt(path.name)
                if table is not None:
                    self._append_manifest(path.name, len(table))
                    known.add(path.name)
                    new += 1
            return new

    def refresh(self) -> int:
        """Pick up segments sealed by sibling writers; returns how many."""
        return self._replay()

    # ------------------------------------------------------------------ #
    # writing
    # ------------------------------------------------------------------ #
    def writer(self, *, flush_every: int = 64) -> "ResultWriter":
        """A streaming writer sealing one segment every ``flush_every`` rows."""
        return ResultWriter(self, flush_every=flush_every)

    def append(self, key: str, result: CaseResult) -> None:
        """Convenience append through a store-owned writer (auto-created).

        The store-owned writer flushes every row, so a plain ``append`` is
        durable immediately; batch producers should hold their own
        :meth:`writer` with a larger ``flush_every`` instead.
        """
        with self._lock:
            if self._default_writer is None:
                self._default_writer = self.writer(flush_every=1)
            writer = self._default_writer
        writer.append(key, result)

    def flush(self) -> None:
        """Seal any rows buffered in the store-owned writer."""
        with self._lock:
            writer = self._default_writer
        if writer is not None:
            writer.flush()

    def _seal_segment(self, table: ResultTable) -> str:
        """Write one immutable segment + manifest line; returns the filename."""
        with self._lock:
            filename = f"{_SEGMENT_PREFIX}{self._writer_tag}-{self._writer_seq:06d}{_SEGMENT_SUFFIX}"
            self._writer_seq += 1
        # segment first (atomic replace), manifest line second: a line always
        # names a complete segment, and a lineless segment is adopted later
        table.save_npz(self.directory / filename, fsync=self.fsync)
        with self._lock:
            self._segments[filename] = table
            for row, key in enumerate(table.keys):
                key = str(key)
                if key:
                    self._index[key] = (filename, row)
            self._append_manifest(filename, len(table))
        return filename

    # ------------------------------------------------------------------ #
    # reading
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        with self._lock:
            return len(self._index)

    def __contains__(self, key: str) -> bool:
        with self._lock:
            return str(key) in self._index

    def keys(self) -> Iterator[str]:
        with self._lock:
            return iter(list(self._index))

    def get(self, key: str) -> CaseResult:
        """The stored result under ``key`` (raises ``KeyError`` if absent)."""
        with self._lock:
            filename, row = self._index[str(key)]
            table = self._segments[filename]
        return table.result(row)

    def table(self) -> ResultTable:
        """Every live row as one table (deduplicated by key, last write wins)."""
        with self._lock:
            segments = list(self._segments.values())
        if not segments:
            return ResultTableBuilder().build()
        return ResultTable.concat(segments).dedupe_by_key()

    def filter(self, **predicates) -> ResultTable:
        """Columnar predicate filtering over the live rows (see ``ResultTable.filter``)."""
        return self.table().filter(**predicates)

    def stats(self) -> dict[str, object]:
        with self._lock:
            return {
                "rows": len(self._index),
                "segments": len(self._segments),
                "replay_skipped": self.replay_skipped,
            }

    # ------------------------------------------------------------------ #
    # traces
    # ------------------------------------------------------------------ #
    def _trace_path(self, key: str) -> Path:
        return self.directory / "traces" / f"trace-{key}.npz"

    def put_trace(self, key: str, trace: "SimulationTrace") -> None:
        """Persist one case's trace, delta-encoded (atomic, idempotent)."""
        path = self._trace_path(str(key))
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = encode_trace(trace)
        tmp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
        try:
            with open(tmp, "wb") as fh:
                np.savez_compressed(fh, **payload)
                fh.flush()
                if self.fsync:
                    os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def has_trace(self, key: str) -> bool:
        return self._trace_path(str(key)).exists()

    def get_trace(self, key: str) -> "SimulationTrace":
        """Load one case's trace (raises ``KeyError`` if absent)."""
        path = self._trace_path(str(key))
        try:
            with np.load(path, allow_pickle=False) as data:
                return decode_trace(data)
        except FileNotFoundError:
            raise KeyError(str(key)) from None


class ResultWriter:
    """Streaming appender: buffers rows, seals a segment per ``flush_every``.

    Thread-safe; use as a context manager so an interrupted sweep still
    seals whatever completed before the exception flew::

        with store.writer() as w:
            for key, result in work:
                w.append(key, result)
    """

    def __init__(self, store: ResultStore, *, flush_every: int = 64) -> None:
        if flush_every < 1:
            raise ValueError(f"flush_every must be >= 1, got {flush_every}")
        self.store = store
        self.flush_every = int(flush_every)
        self._lock = threading.Lock()
        self._buffer: list[tuple[str, CaseResult]] = []
        self.rows_written = 0

    def append(self, key: str, result: CaseResult) -> None:
        with self._lock:
            self._buffer.append((str(key), result))
            should_flush = len(self._buffer) >= self.flush_every
        if should_flush:
            self.flush()

    def flush(self) -> None:
        """Seal the buffered rows as one segment (no-op when empty)."""
        with self._lock:
            rows, self._buffer = self._buffer, []
        if not rows:
            return
        builder = ResultTableBuilder()
        for key, result in rows:
            builder.append(result, key=key)
        self.store._seal_segment(builder.build())
        self.rows_written += len(rows)

    def close(self) -> None:
        self.flush()

    def __enter__(self) -> "ResultWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        # flush on the error path too: completed cases of an interrupted
        # sweep must be durable — that is the whole point of resumability
        self.close()
