"""Delta-encoded trace persistence: compact on-disk ``SimulationTrace`` blocks.

A per-processor memory trace is three monotone-ish ``float64`` streams
(times, stack, factors) per processor — exactly the ``(3, n)`` blocks the
runtime's :class:`~repro.runtime.trace.TraceBuffer` records.  Exploded into
JSON (the naive persistence) every sample costs ~60 bytes of text; here each
stream is stored as *first value + successive differences* instead.  The
deltas of a monotone stream are small and repetitive, which is what
``np.savez_compressed``'s deflate layer eats for breakfast — typical traces
shrink by an order of magnitude against the JSON form.

Reconstruction is a ``cumsum`` per block.  Float addition makes the
round-trip exact to accumulated rounding (a few ulps over a long trace), not
bit-exact — fine for plotting and analysis, which is what traces are for;
the *metrics* of a case live in the (bit-exact) result store, never here.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.runtime.trace import SimulationTrace
from repro.serialize import check_schema, schema_tag

__all__ = ["encode_trace", "decode_trace"]

_SCHEMA_KIND = "trace"
_STREAMS = ("times", "stack", "factors")


def _delta(block: np.ndarray) -> np.ndarray:
    """``[x0, x1-x0, x2-x1, ...]`` — cumsum-invertible, compresses well."""
    out = np.empty_like(block)
    if block.size:
        out[0] = block[0]
        np.subtract(block[1:], block[:-1], out=out[1:])
    return out


def encode_trace(trace: SimulationTrace) -> dict[str, np.ndarray]:
    """The ``.npz``-ready payload of one trace (schema-tagged, delta-encoded)."""
    blocks = trace.to_blocks()
    lengths = np.asarray([b.shape[1] for b in blocks], dtype=np.int64)
    offsets = np.zeros(len(blocks) + 1, dtype=np.int64)
    np.cumsum(lengths, out=offsets[1:])
    payload: dict[str, np.ndarray] = {
        "schema": np.asarray(schema_tag(_SCHEMA_KIND)),
        "offsets": offsets,
    }
    for row, stream in enumerate(_STREAMS):
        concatenated = (
            np.concatenate([_delta(np.asarray(b[row], dtype=np.float64)) for b in blocks])
            if blocks
            else np.empty(0, dtype=np.float64)
        )
        payload[stream] = concatenated
    return payload


def decode_trace(payload: Mapping[str, np.ndarray]) -> SimulationTrace:
    """Rebuild a :class:`SimulationTrace` from :func:`encode_trace`'s payload."""
    check_schema(_SCHEMA_KIND, {"schema": str(payload["schema"])})
    offsets = np.asarray(payload["offsets"], dtype=np.int64)
    blocks = []
    for p in range(offsets.size - 1):
        lo, hi = int(offsets[p]), int(offsets[p + 1])
        block = np.empty((3, hi - lo), dtype=np.float64)
        for row, stream in enumerate(_STREAMS):
            np.cumsum(np.asarray(payload[stream][lo:hi], dtype=np.float64), out=block[row])
        blocks.append(block)
    return SimulationTrace.from_blocks(blocks)
