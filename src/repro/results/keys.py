"""Canonical case keys: the identity of one result in the store and cache.

A key is a content address over the *canonical* case parameters with the
engine defaults bound in — ``nprocs``/``scale`` overrides resolve to their
effective values and the ordering/strategy spec strings canonicalise through
:func:`repro.specs.parse_spec`.  The same logical case always lands on the
same key whether it arrives spelled out or relying on defaults; two engines
with different defaults never collide.

This is the exact key the service cache has always used
(:func:`repro.service.daemon.result_key` now delegates here), so a store and
a cache populated by the same daemon agree row for row.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.pipeline.store import content_key
from repro.specs import parse_spec

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.pipeline.engine import AnalysisPipeline
    from repro.pipeline.stage import CaseSpec

__all__ = ["CASE_KEY_VERSION", "case_key", "case_key_for"]

#: schema version of the result keys; bump to invalidate every stored result.
CASE_KEY_VERSION = "1"


def case_key(
    spec: "CaseSpec",
    *,
    nprocs: int,
    scale: float,
    split_threshold: Optional[int] = None,
    faults: Optional[str] = None,
    fault_seed: int = 0,
    replications: int = 1,
) -> str:
    """The content key of one case at explicit effective parameters.

    The fault axis enters the key only when set (in canonical form, with
    the seed and replication count that shape the stored summary), so every
    clean case keeps its seed-era key and stored results stay addressable.
    """
    params = {
        "problem": spec.problem.upper(),
        "ordering": str(parse_spec(spec.ordering)),
        "strategy": str(parse_spec(spec.strategy)),
        "split": bool(spec.split),
        "nprocs": int(nprocs),
        "scale": float(scale),
        "split_threshold": (
            spec.split_threshold if split_threshold is None else split_threshold
        ),
    }
    if faults:
        from repro.faults import canonical_faults

        params["faults"] = canonical_faults(faults)
        params["fault_seed"] = int(fault_seed)
        params["replications"] = int(replications)
    return content_key("result", CASE_KEY_VERSION, params)


def case_key_for(engine: "AnalysisPipeline", spec: "CaseSpec") -> str:
    """The content key of one case with ``engine``'s defaults bound in."""
    cfg = engine.effective_config(spec)
    return case_key(
        spec,
        nprocs=engine.effective_nprocs(spec),
        scale=engine.effective_scale(spec),
        faults=cfg.faults,
        fault_seed=cfg.fault_seed,
        replications=int(getattr(spec, "replications", 1) or 1),
    )
