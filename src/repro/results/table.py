"""The columnar :class:`ResultTable`: ``CaseResult`` fields as parallel arrays.

A :class:`~repro.pipeline.stage.CaseResult` list at corpus scale is the wrong
shape: filtering re-touches every Python object, serialization explodes every
row into JSON, and nothing is shared between rows.  The table stores each
field as one numpy column instead:

* string columns (``problem``/``ordering``/``strategy``) are
  dictionary-encoded — an ``int32`` code per row plus a small vocabulary —
  so predicates compare integers, not strings;
* numeric columns are plain ``float64``/``int64``/``bool`` arrays;
* the ragged ``per_proc_peak_stack`` column is one concatenated ``float64``
  value array plus an ``int64`` offsets array (`offsets[i]:offsets[i+1]`` is
  row ``i``'s slice);
* every row may carry its canonical case ``key`` (see
  :mod:`repro.results.keys`) for indexed lookup and deduplication.

The on-disk form is one compressed ``.npz`` per table (atomic write, schema
tagged); :meth:`to_parquet` additionally exports to parquet when ``pyarrow``
happens to be installed — it is never required.

:meth:`view` wraps the table in a lazy ``Sequence[CaseResult]`` that
materializes rows on access, which is how ``Session.sweep`` keeps returning
"a list of results" to historical callers while holding columns underneath.
All round-trips are exact: columns hold the same ``float64``/``int64``
values the dataclass did, so a materialized row compares bit-identical.
"""

from __future__ import annotations

import os
from collections.abc import Sequence
from typing import Iterable, Iterator, Mapping, Optional

import numpy as np

from repro.pipeline.stage import CaseResult
from repro.serialize import check_schema, schema_tag

__all__ = ["ResultTable", "ResultTableBuilder", "CaseResultView", "RESULT_COLUMNS"]

#: dictionary-encoded string columns, in row-dict order.
STRING_COLUMNS = ("problem", "ordering", "strategy", "faults")
#: plain numeric columns and their dtypes.
NUMERIC_COLUMNS: tuple[tuple[str, type], ...] = (
    ("split", np.bool_),
    ("nprocs", np.int64),
    ("max_peak_stack", np.float64),
    ("avg_peak_stack", np.float64),
    ("sum_peak_stack", np.float64),
    ("total_time", np.float64),
    ("total_factor_entries", np.float64),
    ("nodes", np.int64),
    ("nodes_split", np.int64),
    ("messages", np.int64),
    ("replications", np.int64),
    ("makespan_p50", np.float64),
    ("makespan_p95", np.float64),
    ("degradation", np.float64),
    ("messages_lost", np.int64),
    ("retries", np.int64),
)
#: every selectable field of a row dict (``fields=`` validates against this).
RESULT_COLUMNS = (
    STRING_COLUMNS
    + tuple(name for name, _ in NUMERIC_COLUMNS)
    + ("per_proc_peak_stack", "key")
)

_SCHEMA_KIND = "result_table"


class ResultTable:
    """An immutable columnar batch of case results (see module docstring)."""

    __slots__ = ("_codes", "_vocabs", "_numeric", "_values", "_offsets", "_keys")

    def __init__(
        self,
        *,
        codes: Mapping[str, np.ndarray],
        vocabs: Mapping[str, np.ndarray],
        numeric: Mapping[str, np.ndarray],
        values: np.ndarray,
        offsets: np.ndarray,
        keys: np.ndarray,
    ) -> None:
        self._codes = {name: np.asarray(codes[name], dtype=np.int32) for name in STRING_COLUMNS}
        self._vocabs = {name: np.asarray(vocabs[name]) for name in STRING_COLUMNS}
        self._numeric = {
            name: np.asarray(numeric[name], dtype=dtype) for name, dtype in NUMERIC_COLUMNS
        }
        self._values = np.asarray(values, dtype=np.float64)
        self._offsets = np.asarray(offsets, dtype=np.int64)
        self._keys = np.asarray(keys)
        n = len(self)
        if self._offsets.shape != (n + 1,):
            raise ValueError(f"offsets must have shape ({n + 1},), got {self._offsets.shape}")
        if self._keys.shape != (n,):
            raise ValueError(f"keys must have shape ({n},), got {self._keys.shape}")

    # ------------------------------------------------------------------ #
    # shape and column access
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return int(self._codes["problem"].shape[0])

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResultTable({len(self)} rows)"

    @property
    def keys(self) -> np.ndarray:
        return self._keys

    def column(self, name: str) -> np.ndarray:
        """One column as an array (string columns come back decoded)."""
        if name in STRING_COLUMNS:
            vocab = self._vocabs[name]
            if vocab.size == 0:
                return np.empty(0, dtype="U1")
            return vocab[self._codes[name]]
        if name in self._numeric:
            return self._numeric[name]
        if name == "key":
            return self._keys
        raise KeyError(f"no such column {name!r}; expected one of {RESULT_COLUMNS}")

    def per_proc(self, i: int) -> np.ndarray:
        """Row ``i``'s per-processor peak array (a copy, safely mutable)."""
        lo, hi = int(self._offsets[i]), int(self._offsets[i + 1])
        return self._values[lo:hi].copy()

    # ------------------------------------------------------------------ #
    # row materialization
    # ------------------------------------------------------------------ #
    def result(self, i: int) -> CaseResult:
        """Materialize row ``i`` back into a :class:`CaseResult` (exact)."""
        i = range(len(self))[i]  # normalises negatives, raises IndexError
        return CaseResult(
            problem=str(self._vocabs["problem"][self._codes["problem"][i]]),
            ordering=str(self._vocabs["ordering"][self._codes["ordering"][i]]),
            strategy=str(self._vocabs["strategy"][self._codes["strategy"][i]]),
            split=bool(self._numeric["split"][i]),
            nprocs=int(self._numeric["nprocs"][i]),
            max_peak_stack=float(self._numeric["max_peak_stack"][i]),
            avg_peak_stack=float(self._numeric["avg_peak_stack"][i]),
            sum_peak_stack=float(self._numeric["sum_peak_stack"][i]),
            total_time=float(self._numeric["total_time"][i]),
            total_factor_entries=float(self._numeric["total_factor_entries"][i]),
            per_proc_peak_stack=self.per_proc(i),
            nodes=int(self._numeric["nodes"][i]),
            nodes_split=int(self._numeric["nodes_split"][i]),
            messages=int(self._numeric["messages"][i]),
            faults=str(self._vocabs["faults"][self._codes["faults"][i]]),
            replications=int(self._numeric["replications"][i]),
            makespan_p50=float(self._numeric["makespan_p50"][i]),
            makespan_p95=float(self._numeric["makespan_p95"][i]),
            degradation=float(self._numeric["degradation"][i]),
            messages_lost=int(self._numeric["messages_lost"][i]),
            retries=int(self._numeric["retries"][i]),
        )

    def view(self) -> "CaseResultView":
        """A lazy ``Sequence[CaseResult]`` over this table."""
        return CaseResultView(self)

    def to_dicts(self, fields: Optional[Sequence[str]] = None) -> list[dict[str, object]]:
        """JSON-ready row dicts, optionally projected onto ``fields``.

        Evaluated column-wise (one decode per column, not per row); the
        per-processor arrays become plain float lists, exactly as
        :meth:`CaseResult.to_dict` renders them.
        """
        wanted = tuple(fields) if fields is not None else RESULT_COLUMNS
        unknown = set(wanted) - set(RESULT_COLUMNS)
        if unknown:
            raise ValueError(
                f"unknown result field(s) {sorted(unknown)}; expected {sorted(RESULT_COLUMNS)}"
            )
        n = len(self)
        columns: dict[str, list] = {}
        for name in wanted:
            if name == "per_proc_peak_stack":
                columns[name] = [
                    [float(x) for x in self._values[self._offsets[i]:self._offsets[i + 1]]]
                    for i in range(n)
                ]
            elif name == "key":
                columns[name] = [str(k) for k in self._keys]
            elif name in STRING_COLUMNS:
                columns[name] = [str(v) for v in self.column(name)]
            elif name in ("split",):
                columns[name] = [bool(v) for v in self._numeric[name]]
            elif name in (
                "nprocs",
                "nodes",
                "nodes_split",
                "messages",
                "replications",
                "messages_lost",
                "retries",
            ):
                columns[name] = [int(v) for v in self._numeric[name]]
            else:
                columns[name] = [float(v) for v in self._numeric[name]]
        return [{name: columns[name][i] for name in wanted} for i in range(n)]

    # ------------------------------------------------------------------ #
    # columnar predicates, ordering and composition
    # ------------------------------------------------------------------ #
    def _string_mask(self, name: str, wanted: Iterable[str]) -> np.ndarray:
        vocab = self._vocabs[name]
        wanted_set = {str(w) for w in (wanted if isinstance(wanted, (list, tuple, set)) else [wanted])}
        code_hits = np.flatnonzero(np.isin(vocab, list(wanted_set)))
        return np.isin(self._codes[name], code_hits.astype(np.int32))

    def filter(
        self,
        *,
        problem: object = None,
        ordering: object = None,
        strategy: object = None,
        split: Optional[bool] = None,
        nprocs: object = None,
        faults: object = None,
    ) -> "ResultTable":
        """Rows matching every given predicate, evaluated on columns.

        String predicates accept one value or a collection; values are
        matched verbatim (canonicalise upstream — the service does).
        """
        mask = np.ones(len(self), dtype=bool)
        for name, value in (
            ("problem", problem),
            ("ordering", ordering),
            ("strategy", strategy),
            ("faults", faults),
        ):
            if value is not None:
                mask &= self._string_mask(name, value)  # type: ignore[arg-type]
        if split is not None:
            mask &= self._numeric["split"] == bool(split)
        if nprocs is not None:
            wanted = nprocs if isinstance(nprocs, (list, tuple, set)) else [nprocs]
            mask &= np.isin(self._numeric["nprocs"], [int(v) for v in wanted])
        return self.take(np.flatnonzero(mask))

    def take(self, indices) -> "ResultTable":
        """A new table holding the given rows, in the given order."""
        idx = np.asarray(indices, dtype=np.int64)
        lengths = (self._offsets[1:] - self._offsets[:-1])[idx]
        offsets = np.zeros(idx.size + 1, dtype=np.int64)
        np.cumsum(lengths, out=offsets[1:])
        values = np.empty(int(offsets[-1]), dtype=np.float64)
        for out_i, src_i in enumerate(idx):
            lo, hi = self._offsets[src_i], self._offsets[src_i + 1]
            values[offsets[out_i]:offsets[out_i + 1]] = self._values[lo:hi]
        return ResultTable(
            codes={name: arr[idx] for name, arr in self._codes.items()},
            vocabs=self._vocabs,
            numeric={name: arr[idx] for name, arr in self._numeric.items()},
            values=values,
            offsets=offsets,
            keys=self._keys[idx],
        )

    def sort_index(self) -> np.ndarray:
        """Indices putting rows in the canonical deterministic order.

        Sorted by (problem, ordering, strategy, split, nprocs, key) — a total
        order independent of insertion order, which is what makes paginated
        listings byte-stable between a resumed store and a fresh re-run.
        """
        return np.lexsort(
            (
                self._keys,
                self._numeric["nprocs"],
                self._numeric["split"],
                self.column("strategy"),
                self.column("ordering"),
                self.column("problem"),
            )
        )

    def sorted(self) -> "ResultTable":
        """This table in the canonical order (see :meth:`sort_index`)."""
        return self.take(self.sort_index())

    def dedupe_by_key(self) -> "ResultTable":
        """Drop duplicate keys, keeping the *last* occurrence of each.

        Rows with an empty key are never deduplicated.  Surviving rows keep
        their relative order.
        """
        seen: dict[str, int] = {}
        keep: list[int] = []
        for i, key in enumerate(self._keys):
            key = str(key)
            if not key:
                keep.append(i)
                continue
            if key in seen:
                keep[seen[key]] = -1
            seen[key] = len(keep)
            keep.append(i)
        return self.take(np.asarray([i for i in keep if i >= 0], dtype=np.int64))

    @classmethod
    def concat(cls, tables: Sequence["ResultTable"]) -> "ResultTable":
        """Concatenate tables (vocabularies are merged)."""
        builder = ResultTableBuilder()
        for table in tables:
            builder.extend_table(table)
        return builder.build()

    @classmethod
    def from_results(
        cls, results: Sequence[CaseResult], keys: Optional[Sequence[str]] = None
    ) -> "ResultTable":
        builder = ResultTableBuilder()
        if keys is None:
            keys = [""] * len(results)
        if len(keys) != len(results):
            raise ValueError(f"{len(results)} results but {len(keys)} keys")
        for result, key in zip(results, keys):
            builder.append(result, key=key)
        return builder.build()

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def save_npz(self, path: str | os.PathLike, *, fsync: bool = False) -> None:
        """Write the table as one compressed ``.npz``, atomically.

        Written to a temp sibling then ``os.replace``-d into place (the
        artifact-store discipline), so a reader never observes a torn file
        under POSIX rename semantics; ``fsync=True`` additionally makes the
        bytes durable before the rename.
        """
        path = os.fspath(path)
        payload: dict[str, np.ndarray] = {"schema": np.asarray(schema_tag(_SCHEMA_KIND))}
        for name in STRING_COLUMNS:
            payload[f"{name}_codes"] = self._codes[name]
            payload[f"{name}_vocab"] = self._vocabs[name]
        for name, _ in NUMERIC_COLUMNS:
            payload[name] = self._numeric[name]
        payload["per_proc_values"] = self._values
        payload["per_proc_offsets"] = self._offsets
        payload["keys"] = self._keys.astype(str)
        tmp = f"{path}.tmp-{os.getpid()}"
        try:
            with open(tmp, "wb") as fh:
                np.savez_compressed(fh, **payload)
                fh.flush()
                if fsync:
                    os.fsync(fh.fileno())
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    @classmethod
    def load_npz(cls, path: str | os.PathLike) -> "ResultTable":
        """Load a table written by :meth:`save_npz` (schema-checked)."""
        with np.load(os.fspath(path), allow_pickle=False) as data:
            check_schema(_SCHEMA_KIND, {"schema": str(data["schema"])})
            return cls(
                codes={name: data[f"{name}_codes"] for name in STRING_COLUMNS},
                vocabs={name: data[f"{name}_vocab"] for name in STRING_COLUMNS},
                numeric={name: data[name] for name, _ in NUMERIC_COLUMNS},
                values=data["per_proc_values"],
                offsets=data["per_proc_offsets"],
                keys=data["keys"],
            )

    def to_parquet(self, path: str | os.PathLike) -> None:
        """Export to parquet — optional, gated on ``pyarrow`` being present.

        ``pyarrow`` is never a dependency of this package; when it is absent
        this raises ``RuntimeError`` with a clear message instead of
        ``ImportError`` deep inside a sweep.
        """
        try:
            import pyarrow as pa
            import pyarrow.parquet as pq
        except ImportError:
            raise RuntimeError(
                "parquet export needs the optional 'pyarrow' package, which is "
                "not installed; use save_npz() (the native format) instead"
            ) from None
        columns: dict[str, object] = {}
        for name in STRING_COLUMNS:
            columns[name] = pa.DictionaryArray.from_arrays(
                pa.array(self._codes[name]), pa.array([str(v) for v in self._vocabs[name]])
            )
        for name, _ in NUMERIC_COLUMNS:
            columns[name] = pa.array(self._numeric[name])
        columns["per_proc_peak_stack"] = pa.ListArray.from_arrays(
            pa.array(self._offsets, type=pa.int32()), pa.array(self._values)
        )
        columns["key"] = pa.array([str(k) for k in self._keys])
        pq.write_table(pa.table(columns), os.fspath(path))


class ResultTableBuilder:
    """Accumulate rows, then :meth:`build` an immutable :class:`ResultTable`.

    Dictionary encoding happens on append (vocabularies grow in first-seen
    order, deterministically), so building is O(rows) with no re-scan.
    """

    def __init__(self) -> None:
        self._vocabs: dict[str, dict[str, int]] = {name: {} for name in STRING_COLUMNS}
        self._codes: dict[str, list[int]] = {name: [] for name in STRING_COLUMNS}
        self._numeric: dict[str, list] = {name: [] for name, _ in NUMERIC_COLUMNS}
        self._values: list[np.ndarray] = []
        self._lengths: list[int] = []
        self._keys: list[str] = []

    def __len__(self) -> int:
        return len(self._keys)

    def _encode(self, name: str, value: str) -> int:
        vocab = self._vocabs[name]
        code = vocab.get(value)
        if code is None:
            code = vocab[value] = len(vocab)
        return code

    def append(self, result: CaseResult, *, key: str = "") -> None:
        for name in STRING_COLUMNS:
            self._codes[name].append(self._encode(name, str(getattr(result, name))))
        for name, _ in NUMERIC_COLUMNS:
            self._numeric[name].append(getattr(result, name))
        per_proc = np.asarray(result.per_proc_peak_stack, dtype=np.float64)
        self._values.append(per_proc)
        self._lengths.append(per_proc.size)
        self._keys.append(str(key))

    def extend(self, results: Iterable[CaseResult], keys: Optional[Iterable[str]] = None) -> None:
        if keys is None:
            for result in results:
                self.append(result)
        else:
            for result, key in zip(results, keys):
                self.append(result, key=key)

    def extend_table(self, table: ResultTable) -> None:
        """Append every row of ``table`` (column-wise, no per-row decode)."""
        for name in STRING_COLUMNS:
            decoded = table.column(name)
            self._codes[name].extend(self._encode(name, str(v)) for v in decoded)
        for name, _ in NUMERIC_COLUMNS:
            self._numeric[name].extend(table.column(name).tolist())
        offsets = table._offsets
        self._values.append(np.asarray(table._values, dtype=np.float64))
        self._lengths.extend((offsets[1:] - offsets[:-1]).tolist())
        self._keys.extend(str(k) for k in table.keys)

    def build(self) -> ResultTable:
        n = len(self._keys)
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(np.asarray(self._lengths, dtype=np.int64), out=offsets[1:])
        values = (
            np.concatenate(self._values) if self._values else np.empty(0, dtype=np.float64)
        )
        return ResultTable(
            codes={name: np.asarray(codes, dtype=np.int32) for name, codes in self._codes.items()},
            vocabs={
                name: np.asarray(list(vocab), dtype=str) if vocab else np.empty(0, dtype="U1")
                for name, vocab in self._vocabs.items()
            },
            numeric={
                name: np.asarray(column, dtype=dtype)
                for (name, dtype), column in zip(NUMERIC_COLUMNS, self._numeric.values())
            },
            values=np.asarray(values, dtype=np.float64),
            offsets=offsets,
            keys=np.asarray(self._keys, dtype=str) if self._keys else np.empty(0, dtype="U1"),
        )


class CaseResultView(Sequence):
    """A lazy, immutable ``Sequence[CaseResult]`` over a :class:`ResultTable`.

    Supports everything the historical ``list[CaseResult]`` return of
    ``Session.sweep`` supported — ``len``, indexing (negative too), slicing,
    iteration, ``zip`` — materializing one row per access.  ``computed`` /
    ``skipped`` report how a resumable sweep split its grid.
    """

    __slots__ = ("table", "computed", "skipped")

    def __init__(self, table: ResultTable, *, computed: int = 0, skipped: int = 0) -> None:
        self.table = table
        self.computed = int(computed)
        self.skipped = int(skipped)

    def __len__(self) -> int:
        return len(self.table)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return [self.table.result(i) for i in range(len(self))[index]]
        return self.table.result(index)

    def __iter__(self) -> Iterator[CaseResult]:
        for i in range(len(self)):
            yield self.table.result(i)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"CaseResultView({len(self)} cases, computed={self.computed}, skipped={self.skipped})"
