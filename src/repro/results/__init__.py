"""Columnar result storage: tables, durable stores, keys and trace codecs.

The package behind ``Session.sweep(store=...)``, the service's ``/results``
pagination and the ``repro sweep --store`` CLI flag:

* :class:`~repro.results.table.ResultTable` — immutable column-oriented
  batch of :class:`~repro.pipeline.stage.CaseResult` rows (dictionary-encoded
  strings, ragged per-processor peaks) with filtering, sorting and ``.npz``
  persistence;
* :class:`~repro.results.store.ResultStore` — append-only on-disk store of
  sealed segments with a crash-tolerant manifest, streaming writers and
  delta-encoded trace persistence;
* :func:`~repro.results.keys.case_key` — the canonical content key shared
  with the service cache, which is what makes sweeps resumable.
"""

from repro.results.keys import CASE_KEY_VERSION, case_key, case_key_for
from repro.results.store import ResultStore, ResultWriter
from repro.results.table import (
    RESULT_COLUMNS,
    CaseResultView,
    ResultTable,
    ResultTableBuilder,
)
from repro.results.traces import decode_trace, encode_trace

__all__ = [
    "CASE_KEY_VERSION",
    "RESULT_COLUMNS",
    "CaseResultView",
    "ResultStore",
    "ResultTable",
    "ResultTableBuilder",
    "ResultWriter",
    "case_key",
    "case_key_for",
    "decode_trace",
    "encode_trace",
]
