"""Versioned record serialization shared by specs, jobs, benches and the store.

Historically every serializable dataclass (``CaseSpec``, ``CaseResult``,
``JobSpec``, ``BenchRun``, …) carried its own ad-hoc ``to_dict``/``from_dict``
pair with its own take on unknown keys and versioning.  This module is the
one place those concerns live now:

* :func:`canonical_json` — the single byte-stable encoder used for HTTP
  bodies, journal lines and store manifests (sorted keys, fixed separators);
* :func:`with_schema` / :func:`check_schema` — a ``schema`` tag of the form
  ``"<kind>/v<version>"`` stamped into persisted envelopes (store segments,
  trace files) so a format change fails loudly instead of mis-parsing;
* :func:`decode_fields` — the one policy for unknown keys: *strict* decoding
  raises the historical ``"unknown <Kind> fields [...]"`` error (the public
  ``from_dict`` contract, pinned by tests), *tolerant* decoding drops them
  (what store segments and HTTP bodies want, so an old reader survives a
  newer writer).

The version registry below is per-kind: bump a kind's version when its field
layout changes incompatibly, and only that kind's persisted payloads are
invalidated.
"""

from __future__ import annotations

import json
from typing import Collection, Mapping

__all__ = [
    "SCHEMA_FIELD",
    "SCHEMA_VERSIONS",
    "canonical_json",
    "schema_tag",
    "parse_schema_tag",
    "with_schema",
    "check_schema",
    "decode_fields",
]

#: the reserved envelope key carrying the ``"<kind>/v<version>"`` tag.
SCHEMA_FIELD = "schema"

#: current schema version of every serialized kind (bump on layout breaks).
SCHEMA_VERSIONS: dict[str, int] = {
    "case_spec": 1,
    "case_result": 1,
    "fault_spec": 1,
    "sweep_spec": 1,
    "job_spec": 1,
    "job_record": 1,
    "bench_case": 1,
    "bench_result": 1,
    "result_table": 2,
    "trace": 1,
    "tune_spec": 1,
    "leaderboard": 1,
}


def canonical_json(payload: object) -> bytes:
    """The one byte-stable serialization: sorted keys, fixed separators.

    The same logical payload always produces the same bytes, which is what
    lets a cached HTTP re-query, a replayed journal line or a re-listed
    result page compare byte-identical.
    """
    return (json.dumps(payload, sort_keys=True, separators=(",", ":")) + "\n").encode()


def schema_tag(kind: str) -> str:
    """The current ``"<kind>/v<version>"`` tag of one serialized kind."""
    return f"{kind}/v{SCHEMA_VERSIONS[kind]}"


def parse_schema_tag(tag: str) -> tuple[str, int]:
    """Split a ``"<kind>/v<version>"`` tag; raises ``ValueError`` if malformed."""
    kind, sep, version = str(tag).partition("/v")
    if not sep or not kind or not version.isdigit():
        raise ValueError(f"malformed schema tag {tag!r}; expected '<kind>/v<version>'")
    return kind, int(version)


def with_schema(kind: str, data: Mapping[str, object]) -> dict[str, object]:
    """``data`` as a persistable envelope carrying the current schema tag."""
    return {SCHEMA_FIELD: schema_tag(kind), **data}


def check_schema(kind: str, data: Mapping[str, object]) -> None:
    """Validate the envelope tag of ``data``, if it carries one.

    An absent tag is accepted (payloads from before this module existed);
    a tag of the wrong kind or a *newer* version than this build understands
    raises ``ValueError``.  Older versions of the right kind are accepted —
    per-field tolerance is :func:`decode_fields`' job.
    """
    tag = data.get(SCHEMA_FIELD)
    if tag is None:
        return
    got_kind, got_version = parse_schema_tag(str(tag))
    if got_kind != kind:
        raise ValueError(f"schema mismatch: expected a {kind!r} payload, got {tag!r}")
    if got_version > SCHEMA_VERSIONS[kind]:
        raise ValueError(
            f"schema {tag!r} is newer than this build understands "
            f"(max {schema_tag(kind)}); upgrade to read it"
        )


def decode_fields(
    kind: str,
    data: Mapping[str, object],
    known: Collection[str],
    *,
    label: str | None = None,
    strict: bool = False,
) -> dict[str, object]:
    """Validate + project one record dict onto its known fields.

    Checks the schema envelope (see :func:`check_schema`), strips the
    reserved ``schema`` key, and applies the unknown-key policy: ``strict``
    raises the historical ``ValueError`` (the public ``from_dict`` contract),
    otherwise unknown keys are dropped so old readers tolerate newer writers.
    """
    check_schema(kind, data)
    known = set(known)
    payload = {k: v for k, v in data.items() if k != SCHEMA_FIELD}
    unknown = set(payload) - known
    if unknown:
        if strict:
            name = label or kind
            raise ValueError(
                f"unknown {name} fields {sorted(unknown)}; expected {sorted(known)}"
            )
        for key in unknown:
            del payload[key]
    return payload
