"""The ``repro bench`` verb: run suites, manage baselines, compare runs.

Examples
--------
Run the pipeline suite at reduced scale and save the machine-readable
result::

    python -m repro bench run --suite pipeline --scale 0.2 --save /tmp/b.json

Record a local baseline under the conventional name
(``benchmarks/baselines/BENCH_<host>.json``)::

    python -m repro bench run --suite pipeline,components --save

Compare a fresh run against a committed baseline, tolerating ±40% noise but
failing only on >2× slowdowns (the CI perf-gate invocation)::

    python -m repro bench compare current.json benchmarks/baselines/ci-ubuntu.json \\
        --tolerance 0.4 --max-regression 2.0

Hunt a hot path: profile every case of a suite and print the top 10
functions by cumulative time (also embedded in ``--format json`` output)::

    python -m repro bench run --suite pipeline --profile 10

List the available suites::

    python -m repro bench list --format json

Every ``--save`` also appends the run into the bench history
(``benchmarks/baselines/history/``, disable with ``--no-history``); list a
case's timing trajectory across the recorded runs::

    python -m repro bench history --case pipeline/full_sweep --limit 10
"""

from __future__ import annotations

import argparse
import csv
import io
import json
import sys

from repro.bench.baseline import CompareReport, compare_runs, default_baseline_path
from repro.bench.env import BenchEnv, BenchEnvError
from repro.bench.model import BenchRun
from repro.bench.runner import BenchRunner
from repro.bench.suites import SUITES, PreparedCase

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Continuous performance harness: run suites, compare against baselines",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="execute one or more suites")
    run.add_argument(
        "--suite", default="pipeline",
        help="comma-separated suite names, or 'all' (default: pipeline)",
    )
    run.add_argument("--scale", type=float, default=None, help="problem scale override")
    run.add_argument("--nprocs", type=int, default=None, help="simulated-processor override")
    run.add_argument("--jobs", type=int, default=None, help="sweep worker processes override")
    run.add_argument("--repeats", type=int, default=None, help="timed repeats per case (default: per-case)")
    run.add_argument("--warmup", type=int, default=None, help="untimed warmup rounds per case (default: per-case)")
    run.add_argument(
        "--save", nargs="?", const="auto", default=None, metavar="PATH",
        help="write the result JSON (bare --save picks benchmarks/baselines/BENCH_<host>.json)",
    )
    run.add_argument(
        "--history", default=None, metavar="DIR",
        help="with --save: also append the run to this bench history "
        "(default benchmarks/baselines/history/; see 'repro bench history')",
    )
    run.add_argument(
        "--no-history", action="store_true",
        help="with --save: skip the bench-history append",
    )
    run.add_argument(
        "--baseline", default=None, metavar="PATH",
        help="compare against this baseline after running (report appended to the output)",
    )
    run.add_argument("--tolerance", type=float, default=0.25, help="relative tolerance for --baseline (default 0.25)")
    run.add_argument(
        "--max-regression", type=float, default=None, metavar="RATIO",
        help="with --baseline: only fail beyond this slowdown ratio (e.g. 2.0)",
    )
    run.add_argument("--format", choices=("json", "csv", "md"), default="md", help="stdout format (default md)")
    run.add_argument("--quiet", action="store_true", help="disable the per-case progress lines on stderr")
    run.add_argument(
        "--profile", nargs="?", const=15, default=None, type=int, metavar="TOP",
        help="cProfile each case once after the timed repeats and report the top "
        "TOP functions by cumulative time (default 15); included in --format json",
    )

    comp = sub.add_parser("compare", help="compare a result file against a baseline file")
    comp.add_argument("current", help="result JSON produced by 'bench run --save'")
    comp.add_argument("baseline", help="baseline JSON to compare against")
    comp.add_argument("--tolerance", type=float, default=0.25, help="relative tolerance (default 0.25)")
    comp.add_argument(
        "--max-regression", type=float, default=None, metavar="RATIO",
        help="only fail beyond this slowdown ratio (hard errors always fail)",
    )
    comp.add_argument("--format", choices=("json", "csv", "md"), default="md", help="stdout format (default md)")

    lst = sub.add_parser("list", help="list the available suites")
    lst.add_argument("--format", choices=("json", "csv", "md"), default="md", help="stdout format (default md)")

    hist = sub.add_parser("history", help="list the recorded timing trajectory per case")
    hist.add_argument(
        "--dir", default=None, metavar="DIR",
        help="history directory (default benchmarks/baselines/history/)",
    )
    hist.add_argument("--case", default=None, metavar="KEY", help="restrict to one case key (suite/name)")
    hist.add_argument("--limit", type=int, default=None, help="only the most recent N points")
    hist.add_argument("--format", choices=("json", "csv", "md"), default="md", help="stdout format (default md)")
    return parser


# --------------------------------------------------------------------------- #
# rendering
# --------------------------------------------------------------------------- #
def _fmt_seconds(value: float) -> str:
    return f"{value:.4f}" if value == value else "-"  # NaN-safe


def _render_table(
    header: tuple[str, ...],
    rows: list[tuple[str, ...]],
    fmt: str,
    *,
    title: str = "",
    footer: str = "",
) -> str:
    """One place for the csv / markdown-pipe-table plumbing (``|`` escaped)."""
    if fmt == "csv":
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(header)
        writer.writerows(rows)
        return buffer.getvalue().rstrip("\n")
    lines = [f"### {title}", ""] if title else []
    lines.append("| " + " | ".join(header) + " |")
    lines.append("|" + "|".join("---" for _ in header) + "|")
    lines += [
        "| " + " | ".join(cell.replace("|", "\\|") for cell in row) + " |" for row in rows
    ]
    if footer:
        lines += ["", footer]
    return "\n".join(lines)


def render_run(run: BenchRun, fmt: str) -> str:
    if fmt == "json":
        return json.dumps(run.to_dict(), indent=2, sort_keys=True)
    rows = [
        (
            r.case.suite,
            r.case.name,
            _fmt_seconds(r.best),
            _fmt_seconds(r.mean),
            str(r.repeats),
            str(r.warmup),
            "ERROR" if r.error else "ok",
        )
        for r in run.results
    ]
    out = _render_table(
        ("suite", "case", "best_s", "mean_s", "repeats", "warmup", "status"),
        rows,
        fmt,
        title=f"bench run — host {run.host}, {run.timestamp}",
    )
    if fmt == "md":
        profiles = [r for r in run.results if r.profile]
        for r in profiles:
            out += "\n\n" + _render_table(
                ("function", "ncalls", "tottime_s", "cumtime_s"),
                [
                    (
                        row["function"],
                        str(row["ncalls"]),
                        f"{row['tottime']:.4f}",
                        f"{row['cumtime']:.4f}",
                    )
                    for row in r.profile
                ],
                fmt,
                title=f"profile — {r.case.key} (top {len(r.profile)} by cumulative time)",
            )
    return out


def render_report(
    report: CompareReport, fmt: str, *, max_regression: float | None = None
) -> str:
    if fmt == "json":
        return json.dumps(
            report.to_dict(max_regression=max_regression), indent=2, sort_keys=True
        )
    rows = [
        (
            d.key,
            _fmt_seconds(d.baseline_seconds),
            _fmt_seconds(d.current_seconds),
            f"{d.delta_percent:+.1f}%" if d.delta_percent == d.delta_percent else "-",
            d.verdict,
        )
        for d in report.deltas
    ]
    return _render_table(
        ("case", "baseline_s", "current_s", "delta", "verdict"),
        rows,
        fmt,
        title=(
            f"bench compare — tolerance ±{report.tolerance:.0%} "
            f"({report.current_host or '?'} vs {report.baseline_host or '?'})"
        ),
        footer=report.summary(),
    )


def render_suites(fmt: str) -> str:
    entries = SUITES.describe()
    if fmt == "json":
        return json.dumps(entries, indent=2)
    return _render_table(
        ("suite", "description"),
        [(e["name"], e["description"]) for e in entries],
        fmt,
    )


# --------------------------------------------------------------------------- #
# subcommands
# --------------------------------------------------------------------------- #
def _resolve_suites(parser: argparse.ArgumentParser, text: str) -> list[str]:
    names = [part.strip().lower() for part in text.split(",") if part.strip()]
    if not names:
        parser.error("--suite expects at least one suite name")
    if "all" in names:
        if len(names) > 1:
            parser.error("--suite 'all' already selects every suite; don't combine it")
        return list(SUITES)
    resolved = []
    for name in names:
        try:
            SUITES.get(name)
        except ValueError as exc:
            parser.error(str(exc))
        resolved.append(name)
    return resolved


def _load_run(path: str) -> BenchRun:
    try:
        return BenchRun.load(path)
    except FileNotFoundError:
        raise SystemExit(f"repro bench: result file not found: {path}")
    except (ValueError, KeyError, json.JSONDecodeError) as exc:
        raise SystemExit(f"repro bench: cannot read {path}: {exc}")


def _progress(prepared: PreparedCase, result) -> None:
    status = "ERROR" if result.error else f"{result.best:.3f}s"
    print(f"  [{prepared.case.key}] {status}", file=sys.stderr, flush=True)


def _validate_compare_flags(parser: argparse.ArgumentParser, args: argparse.Namespace) -> None:
    if not 0 <= args.tolerance < 1:
        parser.error(f"--tolerance must be in [0, 1), got {args.tolerance}")
    if args.max_regression is not None and args.max_regression <= 1:
        parser.error(
            f"--max-regression is a slowdown ratio and must be > 1, got {args.max_regression}"
        )


def _cmd_run(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    suites = _resolve_suites(parser, args.suite)
    if args.repeats is not None and args.repeats < 1:
        parser.error("--repeats must be >= 1")
    if args.warmup is not None and args.warmup < 0:
        parser.error("--warmup must be >= 0")
    if args.profile is not None and args.profile < 1:
        parser.error("--profile expects a positive top-N function count")
    _validate_compare_flags(parser, args)
    try:
        env = BenchEnv.from_environ().replace(
            scale=args.scale, nprocs=args.nprocs, jobs=args.jobs
        )
    except BenchEnvError as exc:
        # blame the flag the user typed, not the (unset) environment variable
        message = str(exc)
        for flag, variable, value in (
            ("--scale", "REPRO_BENCH_SCALE", args.scale),
            ("--nprocs", "REPRO_BENCH_NPROCS", args.nprocs),
            ("--jobs", "REPRO_BENCH_JOBS", args.jobs),
        ):
            if value is not None:
                message = message.replace(variable, flag)
        parser.error(message)
    runner = BenchRunner(
        env,
        repeats=args.repeats,
        warmup=args.warmup,
        progress=None if args.quiet else _progress,
        profile_top=args.profile,
    )
    run = runner.run_suites(suites)
    report = None
    if args.baseline is not None:
        report = compare_runs(run, _load_run(args.baseline), tolerance=args.tolerance)
    if report is not None and args.format == "json":
        # one parseable document, not two concatenated ones
        print(
            json.dumps(
                {
                    "run": run.to_dict(),
                    "compare": report.to_dict(max_regression=args.max_regression),
                },
                indent=2,
                sort_keys=True,
            )
        )
    else:
        print(render_run(run, args.format))
        if report is not None:
            print()
            print(render_report(report, args.format, max_regression=args.max_regression))
    if args.save is not None:
        path = default_baseline_path() if args.save == "auto" else args.save
        run.save(path)
        print(f"saved {len(run.results)} result(s) to {path}", file=sys.stderr)
        if not args.no_history:
            from repro.bench.history import BenchHistory, default_history_dir

            history = BenchHistory(args.history or default_history_dir())
            appended = history.append(run)
            print(f"appended run to bench history at {appended}", file=sys.stderr)
    status = 0
    if run.errors:
        for result in run.errors:
            print(f"repro bench: case {result.case.key} failed:\n{result.error}", file=sys.stderr)
        status = 1
    if report is not None and report.failed(max_regression=args.max_regression):
        status = 1
    return status


def _cmd_history(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    from repro.bench.history import BenchHistory, default_history_dir

    if args.limit is not None and args.limit < 1:
        parser.error("--limit must be >= 1")
    history = BenchHistory(args.dir or default_history_dir())
    points = history.trajectory(args.case)
    if args.limit is not None:
        points = points[-args.limit:]
    if args.format == "json":
        print(json.dumps([p.to_dict() for p in points], indent=2, sort_keys=True))
        return 0
    rows = [
        (
            p.timestamp,
            p.host,
            p.key,
            _fmt_seconds(p.best),
            _fmt_seconds(p.mean),
            str(p.repeats),
            "ERROR" if p.error else "ok",
            p.file,
        )
        for p in points
    ]
    title = f"bench history — {args.case}" if args.case else "bench history"
    print(
        _render_table(
            ("timestamp", "host", "case", "best_s", "mean_s", "repeats", "status", "file"),
            rows,
            args.format,
            title=title,
            footer=f"{len(points)} point(s) across {len(history)} recorded run(s)",
        )
    )
    return 0


def _cmd_compare(parser: argparse.ArgumentParser, args: argparse.Namespace) -> int:
    _validate_compare_flags(parser, args)
    current = _load_run(args.current)
    baseline = _load_run(args.baseline)
    report = compare_runs(current, baseline, tolerance=args.tolerance)
    print(render_report(report, args.format, max_regression=args.max_regression))
    return 1 if report.failed(max_regression=args.max_regression) else 0


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "run":
        return _cmd_run(parser, args)
    if args.command == "compare":
        return _cmd_compare(parser, args)
    if args.command == "list":
        print(render_suites(args.format))
        return 0
    if args.command == "history":
        return _cmd_history(parser, args)
    parser.error(f"unknown command {args.command!r}")  # pragma: no cover - argparse guards
    return 2  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
