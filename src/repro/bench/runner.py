"""Execute benchmark suites with warmup/repeat/timer control.

The runner is deliberately small: suites declare *what* to measure
(:mod:`repro.bench.suites`), the model declares *how results look*
(:mod:`repro.bench.model`) and this module only owns the measurement
protocol — untimed warmup rounds, timed repeats around the injected timer,
and error capture so one broken case never voids a whole run.
"""

from __future__ import annotations

import cProfile
import pstats
import time
import traceback
from typing import Callable, Optional, Sequence

from repro.bench.env import BenchEnv
from repro.bench.model import BenchCase, BenchResult, BenchRun
from repro.bench.suites import PreparedCase, build_suite

__all__ = ["BenchRunner"]


class BenchRunner:
    """Run named suites into a :class:`~repro.bench.model.BenchRun`.

    Parameters
    ----------
    env:
        Validated benchmark configuration (problem scale, processor count…).
    repeats / warmup:
        Global overrides; ``None`` keeps each case's own protocol (micro
        cases default to several repeats, end-to-end cases to one).
    timer:
        Monotonic clock used around each repeat (injectable for tests).
    progress:
        Optional callback ``(case, result)`` invoked after each case.
    profile_top:
        When set, each case runs once more under :mod:`cProfile` *after* the
        timed repeats (so profiling overhead never pollutes the timings) and
        the top ``profile_top`` functions by cumulative time are attached to
        the result (``BenchResult.profile``) — the ``repro bench run
        --profile`` hot-path hunting mode.
    """

    def __init__(
        self,
        env: BenchEnv | None = None,
        *,
        repeats: int | None = None,
        warmup: int | None = None,
        timer: Callable[[], float] = time.perf_counter,
        progress: Optional[Callable[[PreparedCase, BenchResult], None]] = None,
        profile_top: int | None = None,
    ) -> None:
        if repeats is not None and repeats < 1:
            raise ValueError(f"repeats must be >= 1, got {repeats}")
        if warmup is not None and warmup < 0:
            raise ValueError(f"warmup must be >= 0, got {warmup}")
        if profile_top is not None and profile_top < 1:
            raise ValueError(f"profile_top must be >= 1, got {profile_top}")
        self.env = env if env is not None else BenchEnv.from_environ()
        self.repeats = repeats
        self.warmup = warmup
        self.timer = timer
        self.progress = progress
        self.profile_top = profile_top

    # ------------------------------------------------------------------ #
    def run_case(self, prepared: PreparedCase) -> BenchResult:
        """Time one prepared case (warmups, then repeats; errors captured)."""
        repeats = self.repeats if self.repeats is not None else prepared.repeats
        warmup = self.warmup if self.warmup is not None else prepared.warmup
        result = BenchResult(case=prepared.case, warmup=warmup)
        try:
            for _ in range(warmup):
                prepared.fn()
            for _ in range(repeats):
                start = self.timer()
                metrics = prepared.fn()
                result.seconds.append(self.timer() - start)
                if metrics:
                    result.metrics = {str(k): float(v) for k, v in metrics.items()}
        except Exception:
            result.seconds = []
            result.error = traceback.format_exc(limit=8)
        if self.profile_top is not None and result.error is None:
            # a failure of the optional profiling pass must never void the
            # timings already collected above
            try:
                result.profile = self._profile_case(prepared, self.profile_top)
            except Exception:
                result.profile = [
                    {
                        "function": "<profiling failed>: "
                        + traceback.format_exc(limit=2).strip().splitlines()[-1],
                        "ncalls": 0,
                        "tottime": 0.0,
                        "cumtime": 0.0,
                    }
                ]
        if self.progress is not None:
            self.progress(prepared, result)
        return result

    @staticmethod
    def _profile_case(prepared: PreparedCase, top: int) -> list[dict]:
        """One extra cProfile'd execution, digested to the top-N cumulative rows."""
        profiler = cProfile.Profile()
        profiler.enable()
        try:
            prepared.fn()
        finally:
            profiler.disable()
        stats = pstats.Stats(profiler)
        stats.sort_stats("cumulative")
        rows: list[dict] = []
        for func in stats.fcn_list[:top]:
            _cc, ncalls, tottime, cumtime, _callers = stats.stats[func]
            filename, line, name = func
            rows.append(
                {
                    "function": f"{filename}:{line}({name})",
                    "ncalls": int(ncalls),
                    "tottime": float(tottime),
                    "cumtime": float(cumtime),
                }
            )
        return rows

    def run_suites(self, names: Sequence[str]) -> BenchRun:
        """Build and execute every named suite, in order, into one run.

        A suite whose *build* raises (e.g. a broken analysis chain) is
        recorded as one errored ``<suite>/<suite>-build`` result instead of
        aborting the run — the other suites still execute and the partial
        results are still saved and comparable.
        """
        run = BenchRun.started(self.env)
        for name in names:
            try:
                instance = build_suite(name, self.env)
            except Exception:
                run.results.append(
                    BenchResult(
                        case=BenchCase(name=f"{name}-build", suite=name),
                        error=traceback.format_exc(limit=8),
                    )
                )
                continue
            try:
                for prepared in instance.cases:
                    run.results.append(self.run_case(prepared))
            finally:
                instance.close()
        return run
