"""Baseline store and run comparison.

A *baseline* is simply a saved :class:`~repro.bench.model.BenchRun`, by
convention ``BENCH_<host>.json`` under ``benchmarks/baselines/`` (CI commits
``ci-ubuntu.json`` there).  :func:`compare_runs` matches cases across two
runs by their ``suite/name`` key and classifies each pairing against a
relative tolerance on the best (minimum) repeat time:

``regression``        current is slower than ``(1 + tolerance) ×`` baseline
``improvement``       current is faster than ``(1 - tolerance) ×`` baseline
``within-tolerance``  everything in between
``new`` / ``missing`` the case exists on only one side
``config-mismatch``   same key but different recorded knobs (scale, nprocs…)
``error``             the current case raised instead of finishing

The report renders as text, Markdown, CSV or JSON and owns the exit-code
policy: :meth:`CompareReport.failed` is the single place the CLI and the CI
perf gate consult, with an optional ``max_regression`` ratio so shared
runners can keep a generous tolerance yet only *fail* on hard errors or
(say) >2× slowdowns.
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass, field
from typing import Optional

from repro.bench.model import BenchRun, host_tag

__all__ = [
    "CaseDelta",
    "CompareReport",
    "compare_runs",
    "default_baseline_dir",
    "default_baseline_path",
]

#: default directory of committed baselines, relative to the repo root / cwd.
_BASELINE_DIR = os.path.join("benchmarks", "baselines")


def default_baseline_dir() -> str:
    return _BASELINE_DIR


def default_baseline_path(host: str | None = None, directory: str | None = None) -> str:
    """``benchmarks/baselines/BENCH_<host>.json`` for this (or the given) host."""
    return os.path.join(directory or _BASELINE_DIR, f"BENCH_{host or host_tag()}.json")


@dataclass
class CaseDelta:
    """Comparison of one case across the current run and the baseline."""

    key: str
    verdict: str
    current_seconds: float = float("nan")
    baseline_seconds: float = float("nan")
    ratio: float = float("nan")

    @property
    def delta_percent(self) -> float:
        """Signed percentage change (positive = slower than the baseline)."""
        return (self.ratio - 1.0) * 100.0 if math.isfinite(self.ratio) else float("nan")

    def to_dict(self) -> dict[str, object]:
        def finite(value: float) -> float | None:
            # NaN would serialize as the literal `NaN`, which strict JSON
            # parsers (jq, JSON.parse) reject — absent values become null
            return value if math.isfinite(value) else None

        return {
            "key": self.key,
            "verdict": self.verdict,
            "current_seconds": finite(self.current_seconds),
            "baseline_seconds": finite(self.baseline_seconds),
            "ratio": finite(self.ratio),
        }


@dataclass
class CompareReport:
    """Every per-case delta plus the pass/fail policy."""

    tolerance: float
    deltas: list[CaseDelta] = field(default_factory=list)
    current_host: str = ""
    baseline_host: str = ""

    def with_verdict(self, *verdicts: str) -> list[CaseDelta]:
        return [d for d in self.deltas if d.verdict in verdicts]

    @property
    def regressions(self) -> list[CaseDelta]:
        return self.with_verdict("regression")

    @property
    def improvements(self) -> list[CaseDelta]:
        return self.with_verdict("improvement")

    @property
    def errors(self) -> list[CaseDelta]:
        return self.with_verdict("error")

    @property
    def compared(self) -> list[CaseDelta]:
        """Deltas that actually paired a current timing with a baseline one."""
        return [d for d in self.deltas if math.isfinite(d.ratio)]

    def failed(self, *, max_regression: Optional[float] = None) -> bool:
        """Exit-code policy.

        Hard errors always fail, and so do configuration mismatches (the two
        runs timed the same case under different knobs — their ratio is
        meaningless) and ``missing`` cases (a suite that ran lost a case the
        baseline still watches — silent coverage shrink must not stay green;
        re-record the baseline when a case is intentionally removed).  A
        comparison that paired *zero* cases (renamed cases, a baseline from a
        failed run) also fails.  With ``max_regression`` set, slowdowns only
        fail beyond that *ratio* (e.g. ``2.0`` = twice as slow) — the
        verdicts still report every beyond-tolerance drift; without it, any
        ``regression`` verdict fails.
        """
        if self.errors or self.with_verdict("config-mismatch", "missing"):
            return True
        if self.deltas and not self.compared:
            return True
        if max_regression is not None:
            return any(d.ratio > max_regression for d in self.compared)
        return bool(self.regressions)

    def summary(self) -> str:
        counts: dict[str, int] = {}
        for delta in self.deltas:
            counts[delta.verdict] = counts.get(delta.verdict, 0) + 1
        parts = [f"{n} {verdict}" for verdict, n in sorted(counts.items())]
        return f"{len(self.deltas)} case(s): " + (", ".join(parts) if parts else "none")

    def to_dict(self, *, max_regression: Optional[float] = None) -> dict[str, object]:
        """JSON-ready form; ``failed`` honours the same ``max_regression``
        policy as the exit code, so the artifact never contradicts the gate."""
        return {
            "tolerance": self.tolerance,
            "max_regression": max_regression,
            "current_host": self.current_host,
            "baseline_host": self.baseline_host,
            "summary": self.summary(),
            "failed": self.failed(max_regression=max_regression),
            "deltas": [d.to_dict() for d in self.deltas],
        }


def _classify(current_best: float, baseline_best: float, tolerance: float) -> tuple[str, float]:
    ratio = current_best / baseline_best if baseline_best > 0 else float("inf")
    if ratio > 1.0 + tolerance:
        return "regression", ratio
    if ratio < 1.0 - tolerance:
        return "improvement", ratio
    return "within-tolerance", ratio


def compare_runs(current: BenchRun, baseline: BenchRun, *, tolerance: float = 0.25) -> CompareReport:
    """Match the two runs case-by-case and classify every pairing."""
    if not 0 <= tolerance < 1:
        raise ValueError(f"tolerance must be in [0, 1), got {tolerance}")
    report = CompareReport(
        tolerance=tolerance, current_host=current.host, baseline_host=baseline.host
    )
    base_by_key = baseline.by_key()
    seen = set()
    for result in current.results:
        key = result.case.key
        seen.add(key)
        if result.error is not None:
            report.deltas.append(CaseDelta(key=key, verdict="error"))
            continue
        base = base_by_key.get(key)
        if base is None or base.error is not None or not base.seconds:
            report.deltas.append(
                CaseDelta(key=key, verdict="new", current_seconds=result.best)
            )
            continue
        if result.case.params != base.case.params:
            # same key, different knobs (scale, nprocs, …): the timings are
            # not comparable — surface the mismatch instead of a bogus ratio
            report.deltas.append(
                CaseDelta(
                    key=key,
                    verdict="config-mismatch",
                    current_seconds=result.best,
                    baseline_seconds=base.best,
                )
            )
            continue
        verdict, ratio = _classify(result.best, base.best, tolerance)
        report.deltas.append(
            CaseDelta(
                key=key,
                verdict=verdict,
                current_seconds=result.best,
                baseline_seconds=base.best,
                ratio=ratio,
            )
        )
    # baseline cases the current run should have produced but didn't.  Suites
    # that were not run at all are out of scope (comparing a pipeline-only
    # run against a fuller baseline is legitimate); a missing case *within* a
    # suite that ran means lost coverage and fails the gate.
    current_suites = {result.case.suite for result in current.results}
    for key, base in base_by_key.items():
        if key not in seen and base.case.suite in current_suites:
            report.deltas.append(
                CaseDelta(key=key, verdict="missing", baseline_seconds=base.best)
            )
    return report
