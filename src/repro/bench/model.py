"""The benchmark data model: cases, results and whole runs, JSON round-trip.

Benchmarks are only useful as *diffable artifacts*: a run records enough to
be compared against a baseline recorded on another day (or another commit) —
the case identity, the individual repeat timings, any domain metrics the case
chose to report (stack peaks, case counts, speedups) and the environment it
ran under.  Everything here serialises to plain JSON through ``to_dict`` /
``from_dict`` and is versioned with :data:`SCHEMA_VERSION` so a format change
fails loudly instead of mis-comparing.
"""

from __future__ import annotations

import json
import os
import platform
import re
import socket
from dataclasses import dataclass, field
from typing import Mapping

from repro.bench.env import BenchEnv
from repro.serialize import decode_fields

__all__ = ["SCHEMA_VERSION", "BenchCase", "BenchResult", "BenchRun", "host_tag"]

#: bump on any backwards-incompatible change of the result JSON layout.
SCHEMA_VERSION = 1


def host_tag() -> str:
    """A filesystem-safe tag of the current host (for ``BENCH_<host>.json``)."""
    name = socket.gethostname().split(".")[0] or "unknown"
    return re.sub(r"[^A-Za-z0-9_.\-]+", "-", name)


@dataclass(frozen=True)
class BenchCase:
    """Identity of one benchmark case inside a suite.

    ``suite``/``name`` is the comparison key across runs; ``params`` records
    the knobs the case ran with (problem, ordering, repeats, …) so a report
    can explain what was measured without re-reading the suite code.
    """

    name: str
    suite: str
    params: tuple[tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "params", tuple(sorted(dict(self.params).items())))

    @property
    def key(self) -> str:
        """Cross-run comparison key."""
        return f"{self.suite}/{self.name}"

    def to_dict(self) -> dict[str, object]:
        return {"name": self.name, "suite": self.suite, "params": dict(self.params)}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "BenchCase":
        data = decode_fields("bench_case", data, {"name", "suite", "params"}, label="BenchCase")
        params = data.get("params") or {}
        if not isinstance(params, Mapping):
            raise ValueError(f"BenchCase params must be a mapping, got {params!r}")
        return cls(
            name=str(data["name"]), suite=str(data["suite"]), params=tuple(params.items())
        )


@dataclass
class BenchResult:
    """Timings and metrics of one executed case.

    ``seconds`` holds every timed repeat (after ``warmup`` untimed ones).
    ``best`` — the minimum — is the comparison statistic: it is the least
    noisy estimator of the true cost on a shared machine.  ``error`` is set
    (and ``seconds`` left empty) when the case raised instead of finishing.
    """

    case: BenchCase
    seconds: list[float] = field(default_factory=list)
    warmup: int = 0
    metrics: dict[str, float] = field(default_factory=dict)
    error: str | None = None
    #: optional cProfile digest (``repro bench run --profile``): the top-N
    #: functions by cumulative time of one untimed post-measurement run.
    profile: list[dict] | None = None

    @property
    def best(self) -> float:
        return min(self.seconds) if self.seconds else float("nan")

    @property
    def mean(self) -> float:
        return sum(self.seconds) / len(self.seconds) if self.seconds else float("nan")

    @property
    def repeats(self) -> int:
        return len(self.seconds)

    def to_dict(self) -> dict[str, object]:
        data: dict[str, object] = {
            "case": self.case.to_dict(),
            "seconds": [float(s) for s in self.seconds],
            "warmup": self.warmup,
            "metrics": {k: float(v) for k, v in self.metrics.items()},
        }
        if self.error is not None:
            data["error"] = self.error
        if self.profile is not None:
            data["profile"] = [dict(row) for row in self.profile]
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "BenchResult":
        # tolerant: a baseline recorded by a newer build (extra fields) still
        # loads for comparison on this one
        data = decode_fields(
            "bench_result",
            data,
            {"case", "seconds", "warmup", "metrics", "error", "profile"},
            label="BenchResult",
        )
        profile = data.get("profile")
        return cls(
            case=BenchCase.from_dict(data["case"]),  # type: ignore[arg-type]
            seconds=[float(s) for s in data.get("seconds", ())],  # type: ignore[union-attr]
            warmup=int(data.get("warmup", 0)),  # type: ignore[arg-type]
            metrics={str(k): float(v) for k, v in (data.get("metrics") or {}).items()},  # type: ignore[union-attr]
            error=data.get("error"),  # type: ignore[arg-type]
            profile=[dict(row) for row in profile] if profile is not None else None,  # type: ignore[union-attr]
        )


@dataclass
class BenchRun:
    """One complete benchmark run: the unit stored, compared and uploaded."""

    host: str = field(default_factory=host_tag)
    timestamp: str = ""
    python: str = field(default_factory=platform.python_version)
    env: dict[str, object] = field(default_factory=dict)
    results: list[BenchResult] = field(default_factory=list)
    schema: int = SCHEMA_VERSION

    @classmethod
    def started(cls, env: BenchEnv) -> "BenchRun":
        import datetime

        return cls(
            timestamp=datetime.datetime.now(datetime.timezone.utc).isoformat(timespec="seconds"),
            env=env.to_dict(),
        )

    def by_key(self) -> dict[str, BenchResult]:
        """Results indexed by their cross-run comparison key."""
        return {r.case.key: r for r in self.results}

    @property
    def errors(self) -> list[BenchResult]:
        return [r for r in self.results if r.error is not None]

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, object]:
        return {
            "schema": self.schema,
            "host": self.host,
            "timestamp": self.timestamp,
            "python": self.python,
            "env": dict(self.env),
            "results": [r.to_dict() for r in self.results],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "BenchRun":
        schema = data.get("schema")
        if schema != SCHEMA_VERSION:
            raise ValueError(
                f"unsupported benchmark schema {schema!r} (this build reads schema {SCHEMA_VERSION}); "
                "re-record the baseline with 'repro bench run --save'"
            )
        return cls(
            host=str(data.get("host", "")),
            timestamp=str(data.get("timestamp", "")),
            python=str(data.get("python", "")),
            env=dict(data.get("env") or {}),  # type: ignore[arg-type]
            results=[BenchResult.from_dict(r) for r in data.get("results", ())],  # type: ignore[union-attr]
            schema=SCHEMA_VERSION,
        )

    def save(self, path: str) -> None:
        parent = os.path.dirname(path)
        if parent:
            os.makedirs(parent, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")

    @classmethod
    def load(cls, path: str) -> "BenchRun":
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))
