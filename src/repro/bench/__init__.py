"""Continuous performance harness: suites, runs, baselines, comparisons.

The benchmark subsystem turns performance from folklore into diffable data:

* :class:`BenchEnv` — validated ``REPRO_BENCH_*`` configuration;
* :class:`BenchCase` / :class:`BenchResult` / :class:`BenchRun` — the
  schema-versioned, JSON round-trippable result model;
* :data:`~repro.bench.suites.SUITES` — the named suites (``pipeline``,
  ``tables``, ``ablations``, ``components``) built from declarative
  :class:`~repro.bench.suites.PreparedCase` lists;
* :class:`BenchRunner` — warmup/repeat/timer execution of suites;
* :func:`compare_runs` + :class:`CompareReport` — per-case deltas against a
  stored baseline (``benchmarks/baselines/BENCH_<host>.json``), with the
  regression/improvement/within-tolerance verdicts the CI perf gate consumes.

The ``repro bench`` CLI verb (:mod:`repro.bench.cli`) and the
``benchmarks/bench_*.py`` pytest shims are both thin layers over these
pieces.  See ``docs/benchmarks.md``.
"""

from repro.bench.baseline import (
    CaseDelta,
    CompareReport,
    compare_runs,
    default_baseline_dir,
    default_baseline_path,
)
from repro.bench.env import BenchEnv, BenchEnvError
from repro.bench.model import SCHEMA_VERSION, BenchCase, BenchResult, BenchRun, host_tag
from repro.bench.runner import BenchRunner
from repro.bench.suites import SUITES, PreparedCase, SuiteInstance, build_suite, suite_names

__all__ = [
    "BenchEnv",
    "BenchEnvError",
    "SCHEMA_VERSION",
    "BenchCase",
    "BenchResult",
    "BenchRun",
    "host_tag",
    "BenchRunner",
    "SUITES",
    "PreparedCase",
    "SuiteInstance",
    "build_suite",
    "suite_names",
    "CaseDelta",
    "CompareReport",
    "compare_runs",
    "default_baseline_dir",
    "default_baseline_path",
]
