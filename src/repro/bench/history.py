"""Bench history: an append-only trajectory of saved benchmark runs.

``repro bench run --save`` records one run file; this module strings those
runs into a *history* so a case's timing trajectory across days/commits can
be listed (``repro bench history``).  The layout borrows the
:class:`~repro.results.ResultStore` durability discipline::

    benchmarks/baselines/history/
      manifest.jsonl            # one JSON line per appended run
      run-<utc>-<host>-<n>.json # immutable BenchRun files

A run file is fully written first and its manifest line appended (flushed)
second — so a manifest line implies a complete run file, a torn trailing
line is skipped on replay, and a run file without a line (crash between the
two steps) is simply invisible until :meth:`BenchHistory.adopt_orphans`
re-manifests it.  Files are never rewritten; the manifest order is the
append order, which is the chronology ``trajectory`` reports.  Replay is
lossy only for files that cannot be loaded, and never silently:
:attr:`BenchHistory.replay_skipped` counts them per :meth:`~BenchHistory.runs`
pass.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator, Optional

from repro.bench.model import BenchRun
from repro.serialize import canonical_json

__all__ = ["BenchHistory", "HistoryPoint", "default_history_dir"]

#: default directory of the committed bench history, next to the baselines.
_HISTORY_DIR = os.path.join("benchmarks", "baselines", "history")

_MANIFEST = "manifest.jsonl"


def default_history_dir() -> str:
    return _HISTORY_DIR


@dataclass(frozen=True)
class HistoryPoint:
    """One case's measurement inside one appended run."""

    timestamp: str
    host: str
    key: str
    best: float
    mean: float
    repeats: int
    error: Optional[str]
    file: str

    def to_dict(self) -> dict[str, object]:
        return {
            "timestamp": self.timestamp,
            "host": self.host,
            "key": self.key,
            "best": self.best,
            "mean": self.mean,
            "repeats": self.repeats,
            "error": self.error,
            "file": self.file,
        }


class BenchHistory:
    """The append-only run history under one directory."""

    def __init__(self, directory: "str | os.PathLike" = _HISTORY_DIR) -> None:
        self.directory = Path(directory)
        #: manifest-listed files that failed to load during the last
        #: :meth:`runs` pass (reset at the start of each pass), plus any
        #: unloadable orphans :meth:`adopt_orphans` refused to adopt since.
        self.replay_skipped: int = 0

    @property
    def manifest_path(self) -> Path:
        return self.directory / _MANIFEST

    # ------------------------------------------------------------------ #
    # append
    # ------------------------------------------------------------------ #
    def _run_filename(self, run: BenchRun) -> str:
        stamp = re.sub(r"[^0-9A-Za-z]+", "", run.timestamp) or "unstamped"
        host = re.sub(r"[^A-Za-z0-9_.\-]+", "-", run.host) or "unknown"
        base = f"run-{stamp}-{host}"
        name = f"{base}.json"
        n = 1
        while (self.directory / name).exists():
            name = f"{base}-{n}.json"
            n += 1
        return name

    def _append_manifest_line(self, line: bytes) -> None:
        """Flush one manifest line durably, healing a torn predecessor.

        A crash mid-append can leave the manifest without its trailing
        newline; glueing the next line onto the torn fragment would corrupt
        both, so a missing newline is repaired before writing.
        """
        prefix = b""
        try:
            with open(self.manifest_path, "rb") as fh:
                fh.seek(-1, os.SEEK_END)
                if fh.read(1) != b"\n":
                    prefix = b"\n"
        except (FileNotFoundError, OSError):
            pass  # no manifest yet, or empty: nothing to heal
        with open(self.manifest_path, "ab") as fh:
            fh.write(prefix + line)
            fh.flush()
            os.fsync(fh.fileno())

    def append(self, run: BenchRun) -> Path:
        """Durably add one run: write its file, then its manifest line."""
        self.directory.mkdir(parents=True, exist_ok=True)
        name = self._run_filename(run)
        run.save(str(self.directory / name))
        self._append_manifest_line(
            canonical_json(
                {
                    "op": "run",
                    "file": name,
                    "timestamp": run.timestamp,
                    "host": run.host,
                    "cases": len(run.results),
                }
            )
        )
        return self.directory / name

    # ------------------------------------------------------------------ #
    # read
    # ------------------------------------------------------------------ #
    def _manifest_files(self) -> list[str]:
        """Run filenames in append order (torn trailing line tolerated)."""
        out: list[str] = []
        try:
            with open(self.manifest_path, "r", encoding="utf-8") as fh:
                lines = fh.readlines()
        except FileNotFoundError:
            return out
        for line in lines:
            line = line.strip()
            if not line:
                continue
            try:
                event = json.loads(line)
            except json.JSONDecodeError:
                continue  # torn trailing line from a crash mid-append
            if event.get("op") == "run" and isinstance(event.get("file"), str):
                out.append(event["file"])
        return out

    def runs(self) -> Iterator[tuple[str, BenchRun]]:
        """``(filename, run)`` pairs in append order; unreadable files skipped.

        Skips are counted in :attr:`replay_skipped` (reset at the start of
        each pass), so a caller can tell a short history from a lossy replay.
        """
        self.replay_skipped = 0
        for name in self._manifest_files():
            try:
                yield name, BenchRun.load(str(self.directory / name))
            except (FileNotFoundError, ValueError, KeyError, json.JSONDecodeError):
                self.replay_skipped += 1
                continue

    def adopt_orphans(self) -> list[str]:
        """Manifest complete run files a crash left lineless; return their names.

        A crash between :meth:`append`'s two steps (run file written, line
        not yet flushed) leaves a complete, loadable run file invisible to
        replay.  This scans the directory for ``run-*.json`` files absent
        from the manifest, verifies each actually loads, and appends the
        missing manifest lines (in sorted filename order, so two repairs of
        the same directory produce the same manifest).  Unloadable orphans
        are never manifested — they count toward :attr:`replay_skipped`
        instead of poisoning every future replay.
        """
        manifested = set(self._manifest_files())
        adopted: list[str] = []
        for path in sorted(self.directory.glob("run-*.json")):
            name = path.name
            if name in manifested:
                continue
            try:
                run = BenchRun.load(str(path))
            except (ValueError, KeyError, json.JSONDecodeError):
                self.replay_skipped += 1
                continue
            self._append_manifest_line(
                canonical_json(
                    {
                        "op": "run",
                        "file": name,
                        "timestamp": run.timestamp,
                        "host": run.host,
                        "cases": len(run.results),
                    }
                )
            )
            adopted.append(name)
        return adopted

    def __len__(self) -> int:
        return len(self._manifest_files())

    def trajectory(self, key: Optional[str] = None) -> list[HistoryPoint]:
        """Every case measurement across the history, in append order.

        ``key`` (``"suite/name"``) restricts the listing to one case — the
        per-case trajectory ``repro bench history`` renders.
        """
        points: list[HistoryPoint] = []
        for name, run in self.runs():
            for result in run.results:
                if key is not None and result.case.key != key:
                    continue
                points.append(
                    HistoryPoint(
                        timestamp=run.timestamp,
                        host=run.host,
                        key=result.case.key,
                        best=result.best,
                        mean=result.mean,
                        repeats=result.repeats,
                        error=result.error,
                        file=name,
                    )
                )
        return points

    def keys(self) -> list[str]:
        """Every case key seen across the history, sorted."""
        return sorted({point.key for point in self.trajectory()})
