"""The named benchmark suites.

A *suite* is a declarative list of :class:`PreparedCase` values — a
:class:`~repro.bench.model.BenchCase` identity plus a zero-argument callable
returning the case's domain metrics — built against a validated
:class:`~repro.bench.env.BenchEnv`.  The same prepared cases serve two
harnesses:

* :class:`~repro.bench.runner.BenchRunner` times them itself (warmup +
  repeats around ``fn()``) for ``repro bench run`` and the CI perf gate;
* the ``benchmarks/bench_*.py`` shims hand ``fn`` to pytest-benchmark, so the
  historical ``pytest benchmarks/`` invocation keeps working.

Suites:

``pipeline``
    The hot path: the discrete-event simulation kernel on prebuilt analyses
    (where the vectorized view updates show up) plus one cold end-to-end
    sweep through the session machinery.
``tables``
    Regeneration of the paper's Table 1 and Table 2 through a shared runner.
``ablations``
    The strategy-ingredient ablation on two representative cases.
``components``
    Micro-benchmarks of the substrate (orderings, symbolic analysis,
    sequential memory analysis, one parallel simulation).
``serving``
    The service layer's query path over a real loopback socket: one cold
    query (cache cleared, pipeline executes) vs. one cached query (served
    from the shared result cache) vs. one submit→poll job round-trip.
``results``
    The columnar result store at corpus scale: streaming 10k synthetic case
    results through a segment writer, columnar filter + canonical sort +
    one page, and the ``.npz`` round-trip of the whole table.
``tuning``
    The auto-tuning layer: a cold successive-halving search (fresh session
    and store per repeat), the same search resumed from a populated store,
    and the engine-free sample-and-render substrate.
``robustness``
    The fault-injection layer: a faulted simulation (stragglers + message
    loss) against its clean twin on the same prebuilt analysis, isolating
    the layer's overhead on the event kernel.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Mapping, Optional

from repro.bench.env import BenchEnv
from repro.bench.model import BenchCase
from repro.registry import Registry

__all__ = ["PreparedCase", "SuiteInstance", "SUITES", "build_suite", "suite_names"]


@dataclass
class PreparedCase:
    """One runnable case: identity, work, and its default timing protocol."""

    case: BenchCase
    fn: Callable[[], Optional[Mapping[str, float]]]
    repeats: int = 1
    warmup: int = 0


@dataclass
class SuiteInstance:
    """A built suite: its cases plus the teardown releasing shared state."""

    name: str
    cases: list[PreparedCase] = field(default_factory=list)
    close: Callable[[], None] = lambda: None


SUITES: Registry = Registry("suite")


def suite_names() -> list[str]:
    return list(SUITES)


def build_suite(name: str, env: BenchEnv) -> SuiteInstance:
    """Build the named suite against ``env`` (raises with did-you-mean on a miss)."""
    builder = SUITES.get(name)
    return builder(env)


def _simulate_metrics(result) -> dict[str, float]:
    return {
        "max_peak_stack": float(result.max_peak_stack),
        "avg_peak_stack": float(result.avg_peak_stack),
        "total_time": float(result.total_time),
        "nodes": float(result.nodes),
    }


# --------------------------------------------------------------------------- #
# pipeline: the end-to-end and simulation hot paths
# --------------------------------------------------------------------------- #
#: (problem, ordering) pairs whose pure simulation step is timed.
PIPELINE_SIMULATE_CASES = [("XENON2", "metis"), ("TWOTONE", "amd")]

#: the cold sweep grid (2 problems × 2 orderings × 2 strategies = 8 cases).
PIPELINE_SWEEP_AXES = {
    "problems": ["XENON2", "PRE2"],
    "orderings": ["metis", "amd"],
    "strategies": ["mumps-workload", "memory-full"],
}


@SUITES.register(
    "pipeline",
    description="simulation kernel on prebuilt analyses + one cold end-to-end sweep",
)
def _pipeline_suite(env: BenchEnv) -> SuiteInstance:
    from repro.runtime import FactorizationSimulator
    from repro.scheduling import get_strategy
    from repro.session import Session
    from repro.specs import SweepSpec

    # the analyses are prebuilt (untimed) so the simulate cases measure the
    # discrete-event kernel alone — the target of the view vectorization
    session = Session(nprocs=env.nprocs, scale=env.scale, cache_dir="")
    cases: list[PreparedCase] = []
    for problem, ordering in PIPELINE_SIMULATE_CASES:
        analysis = session.analysis(problem, ordering)

        def simulate(analysis=analysis) -> dict[str, float]:
            slave, task = get_strategy("memory-full").build()
            result = FactorizationSimulator(
                analysis.tree,
                config=session.config,
                mapping=analysis.mapping,
                slave_selector=slave,
                task_selector=task,
            ).run()
            return _simulate_metrics(result)

        cases.append(
            PreparedCase(
                case=BenchCase(
                    name=f"simulate-{problem}-{ordering}".lower(),
                    suite="pipeline",
                    params=(
                        ("problem", problem),
                        ("ordering", ordering),
                        ("strategy", "memory-full"),
                        ("nprocs", env.nprocs),
                        ("scale", env.scale),
                    ),
                ),
                fn=simulate,
                repeats=3,
                warmup=1,
            )
        )

    specs = SweepSpec(**PIPELINE_SWEEP_AXES).expand()

    def cold_sweep() -> dict[str, float]:
        # a fresh session with the disk tier pinned off: every repeat pays the
        # full pattern → ordering → tree → mapping → simulate chain
        with Session(nprocs=env.nprocs, scale=env.scale, cache_dir="") as inner:
            results = inner.run_cases(specs)
        return {
            "cases": float(len(results)),
            "sum_max_peak": float(sum(r.max_peak_stack for r in results)),
        }

    cases.append(
        PreparedCase(
            case=BenchCase(
                name="sweep-serial-cold",
                suite="pipeline",
                params=(
                    ("cases", len(specs)),
                    ("nprocs", env.nprocs),
                    ("scale", env.scale),
                ),
            ),
            fn=cold_sweep,
            repeats=1,
            warmup=0,
        )
    )
    return SuiteInstance(name="pipeline", cases=cases, close=session.close)


# --------------------------------------------------------------------------- #
# tables: the paper's measurement grids
# --------------------------------------------------------------------------- #
def _table1_metrics(rows: Mapping[str, Mapping[str, object]]) -> dict[str, float]:
    return {
        "rows": float(len(rows)),
        "min_order": float(min(row["Order"] for row in rows.values())),
    }


def _table2_metrics(rows: Mapping[str, Mapping[str, object]]) -> dict[str, float]:
    gains = [float(v) for row in rows.values() for v in row.values()]
    return {
        "rows": float(len(rows)),
        "mean_gain": sum(gains) / len(gains) if gains else 0.0,
        "max_gain": max(gains) if gains else 0.0,
    }


#: per-table extraction of the metrics the pytest shims assert on.
TABLE_METRICS = {"table1": _table1_metrics, "table2": _table2_metrics}


@SUITES.register("tables", description="regeneration of Table 1 and Table 2")
def _tables_suite(env: BenchEnv, runner=None) -> SuiteInstance:
    from repro.experiments import ExperimentRunner
    from repro.experiments.tables import ALL_TABLES

    owns_runner = runner is None
    if owns_runner:
        # env.cache is passed verbatim: "" means "disk cache off" and must not
        # collapse to None, which would re-enable the REPRO_CACHE_DIR fallback
        runner = ExperimentRunner(
            nprocs=env.nprocs, scale=env.scale, cache_dir=env.cache, jobs=env.jobs
        )
    cases: list[PreparedCase] = []
    for table in ("table1", "table2"):
        entry = ALL_TABLES.entry(table)

        def regenerate(entry=entry, metrics=TABLE_METRICS[table]) -> dict[str, float]:
            return metrics(entry.value(runner))

        cases.append(
            PreparedCase(
                case=BenchCase(
                    name=table,
                    suite="tables",
                    params=(
                        ("nprocs", env.nprocs),
                        ("scale", env.scale),
                        ("jobs", env.jobs),
                    ),
                ),
                fn=regenerate,
            )
        )
    return SuiteInstance(
        name="tables", cases=cases, close=runner.close if owns_runner else (lambda: None)
    )


# --------------------------------------------------------------------------- #
# ablations: strategy ingredients
# --------------------------------------------------------------------------- #
ABLATION_CASES = [("XENON2", "metis"), ("TWOTONE", "amd")]
ABLATION_PRESETS = [
    "mumps-workload",
    "memory-basic",
    "memory-slave",
    "memory-task",
    "memory-full",
    "hybrid",
]


@SUITES.register("ablations", description="strategy-ingredient ablation on split trees")
def _ablations_suite(env: BenchEnv) -> SuiteInstance:
    from repro.experiments import ExperimentRunner
    from repro.session import percentage_decrease

    # "" = disk cache off, never None (the REPRO_CACHE_DIR fallback)
    runner = ExperimentRunner(
        nprocs=env.nprocs, scale=env.scale, cache_dir=env.cache, jobs=env.jobs
    )
    cases: list[PreparedCase] = []
    for problem, ordering in ABLATION_CASES:

        def ablate(problem=problem, ordering=ordering) -> dict[str, float]:
            base = runner.run_case(problem, ordering, "mumps-workload", split=True)
            gains = {}
            for preset in ABLATION_PRESETS:
                result = runner.run_case(problem, ordering, preset, split=True)
                gains[preset] = percentage_decrease(base.max_peak_stack, result.max_peak_stack)
            return gains

        cases.append(
            PreparedCase(
                case=BenchCase(
                    name=f"ablation-{problem}-{ordering}".lower(),
                    suite="ablations",
                    params=(
                        ("problem", problem),
                        ("ordering", ordering),
                        ("presets", len(ABLATION_PRESETS)),
                        ("nprocs", env.nprocs),
                        ("scale", env.scale),
                    ),
                ),
                fn=ablate,
            )
        )
    return SuiteInstance(name="ablations", cases=cases, close=runner.close)


# --------------------------------------------------------------------------- #
# components: substrate micro-benchmarks
# --------------------------------------------------------------------------- #
def _component_grid_side(scale: float) -> int:
    """Edge length of the 3-D model grid (12 at the historical scale 1.0)."""
    return max(6, int(round(12.0 * scale ** (1.0 / 3.0))))


@SUITES.register("components", description="substrate micro-benchmarks (orderings, symbolic, simulation)")
def _components_suite(env: BenchEnv) -> SuiteInstance:
    from repro.analysis import sequential_memory_trace
    from repro.mapping import compute_mapping
    from repro.ordering import compute_ordering
    from repro.runtime import FactorizationSimulator, SimulationConfig
    from repro.scheduling import get_strategy
    from repro.sparse import grid_3d
    from repro.symbolic import build_assembly_tree, column_counts, elimination_tree

    side = _component_grid_side(env.scale)
    pattern = grid_3d(side, side, side)
    tree = build_assembly_tree(pattern, compute_ordering(pattern, "metis"), keep_variables=False)
    config = SimulationConfig.paper(nprocs=env.nprocs)
    mapping = compute_mapping(tree, env.nprocs, **config.mapping_params())

    def simulate() -> dict[str, float]:
        slave, task = get_strategy("memory-full").build()
        result = FactorizationSimulator(
            tree, config=config, mapping=mapping, slave_selector=slave, task_selector=task
        ).run()
        return _simulate_metrics(result)

    work: list[tuple[str, Callable[[], Optional[Mapping[str, float]]]]] = [
        ("ordering-metis", lambda: {"n": float(compute_ordering(pattern, "metis").shape[0])}),
        ("ordering-amd", lambda: {"n": float(compute_ordering(pattern, "amd").shape[0])}),
        ("elimination-tree", lambda: {"n": float(elimination_tree(pattern).shape[0])}),
        ("column-counts", lambda: {"min": float(column_counts(pattern).min())}),
        (
            "assembly-tree-build",
            lambda: {
                "nodes": float(
                    build_assembly_tree(pattern, None, keep_variables=False).nnodes
                )
            },
        ),
        (
            "sequential-memory-trace",
            lambda: {"peak_working": float(sequential_memory_trace(tree).peak_working)},
        ),
        ("simulate-memory-full", simulate),
    ]
    cases = [
        PreparedCase(
            case=BenchCase(
                name=name,
                suite="components",
                params=(("grid", side), ("nprocs", env.nprocs), ("scale", env.scale)),
            ),
            fn=fn,
            repeats=3,
            warmup=1,
        )
        for name, fn in work
    ]
    return SuiteInstance(name="components", cases=cases)


# --------------------------------------------------------------------------- #
# serving: the service layer's query path (cold vs cached) over a real socket
# --------------------------------------------------------------------------- #
#: the case every serving benchmark queries (must stay cheap at CI scale).
SERVING_QUERY = {"problem": "XENON2", "ordering": "metis", "strategy": "memory-full"}

#: the tiny sweep of the submit round-trip case (one analysis, two strategies).
SERVING_JOB_SWEEP = {
    "problems": ["XENON2"],
    "orderings": ["metis"],
    "strategies": ["mumps-workload", "memory-full"],
}


@SUITES.register(
    "serving",
    description="HTTP query-path latency over the sweep service: cold, cached, job round-trip",
)
def _serving_suite(env: BenchEnv) -> SuiteInstance:
    import tempfile

    from repro.service import ServiceClient, SweepService, make_server

    tmpdir = tempfile.TemporaryDirectory(prefix="repro-bench-serving-")
    service = SweepService(
        data_dir=tmpdir.name, nprocs=env.nprocs, scale=env.scale, journal_fsync=False
    )
    service.start()
    server = make_server(service, quiet=True)
    server.serve_background()
    client = ServiceClient(f"http://127.0.0.1:{server.port}")

    def query_cold() -> dict[str, float]:
        # every repeat re-executes the simulation stage behind the HTTP hop
        # (the analysis artifacts stay memoized in the engine's memory tier,
        # as they would in a long-lived daemon)
        service.cache.clear()
        response = client.results(**SERVING_QUERY)
        return {"cached": float(response.cached), "bytes": float(len(response.body))}

    def query_cached() -> dict[str, float]:
        response = client.results(**SERVING_QUERY)
        return {"cached": float(response.cached), "bytes": float(len(response.body))}

    def submit_roundtrip() -> dict[str, float]:
        record = client.submit({"sweep": SERVING_JOB_SWEEP})
        final = client.wait(str(record["id"]), timeout=600.0, poll=0.02)
        return {
            "cases": float(final["total"]),
            "failed": float(final["state"] != "done"),
        }

    def prepared(name: str, fn, *, repeats: int, warmup: int) -> PreparedCase:
        return PreparedCase(
            case=BenchCase(
                name=name,
                suite="serving",
                params=(
                    ("problem", SERVING_QUERY["problem"]),
                    ("nprocs", env.nprocs),
                    ("scale", env.scale),
                ),
            ),
            fn=fn,
            repeats=repeats,
            warmup=warmup,
        )

    # warm the analysis artifacts (and the cached case) before timing: the
    # cold case then measures pipeline re-execution, not first-import noise
    client.results(**SERVING_QUERY)

    def close() -> None:
        server.shutdown()
        server.server_close()
        service.stop()
        tmpdir.cleanup()

    return SuiteInstance(
        name="serving",
        cases=[
            prepared("query-cold", query_cold, repeats=3, warmup=1),
            prepared("query-cached", query_cached, repeats=5, warmup=1),
            prepared("submit-roundtrip", submit_roundtrip, repeats=1, warmup=0),
        ],
        close=close,
    )


# --------------------------------------------------------------------------- #
# results: the columnar store at corpus scale (synthetic rows, no engine)
# --------------------------------------------------------------------------- #
#: row count of the synthetic corpus (fixed across scales for comparability).
RESULTS_ROWS = 10_000


def _synthetic_results(n: int):
    """``n`` deterministic synthetic (key, CaseResult) pairs."""
    import numpy as np

    from repro.pipeline.stage import CaseResult

    rng = np.random.default_rng(20040817)  # the paper's venue date; any seed works
    problems = ["XENON2", "PRE2", "TWOTONE", "ULTRASOUND3", "MIXINGTANK"]
    orderings = ["metis", "pord", "amd", "amf"]
    strategies = ["mumps-workload", "memory-full", "hybrid(alpha=0.25)", "hybrid(alpha=0.75)"]
    nprocs_axis = [8, 16, 32]
    peaks = rng.uniform(1e5, 1e8, size=n)
    times = rng.uniform(0.5, 50.0, size=n)
    pairs = []
    for i in range(n):
        nprocs = nprocs_axis[i % len(nprocs_axis)]
        per_proc = rng.uniform(1e4, peaks[i], size=nprocs)
        result = CaseResult(
            problem=problems[i % len(problems)],
            ordering=orderings[(i // 5) % len(orderings)],
            strategy=strategies[(i // 20) % len(strategies)],
            split=bool(i % 2),
            nprocs=nprocs,
            max_peak_stack=float(peaks[i]),
            avg_peak_stack=float(per_proc.mean()),
            sum_peak_stack=float(per_proc.sum()),
            total_time=float(times[i]),
            total_factor_entries=float(peaks[i] * 3.0),
            per_proc_peak_stack=per_proc,
            nodes=1000 + i % 5000,
            nodes_split=i % 100,
            messages=10_000 + i % 100_000,
        )
        pairs.append((f"result-{i:024x}", result))
    return pairs


@SUITES.register(
    "results",
    description="columnar result store: streaming append, filter+page, npz round-trip (10k rows)",
)
def _results_suite(env: BenchEnv) -> SuiteInstance:
    import os
    import tempfile

    from repro.results import ResultStore, ResultTable

    pairs = _synthetic_results(RESULTS_ROWS)
    table = ResultTable.from_results([r for _, r in pairs], keys=[k for k, _ in pairs])
    tmpdir = tempfile.TemporaryDirectory(prefix="repro-bench-results-")
    run_no = {"n": 0}

    def append_stream() -> dict[str, float]:
        # a fresh store directory per repeat: measures segment sealing and
        # manifest appends end to end (fsync off, as in CI daemons)
        run_no["n"] += 1
        store = ResultStore(os.path.join(tmpdir.name, f"append-{run_no['n']}"), fsync=False)
        with store.writer(flush_every=1024) as writer:
            for key, result in pairs:
                writer.append(key, result)
        return {"rows": float(len(store)), "segments": float(store.stats()["segments"])}

    def filter_page() -> dict[str, float]:
        # the GET /results hot path: columnar predicate, canonical sort, one page
        page = table.filter(problem="XENON2", nprocs=16).sorted()
        rows = page.take(range(min(50, len(page)))).to_dicts()
        return {"matched": float(len(page)), "page": float(len(rows))}

    def npz_roundtrip() -> dict[str, float]:
        path = os.path.join(tmpdir.name, "roundtrip.npz")
        table.save_npz(path)
        loaded = ResultTable.load_npz(path)
        return {"rows": float(len(loaded)), "bytes": float(os.path.getsize(path))}

    def prepared(name: str, fn, *, repeats: int, warmup: int) -> PreparedCase:
        return PreparedCase(
            case=BenchCase(
                name=name,
                suite="results",
                params=(("rows", RESULTS_ROWS),),
            ),
            fn=fn,
            repeats=repeats,
            warmup=warmup,
        )

    return SuiteInstance(
        name="results",
        cases=[
            prepared("append-10k", append_stream, repeats=3, warmup=1),
            prepared("filter-page-10k", filter_page, repeats=5, warmup=1),
            prepared("npz-roundtrip-10k", npz_roundtrip, repeats=3, warmup=1),
        ],
        close=tmpdir.cleanup,
    )


# --------------------------------------------------------------------------- #
# tuning: the auto-tuning layer (seeded search + memoized rung sweeps)
# --------------------------------------------------------------------------- #
#: the tiny space/search the tuning suite races (cheap at any scale).
TUNING_SPACE = "hybrid(alpha=0.0..1.0)"
TUNING_SEARCHER = "halving(samples=4,eta=2,rungs=2)"


@SUITES.register(
    "tuning",
    description="strategy auto-tuning: cold halving search, resumed search, sampling + artifact encode",
)
def _tuning_suite(env: BenchEnv) -> SuiteInstance:
    import os
    import tempfile

    import numpy as np

    from repro.session import Session
    from repro.tune.driver import Tuner, TuneSpec
    from repro.tune.space import parse_space

    tmpdir = tempfile.TemporaryDirectory(prefix="repro-bench-tuning-")
    spec = TuneSpec(
        space=parse_space(TUNING_SPACE),
        problems=["XENON2"],
        searcher=TUNING_SEARCHER,
        objective="peak-memory",
        seed=7,
        nprocs=env.nprocs,
        scale=env.scale,
    )
    run_no = {"n": 0}

    def search_cold() -> dict[str, float]:
        # a fresh session and store per repeat: measures the whole search —
        # analyses, rung sweeps, ranking — with no memoization carried over
        run_no["n"] += 1
        with Session(nprocs=env.nprocs, scale=env.scale, cache_dir="") as session:
            board = Tuner(
                session, spec, store=os.path.join(tmpdir.name, f"cold-{run_no['n']}")
            ).run()
            return {
                "evaluations": float(board.evaluations),
                "simulate_runs": float(session.engine.stage_runs["simulate"]),
            }

    warm_store = os.path.join(tmpdir.name, "warm")

    def search_resumed() -> dict[str, float]:
        # the resume path: every evaluation answered from the shared store
        # (the first, untimed warmup repeat populates it)
        with Session(nprocs=env.nprocs, scale=env.scale, cache_dir="") as session:
            board = Tuner(session, spec, store=warm_store).run()
            return {
                "evaluations": float(board.evaluations),
                "simulate_runs": float(session.engine.stage_runs["simulate"]),
            }

    def sample_and_encode() -> dict[str, float]:
        # the engine-free substrate: seeded sampling through canonical spec
        # rendering (the store-key path) — no simulation at all
        space = parse_space(TUNING_SPACE)
        rng = np.random.default_rng(7)
        keys = {space.sample(rng).key for _ in range(500)}
        return {"distinct": float(len(keys))}

    def prepared(name: str, fn, *, repeats: int, warmup: int) -> PreparedCase:
        return PreparedCase(
            case=BenchCase(
                name=name,
                suite="tuning",
                params=(
                    ("space", TUNING_SPACE),
                    ("searcher", TUNING_SEARCHER),
                    ("nprocs", env.nprocs),
                    ("scale", env.scale),
                ),
            ),
            fn=fn,
            repeats=repeats,
            warmup=warmup,
        )

    return SuiteInstance(
        name="tuning",
        cases=[
            prepared("halving-search-cold", search_cold, repeats=2, warmup=0),
            prepared("halving-search-resumed", search_resumed, repeats=3, warmup=1),
            prepared("sample-and-render-500", sample_and_encode, repeats=5, warmup=1),
        ],
        close=tmpdir.cleanup,
    )


# --------------------------------------------------------------------------- #
# robustness: the fault-injection layer's overhead on the simulation kernel
# --------------------------------------------------------------------------- #
#: the perturbation the faulted case injects (exercises every model hook).
ROBUSTNESS_FAULTS = "stragglers(frac=0.25,slowdown=4.0)+msgloss(p=0.05,retry_timeout=5e-4)"
ROBUSTNESS_SEED = 7


@SUITES.register(
    "robustness",
    description="fault-injection overhead: clean vs faulted simulation on one prebuilt analysis",
)
def _robustness_suite(env: BenchEnv) -> SuiteInstance:
    from repro.runtime import FactorizationSimulator
    from repro.scheduling import get_strategy
    from repro.session import Session

    # one prebuilt analysis serves both twins, so the pair isolates the
    # fault layer's cost from the analysis stages
    session = Session(nprocs=env.nprocs, scale=env.scale, cache_dir="")
    analysis = session.analysis("XENON2", "metis")
    faulted_config = session.config.replace(
        faults=ROBUSTNESS_FAULTS, fault_seed=ROBUSTNESS_SEED
    )

    def simulate(config) -> dict[str, float]:
        slave, task = get_strategy("memory-full").build()
        result = FactorizationSimulator(
            analysis.tree,
            config=config,
            mapping=analysis.mapping,
            slave_selector=slave,
            task_selector=task,
        ).run()
        metrics = _simulate_metrics(result)
        counts = result.message_counts or {}
        metrics["msg_lost"] = float(counts.get("msg_lost", 0))
        metrics["msg_retries"] = float(counts.get("msg_retries", 0))
        return metrics

    def prepared(name: str, config) -> PreparedCase:
        return PreparedCase(
            case=BenchCase(
                name=name,
                suite="robustness",
                params=(
                    ("problem", "XENON2"),
                    ("ordering", "metis"),
                    ("strategy", "memory-full"),
                    ("faults", ROBUSTNESS_FAULTS if config.faults else ""),
                    ("nprocs", env.nprocs),
                    ("scale", env.scale),
                ),
            ),
            fn=lambda: simulate(config),
            repeats=3,
            warmup=1,
        )

    return SuiteInstance(
        name="robustness",
        cases=[
            prepared("simulate-clean", session.config),
            prepared("simulate-faulted", faulted_config),
        ],
        close=session.close,
    )
