"""Validated benchmark configuration from the ``REPRO_BENCH_*`` environment.

The historical ``benchmarks/_bench_utils.py`` read these variables at import
time with bare ``int()`` / ``float()`` casts: a typo like
``REPRO_BENCH_SCALE=0`` silently produced empty problems and
``REPRO_BENCH_JOBS=two`` crashed with a naked ``ValueError`` pointing at the
wrong line.  :class:`BenchEnv` centralises the parsing, range-checks every
knob and raises one uniform, variable-named error, so both the pytest
shims and the ``repro bench`` CLI agree on the configuration and on the
failure mode.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, fields
from typing import Mapping

__all__ = ["BenchEnv", "BenchEnvError"]

#: repository root (the directory holding ``src/``), used for the default cache
_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__)))))


class BenchEnvError(ValueError):
    """A ``REPRO_BENCH_*`` variable holds an out-of-range or unparsable value."""


_FALSEY = {"", "0", "false", "no", "off"}


def _parse_flag(environ: Mapping[str, str], name: str, default: bool) -> bool:
    raw = environ.get(name)
    if raw is None:
        return default
    return raw.strip().lower() not in _FALSEY


def _parse(environ: Mapping[str, str], name: str, caster, default):
    raw = environ.get(name)
    if raw is None or raw == "":
        return default
    try:
        return caster(raw)
    except (TypeError, ValueError):
        raise BenchEnvError(
            f"{name}={raw!r} is not a valid {caster.__name__}"
        ) from None


@dataclass(frozen=True)
class BenchEnv:
    """Benchmark knobs, with the same defaults the suite always had.

    ``from_environ`` is the only supported constructor from the environment;
    building one directly (e.g. in tests or from CLI flags via
    :meth:`replace`) bypasses the environment but not the validation, which
    runs in ``__post_init__``.
    """

    #: simulated processors used by the suites (paper: 32).
    nprocs: int = 32
    #: problem scale factor (1.0 = largest analogues).
    scale: float = 0.6
    #: analysis cache directory shared by the table suites ("" disables it).
    cache: str = os.path.join(_REPO_ROOT, ".repro_cache")
    #: worker processes used by the shared runner's sweeps (1 = serial).
    jobs: int = 1
    #: worker processes for the parallel-vs-serial pipeline comparison.
    pipeline_jobs: int = 4
    #: disarm the parallel-beats-serial assertion (shared/1-core runners).
    no_speedup_check: bool = False

    def __post_init__(self) -> None:
        if self.nprocs < 1:
            raise BenchEnvError(f"REPRO_BENCH_NPROCS must be >= 1, got {self.nprocs}")
        if not self.scale > 0:
            raise BenchEnvError(f"REPRO_BENCH_SCALE must be > 0, got {self.scale!r}")
        if self.scale > 4:
            raise BenchEnvError(
                f"REPRO_BENCH_SCALE={self.scale!r} is out of range (problems only scale up to 4.0)"
            )
        if self.jobs < 1:
            raise BenchEnvError(f"REPRO_BENCH_JOBS must be >= 1, got {self.jobs}")
        if self.pipeline_jobs < 1:
            raise BenchEnvError(
                f"REPRO_BENCH_PIPELINE_JOBS must be >= 1, got {self.pipeline_jobs}"
            )

    @classmethod
    def from_environ(cls, environ: Mapping[str, str] | None = None) -> "BenchEnv":
        """Read and validate every ``REPRO_BENCH_*`` variable.

        ``environ`` defaults to ``os.environ``; pass a mapping in tests.
        Unset (or empty) variables keep their defaults; malformed or
        out-of-range values raise :class:`BenchEnvError` naming the variable.
        """
        env = os.environ if environ is None else environ
        return cls(
            nprocs=_parse(env, "REPRO_BENCH_NPROCS", int, cls.nprocs),
            scale=_parse(env, "REPRO_BENCH_SCALE", float, cls.scale),
            cache=env.get("REPRO_BENCH_CACHE", cls.cache),
            jobs=_parse(env, "REPRO_BENCH_JOBS", int, cls.jobs),
            pipeline_jobs=_parse(env, "REPRO_BENCH_PIPELINE_JOBS", int, cls.pipeline_jobs),
            no_speedup_check=_parse_flag(env, "REPRO_BENCH_NO_SPEEDUP_CHECK", cls.no_speedup_check),
        )

    def replace(self, **overrides) -> "BenchEnv":
        """A copy with ``overrides`` applied (``None`` values are ignored)."""
        data = {f.name: getattr(self, f.name) for f in fields(self)}
        data.update({k: v for k, v in overrides.items() if v is not None})
        return BenchEnv(**data)

    def to_dict(self) -> dict[str, object]:
        return {f.name: getattr(self, f.name) for f in fields(self)}
