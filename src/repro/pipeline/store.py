"""Content-addressed artifact stores for the analysis pipeline.

Every stage output (pattern, permutation, assembly tree, …) is an *artifact*
identified by a key of the form ``{stage}-{digest}`` where the digest is a
sha256 over the stage name, its version, its parameters and the keys of its
upstream artifacts.  Two cases that share a prefix of the pipeline therefore
share the artifacts of that prefix, whichever order they are computed in —
this is what lets a Table-2-sized sweep pay for each expensive analysis only
once, in memory within a process and on disk across processes and runs.

Three store implementations are provided:

* :class:`MemoryStore` — a plain dict, the per-process working set;
* :class:`DiskStore` — one pickle per artifact in a cache directory,
  shared across processes and across runs;
* :class:`TieredStore` — a memory store in front of an optional disk store;
  cheap intermediates can opt out of the disk tier (``persist=False``).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import tempfile
from abc import ABC, abstractmethod
from pathlib import Path
from typing import Iterator, Mapping, Optional, Sequence

__all__ = [
    "content_key",
    "ArtifactStore",
    "MemoryStore",
    "DiskStore",
    "TieredStore",
]

#: length of the hex digest kept in artifact keys (96 bits: collisions are
#: not a practical concern for cache keys).
_DIGEST_LEN = 24


def content_key(
    stage: str,
    version: str,
    params: Mapping[str, object],
    upstream: Sequence[str] = (),
) -> str:
    """Content address of one stage invocation.

    The digest covers the stage identity (name + version), its parameters
    (order-independent) and the keys of its upstream artifacts, so a change
    anywhere in the chain changes every downstream key — stale artifacts are
    never *invalidated*, they simply stop being addressed.
    """
    payload = repr((stage, version, sorted(params.items()), tuple(upstream)))
    digest = hashlib.sha256(payload.encode()).hexdigest()[:_DIGEST_LEN]
    return f"{stage}-{digest}"


class ArtifactStore(ABC):
    """Minimal mapping interface shared by every store backend."""

    @abstractmethod
    def get(self, key: str) -> object:
        """Return the artifact for ``key`` or raise :class:`KeyError`."""

    @abstractmethod
    def put(self, key: str, value: object, *, persist: bool = True) -> None:
        """Store ``value`` under ``key``.

        ``persist=False`` marks the artifact as cheap to recompute; backends
        with a durable tier may skip writing it there.
        """

    @abstractmethod
    def __contains__(self, key: str) -> bool: ...

    def get_or(self, key: str, default: object = None) -> object:
        try:
            return self.get(key)
        except KeyError:
            return default


class MemoryStore(ArtifactStore):
    """In-process artifact store (a dict)."""

    def __init__(self) -> None:
        self._data: dict[str, object] = {}

    def get(self, key: str) -> object:
        return self._data[key]

    def put(self, key: str, value: object, *, persist: bool = True) -> None:
        self._data[key] = value

    def __contains__(self, key: str) -> bool:
        return key in self._data

    def __len__(self) -> int:
        return len(self._data)

    def keys(self) -> Iterator[str]:
        return iter(self._data)

    def clear(self) -> None:
        self._data.clear()


class DiskStore(ArtifactStore):
    """One pickle per artifact in ``directory`` (``{key}.pkl``).

    Writes go through a temporary file followed by an atomic rename, so a
    concurrent sweep worker or service reader never observes a half-written
    artifact — at worst two writers compute the same artifact and the second
    rename wins with an identical payload.  ``durable=True`` additionally
    fsyncs the temporary file before the rename, so even a machine crash in
    the middle of a write can never leave a torn file behind the key (the
    rename is only allowed to become visible after the payload is on disk) —
    the crash-safety level the service's shared result cache relies on.
    """

    def __init__(self, directory: str | os.PathLike, *, durable: bool = False) -> None:
        self.directory = Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.durable = bool(durable)

    def path(self, key: str) -> Path:
        return self.directory / f"{key}.pkl"

    def get(self, key: str) -> object:
        path = self.path(key)
        try:
            with open(path, "rb") as fh:
                return pickle.load(fh)
        except FileNotFoundError:
            raise KeyError(key) from None

    def put(self, key: str, value: object, *, persist: bool = True) -> None:
        fd, tmp = tempfile.mkstemp(dir=self.directory, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as fh:
                pickle.dump(value, fh)
                if self.durable:
                    fh.flush()
                    os.fsync(fh.fileno())
            os.replace(tmp, self.path(key))
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def delete(self, key: str) -> bool:
        """Remove ``key``; returns whether it existed (races are benign)."""
        try:
            os.unlink(self.path(key))
        except FileNotFoundError:
            return False
        return True

    def size_bytes(self, key: str) -> int:
        """On-disk payload size of ``key`` (0 when it vanished concurrently)."""
        try:
            return self.path(key).stat().st_size
        except FileNotFoundError:
            return 0

    def __contains__(self, key: str) -> bool:
        return self.path(key).exists()

    def keys(self) -> Iterator[str]:
        for path in sorted(self.directory.glob("*.pkl")):
            yield path.stem


class TieredStore(ArtifactStore):
    """Memory store in front of an optional disk store.

    ``get`` promotes disk hits into memory; ``put`` always fills the memory
    tier and forwards to the disk tier only when ``persist`` is true.
    """

    def __init__(self, disk: Optional[DiskStore] = None) -> None:
        self.memory = MemoryStore()
        self.disk = disk

    def get(self, key: str) -> object:
        try:
            return self.memory.get(key)
        except KeyError:
            pass
        if self.disk is None:
            raise KeyError(key)
        value = self.disk.get(key)  # raises KeyError on miss
        self.memory.put(key, value)
        return value

    def put(self, key: str, value: object, *, persist: bool = True) -> None:
        self.memory.put(key, value)
        if persist and self.disk is not None:
            self.disk.put(key, value)

    def __contains__(self, key: str) -> bool:
        return key in self.memory or (self.disk is not None and key in self.disk)
