"""Parallel sweep execution over independent cases.

A sweep is a list of :class:`~repro.pipeline.stage.CaseSpec`; the executor
runs them all and returns their :class:`~repro.pipeline.stage.CaseResult` in
the *input order*, whatever the execution order was — results are therefore
byte-for-byte identical between the serial and the parallel path.

Parallel scheduling groups the cases by their analysis signature
(problem, ordering, split): one process-pool task per group, so the expensive
analysis phase of a group is computed once in the worker that owns it and
only the small per-case metrics travel back.  Workers are long-lived (one
engine per process, built from the picklable :class:`PipelineSettings`), so
artifacts also carry over between the groups a worker happens to receive —
e.g. the pattern of a problem swept under four orderings — and a shared disk
tier extends that sharing across workers and across runs.
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Optional, Sequence

from repro.pipeline.engine import AnalysisPipeline, PipelineSettings
from repro.pipeline.stage import CaseResult, CaseSpec

__all__ = ["SweepExecutor", "ProgressEvent", "WorkerCrashError"]

#: consecutive pool rebuilds before a crashing sweep gives up.
MAX_POOL_REBUILDS = 3


class WorkerCrashError(RuntimeError):
    """A worker process died (OOM-kill, SIGKILL, hard crash) mid-shard.

    Raised after the dead pool has been dropped, so the next attempt on the
    same backend/executor starts a fresh pool — which is what makes the
    error *retryable* (the service daemon counts it toward a job's
    ``max_attempts`` like any other shard failure).
    """


class ProgressEvent:
    """One completed case, as reported to the progress callback."""

    __slots__ = ("done", "total", "spec", "seconds")

    def __init__(self, done: int, total: int, spec: CaseSpec, seconds: float) -> None:
        self.done = done
        self.total = total
        self.spec = spec
        self.seconds = seconds

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ProgressEvent({self.done}/{self.total}, {self.spec.label()}, {self.seconds:.2f}s)"


# ----------------------------------------------------------------------- #
# worker side
# ----------------------------------------------------------------------- #
_WORKER_ENGINE: Optional[AnalysisPipeline] = None


def _init_worker(settings: PipelineSettings) -> None:
    global _WORKER_ENGINE
    _WORKER_ENGINE = settings.build()


def _run_group(indexed_specs: list[tuple[int, CaseSpec]]) -> list[tuple[int, CaseResult, float]]:
    """Run one analysis group inside a worker; returns (index, result, seconds)."""
    assert _WORKER_ENGINE is not None, "worker engine not initialised"
    out = []
    for index, spec in indexed_specs:
        start = time.perf_counter()
        result = _WORKER_ENGINE.run_case(spec)
        out.append((index, result, time.perf_counter() - start))
    return out


# ----------------------------------------------------------------------- #
# driver side
# ----------------------------------------------------------------------- #
class SweepExecutor:
    """Run a list of cases serially or across a process pool.

    Parameters
    ----------
    engine:
        The driver-side engine.  With ``jobs == 1`` cases run directly on it;
        with ``jobs > 1`` its :meth:`~AnalysisPipeline.settings` are shipped
        to the workers, so they see the same scale/config/cache directory.
    jobs:
        Number of worker processes (``1`` = in-process serial execution).
    progress:
        Optional callback invoked once per completed case with a
        :class:`ProgressEvent`; called from the driver process only.
    """

    def __init__(
        self,
        engine: AnalysisPipeline,
        *,
        jobs: int = 1,
        progress: Optional[Callable[[ProgressEvent], None]] = None,
    ) -> None:
        if jobs < 1:
            raise ValueError("jobs must be >= 1")
        self.engine = engine
        self.jobs = jobs
        self.progress = progress
        self._pool: Optional[ProcessPoolExecutor] = None

    # -------------------------------------------------------------- #
    def run(
        self,
        specs: Sequence[CaseSpec],
        *,
        on_result: Optional[Callable[[int, CaseSpec, CaseResult], None]] = None,
    ) -> list[CaseResult]:
        """Run every case and return results in input order.

        ``on_result(index, spec, result)`` is invoked in the driver process
        as each case *completes* — i.e. in execution order, not input order —
        which is what lets a result store persist the finished prefix of a
        sweep before the sweep is done (and therefore before a crash).
        """
        specs = list(specs)
        if not specs:
            return []
        if self.jobs == 1 or len(specs) == 1:
            return self._run_serial(specs, on_result)
        return self._run_parallel(specs, on_result)

    def close(self) -> None:
        """Shut down the worker pool (no-op if none was started).

        Safe to call repeatedly and from ``finally`` blocks: the pool
        reference is cleared before the shutdown, so even a shutdown that
        raises (e.g. a broken pool reaped by the OS) leaves the executor in
        the closed state instead of retrying the same failure on re-entry.
        """
        pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "SweepExecutor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -------------------------------------------------------------- #
    def _emit(self, done: int, total: int, spec: CaseSpec, seconds: float) -> None:
        if self.progress is not None:
            self.progress(ProgressEvent(done, total, spec, seconds))

    def _run_serial(
        self,
        specs: list[CaseSpec],
        on_result: Optional[Callable[[int, CaseSpec, CaseResult], None]] = None,
    ) -> list[CaseResult]:
        results: list[CaseResult] = []
        total = len(specs)
        for i, spec in enumerate(specs):
            start = time.perf_counter()
            result = self.engine.run_case(spec)
            results.append(result)
            if on_result is not None:
                on_result(i, spec, result)
            self._emit(i + 1, total, spec, time.perf_counter() - start)
        return results

    @staticmethod
    def group_by_analysis(specs: Sequence[CaseSpec]) -> list[list[tuple[int, CaseSpec]]]:
        """Partition (index, spec) pairs into analysis-sharing groups."""
        groups: dict[tuple, list[tuple[int, CaseSpec]]] = {}
        for index, spec in enumerate(specs):
            groups.setdefault(spec.analysis_signature(), []).append((index, spec))
        return list(groups.values())

    def _run_parallel(
        self,
        specs: list[CaseSpec],
        on_result: Optional[Callable[[int, CaseSpec, CaseResult], None]] = None,
    ) -> list[CaseResult]:
        groups = self.group_by_analysis(specs)
        total = len(specs)
        done = 0
        results: list[Optional[CaseResult]] = [None] * total
        rebuilds = 0
        remaining = groups
        while remaining:
            if self._pool is None:
                # the pool is kept for the executor's lifetime: workers are
                # long-lived engines, so artifacts survive between run() calls
                # (e.g. the analyses shared by successive tables of `repro all`)
                self._pool = ProcessPoolExecutor(
                    max_workers=self.jobs,
                    initializer=_init_worker,
                    initargs=(self.engine.settings(),),
                )
            crash: Optional[BaseException] = None
            futures: dict = {}
            try:
                for group in remaining:
                    futures[self._pool.submit(_run_group, group)] = group
                pending = set(futures)
                while pending:
                    finished, pending = wait(pending, return_when=FIRST_COMPLETED)
                    for future in finished:
                        try:
                            triples = future.result()
                        except BrokenProcessPool as exc:
                            # drain the other futures before recovering: a
                            # dead worker breaks every in-flight future, but
                            # groups that already returned keep their results
                            crash = exc
                            continue
                        for index, result, seconds in triples:
                            results[index] = result
                            done += 1
                            if on_result is not None:
                                on_result(index, specs[index], result)
                            self._emit(done, total, specs[index], seconds)
            except BrokenProcessPool as exc:
                # the pool was already broken at submit time (a worker died
                # between run() calls); recover exactly like a mid-run crash
                crash = exc
                for future in futures:
                    future.cancel()
            except BaseException:
                for future in futures:
                    future.cancel()
                raise
            if crash is None:
                break
            pool, self._pool = self._pool, None
            if pool is not None:
                pool.shutdown(wait=False, cancel_futures=True)
            rebuilds += 1
            if rebuilds > MAX_POOL_REBUILDS:
                raise WorkerCrashError(
                    f"worker pool crashed {rebuilds} times; giving up with "
                    f"{total - done} of {total} case(s) incomplete"
                ) from crash
            # group futures are all-or-nothing: a group either delivered all
            # its results or none, so resubmit exactly the unfinished groups
            remaining = [
                group for group in remaining
                if any(results[index] is None for index, _spec in group)
            ]
        assert all(r is not None for r in results)
        return results  # type: ignore[return-value]
