"""The six concrete stages of the factorization study pipeline.

``pattern → ordering → tree → split → mapping → simulate``

The first five form the *analysis* phase (expensive, shared by every strategy
of a case); the last one is the *simulation* phase (cheap, one run per
strategy).  Each stage declares exactly the parameters that influence its
output, so the engine's content-addressed keys invalidate precisely what a
parameter change actually affects — changing the strategy re-runs only the
simulation, changing the amalgamation re-runs everything from the tree down,
and so on.

Ordering and strategy parameters from the spec mini-language
(``"hybrid(alpha=0.3)"``) enter the keys in *canonical* form with defaults
bound, so equivalent spellings share artifacts while distinct
parameterisations never collide; the per-case ``nprocs`` / ``scale`` /
``split_threshold`` overrides enter through the stages they affect.
"""

from __future__ import annotations

from typing import Mapping

from repro.mapping import compute_mapping
from repro.ordering import canonical_ordering, compute_ordering
from repro.pipeline.stage import CaseSpec, SplitArtifact, Stage
from repro.runtime import FactorizationSimulator
from repro.scheduling import canonical_strategy, resolve_strategy
from repro.symbolic import build_assembly_tree, split_large_masters

def _get_problem(name: str):
    # deferred import: repro.experiments.__init__ imports the runner façade,
    # which imports this package — a module-level import here would close
    # that cycle before either side finished initialising
    from repro.experiments.problems import get_problem

    return get_problem(name)


__all__ = [
    "PatternStage",
    "OrderingStage",
    "TreeStage",
    "SplitStage",
    "MappingStage",
    "SimulationStage",
    "DEFAULT_STAGES",
]


class PatternStage(Stage):
    """Problem registry → synthetic :class:`~repro.sparse.SparsePattern`."""

    name = "pattern"
    persist = False  # deterministic and fast to regenerate

    def params(self, engine, spec: CaseSpec) -> dict[str, object]:
        return {"problem": _get_problem(spec.problem).name, "scale": engine.effective_scale(spec)}

    def compute(self, engine, spec: CaseSpec, upstream: Mapping[str, object]):
        return _get_problem(spec.problem).build(engine.effective_scale(spec))


class OrderingStage(Stage):
    """Pattern → fill-reducing permutation (METIS/PORD/AMD/AMF analogues)."""

    name = "ordering"
    requires = ("pattern",)
    persist = True  # the orderings dominate the analysis cost on big problems

    def params(self, engine, spec: CaseSpec) -> dict[str, object]:
        # canonical form, defaults bound: "metis" and "METIS(leaf_size=64)"
        # address the same artifact, "metis(leaf_size=32)" its own
        return {"ordering": canonical_ordering(spec.ordering)}

    def compute(self, engine, spec: CaseSpec, upstream: Mapping[str, object]):
        return compute_ordering(upstream["pattern"], spec.ordering)


class TreeStage(Stage):
    """(Pattern, permutation) → amalgamated assembly tree."""

    name = "tree"
    requires = ("pattern", "ordering")
    persist = False

    def params(self, engine, spec: CaseSpec) -> dict[str, object]:
        return {
            "amalgamation_min_pivots": engine.amalgamation_min_pivots,
            "amalgamation_relax": engine.amalgamation_relax,
        }

    def compute(self, engine, spec: CaseSpec, upstream: Mapping[str, object]):
        return build_assembly_tree(
            upstream["pattern"],
            upstream["ordering"],
            amalgamation_min_pivots=engine.amalgamation_min_pivots,
            amalgamation_relax=engine.amalgamation_relax,
            keep_variables=False,
            name=f"{_get_problem(spec.problem).name}-{spec.ordering}",
        )


class SplitStage(Stage):
    """Optional static splitting of large type-2 masters (Section 6)."""

    name = "split"
    requires = ("tree",)
    persist = False

    def threshold(self, engine, spec: CaseSpec) -> int:
        if spec.split_threshold is not None:
            return int(spec.split_threshold)
        base = _get_problem(spec.problem).split_threshold
        return max(int(base * engine.effective_scale(spec)), 1_000)

    def params(self, engine, spec: CaseSpec) -> dict[str, object]:
        params: dict[str, object] = {"split": bool(spec.split)}
        if spec.split:
            params["threshold"] = self.threshold(engine, spec)
        return params

    def compute(self, engine, spec: CaseSpec, upstream: Mapping[str, object]) -> SplitArtifact:
        tree = upstream["tree"]
        if not spec.split:
            return SplitArtifact(tree=tree, nodes_split=0, threshold=0)
        threshold = self.threshold(engine, spec)
        tree, report = split_large_masters(tree, threshold)
        return SplitArtifact(tree=tree, nodes_split=report.nodes_split, threshold=threshold)


class MappingStage(Stage):
    """Tree → static mapping (Geist-Ng layers, node types, candidates)."""

    name = "mapping"
    requires = ("split",)
    persist = False

    def params(self, engine, spec: CaseSpec) -> dict[str, object]:
        return {"nprocs": engine.effective_nprocs(spec), **engine.config.mapping_params()}

    def compute(self, engine, spec: CaseSpec, upstream: Mapping[str, object]):
        return compute_mapping(
            upstream["split"].tree,
            engine.effective_nprocs(spec),
            **engine.config.mapping_params(),
        )


class SimulationStage(Stage):
    """(Tree, mapping, strategy) → :class:`~repro.runtime.SimulationResult`."""

    name = "simulate"
    requires = ("split", "mapping")
    # cheap relative to the analysis and one result per (case, config) key —
    # caching them would grow a long-lived engine (benchmark harness, `repro
    # all`) without bound, so the simulation is re-run per request like the
    # pre-pipeline runner did
    cache = False
    persist = False

    def params(self, engine, spec: CaseSpec) -> dict[str, object]:
        # the full machine model matters here (rates, latencies, …), not just
        # the mapping thresholds, so hash every config field; the strategy
        # enters in canonical form with its parameters bound, so e.g. a
        # hybrid(alpha=0.3) result can never be addressed by the alpha=0.5 key
        params = dict(engine.effective_config(spec).__dict__)
        params["strategy"] = canonical_strategy(spec.strategy)
        params["track_traces"] = bool(spec.track_traces)
        # the fault axis enters only when set (in canonical form), so every
        # pre-existing clean key is preserved verbatim
        if params.get("faults"):
            from repro.faults import canonical_faults

            params["faults"] = canonical_faults(params["faults"])
        else:
            params.pop("faults", None)
            params.pop("fault_seed", None)
        return params

    def compute(self, engine, spec: CaseSpec, upstream: Mapping[str, object]):
        preset, strategy_params = resolve_strategy(spec.strategy)
        slave_selector, task_selector = preset.build(**strategy_params)
        config = engine.effective_config(spec).replace(track_traces=bool(spec.track_traces))
        sim = FactorizationSimulator(
            upstream["split"].tree,
            config=config,
            mapping=upstream["mapping"],
            slave_selector=slave_selector,
            task_selector=task_selector,
            strategy_name=preset.name,
        )
        return sim.run()


def simulate_batch(engine, specs: "list[CaseSpec]"):
    """Simulate case specs sharing one analysis and machine config in a batch.

    The specs must agree on everything upstream of the strategy (same mapping
    key, same config apart from ``track_traces`` and the fault axis) — the
    grouping in :meth:`AnalysisPipeline.run_cases_batched` guarantees this.
    One shared :class:`~repro.runtime.geometry.SimGeometry` and view bank
    serve every run (see :mod:`repro.runtime.batch`); results are
    bit-identical to the per-case :class:`SimulationStage` path and come back
    in spec order, one *list* of :class:`SimulationResult` per spec — a
    single run for clean cases, the clean baseline followed by the seeded
    faulted replications for faulted ones
    (:meth:`AnalysisPipeline.replication_configs`).
    """
    from repro.runtime.batch import BatchScenario, run_batch

    first = specs[0]
    tree = engine.artifact("split", first).tree
    mapping = engine.artifact("mapping", first)
    scenarios = []
    counts = []
    for spec in specs:
        preset, strategy_params = resolve_strategy(spec.strategy)
        configs = engine.replication_configs(spec)
        counts.append(len(configs))
        for cfg in configs:
            # fresh selector instances per scenario: selectors may carry
            # per-run state, and replications must not share it
            slave_selector, task_selector = preset.build(**strategy_params)
            scenarios.append(
                BatchScenario(
                    slave_selector=slave_selector,
                    task_selector=task_selector,
                    strategy_name=preset.name,
                    config=cfg,
                )
            )
    engine.stage_runs["simulate"] += len(scenarios)
    flat = run_batch(
        tree, scenarios, config=engine.effective_config(first), mapping=mapping
    )
    grouped = []
    offset = 0
    for count in counts:
        grouped.append(flat[offset : offset + count])
        offset += count
    return grouped


#: the stage chain in dependency order, as instantiated by the engine.
DEFAULT_STAGES: tuple[type[Stage], ...] = (
    PatternStage,
    OrderingStage,
    TreeStage,
    SplitStage,
    MappingStage,
    SimulationStage,
)
