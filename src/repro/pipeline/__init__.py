"""Staged analysis pipeline engine.

The experimental apparatus of the paper is a cartesian product of cases,
each flowing through the same chain::

    pattern → ordering → tree → split → mapping → simulate

This package turns that implicit chain into an explicit engine:

* :mod:`repro.pipeline.stage` — the :class:`Stage` protocol and the data
  types flowing through it (:class:`CaseSpec`, :class:`AnalysisProducts`,
  :class:`CaseResult`);
* :mod:`repro.pipeline.stages` — the six concrete stages;
* :mod:`repro.pipeline.store` — content-addressed artifact stores
  (memory / disk / tiered);
* :mod:`repro.pipeline.engine` — :class:`AnalysisPipeline`, which resolves
  stage graphs against a store;
* :mod:`repro.pipeline.executor` — :class:`SweepExecutor`, which runs many
  independent cases concurrently while sharing upstream artifacts.

See ``docs/pipeline.md`` for the architecture and for how to add a stage or
a workload.
"""

from repro.pipeline.engine import AnalysisPipeline, PipelineSettings
from repro.pipeline.executor import ProgressEvent, SweepExecutor
from repro.pipeline.stage import AnalysisProducts, CaseResult, CaseSpec, SplitArtifact, Stage
from repro.pipeline.stages import (
    DEFAULT_STAGES,
    MappingStage,
    OrderingStage,
    PatternStage,
    SimulationStage,
    SplitStage,
    TreeStage,
)
from repro.pipeline.store import ArtifactStore, DiskStore, MemoryStore, TieredStore, content_key

__all__ = [
    "AnalysisPipeline",
    "PipelineSettings",
    "SweepExecutor",
    "ProgressEvent",
    "Stage",
    "CaseSpec",
    "SplitArtifact",
    "AnalysisProducts",
    "CaseResult",
    "DEFAULT_STAGES",
    "PatternStage",
    "OrderingStage",
    "TreeStage",
    "SplitStage",
    "MappingStage",
    "SimulationStage",
    "ArtifactStore",
    "MemoryStore",
    "DiskStore",
    "TieredStore",
    "content_key",
]
