"""The staged analysis pipeline engine.

:class:`AnalysisPipeline` owns the stage chain, the engine-level parameters
(processor count, problem scale, machine model, amalgamation knobs) and a
:class:`~repro.pipeline.store.TieredStore`.  It resolves stage dependency
graphs, derives content-addressed keys and consults the store before running
any stage, so arbitrary interleavings of cases never recompute a shared
artifact.

:class:`PipelineSettings` is the picklable description of an engine; sweep
workers rebuild their own engine from it (sharing the disk tier, when one is
configured) — see :mod:`repro.pipeline.executor`.
"""

from __future__ import annotations

import os
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Optional

import numpy as np

from repro.pipeline.stage import AnalysisProducts, CaseResult, CaseSpec, SplitArtifact, Stage
from repro.pipeline.stages import DEFAULT_STAGES
from repro.pipeline.store import DiskStore, TieredStore, content_key
from repro.runtime import SimulationConfig, SimulationResult

__all__ = ["PipelineSettings", "AnalysisPipeline"]


def _default_config(nprocs: int) -> SimulationConfig:
    return SimulationConfig.paper(nprocs)


@dataclass(frozen=True)
class PipelineSettings:
    """Everything needed to (re)build an :class:`AnalysisPipeline`.

    Plain data, picklable, comparable by value — the unit shipped to sweep
    worker processes.
    """

    nprocs: int = 32
    scale: float = 1.0
    config: Optional[SimulationConfig] = None
    cache_dir: str = ""
    amalgamation_relax: float = 0.15
    amalgamation_min_pivots: int = 4

    def build(self) -> "AnalysisPipeline":
        # cache_dir is passed through verbatim: "" means "disk tier off" and
        # must stay off in workers (None would re-enable the REPRO_CACHE_DIR
        # fallback there, silently diverging from the driver engine)
        return AnalysisPipeline(
            nprocs=self.nprocs,
            scale=self.scale,
            config=self.config,
            cache_dir=self.cache_dir,
            amalgamation_relax=self.amalgamation_relax,
            amalgamation_min_pivots=self.amalgamation_min_pivots,
        )


class AnalysisPipeline:
    """Resolve and cache the stage chain for experiment cases.

    Parameters
    ----------
    nprocs:
        Number of simulated processors (the paper uses 32).
    scale:
        Problem scale factor forwarded to the problem builders.
    config:
        Base :class:`SimulationConfig`; ``nprocs`` is overridden.
    cache_dir:
        Directory for the disk artifact tier (``None`` disables it).  The
        default honours the ``REPRO_CACHE_DIR`` environment variable.
    """

    def __init__(
        self,
        *,
        nprocs: int = 32,
        scale: float = 1.0,
        config: SimulationConfig | None = None,
        cache_dir: str | os.PathLike | None = None,
        amalgamation_relax: float = 0.15,
        amalgamation_min_pivots: int = 4,
        stages: Iterable[type[Stage]] = DEFAULT_STAGES,
    ) -> None:
        if config is None:
            config = _default_config(nprocs)
        else:
            config = SimulationConfig(**{**config.__dict__, "nprocs": nprocs})
        self.config = config
        self.nprocs = nprocs
        self.scale = float(scale)
        self.amalgamation_relax = amalgamation_relax
        self.amalgamation_min_pivots = amalgamation_min_pivots
        if cache_dir is None:
            cache_dir = os.environ.get("REPRO_CACHE_DIR", "")
        self.cache_dir = str(cache_dir) if cache_dir else ""
        self.store = TieredStore(DiskStore(self.cache_dir) if self.cache_dir else None)
        self.stages: dict[str, Stage] = {cls.name: cls() for cls in stages}
        #: number of actual ``Stage.compute`` executions per stage name.  A
        #: cache hit (memory or disk tier) does not increment anything, so
        #: the counters distinguish "served from cache" from "recomputed" —
        #: the service layer exposes them and its tests assert on them.
        self.stage_runs: Counter[str] = Counter()

    # ------------------------------------------------------------------ #
    # settings round-trip (for sweep workers)
    # ------------------------------------------------------------------ #
    def settings(self) -> PipelineSettings:
        return PipelineSettings(
            nprocs=self.nprocs,
            scale=self.scale,
            config=self.config,
            cache_dir=self.cache_dir,
            amalgamation_relax=self.amalgamation_relax,
            amalgamation_min_pivots=self.amalgamation_min_pivots,
        )

    # ------------------------------------------------------------------ #
    # per-case effective parameters (spec overrides beat engine defaults)
    # ------------------------------------------------------------------ #
    def effective_nprocs(self, spec: CaseSpec) -> int:
        """Processor count of one case: its override, else the engine's."""
        return self.nprocs if spec.nprocs is None else int(spec.nprocs)

    def effective_scale(self, spec: CaseSpec) -> float:
        """Problem scale of one case: its override, else the engine's."""
        return self.scale if spec.scale is None else float(spec.scale)

    def effective_config(self, spec: CaseSpec) -> SimulationConfig:
        """The engine config with the case's ``nprocs``/``faults`` overrides applied."""
        cfg = self.config
        if spec.nprocs is not None and spec.nprocs != cfg.nprocs:
            cfg = cfg.replace(nprocs=int(spec.nprocs))
        if getattr(spec, "faults", None):
            cfg = cfg.replace(
                faults=str(spec.faults), fault_seed=int(getattr(spec, "fault_seed", 0))
            )
        return cfg

    def replication_configs(self, spec: CaseSpec) -> list[SimulationConfig]:
        """The machine configs one case actually runs.

        A clean case runs once.  A faulted case runs a clean baseline plus
        ``spec.replications`` faulted replays, each seeded deterministically
        from the case's ``fault_seed`` (CRC-mixed per replication index, see
        :func:`repro.faults.replication_seed`) — so the same
        ``(faults, fault_seed)`` pair reproduces byte-identical results on
        every backend.
        """
        cfg = self.effective_config(spec).replace(track_traces=bool(spec.track_traces))
        if not cfg.faults:
            return [cfg]
        from repro.faults import replication_seed

        reps = max(int(getattr(spec, "replications", 1) or 1), 1)
        return [cfg.replace(faults=None, fault_seed=0)] + [
            cfg.replace(fault_seed=replication_seed(cfg.fault_seed, rep))
            for rep in range(reps)
        ]

    # ------------------------------------------------------------------ #
    # stage resolution
    # ------------------------------------------------------------------ #
    def stage_key(self, stage_name: str, spec: CaseSpec) -> str:
        """Content-addressed key of one stage's artifact for ``spec``."""
        stage = self.stages[stage_name]
        upstream_keys = tuple(self.stage_key(dep, spec) for dep in stage.requires)
        return stage.key(self, spec, upstream_keys)

    def artifact(self, stage_name: str, spec: CaseSpec) -> object:
        """Artifact of ``stage_name`` for ``spec``, computing what's missing.

        The store lookup happens *before* the upstream artifacts are
        resolved — keys derive recursively from params alone — so a hit
        (e.g. an ordering or a seeded analysis bundle from the disk tier)
        short-circuits the whole upstream chain instead of materialising it.
        """
        stage = self.stages[stage_name]
        if stage.cache:
            key = self.stage_key(stage_name, spec)
            try:
                return self.store.get(key)
            except KeyError:
                pass
        upstream = {dep: self.artifact(dep, spec) for dep in stage.requires}
        value = stage.compute(self, spec, upstream)
        self.stage_runs[stage_name] += 1
        if stage.cache:
            self.store.put(key, value, persist=stage.persist)
        return value

    # ------------------------------------------------------------------ #
    # convenience accessors (the façade and the figures use these)
    # ------------------------------------------------------------------ #
    def _spec(self, problem: str, ordering: str = "metis", *, split: bool = False) -> CaseSpec:
        return CaseSpec(problem=problem, ordering=ordering, split=split)

    def pattern(self, problem: str):
        return self.artifact("pattern", self._spec(problem))

    def ordering(self, problem: str, ordering: str) -> np.ndarray:
        return self.artifact("ordering", self._spec(problem, ordering))

    def tree(self, problem: str, ordering: str, *, split: bool = False):
        return self.artifact("split", self._spec(problem, ordering, split=split)).tree

    def mapping(self, problem: str, ordering: str, *, split: bool = False):
        return self.artifact("mapping", self._spec(problem, ordering, split=split))

    def analysis(self, problem: str, ordering: str, *, split: bool = False) -> AnalysisProducts:
        """The bundled analysis phase of a case at the engine defaults."""
        return self.analysis_for(self._spec(problem, ordering, split=split))

    def analysis_for(self, spec: CaseSpec) -> AnalysisProducts:
        """The bundled analysis phase (everything upstream of the simulation).

        The bundle itself is a derived artifact: cached in memory (so repeated
        calls return the same object) and persisted to the disk tier as one
        ``analysis-*.pkl`` file, which is what a fresh process or a sweep
        worker loads to skip the whole analysis phase in one read.  The
        spec's per-case overrides flow into the underlying stage keys, so
        every (scale, nprocs, threshold) variant is its own bundle.
        """
        split_key = self.stage_key("split", spec)
        mapping_key = self.stage_key("mapping", spec)
        key = content_key("analysis", "1", {}, (split_key, mapping_key))
        try:
            products: AnalysisProducts = self.store.get(key)
        except KeyError:
            pass
        else:
            # seed the stage-level artifacts the bundle carries, so a bundle
            # loaded from the disk tier lets downstream stages (simulation)
            # skip the tree/split/mapping recompute instead of only skipping
            # this method
            if split_key not in self.store:
                seeded = SplitArtifact(tree=products.tree, nodes_split=products.nodes_split)
                self.store.put(split_key, seeded, persist=False)
            if mapping_key not in self.store:
                self.store.put(mapping_key, products.mapping, persist=False)
            return products
        from repro.pipeline.stages import _get_problem  # lazy (import cycle)

        split_art = self.artifact("split", spec)
        prob = _get_problem(spec.problem)
        products = AnalysisProducts(
            problem=prob.name,
            ordering=spec.ordering,
            scale=self.effective_scale(spec),
            split=bool(spec.split),
            split_threshold=(
                prob.split_threshold if spec.split_threshold is None else int(spec.split_threshold)
            ),
            tree=split_art.tree,
            mapping=self.artifact("mapping", spec),
            nodes_split=split_art.nodes_split,
        )
        self.store.put(key, products, persist=True)
        return products

    # ------------------------------------------------------------------ #
    # cases
    # ------------------------------------------------------------------ #
    def simulate(self, spec: CaseSpec) -> SimulationResult:
        """Run the simulation stage of one case (uncached, see SimulationStage)."""
        return self.artifact("simulate", spec)

    def _case_result(self, spec: CaseSpec, sim_results: list[SimulationResult]) -> CaseResult:
        """Fold one case's simulation run(s) into its :class:`CaseResult`."""
        analysis = self.analysis_for(spec)
        if len(sim_results) == 1:
            return CaseResult.from_simulation(analysis, spec.strategy, sim_results[0])
        from repro.faults import canonical_faults

        return CaseResult.from_replications(
            analysis,
            spec.strategy,
            sim_results[0],
            sim_results[1:],
            faults=canonical_faults(self.effective_config(spec).faults),
        )

    def run_case(self, spec: CaseSpec) -> CaseResult:
        """Run one full case and return its metrics.

        A faulted case (``spec.faults`` or an engine config with faults)
        runs its clean baseline plus the seeded replications in one shared
        batch — see :meth:`replication_configs`.
        """
        if len(self.replication_configs(spec)) == 1:
            analysis = self.analysis_for(spec)
            result = self.simulate(spec)
            return CaseResult.from_simulation(analysis, spec.strategy, result)
        from repro.pipeline.stages import simulate_batch

        return self._case_result(spec, simulate_batch(self, [spec])[0])

    def run_cases_batched(self, specs: Iterable[CaseSpec]) -> list[CaseResult]:
        """Run many cases, batching those that share an analysis.

        Specs are grouped by their mapping stage key plus the effective
        machine config (``track_traces`` and the fault axis aside — they
        vary freely within a batch); each group runs in-process against one
        precomputed scheduling geometry and one shared view bank
        (:func:`repro.pipeline.stages.simulate_batch`).  Results come back
        in input order and are bit-identical to :meth:`run_case` one by one.
        """
        from repro.pipeline.stages import simulate_batch

        specs = list(specs)
        groups: dict[object, list[int]] = {}
        for i, spec in enumerate(specs):
            cfg = self.effective_config(spec)
            cfg_key = tuple(
                sorted(
                    (k, v)
                    for k, v in cfg.__dict__.items()
                    if k not in ("track_traces", "faults", "fault_seed")
                )
            )
            groups.setdefault((self.stage_key("mapping", spec), cfg_key), []).append(i)
        results: list[CaseResult | None] = [None] * len(specs)
        for idxs in groups.values():
            for i, sim_results in zip(idxs, simulate_batch(self, [specs[i] for i in idxs])):
                results[i] = self._case_result(specs[i], sim_results)
        return results
