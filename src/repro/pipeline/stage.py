"""Stage protocol and the data types flowing through the pipeline.

A :class:`Stage` is one step of the analysis/simulation chain.  It declares

* ``name``/``version`` — its identity (bumping ``version`` invalidates every
  cached artifact it ever produced, and everything downstream of them);
* ``requires`` — the names of the upstream stages whose artifacts it reads;
* ``persist`` — whether its artifact is worth writing to the disk tier;
* ``params(engine, spec)`` — the exact set of parameters that influence its
  output, used to build the content-addressed cache key;
* ``compute(engine, spec, upstream)`` — the actual work.

The engine (:class:`repro.pipeline.engine.AnalysisPipeline`) resolves the
``requires`` graph, builds each stage's key from its params plus the upstream
keys, and consults the artifact store before calling ``compute`` — stages
never cache anything themselves.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass, fields
from typing import TYPE_CHECKING, ClassVar, Mapping, Optional

import numpy as np

from repro.pipeline.store import content_key

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.mapping import StaticMapping
    from repro.pipeline.engine import AnalysisPipeline
    from repro.runtime import SimulationResult
    from repro.symbolic import AssemblyTree

__all__ = ["CaseSpec", "Stage", "SplitArtifact", "AnalysisProducts", "CaseResult"]


@dataclass(frozen=True)
class CaseSpec:
    """One point of the (problem × ordering × splitting × strategy) product.

    Frozen and hashable so it can be used as a grouping key and shipped to
    sweep workers.  ``ordering`` and ``strategy`` are spec strings and may
    carry parameters in the mini-language of :mod:`repro.specs`
    (``"hybrid(alpha=0.3)"``); the pipeline cache keys canonicalise them, so
    distinct parameterisations never share a cached artifact.

    ``nprocs`` / ``scale`` / ``split_threshold`` are per-case overrides of
    the engine defaults (``None`` = use the engine's value), which is what
    lets one sweep vary the processor count — the paper's "gain vs. number
    of processors" axis — through a single shared executor.

    ``faults`` perturbs the simulated machine with the deterministic fault
    models of :mod:`repro.faults` (``"stragglers(frac=0.1)+msgloss(p=0.01)"``);
    ``fault_seed`` seeds their random streams and ``replications`` asks for
    that many seeded faulted replays per case (plus one clean baseline),
    summarised into the fault fields of :class:`CaseResult`.
    """

    problem: str
    ordering: str
    strategy: str = "memory-full"
    split: bool = False
    track_traces: bool = False
    nprocs: Optional[int] = None
    scale: Optional[float] = None
    split_threshold: Optional[int] = None
    faults: Optional[str] = None
    fault_seed: int = 0
    replications: int = 1

    def label(self) -> str:
        """Short human-readable tag used by progress reporting."""
        parts = [f"{self.problem}/{self.ordering}/{self.strategy}"]
        if self.split:
            parts.append("+split")
        if self.nprocs is not None:
            parts.append(f"@np{self.nprocs}")
        if self.scale is not None:
            parts.append(f"@x{self.scale:g}")
        if self.faults:
            parts.append(f"@faults[{self.faults}]")
        return "".join(parts)

    def analysis_signature(self) -> tuple:
        """Grouping key: cases with equal signatures share their analysis.

        The per-case overrides extend the historical (problem, ordering,
        split) triple only when set, so specs without overrides keep their
        seed-era signatures.
        """
        signature: tuple = (self.problem, self.ordering, self.split)
        for name in ("nprocs", "scale", "split_threshold"):
            value = getattr(self, name)
            if value is not None:
                signature += ((name, value),)
        return signature

    def overrides(self) -> dict[str, object]:
        """The per-case engine overrides that are actually set."""
        return {
            name: getattr(self, name)
            for name in ("nprocs", "scale", "split_threshold")
            if getattr(self, name) is not None
        }

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form; non-default fields only."""
        data: dict[str, object] = {"problem": self.problem, "ordering": self.ordering}
        defaults = {f.name: f.default for f in fields(self)}
        for name in (
            "strategy",
            "split",
            "track_traces",
            "nprocs",
            "scale",
            "split_threshold",
            "faults",
            "fault_seed",
            "replications",
        ):
            value = getattr(self, name)
            if value != defaults[name]:
                data[name] = value
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object], *, strict: bool = True) -> "CaseSpec":
        from repro.serialize import decode_fields

        payload = decode_fields(
            "case_spec",
            data,
            {f.name for f in fields(cls)},
            label="CaseSpec",
            strict=strict,
        )
        return cls(**payload)  # type: ignore[arg-type]


class Stage(ABC):
    """One step of the pipeline (see module docstring)."""

    name: ClassVar[str]
    version: ClassVar[str] = "1"
    requires: ClassVar[tuple[str, ...]] = ()
    persist: ClassVar[bool] = False
    #: ``False`` keeps the artifact out of the store entirely (recomputed on
    #: every request) — for cheap terminal stages whose results would
    #: otherwise accumulate unboundedly in a long-lived engine.
    cache: ClassVar[bool] = True

    @abstractmethod
    def params(self, engine: "AnalysisPipeline", spec: CaseSpec) -> dict[str, object]:
        """Every parameter that influences this stage's output."""

    @abstractmethod
    def compute(
        self, engine: "AnalysisPipeline", spec: CaseSpec, upstream: Mapping[str, object]
    ) -> object:
        """Produce the artifact from the upstream artifacts."""

    def key(self, engine: "AnalysisPipeline", spec: CaseSpec, upstream_keys: tuple[str, ...]) -> str:
        return content_key(self.name, self.version, self.params(engine, spec), upstream_keys)


@dataclass
class SplitArtifact:
    """Output of the splitting stage: the (possibly rewritten) tree."""

    tree: "AssemblyTree"
    nodes_split: int = 0
    threshold: int = 0


@dataclass
class AnalysisProducts:
    """Everything produced by the analysis phase of one case.

    This is the bundle the :class:`~repro.experiments.runner.ExperimentRunner`
    façade hands out and the disk tier persists as one ``analysis-*.pkl``
    artifact; the per-stage artifacts behind it stay in memory.
    """

    problem: str
    ordering: str
    scale: float
    split: bool
    split_threshold: int
    tree: "AssemblyTree"
    mapping: "StaticMapping"
    nodes_split: int = 0


@dataclass
class CaseResult:
    """Outcome of one simulated case.

    The fault-summary fields are meaningful for replicated faulted cases
    (see :meth:`from_replications`): the primary metrics then describe the
    *median* (p50 by makespan) replication, ``makespan_p50`` /
    ``makespan_p95`` the makespan distribution across replications,
    ``degradation`` the p50 makespan relative to the unperturbed baseline
    run, and ``messages_lost`` / ``retries`` the summed message-loss
    counters.  Clean cases keep the neutral defaults (p50 = p95 =
    ``total_time``, degradation 1.0).
    """

    problem: str
    ordering: str
    strategy: str
    split: bool
    nprocs: int
    max_peak_stack: float
    avg_peak_stack: float
    sum_peak_stack: float
    total_time: float
    total_factor_entries: float
    per_proc_peak_stack: np.ndarray
    nodes: int
    nodes_split: int
    messages: int
    faults: str = ""
    replications: int = 1
    makespan_p50: float = 0.0
    makespan_p95: float = 0.0
    degradation: float = 1.0
    messages_lost: int = 0
    retries: int = 0

    @classmethod
    def from_simulation(
        cls, analysis: AnalysisProducts, strategy: str, result: "SimulationResult"
    ) -> "CaseResult":
        counts = result.message_counts
        return cls(
            problem=analysis.problem,
            ordering=analysis.ordering,
            strategy=strategy,
            split=analysis.split,
            nprocs=result.nprocs,
            max_peak_stack=result.max_peak_stack,
            avg_peak_stack=result.avg_peak_stack,
            sum_peak_stack=result.sum_peak_stack,
            total_time=result.total_time,
            total_factor_entries=result.total_factor_entries,
            per_proc_peak_stack=result.per_proc_peak_stack,
            nodes=result.nodes,
            nodes_split=analysis.nodes_split,
            messages=int(sum(counts.values())),
            makespan_p50=result.total_time,
            makespan_p95=result.total_time,
            messages_lost=int(counts.get("msg_lost", 0)),
            retries=int(counts.get("msg_retries", 0)),
        )

    @classmethod
    def from_replications(
        cls,
        analysis: AnalysisProducts,
        strategy: str,
        clean: "SimulationResult",
        faulted: "list[SimulationResult]",
        *,
        faults: str,
    ) -> "CaseResult":
        """Summarise a clean baseline plus N seeded faulted replications.

        The primary metrics come from the p50-by-makespan replication (ties
        broken by replication index, so the pick is deterministic); the
        percentiles use the nearest-rank method on the sorted makespans —
        no interpolation, so every value is one actually-simulated float.
        """
        if not faulted:
            raise ValueError("from_replications needs at least one faulted replication")
        order = sorted(range(len(faulted)), key=lambda i: (faulted[i].total_time, i))
        n = len(faulted)
        p50_result = faulted[order[(n - 1) // 2]]
        p95_result = faulted[order[min(n - 1, max(0, -(-95 * n // 100) - 1))]]
        case = cls.from_simulation(analysis, strategy, p50_result)
        case.faults = faults
        case.replications = n
        case.makespan_p50 = p50_result.total_time
        case.makespan_p95 = p95_result.total_time
        case.degradation = (
            p50_result.total_time / clean.total_time if clean.total_time > 0 else 1.0
        )
        case.messages_lost = int(
            sum(r.message_counts.get("msg_lost", 0) for r in faulted)
        )
        case.retries = int(sum(r.message_counts.get("msg_retries", 0) for r in faulted))
        return case

    def to_dict(self) -> dict[str, object]:
        """JSON-ready form (the per-processor peaks become a plain list)."""
        return {
            "problem": self.problem,
            "ordering": self.ordering,
            "strategy": self.strategy,
            "split": self.split,
            "nprocs": self.nprocs,
            "max_peak_stack": float(self.max_peak_stack),
            "avg_peak_stack": float(self.avg_peak_stack),
            "sum_peak_stack": float(self.sum_peak_stack),
            "total_time": float(self.total_time),
            "total_factor_entries": float(self.total_factor_entries),
            "per_proc_peak_stack": [float(x) for x in self.per_proc_peak_stack],
            "nodes": self.nodes,
            "nodes_split": self.nodes_split,
            "messages": self.messages,
            "faults": self.faults,
            "replications": self.replications,
            "makespan_p50": float(self.makespan_p50),
            "makespan_p95": float(self.makespan_p95),
            "degradation": float(self.degradation),
            "messages_lost": self.messages_lost,
            "retries": self.retries,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "CaseResult":
        from repro.serialize import decode_fields

        # tolerant: a result payload from a newer writer (extra columns) or
        # an HTTP body with an envelope still decodes on this build
        payload = decode_fields(
            "case_result", data, {f.name for f in fields(cls)}, label="CaseResult"
        )
        payload["per_proc_peak_stack"] = np.asarray(
            payload.get("per_proc_peak_stack", ()), dtype=np.float64
        )
        return cls(**payload)  # type: ignore[arg-type]
