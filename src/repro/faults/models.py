"""Deterministic fault models and their compiled execution plan.

The perturbation layer stresses the paper's perfectly uniform machine with
the failure modes real SP-class machines exhibit (ROADMAP open item 3c):

* ``stragglers(frac=0.1, slowdown=4.0)`` — a seeded subset of processors
  runs every kernel ``slowdown`` times slower for the whole run;
* ``slowdown(n=1, span=1.0, duration=0.1, factor=2.0)`` — each processor
  gets ``n`` transient windows of length ``duration`` drawn uniformly in
  ``[0, span)`` during which its compute speed dips by ``factor``;
* ``msgloss(p=0.01, retry_timeout=5e-4, backoff=2.0)`` — every
  point-to-point message is independently lost with probability ``p`` and
  re-sent after ``retry_timeout * backoff**k`` of *simulated* time on the
  ``k``-th retry (the small bookkeeping broadcasts are treated as reliable
  collectives and never dropped).

Fault specs are written in the same mini-language as strategies and
orderings, with models joined by ``+``::

    faults = "stragglers(frac=0.1,slowdown=4.0)+msgloss(p=0.01)"

Everything is deterministic: randomness comes exclusively from the explicit
``seed`` through salted :class:`numpy.random.SeedSequence` streams — never
wall-clock time or ``hash()`` — so the same ``(faults, seed)`` pair
reproduces byte-identical :class:`~repro.runtime.SimulationResult` values
on every engine and every backend.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, fields
from typing import Mapping, Optional, Union

import numpy as np

from repro.serialize import decode_fields
from repro.specs import ParamSpec, _split_top_level, parse_spec

__all__ = [
    "StragglerModel",
    "SlowdownModel",
    "MsgLossModel",
    "FaultSpec",
    "FaultPlan",
    "parse_faults",
    "canonical_faults",
    "replication_seed",
    "MAX_RETRIES",
]

#: Hard cap on consecutive loss draws for one message.  With sane ``p`` the
#: probability of reaching it is ``p**64`` (≈ never); the cap bounds the
#: retry loop even under adversarial ``p`` close to 1.
MAX_RETRIES = 64

# Stream salts: fixed CRC-32 of the model name, so adding a model never
# shifts the draws of an existing one under the same seed.
_SALT_STRAGGLERS = zlib.crc32(b"stragglers")
_SALT_SLOWDOWN = zlib.crc32(b"slowdown")
_SALT_MSGLOSS = zlib.crc32(b"msgloss")


def _generator(seed: int, salt: int) -> np.random.Generator:
    return np.random.Generator(np.random.PCG64(np.random.SeedSequence([int(seed), int(salt)])))


def replication_seed(seed: int, rep: int) -> int:
    """The fault seed of replication ``rep`` derived from the base ``seed``.

    CRC-32 mixing (the :func:`repro.tune.objective.mixed_seed` idiom) keeps
    the derivation stable across platforms and numpy versions; replication 0
    is *not* the base seed, so a single run at ``seed`` and the first of N
    replications never silently share draws.
    """
    return (int(seed) & 0xFFFFFFFF) ^ zlib.crc32(f"replication-{int(rep)}".encode("ascii"))


@dataclass(frozen=True)
class StragglerModel:
    """Per-processor static speed multipliers."""

    frac: float = 0.1
    slowdown: float = 4.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.frac <= 1.0:
            raise ValueError(f"stragglers frac must be in [0, 1], got {self.frac!r}")
        if self.slowdown <= 0.0:
            raise ValueError(f"stragglers slowdown must be > 0, got {self.slowdown!r}")


@dataclass(frozen=True)
class SlowdownModel:
    """Transient per-processor slowdown windows in simulated time."""

    n: int = 1
    span: float = 1.0
    duration: float = 0.1
    factor: float = 2.0

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"slowdown n must be >= 1, got {self.n!r}")
        if self.span <= 0.0:
            raise ValueError(f"slowdown span must be > 0, got {self.span!r}")
        if self.duration <= 0.0:
            raise ValueError(f"slowdown duration must be > 0, got {self.duration!r}")
        if self.factor <= 0.0:
            raise ValueError(f"slowdown factor must be > 0, got {self.factor!r}")


@dataclass(frozen=True)
class MsgLossModel:
    """Independent per-message loss with retry after an exponential backoff."""

    p: float = 0.01
    retry_timeout: float = 5e-4
    backoff: float = 2.0

    def __post_init__(self) -> None:
        if not 0.0 <= self.p < 1.0:
            raise ValueError(f"msgloss p must be in [0, 1), got {self.p!r}")
        if self.retry_timeout <= 0.0:
            raise ValueError(f"msgloss retry_timeout must be > 0, got {self.retry_timeout!r}")
        if self.backoff < 1.0:
            raise ValueError(f"msgloss backoff must be >= 1, got {self.backoff!r}")


_MODEL_TYPES = {
    "stragglers": StragglerModel,
    "slowdown": SlowdownModel,
    "msgloss": MsgLossModel,
}


@dataclass(frozen=True)
class FaultSpec:
    """A parsed, validated fault specification (schema-versioned: fault_spec)."""

    stragglers: Optional[StragglerModel] = None
    slowdown: Optional[SlowdownModel] = None
    msgloss: Optional[MsgLossModel] = None

    def __post_init__(self) -> None:
        if self.stragglers is None and self.slowdown is None and self.msgloss is None:
            raise ValueError("a FaultSpec needs at least one fault model")

    def canonical(self) -> str:
        """Canonical mini-language form; :func:`parse_faults` round-trips it.

        Models appear in alphabetical order with every parameter bound, so
        equivalent spellings (reordered segments, defaulted vs. explicit
        parameters) canonicalise — and cache-key — identically.
        """
        segments = []
        for name in sorted(_MODEL_TYPES):
            model = getattr(self, name)
            if model is None:
                continue
            params = tuple(
                (f.name, getattr(model, f.name)) for f in fields(model)
            )
            segments.append(ParamSpec(name, params).canonical())
        return "+".join(segments)

    def to_dict(self) -> dict[str, object]:
        data: dict[str, object] = {}
        for name in sorted(_MODEL_TYPES):
            model = getattr(self, name)
            if model is not None:
                data[name] = {f.name: getattr(model, f.name) for f in fields(model)}
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object], *, strict: bool = True) -> "FaultSpec":
        payload = decode_fields(
            "fault_spec", data, set(_MODEL_TYPES), label="FaultSpec", strict=strict
        )
        models: dict[str, object] = {}
        for name, model_cls in _MODEL_TYPES.items():
            raw = payload.get(name)
            if raw is None:
                continue
            if not isinstance(raw, Mapping):
                raise ValueError(f"FaultSpec {name} must be a mapping, got {raw!r}")
            models[name] = model_cls(**raw)
        return cls(**models)  # type: ignore[arg-type]

    def __str__(self) -> str:
        return self.canonical()


def parse_faults(text: Union[str, FaultSpec]) -> FaultSpec:
    """Parse ``"model(...)+model(...)"`` into a :class:`FaultSpec`.

    Idempotent on :class:`FaultSpec` inputs.  Raises ``ValueError`` on
    malformed syntax, unknown models, duplicate models or invalid parameter
    values.
    """
    if isinstance(text, FaultSpec):
        return text
    if not isinstance(text, str) or not text.strip():
        raise ValueError(f"cannot parse fault spec {text!r}: expected 'model(...)+model(...)'")
    models: dict[str, object] = {}
    for segment in _split_top_level(text, sep="+"):
        segment = segment.strip()
        if not segment:
            raise ValueError(f"empty fault model segment in {text!r}")
        spec = parse_spec(segment)
        model_cls = _MODEL_TYPES.get(spec.name)
        if model_cls is None:
            known = ", ".join(sorted(_MODEL_TYPES))
            raise ValueError(f"unknown fault model {spec.name!r} (known: {known})")
        if spec.name in models:
            raise ValueError(f"duplicate fault model {spec.name!r} in {text!r}")
        allowed = {f.name for f in fields(model_cls)}
        unknown = set(spec.kwargs) - allowed
        if unknown:
            raise ValueError(
                f"unknown parameter(s) {sorted(unknown)} for fault model {spec.name!r} "
                f"(allowed: {sorted(allowed)})"
            )
        try:
            models[spec.name] = model_cls(**spec.kwargs)
        except TypeError as exc:
            raise ValueError(f"bad parameters for fault model {spec.name!r}: {exc}") from exc
    return FaultSpec(**models)  # type: ignore[arg-type]


def canonical_faults(text: Union[str, FaultSpec, None]) -> str:
    """Canonical form of a fault spec string; ``""`` for ``None``/empty."""
    if text is None or text == "":
        return ""
    return parse_faults(text).canonical()


class FaultPlan:
    """A :class:`FaultSpec` compiled for one machine size and seed.

    The compile step materialises everything the engines need as numpy
    arrays (per-processor speed factors, sorted slowdown window edges) plus
    python-float mirrors for the scalar hot path.  A plan is immutable and
    reusable: :meth:`message_stream` hands out a *fresh* generator each
    call, so re-running a simulator from the same plan replays identical
    draws.
    """

    __slots__ = (
        "spec",
        "nprocs",
        "seed",
        "speed_factors",
        "window_starts",
        "window_ends",
        "_speed",
        "_windows",
        "_window_factor",
        "_loss_p",
        "_retry_timeout",
        "_backoff",
    )

    def __init__(self, spec: FaultSpec, *, nprocs: int, seed: int) -> None:
        if nprocs < 1:
            raise ValueError("nprocs must be >= 1")
        if seed < 0:
            raise ValueError("fault seed must be >= 0")
        self.spec = spec
        self.nprocs = int(nprocs)
        self.seed = int(seed)

        speed = np.ones(self.nprocs, dtype=np.float64)
        if spec.stragglers is not None:
            rng = _generator(self.seed, _SALT_STRAGGLERS)
            mask = rng.random(self.nprocs) < spec.stragglers.frac
            speed[mask] = spec.stragglers.slowdown
        #: per-processor static duration multiplier (>= 1 for stragglers)
        self.speed_factors = speed
        self._speed = [float(x) for x in speed]

        starts = np.zeros((self.nprocs, 0), dtype=np.float64)
        ends = np.zeros((self.nprocs, 0), dtype=np.float64)
        if spec.slowdown is not None:
            rng = _generator(self.seed, _SALT_SLOWDOWN)
            starts = np.sort(rng.random((self.nprocs, spec.slowdown.n)), axis=1)
            starts *= spec.slowdown.span
            ends = starts + spec.slowdown.duration
        #: sorted per-processor window edges, shape ``(nprocs, n_windows)``
        self.window_starts = starts
        self.window_ends = ends
        self._windows = [
            list(zip((float(s) for s in starts[q]), (float(e) for e in ends[q])))
            for q in range(self.nprocs)
        ]
        self._window_factor = float(spec.slowdown.factor) if spec.slowdown is not None else 1.0

        if spec.msgloss is not None:
            self._loss_p = float(spec.msgloss.p)
            self._retry_timeout = float(spec.msgloss.retry_timeout)
            self._backoff = float(spec.msgloss.backoff)
        else:
            self._loss_p = 0.0
            self._retry_timeout = 0.0
            self._backoff = 1.0

    @classmethod
    def compile(
        cls, spec: Union[str, FaultSpec], *, nprocs: int, seed: int = 0
    ) -> "FaultPlan":
        """Parse (if needed) and compile ``spec`` for ``nprocs`` processors."""
        return cls(parse_faults(spec), nprocs=nprocs, seed=seed)

    @property
    def has_msgloss(self) -> bool:
        return self.spec.msgloss is not None

    def speed_at(self, proc: int, t: float) -> float:
        """Duration multiplier of ``proc`` for work *starting* at time ``t``.

        A task started inside a slowdown window runs entirely at the dipped
        speed — windows gate the start time, not an integral over the task's
        span, which keeps every engine's float arithmetic identical.
        """
        s = self._speed[proc]
        for start, end in self._windows[proc]:
            if start <= t < end:
                s = s * self._window_factor
            elif start > t:
                break
        return s

    def message_stream(self) -> Optional[np.random.Generator]:
        """A fresh, deterministic loss-draw stream (``None`` without msgloss)."""
        if self.spec.msgloss is None:
            return None
        return _generator(self.seed, _SALT_MSGLOSS)

    def message_penalty(self, stream: np.random.Generator) -> tuple[float, int]:
        """Draw one message's fate: ``(extra_delay, retries)``.

        Each loss re-sends the message after ``retry_timeout * backoff**k``
        of simulated time; the accumulated penalty is the extra arrival
        delay.  Draw count is ``retries + 1`` (the final successful send),
        capped at :data:`MAX_RETRIES`.
        """
        penalty = 0.0
        retries = 0
        while retries < MAX_RETRIES and float(stream.random()) < self._loss_p:
            penalty += self._retry_timeout * self._backoff**retries
            retries += 1
        return penalty, retries
