"""Deterministic fault injection: perturbed machines for robustness studies.

See :mod:`repro.faults.models` for the fault-model grammar and
:doc:`docs/robustness.md <../../docs/robustness>` for the full walkthrough.
"""

from repro.faults.models import (
    MAX_RETRIES,
    FaultPlan,
    FaultSpec,
    MsgLossModel,
    SlowdownModel,
    StragglerModel,
    canonical_faults,
    parse_faults,
    replication_seed,
)

__all__ = [
    "MAX_RETRIES",
    "FaultPlan",
    "FaultSpec",
    "MsgLossModel",
    "SlowdownModel",
    "StragglerModel",
    "canonical_faults",
    "parse_faults",
    "replication_seed",
]
