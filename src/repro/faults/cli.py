"""The ``repro robustness`` verb: rank strategies under injected faults.

Runs one faulted sweep (clean baseline + ``--replications`` seeded faulted
replays per case, see :mod:`repro.faults`) and emits a strategy-degradation
table: for every (problem, ordering, strategy) the clean makespan, the p50
and p95 faulted makespans, the degradation factor (p50 / clean) and the
message-loss counters.

Examples
--------
Compare two strategies under stragglers plus message loss, three
replications, reproducibly seeded::

    python -m repro robustness --problems XENON2 \\
        --strategies 'memory-full,mumps-workload' \\
        --faults 'stragglers(frac=0.1,slowdown=4.0)+msgloss(p=0.01)' \\
        --seed 7 --replications 3 --scale 0.2

The same ``(--faults, --seed)`` pair always reproduces byte-identical
results; add ``--store`` to make the sweep resumable.  See
``docs/robustness.md`` for the fault-model grammar and the replication
semantics.
"""

from __future__ import annotations

import argparse
import csv
import io
import json

import repro
from repro.faults import parse_faults

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro robustness",
        description="Rank scheduling strategies by degradation under injected faults",
    )
    parser.add_argument(
        "--problems", required=True,
        help="comma-separated problem names, e.g. XENON2,PRE2",
    )
    parser.add_argument(
        "--orderings", default="metis",
        help="comma-separated ordering specs (default: metis)",
    )
    parser.add_argument(
        "--strategies", default="memory-full,mumps-workload",
        help="comma-separated strategy specs (default: memory-full,mumps-workload)",
    )
    parser.add_argument(
        "--faults", required=True,
        help="fault spec, e.g. 'stragglers(frac=0.1,slowdown=4.0)+msgloss(p=0.01)'",
    )
    parser.add_argument("--seed", type=int, default=0, help="fault rng seed (default 0)")
    parser.add_argument(
        "--replications", type=int, default=3,
        help="faulted replications per case (default 3)",
    )
    parser.add_argument("--nprocs", type=int, default=None, help="simulated-processor override")
    parser.add_argument("--scale", type=float, default=None, help="problem scale factor")
    parser.add_argument("--jobs", type=int, default=None, help="sweep worker processes")
    parser.add_argument("--cache", default=None, metavar="DIR", help="artifact cache directory")
    parser.add_argument(
        "--store", default=None, metavar="DIR",
        help="ResultStore directory making the sweep resumable",
    )
    parser.add_argument(
        "--format", choices=("md", "json", "csv"), default="md",
        help="stdout format (default md)",
    )
    return parser


_COLUMNS = (
    "problem", "ordering", "strategy", "clean_makespan",
    "makespan_p50", "makespan_p95", "degradation", "messages_lost", "retries",
)


def _rows(results) -> list[dict[str, object]]:
    rows = []
    for case in results:
        # degradation = p50 / clean, so the clean baseline makespan is
        # recoverable without storing it as its own column
        clean = case.makespan_p50 / case.degradation if case.degradation > 0 else 0.0
        rows.append(
            {
                "problem": case.problem,
                "ordering": case.ordering,
                "strategy": case.strategy,
                "clean_makespan": clean,
                "makespan_p50": case.makespan_p50,
                "makespan_p95": case.makespan_p95,
                "degradation": case.degradation,
                "messages_lost": case.messages_lost,
                "retries": case.retries,
            }
        )
    # worst degradation first: the table reads as "most fragile on top"
    rows.sort(key=lambda r: (-float(r["degradation"]), str(r["problem"]),
                             str(r["ordering"]), str(r["strategy"])))
    return rows


def _render(rows: list[dict[str, object]], faults: str, fmt: str) -> str:
    if fmt == "json":
        return json.dumps({"faults": faults, "rows": rows}, indent=2, sort_keys=True)
    if fmt == "csv":
        buffer = io.StringIO()
        writer = csv.writer(buffer)
        writer.writerow(_COLUMNS)
        for row in rows:
            writer.writerow([row[c] for c in _COLUMNS])
        return buffer.getvalue().rstrip("\n")
    lines = [
        f"faults: `{faults}`",
        "",
        "| problem | ordering | strategy | clean | p50 | p95 | degradation | lost | retries |",
        "| ------- | -------- | -------- | ----- | --- | --- | ----------- | ---- | ------- |",
    ]
    for row in rows:
        strategy = str(row["strategy"]).replace("|", "\\|")
        lines.append(
            f"| {row['problem']} | {row['ordering']} | {strategy} "
            f"| {row['clean_makespan']:.6g} | {row['makespan_p50']:.6g} "
            f"| {row['makespan_p95']:.6g} | {row['degradation']:.4f} "
            f"| {row['messages_lost']} | {row['retries']} |"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)

    problems = [p.strip().upper() for p in args.problems.split(",") if p.strip()]
    if not problems:
        parser.error("--problems needs at least one problem")
    orderings = [o.strip() for o in args.orderings.split(",") if o.strip()]
    strategies = [s.strip() for s in args.strategies.split(",") if s.strip()]
    if args.replications < 1:
        parser.error("--replications must be >= 1")
    if args.seed < 0:
        parser.error("--seed must be >= 0")
    try:
        faults = str(parse_faults(args.faults).canonical())
    except ValueError as exc:
        parser.error(str(exc))

    session_kwargs = {}
    if args.nprocs is not None:
        session_kwargs["nprocs"] = args.nprocs
    if args.scale is not None:
        session_kwargs["scale"] = args.scale
    if args.cache is not None:
        session_kwargs["cache_dir"] = args.cache
    if args.jobs is not None:
        session_kwargs["jobs"] = args.jobs

    try:
        with repro.open_session(**session_kwargs) as session:
            results = session.sweep(
                problems=problems,
                orderings=orderings,
                strategies=strategies,
                faults=[faults],
                fault_seed=args.seed,
                replications=args.replications,
                store=args.store,
            )
    except (ValueError, KeyError) as exc:
        parser.error(str(exc))

    print(_render(_rows(results), faults, args.format))
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
