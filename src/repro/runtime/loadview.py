"""Stale remote views of the other processors.

Every processor keeps an approximate view of the others: their stack
occupation (fed by the memory-variation broadcasts of Section 4), their
remaining workload (MUMPS' original metric, Section 3), the peak of the
subtree they are currently processing and the cost of the next master task
they are about to activate (the two Section 5.1 prediction mechanisms).

The views are only updated when the corresponding broadcast *arrives*, so
they lag reality by the message latency — exactly the coherence hazard the
paper illustrates in Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["SystemView"]


@dataclass
class SystemView:
    """What one processor believes about the whole system."""

    nprocs: int
    owner: int
    memory: np.ndarray = field(default=None)
    load: np.ndarray = field(default=None)
    subtree_peak: np.ndarray = field(default=None)
    predicted_master: np.ndarray = field(default=None)

    def __post_init__(self) -> None:
        if self.memory is None:
            self.memory = np.zeros(self.nprocs, dtype=np.float64)
        if self.load is None:
            self.load = np.zeros(self.nprocs, dtype=np.float64)
        if self.subtree_peak is None:
            self.subtree_peak = np.zeros(self.nprocs, dtype=np.float64)
        if self.predicted_master is None:
            self.predicted_master = np.zeros(self.nprocs, dtype=np.float64)

    # ------------------------------------------------------------------ #
    # updates driven by message arrivals (or by local knowledge)
    # ------------------------------------------------------------------ #
    def set_memory(self, proc: int, value: float) -> None:
        self.memory[proc] = value

    def add_memory(self, proc: int, delta: float) -> None:
        """Apply an increment (used for slave reservations known in advance)."""
        self.memory[proc] = max(self.memory[proc] + delta, 0.0)

    def set_load(self, proc: int, value: float) -> None:
        self.load[proc] = max(value, 0.0)

    def set_subtree_peak(self, proc: int, value: float) -> None:
        self.subtree_peak[proc] = max(value, 0.0)

    def set_predicted_master(self, proc: int, value: float) -> None:
        self.predicted_master[proc] = max(value, 0.0)

    # ------------------------------------------------------------------ #
    # metrics used by the slave-selection strategies
    # ------------------------------------------------------------------ #
    def instantaneous_memory(self, proc: int) -> float:
        """Believed stack occupation of ``proc`` (Section 4 metric)."""
        return float(self.memory[proc])

    def effective_memory(self, proc: int, *, with_predictions: bool = True) -> float:
        """Slave-selection metric of Section 5.1.

        Instantaneous memory plus the peak of the subtree the processor is
        treating plus the predicted cost of its next upper-layer master task;
        with ``with_predictions=False`` it degrades to the plain Section 4
        metric.
        """
        value = float(self.memory[proc])
        if with_predictions:
            value += float(self.subtree_peak[proc]) + float(self.predicted_master[proc])
        return value

    def memory_snapshot(self) -> np.ndarray:
        """Believed stack occupation of every processor, as one array.

        Vectorized equivalent of calling :meth:`instantaneous_memory` for
        each processor — this sits on the per-decision hot path of the
        type-2 slave selection, which happens thousands of times per run.
        """
        return self.memory.copy()

    def effective_memory_snapshot(self, *, with_predictions: bool = True) -> np.ndarray:
        """Section 5.1 slave-selection metric for every processor at once.

        The association order matches the scalar :meth:`effective_memory`
        (memory + (subtree_peak + predicted_master)) so both paths produce
        bit-identical floats.
        """
        if not with_predictions:
            return self.memory.copy()
        return self.memory + (self.subtree_peak + self.predicted_master)

    def snapshot(self) -> dict[str, np.ndarray]:
        """Copies of the arrays (for traces and debugging)."""
        return {
            "memory": self.memory.copy(),
            "load": self.load.copy(),
            "subtree_peak": self.subtree_peak.copy(),
            "predicted_master": self.predicted_master.copy(),
        }
