"""Stale remote views of the other processors.

Every processor keeps an approximate view of the others: their stack
occupation (fed by the memory-variation broadcasts of Section 4), their
remaining workload (MUMPS' original metric, Section 3), the peak of the
subtree they are currently processing and the cost of the next master task
they are about to activate (the two Section 5.1 prediction mechanisms).

The views are only updated when the corresponding broadcast *arrives*, so
they lag reality by the message latency — exactly the coherence hazard the
paper illustrates in Figure 5.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.runtime.events import BK_MEMORY, BROADCAST_KIND_IDS

__all__ = ["SystemView", "ViewBank"]


@dataclass(slots=True)
class SystemView:
    """What one processor believes about the whole system."""

    nprocs: int
    owner: int
    memory: np.ndarray = field(default=None)
    load: np.ndarray = field(default=None)
    subtree_peak: np.ndarray = field(default=None)
    predicted_master: np.ndarray = field(default=None)

    def __post_init__(self) -> None:
        if self.memory is None:
            self.memory = np.zeros(self.nprocs, dtype=np.float64)
        if self.load is None:
            self.load = np.zeros(self.nprocs, dtype=np.float64)
        if self.subtree_peak is None:
            self.subtree_peak = np.zeros(self.nprocs, dtype=np.float64)
        if self.predicted_master is None:
            self.predicted_master = np.zeros(self.nprocs, dtype=np.float64)

    # ------------------------------------------------------------------ #
    # updates driven by message arrivals (or by local knowledge)
    # ------------------------------------------------------------------ #
    def set_memory(self, proc: int, value: float) -> None:
        self.memory[proc] = value

    def add_memory(self, proc: int, delta: float) -> None:
        """Apply an increment (used for slave reservations known in advance)."""
        self.memory[proc] = max(self.memory[proc] + delta, 0.0)

    def set_load(self, proc: int, value: float) -> None:
        self.load[proc] = max(value, 0.0)

    def set_subtree_peak(self, proc: int, value: float) -> None:
        self.subtree_peak[proc] = max(value, 0.0)

    def set_predicted_master(self, proc: int, value: float) -> None:
        self.predicted_master[proc] = max(value, 0.0)

    # ------------------------------------------------------------------ #
    # metrics used by the slave-selection strategies
    # ------------------------------------------------------------------ #
    def instantaneous_memory(self, proc: int) -> float:
        """Believed stack occupation of ``proc`` (Section 4 metric)."""
        return float(self.memory[proc])

    def effective_memory(self, proc: int, *, with_predictions: bool = True) -> float:
        """Slave-selection metric of Section 5.1.

        Instantaneous memory plus the peak of the subtree the processor is
        treating plus the predicted cost of its next upper-layer master task;
        with ``with_predictions=False`` it degrades to the plain Section 4
        metric.
        """
        value = float(self.memory[proc])
        if with_predictions:
            value += float(self.subtree_peak[proc]) + float(self.predicted_master[proc])
        return value

    def memory_snapshot(self) -> np.ndarray:
        """Believed stack occupation of every processor, as one array.

        Vectorized equivalent of calling :meth:`instantaneous_memory` for
        each processor — this sits on the per-decision hot path of the
        type-2 slave selection, which happens thousands of times per run.
        """
        return self.memory.copy()

    def effective_memory_snapshot(self, *, with_predictions: bool = True) -> np.ndarray:
        """Section 5.1 slave-selection metric for every processor at once.

        The association order matches the scalar :meth:`effective_memory`
        (memory + (subtree_peak + predicted_master)) so both paths produce
        bit-identical floats.
        """
        if not with_predictions:
            return self.memory.copy()
        return self.memory + (self.subtree_peak + self.predicted_master)

    def snapshot(self) -> dict[str, np.ndarray]:
        """Copies of the arrays (for traces and debugging)."""
        return {
            "memory": self.memory.copy(),
            "load": self.load.copy(),
            "subtree_peak": self.subtree_peak.copy(),
            "predicted_master": self.predicted_master.copy(),
        }


class ViewBank:
    """All processors' :class:`SystemView` s backed by shared matrices.

    A broadcast event delivers the same value to every processor but the
    sender at the same simulated instant, and a reservation notification
    applies the same increments to every third party's view — both used to be
    per-processor Python loops over method calls, executed once per memory or
    load variation, i.e. many times per simulated task.  The bank stores the
    four view quantities as ``(nprocs, nprocs)`` matrices indexed
    ``[observer, subject]``; each processor's :class:`SystemView` wraps the
    matrix *rows* (plain numpy views, zero copies), so a broadcast collapses
    to one column assignment and a reservation to one clamped column update.

    ``vectorized=False`` keeps the historical layout — independent per-view
    arrays updated by the original scalar loops — as an executable reference:
    the identity tests run both modes and require bit-equal simulations.
    """

    #: per-kind scalar setters, indexed by the events.BK_* kind ids (same
    #: order as the ``_kind_arrays`` matrix bank).
    _SETTERS = (
        SystemView.set_memory,
        SystemView.set_load,
        SystemView.set_subtree_peak,
        SystemView.set_predicted_master,
    )

    def __init__(self, nprocs: int, *, vectorized: bool = True) -> None:
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        self.nprocs = int(nprocs)
        self.vectorized = bool(vectorized)
        if self.vectorized:
            self.memory = np.zeros((nprocs, nprocs), dtype=np.float64)
            self.load = np.zeros((nprocs, nprocs), dtype=np.float64)
            self.subtree_peak = np.zeros((nprocs, nprocs), dtype=np.float64)
            self.predicted_master = np.zeros((nprocs, nprocs), dtype=np.float64)
            # kind-id → matrix, indexed consistently with events.BK_* (the
            # fast engine's integer-tagged broadcasts land here directly)
            self._kind_arrays = (self.memory, self.load, self.subtree_peak, self.predicted_master)
            self._views = [
                SystemView(
                    nprocs=nprocs,
                    owner=p,
                    memory=self.memory[p],
                    load=self.load[p],
                    subtree_peak=self.subtree_peak[p],
                    predicted_master=self.predicted_master[p],
                )
                for p in range(nprocs)
            ]
        else:
            self._views = [SystemView(nprocs=nprocs, owner=p) for p in range(nprocs)]

    def view(self, proc: int) -> SystemView:
        """The (live) view owned by processor ``proc``."""
        return self._views[proc]

    def reset(self) -> None:
        """Zero every view (a simulation must start from pristine beliefs).

        The simulator calls this on the bank it is handed, so reusing one
        bank across runs can never leak the previous run's stale views.
        """
        for view in self._views:
            view.memory[:] = 0.0
            view.load[:] = 0.0
            view.subtree_peak[:] = 0.0
            view.predicted_master[:] = 0.0

    # ------------------------------------------------------------------ #
    # batched event application
    # ------------------------------------------------------------------ #
    def apply_broadcast(self, kind: str, source: int, value: float) -> None:
        """Deliver one broadcast to every processor except the sender.

        Validates the kind name and delegates to :meth:`apply_broadcast_kind`
        — a single implementation serves both the string-tagged reference
        payloads and the fast engine's integer tags.
        """
        try:
            kind_id = BROADCAST_KIND_IDS[kind]
        except KeyError:
            raise ValueError(f"unknown broadcast kind {kind}") from None
        self.apply_broadcast_kind(kind_id, source, value)

    def apply_broadcast_kind(self, kind_id: int, source: int, value: float) -> None:
        """Deliver one broadcast addressed by integer kind id (fast engine).

        Equivalent to calling the per-kind setter on each non-source view;
        the sender's own row is untouched (it always knows its exact state
        and updated it when the broadcast was emitted).  The integer id skips
        the name → matrix lookup on the per-event hot path.
        """
        if not self.vectorized:
            setter = self._SETTERS[kind_id]
            for view in self._views:
                if view.owner != source:
                    setter(view, source, value)
            return
        if kind_id != BK_MEMORY:
            # the scalar setters clamp at zero; one scalar max keeps the
            # column assignment bit-identical to the per-view calls
            value = max(float(value), 0.0)
        column = self._kind_arrays[kind_id][:, source]
        keep = column[source]
        column[:] = value
        column[source] = keep

    def apply_reservations(self, source: int, reservations: list[tuple[int, float]]) -> None:
        """Apply slave-block reservations announced by ``source``.

        Every processor other than the announcing master adds ``block`` to its
        belief about slave ``q``'s memory (``q`` itself skips its own entry:
        it learns the true value when the slave task message arrives).
        """
        if not self.vectorized:
            for view in self._views:
                if view.owner == source:
                    continue
                for (q, block) in reservations:
                    if q != view.owner:
                        view.add_memory(q, block)
            return
        memory = self.memory
        for (q, block) in reservations:
            column = memory[:, q]
            keep_source = column[source]
            keep_self = column[q]
            np.maximum(column + block, 0.0, out=column)
            column[source] = keep_source
            column[q] = keep_self
