"""Optionally numba-compiled kernels for the SoA engine (``engine="jit"``).

The SoA event loop of :mod:`repro.runtime.soa` has exactly two operations
that touch ``(nprocs, nprocs)`` state wholesale: delivering a broadcast (one
column assignment of a :class:`~repro.runtime.loadview.ViewBank` bank) and
applying slave-block reservations (clamped column additions).  This module
compiles those two with numba when it is available; everything else already
runs as scalar Python over the SoA slots, where a JIT would spend more time
boxing than the loop body costs.

numba is an *optional* dependency: when it is not installed (the CI matrix
exercises this leg explicitly), :func:`run_jit` silently degrades to the
pure-Python SoA loop — same events, same floats, same results.  The
``tests/test_engine_identity.py`` fuzz matrix pins ``jit`` bit-identical to
``reference`` either way.

The kernels replicate the vectorized numpy forms bit-for-bit: the clamp
compares against zero exactly like ``max(float(value), 0.0)`` on the values
that occur (no negative zeros reach the clamp), and the source/self slots
are saved and restored around the column write in the same order.
"""

from __future__ import annotations

from repro.runtime.soa import run_soa

__all__ = ["HAVE_NUMBA", "run_jit"]

try:  # pragma: no cover - exercised by the no-numba CI leg
    from numba import njit

    HAVE_NUMBA = True
except ImportError:  # pragma: no cover
    njit = None
    HAVE_NUMBA = False


if HAVE_NUMBA:

    @njit(cache=True)
    def _broadcast_kernel(mat, source, value, clamp):  # pragma: no cover - compiled
        if clamp and value < 0.0:
            value = 0.0
        keep = mat[source, source]
        for i in range(mat.shape[0]):
            mat[i, source] = value
        mat[source, source] = keep

    @njit(cache=True)
    def _reservations_kernel(memory, source, qs, blocks):  # pragma: no cover - compiled
        n = memory.shape[0]
        for k in range(qs.shape[0]):
            q = qs[k]
            b = blocks[k]
            keep_source = memory[source, q]
            keep_self = memory[q, q]
            for i in range(n):
                x = memory[i, q] + b
                if x < 0.0:
                    x = 0.0
                memory[i, q] = x
            memory[source, q] = keep_source
            memory[q, q] = keep_self

    class _Kernels:
        broadcast = staticmethod(_broadcast_kernel)
        reservations = staticmethod(_reservations_kernel)

    _KERNELS = _Kernels()
else:
    _KERNELS = None


def run_jit(sim):
    """Run ``sim`` with the SoA loop, using compiled kernels when possible.

    Falls back to the pure-Python SoA path when numba is absent or the
    simulator uses scalar (non-vectorized) views — the kernels only exist
    for the banked matrices.
    """
    if _KERNELS is not None and sim.views.vectorized:
        return run_soa(sim, kernels=_KERNELS)
    return run_soa(sim)
