"""Precomputed per-node scheduling geometry shared by the simulator engines.

Everything the event loops need about the assembly tree and the static
mapping — task flops, activation memory, front/factor/CB entries, owners,
subtree membership, type-2 candidate lists, Liu's child ordering, subtree
peaks, initial pool orders and initial workloads — is a pure function of
``(tree, mapping, nprocs)``.  The seed engine rebuilt all of it inside every
:class:`~repro.runtime.simulator.FactorizationSimulator`; one
:class:`SimGeometry` instance now carries it as numpy arrays plus plain-list
mirrors (the scalar per-event reads), so repeated runs against the same
analysis — benchmark repeats, strategy ablations, the batched sweep path of
:mod:`repro.runtime.batch` — pay for the geometry once.

Every quantity is produced by the same integer/float expressions the scalar
tree methods use (vectorized elementwise, no reductions), so the values are
bit-identical to recomputing them per task.
"""

from __future__ import annotations

import weakref

import numpy as np

from repro.mapping.layers import NodeType
from repro.symbolic.liu_order import order_children_for_memory, subtree_peaks_given_order

__all__ = ["SimGeometry"]

_TYPE2 = int(NodeType.TYPE2)
_TYPE3 = int(NodeType.TYPE3)

#: tree → {(id(mapping), nprocs): SimGeometry}.  The geometry keeps a strong
#: reference to its mapping, so the ``id`` key cannot be recycled while the
#: entry is alive; the outer weak key lets a discarded tree drop its cache.
_GEOMETRY_CACHE: "weakref.WeakKeyDictionary" = weakref.WeakKeyDictionary()


class SimGeometry:
    """Immutable per-(tree, mapping, nprocs) arrays consumed by the engines."""

    __slots__ = (
        "tree",
        "mapping",
        "nprocs",
        "nnodes",
        # numpy arrays (the SoA/jit engines index these wholesale)
        "task_flops_arr",
        "task_memory_arr",
        "node_type_arr",
        "owner_arr",
        "subtree_peaks",
        "initial_load",
        # plain-list mirrors (fast scalar reads on the per-event hot path)
        "task_flops",
        "task_memory",
        "front_entries",
        "factor_entries",
        "cb_entries",
        "master_entries",
        "assembly_flops",
        "npiv",
        "nfront",
        "node_type",
        "owner",
        "subtree_of",
        "parent",
        "children",
        "nchildren",
        "tree_leaves",
        "type2_candidates",
        "liu_order",
        "subtrees_of_proc",
        "pool_orders",
    )

    def __init__(self, tree, mapping, nprocs: int) -> None:
        if mapping.nprocs != nprocs:
            raise ValueError("mapping.nprocs does not match the requested nprocs")
        self.tree = tree
        self.mapping = mapping
        self.nprocs = int(nprocs)
        self.nnodes = tree.nnodes

        node_type = np.asarray(mapping.node_type, dtype=np.int64)
        front = tree.front_entries_all().astype(np.float64)
        master = tree.master_entries_all().astype(np.float64)
        is_type2 = node_type == _TYPE2
        is_type3 = node_type == _TYPE3

        # flops of the node's pool task (master part for type 2) and entries
        # added to the owner's stack at activation
        task_flops = np.where(is_type2, tree.type2_master_flops_all(), tree.factor_flops_all())
        task_memory = np.where(is_type2, master, np.where(is_type3, front / nprocs, front))
        self.task_flops_arr = task_flops
        self.task_memory_arr = task_memory
        self.node_type_arr = node_type
        self.owner_arr = np.asarray(mapping.owner, dtype=np.int64)
        self.task_flops = task_flops.tolist()
        self.task_memory = task_memory.tolist()
        self.front_entries = front.tolist()
        self.factor_entries = tree.factor_entries_all().astype(np.float64).tolist()
        self.cb_entries = tree.cb_entries_all().astype(np.float64).tolist()
        self.master_entries = master.tolist()
        self.assembly_flops = tree.assembly_flops_all().tolist()
        self.npiv = tree.npiv.tolist()
        self.nfront = tree.nfront.tolist()
        self.node_type = node_type.tolist()
        self.owner = self.owner_arr.tolist()
        self.subtree_of = np.asarray(mapping.subtree_of, dtype=np.int64).tolist()
        self.parent = tree.parent.tolist()
        self.children = tree.child_lists() if hasattr(tree, "child_lists") else [
            tree.children(i) for i in range(tree.nnodes)
        ]
        self.nchildren = [len(c) for c in self.children]
        self.tree_leaves = tree.leaves()

        # candidate lists of every type-2 node are static (the master is the
        # node's owner): precompute them instead of rebuilding one list per
        # slave selection
        self.type2_candidates: dict[int, list[int]] = {}
        for node in np.nonzero(is_type2)[0].tolist():
            owner = self.owner[node]
            cands = [q for q in mapping.candidates.get(node, []) if q != owner]
            if not cands:
                cands = [q for q in range(nprocs) if q != owner]
            self.type2_candidates[node] = cands

        # Liu's child ordering is deterministic in the tree alone: computed
        # once and shared by the subtree peaks and every pool initialisation
        self.liu_order = order_children_for_memory(tree)
        self.subtree_peaks = subtree_peaks_given_order(tree, self.liu_order)

        # initial workloads (cost of the statically assigned subtrees) and
        # the per-processor pool initialisation of Section 5.2
        initial_load = np.zeros(nprocs, dtype=np.float64)
        subtrees_of_proc: list[list[int]] = [[] for _ in range(nprocs)]
        for r in mapping.subtree_roots:
            owner = self.owner[r]
            initial_load[owner] += tree.subtree_flops(r)
            subtrees_of_proc[owner].append(r)
        self.initial_load = initial_load
        self.subtrees_of_proc = subtrees_of_proc
        self.pool_orders = [
            self.initial_pool_order(p, subtrees_of_proc[p]) for p in range(nprocs)
        ]

    # ------------------------------------------------------------------ #
    @classmethod
    def for_run(cls, tree, mapping, nprocs: int) -> "SimGeometry":
        """The geometry of ``(tree, mapping, nprocs)``, memoized per tree.

        Benchmark repeats, strategy ablations over one analysis and the
        batched sweep path all hit the cache; a fresh tree (or mapping)
        builds a fresh instance.
        """
        per_tree = _GEOMETRY_CACHE.get(tree)
        if per_tree is None:
            per_tree = _GEOMETRY_CACHE[tree] = {}
        key = (id(mapping), int(nprocs))
        geom = per_tree.get(key)
        if geom is None or geom.mapping is not mapping:
            geom = cls(tree, mapping, nprocs)
            per_tree[key] = geom
        return geom

    def initial_pool_order(self, proc: int, my_subtrees: list[int] | None = None) -> list[int]:
        """Leaf nodes assigned to ``proc`` in the order they should be processed.

        Leaves are grouped per subtree and, inside each subtree, listed in the
        order a depth-first traversal with Liu's child ordering would reach
        them — the pool initialisation described in Section 5.2.
        """
        if my_subtrees is None:
            my_subtrees = [r for r in self.mapping.subtree_roots if self.owner[r] == proc]
        liu = self.liu_order
        order: list[int] = []
        for r in sorted(my_subtrees):
            stack = [(r, 0)]
            # DFS following Liu order; collect the leaves in visit order
            visit: list[int] = []
            while stack:
                node, idx = stack.pop()
                children = liu[node]
                if not children:
                    visit.append(node)
                    continue
                if idx < len(children):
                    stack.append((node, idx + 1))
                    stack.append((children[idx], 0))
            order.extend(visit)
        # upper-layer leaves owned by this processor (rare but possible)
        for i in self.tree_leaves:
            if (
                self.subtree_of[i] < 0
                and self.owner[i] == proc
                and self.node_type[i] != _TYPE3
            ):
                order.append(i)
        return order
