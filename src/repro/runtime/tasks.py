"""Task descriptors of the simulated factorization.

A *task* is what sits in a processor's pool of ready work: the complete
treatment of a type-1 node, the master part of a type-2 node, one slave part
of a type-2 node (never in the pool — activated on receipt, Section 3), or a
processor's share of the type-3 root.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum, auto

__all__ = ["TaskKind", "Task"]


class TaskKind(Enum):
    TYPE1 = auto()         # full treatment of a type-1 node (inside or above the subtrees)
    TYPE2_MASTER = auto()  # master part of a type-2 node
    TYPE2_SLAVE = auto()   # one slave block of a type-2 node
    ROOT_SHARE = auto()    # this processor's share of the type-3 root


@dataclass(slots=True)
class Task:
    """One unit of work for one processor.

    Attributes
    ----------
    kind:
        The :class:`TaskKind`.
    node:
        Assembly-tree node index.
    proc:
        Processor the task runs on.
    flops:
        Elimination flops of this task (the workload metric of MUMPS).
    memory_cost:
        Entries this task will *add* to the processor's working area when it
        is activated (front for type 1, master part for a type-2 master,
        the row block for a slave, the root share for the root).  This is the
        "memory cost" used by Algorithm 2.
    rows:
        For slave tasks, the number of contribution rows owned.
    in_subtree:
        Index of the leaf-subtree root this task belongs to, or ``-1``.
    extra_transient:
        Additional working entries held only while the task runs (the share
        of the children contribution blocks assembled into this task's rows);
        allocated together with ``memory_cost`` and entirely freed when the
        task completes.
    """

    kind: TaskKind
    node: int
    proc: int
    flops: float
    memory_cost: float
    rows: int = 0
    in_subtree: int = -1
    master: int = -1  # master processor (slave tasks only)
    extra_transient: float = 0.0

    @property
    def is_subtree_task(self) -> bool:
        return self.in_subtree >= 0

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        sub = f" subtree={self.in_subtree}" if self.in_subtree >= 0 else ""
        return (
            f"Task({self.kind.name}, node={self.node}, proc={self.proc}, "
            f"flops={self.flops:.3g}, mem={self.memory_cost:.3g}{sub})"
        )
