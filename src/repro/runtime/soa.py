"""Structure-of-arrays simulation engine (``engine="soa"``).

The object engines (``flat``/``reference``) keep one ``ProcessorState`` /
``ProcessorMemory`` / ``Task`` instance per entity and spend most of a run in
attribute lookups and small method calls — profiling the flat engine shows
~80k function calls per mid-size run, spread over ``_memory_changed`` /
``_broadcast`` / ``push_*`` chains of three to four frames each.  This module
replaces all of that with parallel arrays:

* processor fields (``stack``, ``factors``, ``peak_stack``, ``load``,
  ``observed_peak``, broadcast dedup values, …) live in ``(nprocs,)`` slots;
* task fields (``kind``, ``node``, ``proc``, ``flops``, ``memory_cost``,
  ``rows``, ``in_subtree``, ``master``, ``extra_transient``) live in
  ``(ntasks,)`` columns appended as tasks are created, and an event names a
  task by its integer id;
* point-to-point messages dissolve into the flat ``(time, seq, tag, a, b,
  c)`` event tuples themselves (tags ``EV_SLAVE_TASK`` /
  ``EV_CHILD_COMPLETED``), so the event heap doubles as the message ring
  buffer.

:func:`run_soa` is one monolithic event loop over that layout: every handler
of the object engines is inlined into the loop body or a single-level
closure, state lives in hoisted locals (CPython list mirrors of the
:class:`SimState` arrays — dense integer indexing without the ndarray scalar
boxing), and events are pushed with inline ``heappush`` of tuples.  The final
:class:`SimState` (numpy canonical form, written back after the run, exposed
as ``sim.state``) is the layout the optional numba kernels of
:mod:`repro.runtime.engine_jit` compile against.

Bit-identity with the reference engine is load-bearing: both engines push the
same events in the same order (so sequence numbers and heap pop order match)
and perform every float operation with the same association — this is pinned
by ``tests/test_engine_identity.py`` over the full scenario matrix, traces
and message counts included.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush

import numpy as np

from repro.analysis.flops import (
    type2_slave_block_entries,
    type2_slave_factor_entries,
    type2_slave_flops,
)
from repro.runtime.events import (
    EV_BROADCAST,
    EV_CHILD_COMPLETED,
    EV_KICK,
    EV_RESERVATION,
    EV_SLAVE_TASK,
    EV_TASK_DONE,
)
from repro.runtime.trace import SimulationTrace, TraceBuffer
from repro.scheduling.base import SlaveSelectionContext, normalize_row_distribution

__all__ = ["SimState", "run_soa"]

# integer task-kind codes (the SoA twin of runtime.tasks.TaskKind)
K_TYPE1 = 0
K_TYPE2_MASTER = 1
K_TYPE2_SLAVE = 2
K_ROOT_SHARE = 3

#: task-selector modes inlined in the loop (resolved by the simulator from
#: the exact built-in selector types; anything else runs the flat engine)
TASK_MODE_LIFO = 0
TASK_MODE_FIFO = 1
TASK_MODE_MEMORY_AWARE = 2


class SimState:
    """Canonical structure-of-arrays state of one finished SoA run.

    Processor fields are ``(nprocs,)`` numpy arrays, task fields ``(ntasks,)``
    arrays in creation order.  The run loop works on plain-list mirrors of
    these slots (CPython indexes lists faster than it unboxes ndarray
    scalars) and writes them back here; the numba kernels of
    :mod:`repro.runtime.engine_jit` read the arrays directly.
    """

    __slots__ = (
        "nprocs",
        "ntasks",
        "stack",
        "factors",
        "peak_stack",
        "peak_time",
        "load_remaining",
        "observed_peak",
        "tasks_done",
        "current_subtree",
        "task_kind",
        "task_node",
        "task_proc",
        "task_flops",
        "task_memory",
        "task_rows",
        "task_subtree",
        "task_master",
        "task_extra",
    )

    def __init__(self, nprocs: int) -> None:
        self.nprocs = int(nprocs)
        self.ntasks = 0
        self.stack = np.zeros(nprocs, dtype=np.float64)
        self.factors = np.zeros(nprocs, dtype=np.float64)
        self.peak_stack = np.zeros(nprocs, dtype=np.float64)
        self.peak_time = np.zeros(nprocs, dtype=np.float64)
        self.load_remaining = np.zeros(nprocs, dtype=np.float64)
        self.observed_peak = np.zeros(nprocs, dtype=np.float64)
        self.tasks_done = np.zeros(nprocs, dtype=np.int64)
        self.current_subtree = np.full(nprocs, -1, dtype=np.int64)
        self.task_kind = np.empty(0, dtype=np.int8)
        self.task_node = np.empty(0, dtype=np.int64)
        self.task_proc = np.empty(0, dtype=np.int64)
        self.task_flops = np.empty(0, dtype=np.float64)
        self.task_memory = np.empty(0, dtype=np.float64)
        self.task_rows = np.empty(0, dtype=np.int64)
        self.task_subtree = np.empty(0, dtype=np.int64)
        self.task_master = np.empty(0, dtype=np.int64)
        self.task_extra = np.empty(0, dtype=np.float64)


def run_soa(sim, *, kernels=None):
    """Run ``sim`` to completion with the SoA event loop.

    ``kernels`` optionally supplies compiled twins for the two vectorized
    view updates (broadcast column write, reservation columns) — see
    :mod:`repro.runtime.engine_jit`; ``None`` uses the inline numpy forms.
    Returns the :class:`~repro.runtime.simulator.SimulationResult`, attaches
    the final :class:`SimState` as ``sim.state`` and mirrors
    ``sim.message_counts`` / ``sim.slave_selections`` like the object
    engines do.
    """
    cfg = sim.config
    geom = sim.geometry
    views = sim.views
    tracing = bool(cfg.track_traces)
    nprocs = cfg.nprocs
    nnodes = geom.nnodes
    multi = nprocs > 1
    n1 = nprocs - 1
    notif = sim.comm.notification_time()
    lat = sim.comm.latency
    bw = sim.comm.bandwidth_entries
    flop_rate = cfg.flop_rate
    asm_rate = cfg.assembly_rate
    min_rows = cfg.min_rows_per_slave
    max_slaves = cfg.effective_max_slaves()
    symmetric = sim.tree.symmetric
    task_mode = sim._soa_task_mode
    slave_select = sim.slave_selector.select
    normalize_rows = normalize_row_distribution
    # fault injection (hoisted; ``plan is None`` keeps every expression and
    # event route byte-identical to the unperturbed engine)
    plan = sim.fault_plan
    speed_at = plan.speed_at if plan is not None else None
    msg_stream = sim._fault_msg
    msg_penalty = plan.message_penalty if msg_stream is not None else None

    # ---------------- geometry (hoisted plain-list mirrors) ---------------- #
    tflops = geom.task_flops
    tmem = geom.task_memory
    g_front = geom.front_entries
    g_factor = geom.factor_entries
    g_cb = geom.cb_entries
    g_master = geom.master_entries
    g_asm = geom.assembly_flops
    g_npiv = geom.npiv
    g_nfront = geom.nfront
    g_ntype = geom.node_type
    g_owner = geom.owner
    g_sub = geom.subtree_of
    g_parent = geom.parent
    g_children = geom.children
    g_cands = geom.type2_candidates
    speaks = [float(x) for x in geom.subtree_peaks]
    from repro.mapping.layers import NodeType

    T2 = int(NodeType.TYPE2)
    T3 = int(NodeType.TYPE3)

    # ---------------- processor state (list mirrors of SimState) ----------- #
    stack = [0.0] * nprocs
    factors = [0.0] * nprocs
    peak = [0.0] * nprocs
    peak_t = [0.0] * nprocs
    observed = [0.0] * nprocs
    load = [0.0] * nprocs
    cur_sub = [-1] * nprocs
    cur_speak = [0.0] * nprocs
    last_m = [0.0] * nprocs
    last_l = [0.0] * nprocs
    last_p = [0.0] * nprocs
    tdone = [0] * nprocs
    current = [-1] * nprocs
    pools = [[] for _ in range(nprocs)]
    slaveq = [deque() for _ in range(nprocs)]
    upcoming = [dict() for _ in range(nprocs)]
    tb = [TraceBuffer() for _ in range(nprocs)] if tracing else None

    # ---------------- node state ------------------------------------------ #
    child_rem = list(geom.nchildren)
    completed = [False] * nnodes
    master_done = [False] * nnodes
    slaves_pend = [0] * nnodes
    activated = [False] * nnodes
    root_pend = [0] * nnodes
    cbp = [[] for _ in range(nnodes)]
    finished = 0

    # ---------------- task SoA columns (grow by append) -------------------- #
    t_kind = []
    t_node = []
    t_proc = []
    t_flops = []
    t_mem = []
    t_rows = []
    t_sub = []
    t_master = []
    t_extra = []

    # ---------------- views ------------------------------------------------ #
    vec = views.vectorized
    view_mem = [views.view(p).memory for p in range(nprocs)]
    view_load = [views.view(p).load for p in range(nprocs)]
    view_sub = [views.view(p).subtree_peak for p in range(nprocs)]
    view_pred = [views.view(p).predicted_master for p in range(nprocs)]
    kind_mats = views._kind_arrays if vec else None
    apply_broadcast_kind = views.apply_broadcast_kind
    apply_reservations = views.apply_reservations
    kern_bc = getattr(kernels, "broadcast", None) if (kernels and vec) else None
    kern_rv = getattr(kernels, "reservations", None) if (kernels and vec) else None
    views_memory_mat = views.memory if vec else None

    # Lazy view application (vectorized mode).  Broadcasts outnumber the
    # points where the view matrices are actually *read* — a type-2 slave
    # selection — by two orders of magnitude, so popped broadcast events are
    # recorded here and only materialised by ``flush_views`` right before a
    # selection (and once at end of run).  Column writes commute with
    # everything except those reads, the masters' observer updates (which
    # happen after the flush inside ``activate_t2``) and reservations, whose
    # ordering against memory broadcasts ``mem_log`` preserves verbatim —
    # so the flushed state is bit-identical to eager application at pop time.
    lazy = vec
    pend_cols = ({}, {}, {}, {})  # kind → {source: latest raw value}; [0] unused
    mem_log = []  # kind-0 ops in pop order: (0, src, val) | (1, master, reservations)

    # ---------------- event queues ----------------------------------------- #
    # Two sources, one global (time, seq) order.  Events scheduled with the
    # constant view-notification delay (broadcasts, reservations,
    # child-completed relays) have non-decreasing timestamps and monotone
    # sequence numbers, so a plain FIFO deque already holds them sorted —
    # they skip the heap entirely and the pop site merges the two fronts.
    heap = []
    nq = deque()
    seq = 0
    now = 0.0

    # ---------------- message counters ------------------------------------- #
    c_mem = c_load = c_sub = c_pred = 0
    c_cbt = c_stask = c_resv = c_sdone = c_child = c_root = 0
    c_lost = c_retr = 0
    root_seen = False
    n_sel = 0

    # ------------------------------------------------------------------ #
    # single-level closures (the object engines' 3-4 frame call chains
    # collapse to one call over shared cells; float ops keep the reference
    # engine's exact association)
    # ------------------------------------------------------------------ #
    def _alloc(q, e):
        s2 = stack[q] + e
        stack[q] = s2
        if s2 > peak[q]:
            peak[q] = s2
            peak_t[q] = now
        if tracing:
            tb[q].append(now, s2, factors[q])

    def _free(q, e):
        s2 = stack[q] - e
        stack[q] = s2
        if s2 < -1e-6:
            raise RuntimeError(
                f"processor {q}: stack memory became negative ({s2:.1f} entries)"
            )
        if tracing:
            tb[q].append(now, s2, factors[q])

    def _add_factors(q, e):
        f2 = factors[q] + e
        factors[q] = f2
        if tracing:
            tb[q].append(now, stack[q], f2)

    def mem_changed(q):
        nonlocal seq, c_mem
        s = stack[q]
        if s > observed[q]:
            observed[q] = s
        if s != last_m[q]:
            last_m[q] = s
            if multi:
                nq.append((now + notif, seq, EV_BROADCAST, 0, q, s))
                seq += 1
                c_mem += n1
        view_mem[q][q] = s

    def load_changed(q):
        nonlocal seq, c_load
        v = load[q]
        if v != last_l[q]:
            last_l[q] = v
            if multi:
                nq.append((now + notif, seq, EV_BROADCAST, 1, q, v))
                seq += 1
                c_load += n1
        view_load[q][q] = 0.0 if v < 0.0 else v

    def pred_changed(q):
        nonlocal seq, c_pred
        v = max(upcoming[q].values(), default=0.0)
        if v != last_p[q]:
            last_p[q] = v
            if multi:
                nq.append((now + notif, seq, EV_BROADCAST, 3, q, v))
                seq += 1
                c_pred += n1
        view_pred[q][q] = 0.0 if v < 0.0 else v

    def subtree_changed(q, v):
        nonlocal seq, c_sub
        cur_speak[q] = v
        view_sub[q][q] = 0.0 if v < 0.0 else v
        if multi:
            nq.append((now + notif, seq, EV_BROADCAST, 2, q, v))
            seq += 1
            c_sub += n1

    def complete_node(node):
        nonlocal seq, finished, c_child, c_lost, c_retr
        if completed[node]:
            raise RuntimeError(f"node {node} completed twice")
        completed[node] = True
        finished += 1
        par = g_parent[node]
        if par < 0:
            return
        co = g_owner[node]
        if co < 0:
            co = 0
        po = g_owner[par]
        if po < 0:
            po = 0  # type-3 root: bookkeeping held by processor 0
        if co == po:
            on_child_completed(par)
        else:
            if msg_penalty is None:
                nq.append((now + notif, seq, EV_CHILD_COMPLETED, par, 0, 0))
            else:
                # a loss-delayed relay would break the FIFO deque's monotone
                # timestamps, so under msgloss these events go to the heap —
                # the pop site merges both fronts by (time, seq), so the
                # route does not affect ordering
                penalty, retries = msg_penalty(msg_stream)
                if retries:
                    c_lost += 1
                    c_retr += retries
                heappush(heap, (now + (notif + penalty), seq, EV_CHILD_COMPLETED, par, 0, 0))
            seq += 1
            c_child += 1

    def on_child_completed(par):
        # Section 5.1: the owner of the parent now expects this master task
        if g_sub[par] < 0 and g_ntype[par] != T3:
            ow = g_owner[par]
            up = upcoming[ow]
            if par not in up and not activated[par]:
                up[par] = tmem[par]
                pred_changed(ow)
        r = child_rem[par] - 1
        child_rem[par] = r
        if r == 0:
            node_ready(par)

    def node_ready(node):
        if g_ntype[node] == T3:
            root_ready(node)
            return
        ow = g_owner[node]
        sub = g_sub[node]
        tid = len(t_kind)
        t_kind.append(K_TYPE2_MASTER if g_ntype[node] == T2 else K_TYPE1)
        t_node.append(node)
        t_proc.append(ow)
        t_flops.append(tflops[node])
        t_mem.append(tmem[node])
        t_rows.append(0)
        t_sub.append(sub)
        t_master.append(-1)
        t_extra.append(0.0)
        pools[ow].append(tid)
        # the workload-based scheduling counts a task as load when it enters the pool
        if sub < 0:
            load[ow] = load[ow] + tflops[node]
            load_changed(ow)
        try_start(ow)

    def root_ready(node):
        nonlocal seq, c_root, root_seen
        # the 2-D distribution scatters the children CBs: free them where they live
        for c in g_children[node]:
            for cq, e in cbp[c]:
                _free(cq, e)
                mem_changed(cq)
            cbp[c] = []
        root_pend[node] = nprocs
        shf = tflops[node] / nprocs
        shm = g_front[node] / nprocs
        for sq2 in range(nprocs):
            tid = len(t_kind)
            t_kind.append(K_ROOT_SHARE)
            t_node.append(node)
            t_proc.append(sq2)
            t_flops.append(shf)
            t_mem.append(shm)
            t_rows.append(0)
            t_sub.append(-1)
            t_master.append(-1)
            t_extra.append(0.0)
            pools[sq2].append(tid)
            load[sq2] = load[sq2] + shf
            load_changed(sq2)
            try_start(sq2)
        c_root += n1
        root_seen = True

    def flush_views():
        for kind in (1, 2, 3):
            d = pend_cols[kind]
            if d:
                mat = kind_mats[kind]
                if kern_bc is not None:
                    for src, val in d.items():
                        kern_bc(mat, src, val, True)
                else:
                    for src, val in d.items():
                        if val < 0.0:
                            val = 0.0
                        col = mat[:, src]
                        keep = col[src]
                        col[:] = val
                        col[src] = keep
                d.clear()
        if mem_log:
            mat = kind_mats[0]
            buf = {}
            for op in mem_log:
                if op[0] == 0:
                    buf[op[1]] = op[2]
                    continue
                if buf:
                    if kern_bc is not None:
                        for src, val in buf.items():
                            kern_bc(mat, src, val, False)
                    else:
                        for src, val in buf.items():
                            col = mat[:, src]
                            keep = col[src]
                            col[:] = val
                            col[src] = keep
                    buf.clear()
                if kern_rv is not None:
                    rlist = op[2]
                    kern_rv(
                        views_memory_mat,
                        op[1],
                        np.array([r[0] for r in rlist], dtype=np.int64),
                        np.array([r[1] for r in rlist], dtype=np.float64),
                    )
                else:
                    apply_reservations(op[1], op[2])
            if buf:
                if kern_bc is not None:
                    for src, val in buf.items():
                        kern_bc(mat, src, val, False)
                else:
                    for src, val in buf.items():
                        col = mat[:, src]
                        keep = col[src]
                        col[:] = val
                        col[src] = keep
            mem_log.clear()

    def activate_t2(tid, q, node):
        nonlocal seq, c_cbt, c_stask, c_resv, n_sel, c_lost, c_retr
        if lazy:
            flush_views()
        sub = t_sub[tid]
        if sub >= 0:
            if cur_sub[q] != sub:
                cur_sub[q] = sub
                subtree_changed(q, speaks[sub])
        else:
            up = upcoming[q]
            if node in up:
                del up[node]
                pred_changed(q)
        activated[node] = True
        # release the children CBs where they live; the master (observer)
        # updates its own view of the releasing processors immediately
        vm_q = view_mem[q]
        total = 0.0
        comm = 0.0
        for c in g_children[node]:
            for cq, e in cbp[c]:
                total += e
                _free(cq, e)
                mem_changed(cq)
                if cq != q:
                    x = vm_q[cq] - e
                    vm_q[cq] = 0.0 if x < 0.0 else x
                tt = lat + e / bw
                if tt > comm:
                    comm = tt
                c_cbt += 1
            cbp[c] = []
        npv = g_npiv[node]
        nfr = g_nfront[node]
        nfr_f = float(nfr if nfr > 1 else 1)
        # the master's assembly share: the rows of the children CBs that land
        # in the fully summed part of the front
        masm = total * float(npv) / nfr_f
        t_extra[tid] = masm
        _alloc(q, g_master[node] + masm)
        mem_changed(q)

        # ------------------- dynamic slave selection ------------------- #
        ncb = nfr - npv
        cands = g_cands[node]
        ctx = SlaveSelectionContext(
            master_proc=q,
            node=node,
            npiv=npv,
            nfront=nfr,
            ncb=ncb,
            symmetric=symmetric,
            candidates=cands,
            memory_view=vm_q.copy(),
            effective_memory_view=vm_q + (view_sub[q] + view_pred[q]),
            load_view=view_load[q].copy(),
            own_load=load[q],
            own_memory=stack[q],
            min_rows_per_slave=min_rows,
            max_slaves=max_slaves,
        )
        assignment = normalize_rows(slave_select(ctx), ncb, cands)
        n_sel += 1
        slaves_pend[node] = len(assignment)
        desc_delay = lat + float(npv * 2) / bw  # task descriptor, small
        if assignment:
            t_arrive = now + desc_delay
            reservations = []
            for sq2, rows in assignment:
                block = float(type2_slave_block_entries(npv, nfr, rows, symmetric))
                fl = type2_slave_flops(npv, nfr, rows, symmetric)
                # the slave's share of the children CB rows to assemble
                sasm = total * float(rows) / nfr_f
                stid = len(t_kind)
                t_kind.append(K_TYPE2_SLAVE)
                t_node.append(node)
                t_proc.append(sq2)
                t_flops.append(fl)
                t_mem.append(block)
                t_rows.append(rows)
                t_sub.append(-1)
                t_master.append(q)
                t_extra.append(sasm)
                if msg_penalty is None:
                    heappush(heap, (t_arrive, seq, EV_SLAVE_TASK, sq2, stid, 0))
                else:
                    penalty, retries = msg_penalty(msg_stream)
                    if retries:
                        c_lost += 1
                        c_retr += retries
                    heappush(
                        heap, (now + (desc_delay + penalty), seq, EV_SLAVE_TASK, sq2, stid, 0)
                    )
                seq += 1
                c_stask += 1
                # the master immediately accounts for its own decision
                x = vm_q[sq2] + block
                vm_q[sq2] = 0.0 if x < 0.0 else x
                reservations.append((sq2, block))
            if multi:
                nq.append((now + notif, seq, EV_RESERVATION, q, reservations, 0))
                seq += 1
                c_resv += n1
        if plan is None:
            return comm + g_asm[node] / asm_rate + tflops[node] / flop_rate
        return comm + (g_asm[node] / asm_rate + tflops[node] / flop_rate) * speed_at(q, now)

    def activate(tid, q):
        nonlocal seq, c_cbt
        current[q] = tid
        k = t_kind[tid]
        node = t_node[tid]
        if k == K_TYPE1:
            sub = t_sub[tid]
            if sub >= 0:
                if cur_sub[q] != sub:
                    cur_sub[q] = sub
                    subtree_changed(q, speaks[sub])
            else:
                up = upcoming[q]
                if node in up:
                    del up[node]
                    pred_changed(q)
            activated[node] = True
            # pull the children CB pieces onto the owner
            comm = 0.0
            moved = 0.0
            for c in g_children[node]:
                for cq, e in cbp[c]:
                    if cq != q:
                        _free(cq, e)
                        mem_changed(cq)
                        _alloc(q, e)
                        moved += e
                        tt = lat + e / bw
                        if tt > comm:
                            comm = tt
                        c_cbt += 1
            if moved > 0:
                mem_changed(q)
            _alloc(q, g_front[node])
            mem_changed(q)
            if plan is None:
                duration = comm + g_asm[node] / asm_rate + tflops[node] / flop_rate
            else:
                duration = comm + (
                    g_asm[node] / asm_rate + tflops[node] / flop_rate
                ) * speed_at(q, now)
        elif k == K_TYPE2_MASTER:
            duration = activate_t2(tid, q, node)
        elif k == K_TYPE2_SLAVE:
            if plan is None:
                duration = t_flops[tid] / flop_rate
            else:
                duration = t_flops[tid] / flop_rate * speed_at(q, now)
        else:  # K_ROOT_SHARE
            _alloc(q, t_mem[tid])
            mem_changed(q)
            if plan is None:
                duration = t_flops[tid] / flop_rate
            else:
                duration = t_flops[tid] / flop_rate * speed_at(q, now)
        heappush(heap, (now + duration, seq, EV_TASK_DONE, q, tid, 0))
        seq += 1

    def try_start(q):
        if current[q] != -1:
            return
        sq = slaveq[q]
        if sq:
            activate(sq.popleft(), q)
            return
        pl = pools[q]
        if not pl:
            return
        if task_mode == TASK_MODE_LIFO:
            i = len(pl) - 1
        elif task_mode == TASK_MODE_FIFO:
            i = 0
        else:  # Algorithm 2, inlined over the live pool of task ids
            top = len(pl) - 1
            cs = cur_sub[q]
            if cs >= 0 and t_sub[pl[top]] == cs:
                i = top
            else:
                cur = stack[q] + (cur_speak[q] if cs >= 0 else 0.0)
                obs = observed[q]
                i = top
                for j in range(top, -1, -1):
                    tid = pl[j]
                    if t_mem[tid] + cur <= obs:
                        i = j
                        break
                    if t_sub[tid] >= 0:
                        i = j
                        break
        activate(pl.pop(i), q)

    # ------------------------------------------------------------------ #
    # setup (same order of operations as FactorizationSimulator._setup)
    # ------------------------------------------------------------------ #
    il = geom.initial_load
    base_load = np.empty(nprocs, dtype=np.float64)
    for q in range(nprocs):
        v = float(il[q])
        load[q] = v
        # everyone starts with the same (exact) static knowledge of the loads
        base_load[q] = 0.0 if v < 0.0 else v
    for p in range(nprocs):
        view_load[p][:] = base_load

    # initial pools: the leaves, deepest-first subtree by subtree
    for p in range(nprocs):
        for node in reversed(geom.pool_orders[p]):
            tid = len(t_kind)
            t_kind.append(K_TYPE2_MASTER if g_ntype[node] == T2 else K_TYPE1)
            t_node.append(node)
            t_proc.append(p)
            t_flops.append(tflops[node])
            t_mem.append(tmem[node])
            t_rows.append(0)
            t_sub.append(g_sub[node])
            t_master.append(-1)
            t_extra.append(0.0)
            pools[p].append(tid)

    # a single-node tree (or type-3 leaves) must still start somewhere
    for i in geom.tree_leaves:
        if g_ntype[i] == T3:
            root_ready(i)

    for p in range(nprocs):
        heappush(heap, (0.0, seq, EV_KICK, p, 0, 0))
        seq += 1

    # ------------------------------------------------------------------ #
    # the event loop (two ordered fronts merged by (time, seq) — tuple
    # comparison never reaches the payload because seq is unique)
    # ------------------------------------------------------------------ #
    while True:
        if heap:
            if nq and nq[0] < heap[0]:
                ev = nq.popleft()
            else:
                ev = heappop(heap)
        elif nq:
            ev = nq.popleft()
        else:
            break
        now = ev[0]
        tag = ev[2]
        if tag == EV_BROADCAST:
            kind = ev[3]
            src = ev[4]
            val = ev[5]
            if lazy:
                # pending state is inherently last-writer-wins per source, so
                # no same-timestamp coalescing pass is needed here
                if kind == 0:
                    if mem_log and mem_log[-1][0] == 0 and mem_log[-1][1] == src:
                        mem_log[-1] = (0, src, val)
                    else:
                        mem_log.append((0, src, val))
                else:
                    pend_cols[kind][src] = val
            else:
                # zero-latency coalescing: a storm of same-kind same-source
                # broadcasts at one timestamp collapses to its last value —
                # only while the matching broadcast is globally next
                while nq:
                    nxt = nq[0]
                    if nxt[0] != now or nxt[2] != EV_BROADCAST or nxt[3] != kind or nxt[4] != src:
                        break
                    if heap and heap[0] < nxt:
                        break
                    val = nxt[5]
                    nq.popleft()
                apply_broadcast_kind(kind, src, val)
        elif tag == EV_TASK_DONE:
            q = ev[3]
            tid = ev[4]
            current[q] = -1
            tdone[q] += 1
            k = t_kind[tid]
            node = t_node[tid]
            if k == K_TYPE1:
                # the children CB pieces all sit on the owner by now
                total = 0.0
                for c in g_children[node]:
                    lst = cbp[c]
                    if lst:
                        ssum = 0.0
                        for _cq, e in lst:
                            ssum += e
                        total += ssum
                        cbp[c] = []
                if total > 0:
                    _free(q, total)
                    mem_changed(q)
                _free(q, g_front[node])
                _add_factors(q, g_factor[node])
                cbv = g_cb[node]
                if cbv > 0:
                    _alloc(q, cbv)
                    cbp[node] = [(q, cbv)]
                mem_changed(q)
                l = load[q] - t_flops[tid]
                load[q] = 0.0 if l < 0.0 else l
                load_changed(q)
                sub = t_sub[tid]
                if sub >= 0 and node == sub:
                    cur_sub[q] = -1
                    subtree_changed(q, 0.0)
                complete_node(node)
            elif k == K_TYPE2_MASTER:
                me = g_master[node]
                _free(q, me + t_extra[tid])
                _add_factors(q, me)
                mem_changed(q)
                l = load[q] - t_flops[tid]
                load[q] = 0.0 if l < 0.0 else l
                load_changed(q)
                master_done[node] = True
                if slaves_pend[node] == 0:
                    complete_node(node)
            elif k == K_TYPE2_SLAVE:
                fp = float(type2_slave_factor_entries(
                    g_npiv[node], g_nfront[node], t_rows[tid], symmetric
                ))
                cb_part = t_mem[tid] - fp
                if cb_part < 0.0:
                    cb_part = 0.0
                _free(q, fp + t_extra[tid])
                _add_factors(q, fp)
                mem_changed(q)
                l = load[q] - t_flops[tid]
                load[q] = 0.0 if l < 0.0 else l
                load_changed(q)
                if cb_part > 0:
                    cbp[node].append((q, cb_part))
                slaves_pend[node] -= 1
                c_sdone += 1
                if slaves_pend[node] == 0 and master_done[node]:
                    complete_node(node)
            else:  # K_ROOT_SHARE
                _free(q, t_mem[tid])
                _add_factors(q, g_factor[node] / nprocs)
                mem_changed(q)
                l = load[q] - t_flops[tid]
                load[q] = 0.0 if l < 0.0 else l
                load_changed(q)
                rp = root_pend[node] - 1
                root_pend[node] = rp
                if rp == 0:
                    # root CB (normally empty) stays on processor 0 by convention
                    cbv = g_cb[node]
                    if cbv > 0:
                        _alloc(0, cbv)
                        mem_changed(0)
                        cbp[node] = [(0, cbv)]
                    complete_node(node)
            try_start(q)
        elif tag == EV_SLAVE_TASK:
            dq = ev[3]
            tid = ev[4]
            # the slave block (plus its assembly share) is charged upon
            # reception (Section 3: slave tasks activate as soon as received)
            _alloc(dq, t_mem[tid] + t_extra[tid])
            mem_changed(dq)
            load[dq] = load[dq] + t_flops[tid]
            load_changed(dq)
            slaveq[dq].append(tid)
            try_start(dq)
        elif tag == EV_CHILD_COMPLETED:
            on_child_completed(ev[3])
        elif tag == EV_RESERVATION:
            if lazy:
                mem_log.append((1, ev[3], ev[4]))
            else:
                apply_reservations(ev[3], ev[4])
        else:  # EV_KICK
            try_start(ev[3])

    # ------------------------------------------------------------------ #
    # finalize: write the list mirrors back into the canonical SimState
    # ------------------------------------------------------------------ #
    if finished != nnodes:
        unfinished = [i for i in range(nnodes) if not completed[i]]
        raise RuntimeError(
            f"simulation deadlocked: {len(unfinished)} nodes never completed "
            f"(first few: {unfinished[:5]})"
        )
    if lazy:
        flush_views()  # leave sim.views in the same state the eager engines do

    state = SimState(nprocs)
    state.ntasks = len(t_kind)
    state.stack = np.array(stack, dtype=np.float64)
    state.factors = np.array(factors, dtype=np.float64)
    state.peak_stack = np.array(peak, dtype=np.float64)
    state.peak_time = np.array(peak_t, dtype=np.float64)
    state.load_remaining = np.array(load, dtype=np.float64)
    state.observed_peak = np.array(observed, dtype=np.float64)
    state.tasks_done = np.array(tdone, dtype=np.int64)
    state.current_subtree = np.array(cur_sub, dtype=np.int64)
    state.task_kind = np.array(t_kind, dtype=np.int8)
    state.task_node = np.array(t_node, dtype=np.int64)
    state.task_proc = np.array(t_proc, dtype=np.int64)
    state.task_flops = np.array(t_flops, dtype=np.float64)
    state.task_memory = np.array(t_mem, dtype=np.float64)
    state.task_rows = np.array(t_rows, dtype=np.int64)
    state.task_subtree = np.array(t_sub, dtype=np.int64)
    state.task_master = np.array(t_master, dtype=np.int64)
    state.task_extra = np.array(t_extra, dtype=np.float64)
    sim.state = state

    message_counts = {}
    for name, count in (
        ("memory", c_mem),
        ("load", c_load),
        ("subtree", c_sub),
        ("prediction", c_pred),
        ("cb_transfer", c_cbt),
        ("slave_task", c_stask),
        ("reservation", c_resv),
        ("slave_done", c_sdone),
        ("child_completed", c_child),
        ("msg_lost", c_lost),
        ("msg_retries", c_retr),
    ):
        if count:
            message_counts[name] = count
    if root_seen:
        # the reference engine touches this key even at nprocs == 1 (+= 0)
        message_counts["root_ready"] = c_root
    sim.message_counts = message_counts
    sim.slave_selections = n_sel
    sim.queue._now = now
    sim._finished_nodes = finished

    from repro.runtime.simulator import SimulationResult

    trace = SimulationTrace.from_buffers(tb) if tracing else None
    return SimulationResult(
        nprocs=nprocs,
        per_proc_peak_stack=state.peak_stack.copy(),
        per_proc_factor_entries=state.factors.copy(),
        per_proc_tasks=state.tasks_done.astype(np.float64),
        total_time=now,
        message_counts=dict(message_counts),
        slave_selections=n_sel,
        nodes=nnodes,
        total_factor_entries=float(state.factors.sum()),
        trace=trace,
        strategy_name=sim.strategy_name,
    )
